(** The RISC-V Core-Local Interruptor (CLINT), modelled after the
    riscv-vp / SiFive FE310 CLINT — the paper's future-work target
    ("evaluate our approach, beyond TLM peripherals, for verification
    of other SystemC IP components").

    The CLINT provides per-hart software interrupts ([msip]) and timer
    interrupts ([mtimecmp] against the free-running 64-bit [mtime]
    counter, one tick per {!Config.t.tick} of simulation time).
    Memory map (FE310, offsets inside the device window):

    {v
      0x0000  msip        4 bytes   bit 0 raises the software interrupt
      0x4000  mtimecmp    8 bytes   timer fires when mtime >= mtimecmp
      0xBFF8  mtime       8 bytes   read-only free-running counter
    v}

    Per the privileged specification, the timer interrupt is {e level}
    triggered: it is asserted while [mtime >= mtimecmp] and writing a
    new, larger [mtimecmp] retracts it.

    The model is a TLM peripheral in the same style as {!Plic}: a
    translated thread waits on an internal event scheduled for the
    moment the comparator matches; reads of [mtime] compute the counter
    from the simulation clock.  Register dispatch reuses
    {!Tlm.Register}, so the Original/Fixed policy (bugs F2..F5 of the
    paper) applies to this peripheral as well. *)

module Config : sig
  type t = {
    tick : Pk.Sc_time.t;  (** simulated time per mtime increment *)
  }

  val fe310 : t
  (** 10 ns per tick (a 100 MHz mtime, scaled for simulation). *)
end

(** Interrupt lines towards a hart. *)
module Port : sig
  type t = {
    mutable software_pending : bool;
    mutable timer_pending : bool;
    mutable timer_trigger_count : int;
    mutable last_timer_time : Pk.Sc_time.t;
  }

  val create : unit -> t
end

type t

val create :
  ?policy:Tlm.Register.policy -> Config.t -> Pk.Scheduler.t -> t
(** Build the CLINT and spawn its timer thread.  Default policy:
    [Fixed]. *)

val connect : t -> Port.t -> unit
val transport : t -> Tlm.Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t

val reset : t -> unit
(** Restore the just-constructed device state (registers, port lines,
    thread FSM); scheduler state is untouched. *)

(** The unified peripheral surface ({!Tlm.Peripheral.S}). *)
module Peripheral : sig
  type config = {
    cc_policy : Tlm.Register.policy;
    cc_cfg : Config.t;
  }

  include Tlm.Peripheral.S with type t = t and type config := config
end

val mtime_now : t -> Smt.Expr.t
(** Current counter value (64-bit), derived from simulation time. *)

val msip_base : int
val mtimecmp_base : int
val mtime_base : int
val addr_window : int
