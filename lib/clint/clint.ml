module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Sc_time = Pk.Sc_time

module Config = struct
  type t = { tick : Sc_time.t }

  let fe310 = { tick = Sc_time.ns 10 }
end

module Port = struct
  type t = {
    mutable software_pending : bool;
    mutable timer_pending : bool;
    mutable timer_trigger_count : int;
    mutable last_timer_time : Sc_time.t;
  }

  let create () =
    {
      software_pending = false;
      timer_pending = false;
      timer_trigger_count = 0;
      last_timer_time = Sc_time.zero;
    }
end

let msip_base = 0x0000
let mtimecmp_base = 0x4000
let mtime_base = 0xBFF8
let addr_window = 0xC000

(* Comparator matches further than this many ticks in the future are
   beyond any simulation horizon and are not scheduled (the thread
   re-arms if mtimecmp changes). *)
let horizon_ticks = Int64.shift_left 1L 40

(* Resume labels of the translated timer thread. *)
type run_label = Init | Lbl1

(* Captured device state: pure data, no aliasing into the live device. *)
type snap = {
  sn_msip : Mem.state;
  sn_mtimecmp : Mem.state;
  sn_mtime : Mem.state;
  sn_ports : (bool * bool * int * Sc_time.t) list;
  sn_fsm : run_label;
}

type t = {
  cfg : Config.t;
  sched : Pk.Scheduler.t;
  regs : Tlm.Register.t;
  msip : Mem.t;
  mtimecmp : Mem.t;
  mtime : Mem.t;
  e_timer : Pk.Event.t;
  mutable ports : Port.t list;
  timer_fsm : run_label Pk.Process.Fsm.t;
  mutable reset_snap : snap option;
}

let mtime_now t =
  let ps = Sc_time.to_ps (Pk.Scheduler.now t.sched) in
  let tick = Sc_time.to_ps t.cfg.Config.tick in
  Expr.const (Bv.make ~width:64 (Int64.div ps tick))

let set_timer_level t level =
  List.iter
    (fun (port : Port.t) ->
       if level && not port.Port.timer_pending then begin
         port.Port.timer_pending <- true;
         port.Port.timer_trigger_count <- port.Port.timer_trigger_count + 1;
         port.Port.last_timer_time <- Pk.Scheduler.now t.sched
       end
       else if not level then port.Port.timer_pending <- false)
    t.ports

(* Evaluate the comparator and either assert the (level-triggered)
   interrupt or arm the wakeup for the match instant. *)
let update_timer t =
  let cmp = Mem.read64 t.mtimecmp 0 in
  let now = mtime_now t in
  if Value.truth ~site:"clint:cmp" (Expr.ule cmp now) then set_timer_level t true
  else begin
    set_timer_level t false;
    let delta_ticks = Engine.concretize ~site:"clint:delay" (Expr.sub cmp now) in
    let ticks64 = Bv.to_int64 delta_ticks in
    if Int64.unsigned_compare ticks64 horizon_ticks <= 0 then begin
      let delay =
        Sc_time.of_ps
          (Int64.mul ticks64 (Sc_time.to_ps t.cfg.Config.tick))
      in
      Pk.Scheduler.notify_at t.sched t.e_timer delay
    end
  end

let update_software t =
  let pending = Value.bit (Mem.read32 t.msip 0) 0 in
  let level = Value.truth ~site:"clint:msip" pending in
  List.iter (fun (port : Port.t) -> port.Port.software_pending <- level) t.ports

(* ---- whole-device state capture ---- *)

let snapshot t =
  {
    sn_msip = Mem.save t.msip;
    sn_mtimecmp = Mem.save t.mtimecmp;
    sn_mtime = Mem.save t.mtime;
    sn_ports =
      List.map
        (fun (p : Port.t) ->
           (p.Port.software_pending, p.Port.timer_pending,
            p.Port.timer_trigger_count, p.Port.last_timer_time))
        t.ports;
    sn_fsm = Pk.Process.Fsm.position t.timer_fsm;
  }

let restore t s =
  Mem.load t.msip s.sn_msip;
  Mem.load t.mtimecmp s.sn_mtimecmp;
  Mem.load t.mtime s.sn_mtime;
  (* [ports] is newest-first and only grows by [connect]; a snapshot
     taken before later connects covers the oldest suffix. *)
  let extra = List.length t.ports - List.length s.sn_ports in
  if extra < 0 then
    invalid_arg "Clint.restore: snapshot from a different device shape";
  let rec drop n l = if n = 0 then l else drop (n - 1) (List.tl l) in
  List.iter2
    (fun (p : Port.t) (sw, tp, tc, lt) ->
       p.Port.software_pending <- sw;
       p.Port.timer_pending <- tp;
       p.Port.timer_trigger_count <- tc;
       p.Port.last_timer_time <- lt)
    (drop extra t.ports) s.sn_ports;
  Pk.Process.Fsm.set t.timer_fsm s.sn_fsm

type Engine.component_state += Clint_state of snap

let spawn_timer_thread t =
  let fsm = t.timer_fsm in
  let body () =
    match Pk.Process.Fsm.position fsm with
    | Init ->
      Pk.Process.Fsm.suspend fsm ~at:Lbl1 (Pk.Process.Wait_event t.e_timer)
    | Lbl1 ->
      update_timer t;
      Pk.Process.Fsm.suspend fsm ~at:Lbl1 (Pk.Process.Wait_event t.e_timer)
  in
  Pk.Scheduler.spawn t.sched (Pk.Process.make "clint:timer" body)

let create ?(policy = Tlm.Register.Fixed) cfg sched =
  let t =
    {
      cfg;
      sched;
      regs = Tlm.Register.create ~policy ~name:"clint" ();
      msip = Mem.create ~name:"clint-msip" ~size:4;
      mtimecmp = Mem.create ~name:"clint-mtimecmp" ~size:8;
      mtime = Mem.create ~name:"clint-mtime" ~size:8;
      e_timer = Pk.Event.make "clint:e_timer";
      ports = [];
      timer_fsm = Pk.Process.Fsm.make ~init:Init;
      reset_snap = None;
    }
  in
  (* Reset value: mtimecmp all-ones, so the timer is quiet at boot. *)
  Mem.write64 t.mtimecmp 0 (Expr.const (Bv.ones 64));
  ignore
    (Tlm.Register.add_range t.regs ~name:"msip" ~base:msip_base
       ~access:Tlm.Register.Read_write
       ~post_write:(fun () -> update_software t)
       t.msip);
  ignore
    (Tlm.Register.add_range t.regs ~name:"mtimecmp" ~base:mtimecmp_base
       ~access:Tlm.Register.Read_write
       ~post_write:(fun () -> update_timer t)
       t.mtimecmp);
  ignore
    (Tlm.Register.add_range t.regs ~name:"mtime" ~base:mtime_base
       ~access:Tlm.Register.Read_only
       ~pre_read:(fun () -> Mem.write64 t.mtime 0 (mtime_now t))
       t.mtime);
  spawn_timer_thread t;
  Engine.register_component
    ~save:(fun () -> Clint_state (snapshot t))
    ~restore:(function
      | Clint_state s -> restore t s
      | _ -> assert false);
  t.reset_snap <- Some (snapshot t);
  t

let connect t port = t.ports <- port :: t.ports
let transport t payload delay = Tlm.Register.transport t.regs payload delay

let reset t =
  (* Ports connected after construction are absent from the snapshot;
     clear them to their power-on defaults first. *)
  List.iter
    (fun (p : Port.t) ->
       p.Port.software_pending <- false;
       p.Port.timer_pending <- false;
       p.Port.timer_trigger_count <- 0;
       p.Port.last_timer_time <- Sc_time.zero)
    t.ports;
  match t.reset_snap with
  | Some s -> restore t s
  | None -> assert false

module Peripheral = struct
  type nonrec t = t

  type config = {
    cc_policy : Tlm.Register.policy;
    cc_cfg : Config.t;
  }

  type state = snap

  let make c sched = create ~policy:c.cc_policy c.cc_cfg sched
  let reset = reset
  let serve = transport
  let snapshot = snapshot
  let restore = restore
end
