type counter = { c_name : string; c_help : string; mutable c_value : int }

type gauge = { g_name : string; g_help : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_help : string;
  h_buckets : float array;            (* upper bounds, ascending *)
  h_counts : int array;               (* per-bucket, same length *)
  mutable h_inf : int;                (* observations above the last bound *)
  mutable h_sum : float;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let find_or_add name make =
  match Hashtbl.find_opt registry name with
  | Some m -> m
  | None ->
    let m = make () in
    Hashtbl.add registry name m;
    m

let invalid_reuse name =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %s already registered with another type" name)

(* Re-registering a name is an idempotent lookup as long as it cannot
   change what [render] prints: an empty [help] never prints, so it is
   compatible with anything, but two call sites claiming the same name
   with different non-empty helps are a genuine collision — fail fast
   instead of silently keeping whichever registered first. *)
let check_help name existing help =
  if help <> "" && existing <> "" && help <> existing then
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics: %s already registered with a different help string"
         name)

let counter ?(help = "") name =
  match
    find_or_add name (fun () -> C { c_name = name; c_help = help; c_value = 0 })
  with
  | C c -> check_help name c.c_help help; c
  | G _ | H _ -> invalid_reuse name

let gauge ?(help = "") name =
  match
    find_or_add name (fun () ->
        G { g_name = name; g_help = help; g_value = 0.0 })
  with
  | G g -> check_help name g.g_help help; g
  | C _ | H _ -> invalid_reuse name

let default_buckets =
  [| 1e-5; 1e-4; 1e-3; 5e-3; 0.01; 0.05; 0.1; 0.5; 1.0; 5.0 |]

let histogram ?(help = "") ?(buckets = default_buckets) name =
  match
    find_or_add name (fun () ->
        let buckets = Array.copy buckets in
        Array.sort Float.compare buckets;
        H
          {
            h_name = name;
            h_help = help;
            h_buckets = buckets;
            h_counts = Array.make (Array.length buckets) 0;
            h_inf = 0;
            h_sum = 0.0;
          })
  with
  | H h -> check_help name h.h_help help; h
  | C _ | G _ -> invalid_reuse name

let inc ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let observe h v =
  h.h_sum <- h.h_sum +. v;
  let n = Array.length h.h_buckets in
  let rec place i =
    if i >= n then h.h_inf <- h.h_inf + 1
    else if v <= h.h_buckets.(i) then h.h_counts.(i) <- h.h_counts.(i) + 1
    else place (i + 1)
  in
  place 0

let histogram_count h = Array.fold_left ( + ) h.h_inf h.h_counts
let histogram_sum h = h.h_sum

let reset () = Hashtbl.reset registry

(* Prometheus float formatting: integers print bare, everything else in
   shortest-roundtrip style. *)
let pr_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let render_metric buf = function
  | C c ->
    if c.c_help <> "" then
      Printf.bprintf buf "# HELP %s %s\n" c.c_name c.c_help;
    Printf.bprintf buf "# TYPE %s counter\n" c.c_name;
    Printf.bprintf buf "%s %d\n" c.c_name c.c_value
  | G g ->
    if g.g_help <> "" then
      Printf.bprintf buf "# HELP %s %s\n" g.g_name g.g_help;
    Printf.bprintf buf "# TYPE %s gauge\n" g.g_name;
    Printf.bprintf buf "%s %s\n" g.g_name (pr_float g.g_value)
  | H h ->
    if h.h_help <> "" then
      Printf.bprintf buf "# HELP %s %s\n" h.h_name h.h_help;
    Printf.bprintf buf "# TYPE %s histogram\n" h.h_name;
    let cum = ref 0 in
    Array.iteri
      (fun i le ->
         cum := !cum + h.h_counts.(i);
         Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" h.h_name
           (pr_float le) !cum)
      h.h_buckets;
    Printf.bprintf buf "%s_bucket{le=\"+Inf\"} %d\n" h.h_name
      (!cum + h.h_inf);
    Printf.bprintf buf "%s_sum %s\n" h.h_name (pr_float h.h_sum);
    Printf.bprintf buf "%s_count %d\n" h.h_name (histogram_count h)

let metric_name = function
  | C c -> c.c_name
  | G g -> g.g_name
  | H h -> h.h_name

let render () =
  let buf = Buffer.create 1024 in
  Hashtbl.fold (fun _ m acc -> m :: acc) registry []
  |> List.sort (fun a b -> String.compare (metric_name a) (metric_name b))
  |> List.iter (render_metric buf);
  Buffer.contents buf

let save path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ()))
