(* Global coverage registries.  Recording is plain hashtable arithmetic
   (no floats, no clocks), so merged coverage is bit-for-bit identical
   across worker counts as long as the explored path set is. *)

(* Byte masks are bounded so a pathological register cannot blow up the
   frame protocol; registers past the cap are tracked whole-register
   only (reads/writes counts stay exact). *)
let mask_cap = 4096

type reg_cov = {
  rc_size : int;
  rc_declares : int;
  rc_reads : int;
  rc_writes : int;
  rc_read_bytes : int array;
  rc_write_bytes : int array;
}

type arm_cov = { ac_true : int; ac_false : int }

type t = {
  regs : ((string * string) * reg_cov) list;
  arms : (string * arm_cov) list;
}

let zero = { regs = []; arms = [] }

(* ---- mutable global state ---- *)

type reg_cell = {
  mutable c_size : int;
  mutable c_declares : int;
  mutable c_reads : int;
  mutable c_writes : int;
  mutable c_read_bytes : int array;
  mutable c_write_bytes : int array;
}

type arm_cell = { mutable a_true : int; mutable a_false : int }

let reg_tbl : (string * string, reg_cell) Hashtbl.t = Hashtbl.create 64
let arm_tbl : (string, arm_cell) Hashtbl.t = Hashtbl.create 64

let reset () =
  Hashtbl.reset reg_tbl;
  Hashtbl.reset arm_tbl

let grown a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make n 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let reg_cell ~peripheral ~register =
  let key = (peripheral, register) in
  match Hashtbl.find_opt reg_tbl key with
  | Some c -> c
  | None ->
    let c =
      { c_size = 0; c_declares = 0; c_reads = 0; c_writes = 0;
        c_read_bytes = [||]; c_write_bytes = [||] }
    in
    Hashtbl.add reg_tbl key c;
    c

let declare ~peripheral ~register ~size =
  let c = reg_cell ~peripheral ~register in
  c.c_declares <- c.c_declares + 1;
  if size > c.c_size then begin
    c.c_size <- size;
    let n = min size mask_cap in
    c.c_read_bytes <- grown c.c_read_bytes n;
    c.c_write_bytes <- grown c.c_write_bytes n
  end

(* Mark the [off, off+len) byte window of [mask]; [None] for either
   bound means the access was symbolic at recording time, which marks
   the whole register (the access could touch any byte). *)
let mark mask size off len =
  let n = Array.length mask in
  if n > 0 then begin
    let lo, hi =
      match off, len with
      | Some o, Some l when o >= 0 && l >= 0 -> (o, min (o + l) size)
      | _ -> (0, size)
    in
    for i = max 0 lo to min hi n - 1 do
      mask.(i) <- mask.(i) + 1
    done
  end

let ensure_size c size =
  match size with
  | Some size when size > c.c_size ->
    c.c_size <- size;
    let n = min size mask_cap in
    c.c_read_bytes <- grown c.c_read_bytes n;
    c.c_write_bytes <- grown c.c_write_bytes n
  | Some _ | None -> ()

(* ---- recording tap ----

   The symbolic engine installs a tap around logged peripheral calls so
   it can replay the exact coverage deltas when it later skips the call
   (snapshot forking).  The event is only materialized when a tap is
   installed; recording itself is unchanged. *)

type event =
  | Ev_read of {
      peripheral : string;
      register : string;
      size : int option;
      off : int option;
      len : int option;
    }
  | Ev_write of {
      peripheral : string;
      register : string;
      size : int option;
      off : int option;
      len : int option;
    }
  | Ev_arm of { site : string; dir : bool }

let tap : (event -> unit) option ref = ref None

let record_read ~peripheral ~register ?size ?off ?len () =
  (match !tap with
   | Some f -> f (Ev_read { peripheral; register; size; off; len })
   | None -> ());
  let c = reg_cell ~peripheral ~register in
  ensure_size c size;
  c.c_reads <- c.c_reads + 1;
  mark c.c_read_bytes c.c_size off len

let record_write ~peripheral ~register ?size ?off ?len () =
  (match !tap with
   | Some f -> f (Ev_write { peripheral; register; size; off; len })
   | None -> ());
  let c = reg_cell ~peripheral ~register in
  ensure_size c size;
  c.c_writes <- c.c_writes + 1;
  mark c.c_write_bytes c.c_size off len

let record_arm ~site dir =
  (match !tap with Some f -> f (Ev_arm { site; dir }) | None -> ());
  let c =
    match Hashtbl.find_opt arm_tbl site with
    | Some c -> c
    | None ->
      let c = { a_true = 0; a_false = 0 } in
      Hashtbl.add arm_tbl site c;
      c
  in
  if dir then c.a_true <- c.a_true + 1 else c.a_false <- c.a_false + 1

let replay = function
  | Ev_read { peripheral; register; size; off; len } ->
    record_read ~peripheral ~register ?size ?off ?len ()
  | Ev_write { peripheral; register; size; off; len } ->
    record_write ~peripheral ~register ?size ?off ?len ()
  | Ev_arm { site; dir } -> record_arm ~site dir

(* ---- snapshots (canonical: sorted assoc lists, copied arrays) ---- *)

let get () =
  let regs =
    Hashtbl.fold
      (fun key c acc ->
         ( key,
           { rc_size = c.c_size;
             rc_declares = c.c_declares;
             rc_reads = c.c_reads;
             rc_writes = c.c_writes;
             rc_read_bytes = Array.copy c.c_read_bytes;
             rc_write_bytes = Array.copy c.c_write_bytes } )
         :: acc)
      reg_tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let arms =
    Hashtbl.fold
      (fun site c acc ->
         (site, { ac_true = c.a_true; ac_false = c.a_false }) :: acc)
      arm_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { regs; arms }

let restore t =
  reset ();
  List.iter
    (fun ((peripheral, register), rc) ->
       Hashtbl.replace reg_tbl (peripheral, register)
         { c_size = rc.rc_size;
           c_declares = rc.rc_declares;
           c_reads = rc.rc_reads;
           c_writes = rc.rc_writes;
           c_read_bytes = Array.copy rc.rc_read_bytes;
           c_write_bytes = Array.copy rc.rc_write_bytes })
    t.regs;
  List.iter
    (fun (site, ac) ->
       Hashtbl.replace arm_tbl site { a_true = ac.ac_true; a_false = ac.ac_false })
    t.arms

(* ---- delta arithmetic.  Counters are monotone, so [sub cur base]
   after [get]-ting a baseline yields the activity of one run; [add]
   merges per-worker deltas.  Both keep the canonical sorted order. ---- *)

let arr_op f a b =
  let n = max (Array.length a) (Array.length b) in
  Array.init n (fun i ->
      let x = if i < Array.length a then a.(i) else 0 in
      let y = if i < Array.length b then b.(i) else 0 in
      f x y)

let reg_nonzero rc =
  rc.rc_declares <> 0 || rc.rc_reads <> 0 || rc.rc_writes <> 0
  || Array.exists (fun n -> n <> 0) rc.rc_read_bytes
  || Array.exists (fun n -> n <> 0) rc.rc_write_bytes

let reg_op f a b =
  { rc_size = max a.rc_size b.rc_size;
    rc_declares = f a.rc_declares b.rc_declares;
    rc_reads = f a.rc_reads b.rc_reads;
    rc_writes = f a.rc_writes b.rc_writes;
    rc_read_bytes = arr_op f a.rc_read_bytes b.rc_read_bytes;
    rc_write_bytes = arr_op f a.rc_write_bytes b.rc_write_bytes }

(* Merge two sorted assoc lists; [both]/[left]/[right] return [None] to
   drop an entry from the result. *)
let merge2 cmp both left right a b =
  let rec go a b =
    match a, b with
    | [], [] -> []
    | (ka, va) :: ta, [] -> cons ka (left va) (go ta [])
    | [], (kb, vb) :: tb -> cons kb (right vb) (go [] tb)
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = cmp ka kb in
      if c < 0 then cons ka (left va) (go ta b)
      else if c > 0 then cons kb (right vb) (go a tb)
      else cons ka (both va vb) (go ta tb)
  and cons k v tl = match v with None -> tl | Some v -> (k, v) :: tl in
  go a b

let reg_zero =
  { rc_size = 0; rc_declares = 0; rc_reads = 0; rc_writes = 0;
    rc_read_bytes = [||]; rc_write_bytes = [||] }

let sub a b =
  let regs =
    merge2 compare
      (fun x y ->
         let v = reg_op ( - ) x y in
         if reg_nonzero v then Some v else None)
      (fun x -> if reg_nonzero x then Some x else None)
      (fun y ->
        let v = reg_op ( - ) reg_zero y in
        if reg_nonzero v then Some { v with rc_size = y.rc_size } else None)
      a.regs b.regs
  in
  let arms =
    merge2 String.compare
      (fun x y ->
         let v = { ac_true = x.ac_true - y.ac_true;
                   ac_false = x.ac_false - y.ac_false } in
         if v.ac_true <> 0 || v.ac_false <> 0 then Some v else None)
      (fun x -> if x.ac_true <> 0 || x.ac_false <> 0 then Some x else None)
      (fun y ->
        let v = { ac_true = -y.ac_true; ac_false = -y.ac_false } in
        if v.ac_true <> 0 || v.ac_false <> 0 then Some v else None)
      a.arms b.arms
  in
  { regs; arms }

let add a b =
  let regs =
    merge2 compare
      (fun x y -> Some (reg_op ( + ) x y))
      (fun x -> Some x)
      (fun y -> Some y)
      a.regs b.regs
  in
  let arms =
    merge2 String.compare
      (fun x y ->
         Some { ac_true = x.ac_true + y.ac_true;
                ac_false = x.ac_false + y.ac_false })
      (fun x -> Some x)
      (fun y -> Some y)
      a.arms b.arms
  in
  { regs; arms }

(* ---- JSON (canonical: field order fixed, entries sorted) ---- *)

let mask_to_json m = Json.List (Array.to_list (Array.map (fun n -> Json.Int n) m))

let mask_of_json j =
  match Json.to_list_opt j with
  | None -> [||]
  | Some l ->
    Array.of_list
      (List.map (fun v -> Option.value ~default:0 (Json.to_int_opt v)) l)

let to_json t =
  Json.Obj
    [ ("registers",
       Json.List
         (List.map
            (fun ((peripheral, register), rc) ->
               Json.Obj
                 [ ("peripheral", Json.Str peripheral);
                   ("register", Json.Str register);
                   ("size", Json.Int rc.rc_size);
                   ("declares", Json.Int rc.rc_declares);
                   ("reads", Json.Int rc.rc_reads);
                   ("writes", Json.Int rc.rc_writes);
                   ("read_bytes", mask_to_json rc.rc_read_bytes);
                   ("write_bytes", mask_to_json rc.rc_write_bytes) ])
            t.regs));
      ("arms",
       Json.List
         (List.map
            (fun (site, ac) ->
               Json.Obj
                 [ ("site", Json.Str site);
                   ("true", Json.Int ac.ac_true);
                   ("false", Json.Int ac.ac_false) ])
            t.arms)) ]

let of_json j =
  let int k o = Option.value ~default:0 (Option.bind (Json.member k o) Json.to_int_opt) in
  let str k o = Option.value ~default:"" (Option.bind (Json.member k o) Json.to_string_opt) in
  let regs =
    match Option.bind (Json.member "registers" j) Json.to_list_opt with
    | None -> []
    | Some l ->
      List.map
        (fun o ->
           ( (str "peripheral" o, str "register" o),
             { rc_size = int "size" o;
               rc_declares = int "declares" o;
               rc_reads = int "reads" o;
               rc_writes = int "writes" o;
               rc_read_bytes =
                 (match Json.member "read_bytes" o with
                  | Some m -> mask_of_json m
                  | None -> [||]);
               rc_write_bytes =
                 (match Json.member "write_bytes" o with
                  | Some m -> mask_of_json m
                  | None -> [||]) } ))
        l
  in
  let arms =
    match Option.bind (Json.member "arms" j) Json.to_list_opt with
    | None -> []
    | Some l ->
      List.map
        (fun o ->
           (str "site" o, { ac_true = int "true" o; ac_false = int "false" o }))
        l
  in
  { regs = List.sort (fun (a, _) (b, _) -> compare a b) regs;
    arms = List.sort (fun (a, _) (b, _) -> String.compare a b) arms }

(* ---- derived summaries ---- *)

type peripheral_summary = {
  ps_peripheral : string;
  ps_registers : int;
  ps_read : int;
  ps_written : int;
  ps_touched : int;
  ps_bits : int;
  ps_bits_read : int;
  ps_bits_written : int;
  ps_bits_touched : int;
}

let covered m = Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 m

let peripherals t =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun ((peripheral, _), rc) ->
       let s =
         match Hashtbl.find_opt tbl peripheral with
         | Some s -> s
         | None ->
           let s =
             ref
               { ps_peripheral = peripheral; ps_registers = 0; ps_read = 0;
                 ps_written = 0; ps_touched = 0; ps_bits = 0; ps_bits_read = 0;
                 ps_bits_written = 0; ps_bits_touched = 0 }
           in
           Hashtbl.add tbl peripheral s;
           order := peripheral :: !order;
           s
       in
       let read = rc.rc_reads > 0 and written = rc.rc_writes > 0 in
       let br = covered rc.rc_read_bytes and bw = covered rc.rc_write_bytes in
       let either =
         covered (arr_op ( + ) rc.rc_read_bytes rc.rc_write_bytes)
       in
       s :=
         { !s with
           ps_registers = !s.ps_registers + 1;
           ps_read = (!s.ps_read + if read then 1 else 0);
           ps_written = (!s.ps_written + if written then 1 else 0);
           ps_touched = (!s.ps_touched + if read || written then 1 else 0);
           ps_bits = !s.ps_bits + (8 * rc.rc_size);
           ps_bits_read = !s.ps_bits_read + (8 * br);
           ps_bits_written = !s.ps_bits_written + (8 * bw);
           ps_bits_touched = !s.ps_bits_touched + (8 * either) })
    t.regs;
  List.rev_map (fun p -> !(Hashtbl.find tbl p)) !order
  |> List.sort (fun a b -> String.compare a.ps_peripheral b.ps_peripheral)

type branch_summary = {
  bs_group : string;
  bs_sites : int;
  bs_arms : int;
  bs_covered : int;
}

let site_group site =
  match String.index_opt site ':' with
  | Some i -> String.sub site 0 i
  | None -> site

let branches t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (site, ac) ->
       let g = site_group site in
       let sites, arms, cov =
         Option.value ~default:(0, 0, 0) (Hashtbl.find_opt tbl g)
       in
       let cov' =
         cov + (if ac.ac_true > 0 then 1 else 0)
         + if ac.ac_false > 0 then 1 else 0
       in
       Hashtbl.replace tbl g (sites + 1, arms + 2, cov'))
    t.arms;
  Hashtbl.fold
    (fun g (sites, arms, cov) acc ->
       { bs_group = g; bs_sites = sites; bs_arms = arms; bs_covered = cov }
       :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.bs_group b.bs_group)

let pct n d = if d <= 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int d

(* Percentages are derived from integers, so they serialize identically
   for identical coverage maps. *)
let summary_to_json t =
  Json.Obj
    [ ("peripherals",
       Json.List
         (List.map
            (fun p ->
               Json.Obj
                 [ ("peripheral", Json.Str p.ps_peripheral);
                   ("registers", Json.Int p.ps_registers);
                   ("read", Json.Int p.ps_read);
                   ("written", Json.Int p.ps_written);
                   ("touched", Json.Int p.ps_touched);
                   ("register_pct", Json.Float (pct p.ps_touched p.ps_registers));
                   ("bits", Json.Int p.ps_bits);
                   ("bits_touched", Json.Int p.ps_bits_touched);
                   ("bit_pct", Json.Float (pct p.ps_bits_touched p.ps_bits)) ])
            (peripherals t)));
      ("branches",
       Json.List
         (List.map
            (fun b ->
               Json.Obj
                 [ ("group", Json.Str b.bs_group);
                   ("sites", Json.Int b.bs_sites);
                   ("arms", Json.Int b.bs_arms);
                   ("covered", Json.Int b.bs_covered);
                   ("arm_pct", Json.Float (pct b.bs_covered b.bs_arms)) ])
            (branches t))) ]

let pp ppf t =
  let lines =
    List.map
      (fun p ->
         Printf.sprintf "%-8s %d/%d registers (%.1f%%), %d/%d bits (%.1f%%)"
           p.ps_peripheral p.ps_touched p.ps_registers
           (pct p.ps_touched p.ps_registers)
           p.ps_bits_touched p.ps_bits
           (pct p.ps_bits_touched p.ps_bits))
      (peripherals t)
    @ List.map
        (fun b ->
           Printf.sprintf "%-8s %d/%d branch arms (%.1f%%)"
             b.bs_group b.bs_covered b.bs_arms (pct b.bs_covered b.bs_arms))
        (branches t)
  in
  List.iter (fun l -> Format.fprintf ppf "%s@." l) lines
