(** Solver-time attribution.

    The SMT layer reports each timed stage via [record]; the symbolic
    engine tags the current query origin (decision site, check site,
    assume, ...) via [set_origin].  Wall time lands in buckets keyed by
    (origin, stage), where stage is one of the solver's pipeline stages
    ("interval", "bitblast", "sat"), a slice shortcut ("slice:cache",
    "slice:cex"), or "other" (top-level query time not covered by any
    inner stage).

    Like {!Coverage}, recording goes to a global registry and a run's
    profile is the delta [sub (get ()) baseline]; the invariant
    [total_time delta = solver wall-time delta] holds up to float
    rounding.  Bucket {e times} are wall-clock and therefore vary run to
    run; the bucket {e keys} for a fixed seed and path set do not. *)

type bucket = { b_count : int; b_time : float }

type t = ((string * string) * bucket) list
(** Sorted by (origin, stage). *)

val zero : t

(** {1 Recording (global registry)} *)

val reset : unit -> unit
val set_origin : string -> unit
val origin : unit -> string

val record : stage:string -> float -> unit
(** Add [dt] seconds to the (current origin, [stage]) bucket and to the
    stage clock. *)

val record_as : origin:string -> stage:string -> float -> unit

val stage_clock : unit -> float
(** Cumulative time recorded so far; the solver uses the delta across a
    query to compute the "other" remainder without double-counting. *)

(** {1 Snapshots and delta arithmetic} *)

val get : unit -> t
val sub : t -> t -> t
val add : t -> t -> t

val total_time : t -> float
val total_count : t -> int

val top : ?k:int -> t -> ((string * string) * bucket) list
(** Buckets sorted by self time descending (key as tiebreak), first [k]. *)

(** {1 Serialization} *)

val to_json : t -> Json.t
val of_json : Json.t -> t

val pp_top : ?k:int -> Format.formatter -> t -> unit
