type worker_row =
  { wr_id : int; wr_addr : string; wr_busy : bool; wr_age : float }

type snapshot = {
  paths : int;
  instructions : int;
  frontier : int;
  errors : int;
  solver_time : float;
  solver_queries : int;
  cache_hits : int;
  wall : float;
  workers : worker_row list;
}

type mode =
  | Lines of int   (* stats line every N finished paths *)
  | Top of float   (* redrawn dashboard every N seconds *)

type state = {
  st_mode : mode;
  out : Format.formatter;
  mutable last : snapshot option;
  mutable lines : int;
  (* Dedupe: the pool polls [due] many times per path count, so remember
     the last count (Lines) / draw time (Top) that fired. *)
  mutable last_due : int;
  mutable last_draw : float;
  mutable block : int;  (* height of the last drawn dashboard block *)
}

let state : state option ref = ref None

let make mode out =
  { st_mode = mode; out; last = None; lines = 0; last_due = 0;
    last_draw = 0.0; block = 0 }

let configure ?(out = Format.err_formatter) ~interval () =
  if interval <= 0 then invalid_arg "Obs.Progress.configure: interval < 1";
  state := Some (make (Lines interval) out)

let configure_top ?(out = Format.err_formatter) ?(refresh_s = 0.5) () =
  if refresh_s <= 0.0 then
    invalid_arg "Obs.Progress.configure_top: refresh_s <= 0";
  state := Some (make (Top refresh_s) out)

let disable () = state := None

let interval () =
  match !state with
  | None -> None
  | Some { st_mode = Lines n; _ } -> Some n
  | Some { st_mode = Top _; _ } -> None

let top_enabled () =
  match !state with Some { st_mode = Top _; _ } -> true | _ -> false

let due ~paths =
  match !state with
  | None -> false
  | Some ({ st_mode = Lines n; _ } as s) ->
    if paths > 0 && paths mod n = 0 && paths <> s.last_due then begin
      s.last_due <- paths;
      true
    end
    else false
  | Some ({ st_mode = Top refresh; _ } as s) ->
    let now = Unix.gettimeofday () in
    if now -. s.last_draw >= refresh then begin
      s.last_draw <- now;
      true
    end
    else false

let rate num den = if den <= 0.0 then 0.0 else num /. den

let zero_snapshot =
  { paths = 0; instructions = 0; frontier = 0; errors = 0; solver_time = 0.0;
    solver_queries = 0; cache_hits = 0; wall = 0.0; workers = [] }

let window s snap =
  (* Rates are computed over the window since the previous line, so a
     stall is visible immediately rather than averaged away. *)
  let prev = match s.last with Some p -> p | None -> zero_snapshot in
  let dt = snap.wall -. prev.wall in
  let pps = rate (float_of_int (snap.paths - prev.paths)) dt in
  let ips = rate (float_of_int (snap.instructions - prev.instructions)) dt in
  (pps, ips)

let solver_frac snap = 100.0 *. rate snap.solver_time snap.wall

let cache_frac snap =
  100.0 *. rate (float_of_int snap.cache_hits) (float_of_int snap.solver_queries)

let tick_lines s snap =
  let pps, ips = window s snap in
  if s.lines mod 20 = 0 then
    Format.fprintf s.out
      "[obs] %8s %9s %10s %11s %8s %8s %7s %7s@."
      "paths" "paths/s" "instr" "instr/s" "frontier" "solver%" "cache%"
      "errors";
  Format.fprintf s.out
    "[obs] %8d %9.1f %10d %11.1f %8d %7.1f%% %6.1f%% %7d@."
    snap.paths pps snap.instructions ips snap.frontier (solver_frac snap)
    (cache_frac snap) snap.errors;
  s.lines <- s.lines + 1;
  s.last <- Some snap

(* Dashboard: a fixed block redrawn in place (cursor-up + erase-line),
   two summary lines plus worker health rows, four workers per line. *)
let tick_top s snap =
  let pps, ips = window s snap in
  if s.block > 0 then Format.fprintf s.out "\027[%dA" s.block;
  let n = ref 0 in
  let line fmt =
    incr n;
    Format.fprintf s.out ("\027[2K" ^^ fmt ^^ "@.")
  in
  line "[top] wall %6.1fs  paths %8d (%.1f/s)  frontier %6d  errors %d"
    snap.wall snap.paths pps snap.frontier snap.errors;
  line
    "[top] instr %10d (%.0f/s)  solver %5.1f%% wall  queries %8d  cache %5.1f%%"
    snap.instructions ips (solver_frac snap) snap.solver_queries
    (cache_frac snap);
  let rec rows = function
    | [] -> ()
    | ws ->
      let chunk = List.filteri (fun i _ -> i < 4) ws in
      let rest = List.filteri (fun i _ -> i >= 4) ws in
      incr n;
      Format.fprintf s.out "\027[2K[top]";
      List.iter
        (fun w ->
           Format.fprintf s.out "  w%d[%s] %s hb=%.1fs" w.wr_id w.wr_addr
             (if w.wr_busy then "busy" else "idle")
             w.wr_age)
        chunk;
      Format.fprintf s.out "@.";
      rows rest
  in
  rows snap.workers;
  s.block <- !n;
  s.last <- Some snap

let tick snap =
  match !state with
  | None -> ()
  | Some s ->
    (match s.st_mode with
     | Lines _ -> tick_lines s snap
     | Top _ -> tick_top s snap)
