type snapshot = {
  paths : int;
  instructions : int;
  frontier : int;
  errors : int;
  solver_time : float;
  solver_queries : int;
  cache_hits : int;
  wall : float;
}

type state = {
  st_interval : int;
  out : Format.formatter;
  mutable last : snapshot option;
  mutable lines : int;
}

let state : state option ref = ref None

let configure ?(out = Format.err_formatter) ~interval () =
  if interval <= 0 then invalid_arg "Obs.Progress.configure: interval < 1";
  state := Some { st_interval = interval; out; last = None; lines = 0 }

let disable () = state := None

let interval () =
  match !state with None -> None | Some s -> Some s.st_interval

let due ~paths =
  match !state with
  | None -> false
  | Some s -> paths > 0 && paths mod s.st_interval = 0

let rate num den = if den <= 0.0 then 0.0 else num /. den

let tick snap =
  match !state with
  | None -> ()
  | Some s ->
    (* Rates are computed over the window since the previous line, so a
       stall is visible immediately rather than averaged away. *)
    let prev =
      match s.last with
      | Some p -> p
      | None ->
        { paths = 0; instructions = 0; frontier = 0; errors = 0;
          solver_time = 0.0; solver_queries = 0; cache_hits = 0; wall = 0.0 }
    in
    let dt = snap.wall -. prev.wall in
    let pps = rate (float_of_int (snap.paths - prev.paths)) dt in
    let ips = rate (float_of_int (snap.instructions - prev.instructions)) dt in
    let solver_frac = 100.0 *. rate snap.solver_time snap.wall in
    let cache_frac =
      100.0 *. rate (float_of_int snap.cache_hits)
        (float_of_int snap.solver_queries)
    in
    if s.lines mod 20 = 0 then
      Format.fprintf s.out
        "[obs] %8s %9s %10s %11s %8s %8s %7s %7s@."
        "paths" "paths/s" "instr" "instr/s" "frontier" "solver%" "cache%"
        "errors";
    Format.fprintf s.out
      "[obs] %8d %9.1f %10d %11.1f %8d %7.1f%% %6.1f%% %7d@."
      snap.paths pps snap.instructions ips snap.frontier solver_frac
      cache_frac snap.errors;
    s.lines <- s.lines + 1;
    s.last <- Some snap
