(** Event consumers: in-memory recording and serialization to the
    Chrome trace-event format, JSONL, and the {!Metrics} registry.

    All serializers are hand-rolled (the tree carries no JSON
    dependency) and deterministic. *)

type recorder

val recorder : ?limit:int -> unit -> recorder
(** Subscribe a bounded in-memory event buffer to the {!Sink} (default
    limit: 2M events; later events are counted as dropped). *)

val stop : recorder -> unit
(** Unsubscribe; recorded events stay readable. *)

val events : recorder -> Event.t list
(** Recorded events in emission order. *)

val tagged_events : recorder -> (int * Event.t) list
(** Recorded events with their source tag: 0 for this process, [w + 1]
    for pool worker [w] (events added via {!inject}). *)

val dropped : recorder -> int
(** Events dropped locally past the recorder limit. *)

val remote_dropped : recorder -> int
(** Drop counts reported by workers via {!note_remote_dropped}. *)

(** {1 Cross-worker merge support}

    The pool master routes forwarded worker events into the most
    recently created live recorder; workers buffer events between result
    frames with the forwarding API below. *)

val active : unit -> bool
(** Whether a live recorder exists in this process (checked by workers
    before paying for forwarding). *)

val inject : worker:int -> Event.t list -> unit
(** Append events from pool worker [worker] to the live recorder (tag
    [worker + 1]), honouring its limit/drop accounting.  No-op without
    a live recorder. *)

val note_remote_dropped : int -> unit
(** Account events a worker dropped before forwarding. *)

val dropped_total : unit -> int
(** Local + remote drops of the live recorder; 0 when none is active. *)

val forwarding_begin : ?limit:int -> unit -> unit
(** Worker side: subscribe a bounded buffer (default 65536 events per
    work unit) that {!forwarding_take} drains. *)

val forwarding_take : unit -> Event.t list * int
(** Drain the forwarding buffer: buffered events in emission order and
    the number dropped past the limit; resets both. *)

val to_chrome : ?pid:int -> Event.t list -> string
(** A complete Chrome trace-event JSON document
    ([{"traceEvents":[...]}]), loadable in Perfetto /
    [about://tracing].  Each category is mapped to its own synthetic
    thread (with [thread_name] metadata) so subsystem spans render as
    separate tracks. *)

val to_jsonl : Event.t list -> string
(** One JSON object per line: [ts], [cat], [name], [ph], optional
    [dur], and [args]. *)

val save_chrome : ?pid:int -> Event.t list -> string -> unit
val save_jsonl : Event.t list -> string -> unit

val to_chrome_tagged : (int * Event.t) list -> string
(** Like {!to_chrome} for tagged events: tag [t] becomes Chrome process
    [t + 1] with a [process_name] metadata row ("master" / "worker N"),
    so a merged multi-worker trace opens in Perfetto with one named
    track group per worker.  Events are stably sorted by timestamp. *)

val save_chrome_tagged : (int * Event.t) list -> string -> unit

val to_jsonl_tagged : (int * Event.t) list -> string
(** {!to_jsonl} plus a leading [src] field ("master" / "worker N"). *)

val save_jsonl_tagged : (int * Event.t) list -> string -> unit

val metrics_bridge : unit -> int
(** Subscribe a folder that mirrors the event stream into {!Metrics}:
    every instant/complete/span-begin event [cat/name] increments
    counter [<cat>_<name>_total], and every complete span observes its
    duration (in seconds) into histogram [<cat>_<name>_seconds].
    Returns the subscription id (for {!Sink.unsubscribe}). *)

val escape_json : string -> string
(** JSON string-body escaping (exposed for the exporter tests). *)
