(** Event consumers: in-memory recording and serialization to the
    Chrome trace-event format, JSONL, and the {!Metrics} registry.

    All serializers are hand-rolled (the tree carries no JSON
    dependency) and deterministic. *)

type recorder

val recorder : ?limit:int -> unit -> recorder
(** Subscribe a bounded in-memory event buffer to the {!Sink} (default
    limit: 2M events; later events are counted as dropped). *)

val stop : recorder -> unit
(** Unsubscribe; recorded events stay readable. *)

val events : recorder -> Event.t list
(** Recorded events in emission order. *)

val dropped : recorder -> int

val to_chrome : ?pid:int -> Event.t list -> string
(** A complete Chrome trace-event JSON document
    ([{"traceEvents":[...]}]), loadable in Perfetto /
    [about://tracing].  Each category is mapped to its own synthetic
    thread (with [thread_name] metadata) so subsystem spans render as
    separate tracks. *)

val to_jsonl : Event.t list -> string
(** One JSON object per line: [ts], [cat], [name], [ph], optional
    [dur], and [args]. *)

val save_chrome : ?pid:int -> Event.t list -> string -> unit
val save_jsonl : Event.t list -> string -> unit

val metrics_bridge : unit -> int
(** Subscribe a folder that mirrors the event stream into {!Metrics}:
    every instant/complete/span-begin event [cat/name] increments
    counter [<cat>_<name>_total], and every complete span observes its
    duration (in seconds) into histogram [<cat>_<name>_seconds].
    Returns the subscription id (for {!Sink.unsubscribe}). *)

val escape_json : string -> string
(** JSON string-body escaping (exposed for the exporter tests). *)
