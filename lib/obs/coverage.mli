(** Coverage maps: per-peripheral register read/write/byte coverage and
    branch-arm coverage over the decision tree.

    Recording goes to a global registry (one per process).  Snapshots
    ([get]) are canonical — entries sorted, arrays copied — so that
    [sub]/[add] form exact pointwise group operations on counters.  A
    run's coverage is the delta [sub (get ()) baseline]; per-worker
    deltas [add] into a merged map that is bit-for-bit identical across
    worker counts whenever the explored path set is.

    Bit coverage is byte-resolution (the TLM data path is byte-lane):
    a register byte touched by any access marks all 8 of its bits. *)

type reg_cov = {
  rc_size : int;            (** register size in bytes *)
  rc_declares : int;        (** [declare] calls (≥ 1 once mapped) *)
  rc_reads : int;
  rc_writes : int;
  rc_read_bytes : int array;   (** per-byte read counts, length ≤ size *)
  rc_write_bytes : int array;  (** per-byte write counts *)
}

type arm_cov = { ac_true : int; ac_false : int }

type t = {
  regs : ((string * string) * reg_cov) list;
      (** keyed by (peripheral, register), sorted *)
  arms : (string * arm_cov) list;  (** keyed by decision site, sorted *)
}

val zero : t

val mask_cap : int
(** Registers larger than this many bytes are tracked whole-register
    only (no byte mask); read/write counts stay exact. *)

(** {1 Recording (global registry)} *)

val reset : unit -> unit

val declare : peripheral:string -> register:string -> size:int -> unit
(** Register [register] of [size] bytes exists on [peripheral]. *)

val record_read :
  peripheral:string -> register:string ->
  ?size:int -> ?off:int -> ?len:int -> unit -> unit
(** A read touching bytes [off, off+len).  Omitting [off] or [len]
    (symbolic access) marks the whole register; [size] grows the
    register (without counting a [declare]) for registers mapped before
    exploration began. *)

val record_write :
  peripheral:string -> register:string ->
  ?size:int -> ?off:int -> ?len:int -> unit -> unit

val record_arm : site:string -> bool -> unit
(** One arm of the decision site was taken. *)

(** {1 Recording tap}

    The symbolic engine installs a tap around logged peripheral calls
    to capture the coverage events they record; replaying those events
    later reproduces the exact same counter deltas without re-executing
    the call. *)

type event =
  | Ev_read of {
      peripheral : string;
      register : string;
      size : int option;
      off : int option;
      len : int option;
    }
  | Ev_write of {
      peripheral : string;
      register : string;
      size : int option;
      off : int option;
      len : int option;
    }
  | Ev_arm of { site : string; dir : bool }

val tap : (event -> unit) option ref
(** When set, every [record_*] call also passes its event to the tap
    (recording still happens normally). *)

val replay : event -> unit
(** Re-apply a tapped event to the global registry. *)

(** {1 Snapshots and delta arithmetic} *)

val get : unit -> t
val restore : t -> unit
(** Replace the global registry with the snapshot's contents. *)

val sub : t -> t -> t
(** Pointwise counter difference; zero entries are dropped. *)

val add : t -> t -> t
(** Pointwise counter sum. *)

(** {1 Serialization (canonical: sorted, fixed field order)} *)

val to_json : t -> Json.t
val of_json : Json.t -> t

(** {1 Derived summaries} *)

type peripheral_summary = {
  ps_peripheral : string;
  ps_registers : int;
  ps_read : int;          (** registers with ≥ 1 read *)
  ps_written : int;
  ps_touched : int;       (** read or written *)
  ps_bits : int;          (** 8 × total register bytes *)
  ps_bits_read : int;
  ps_bits_written : int;
  ps_bits_touched : int;
}

val peripherals : t -> peripheral_summary list

type branch_summary = {
  bs_group : string;   (** site prefix before the first ':' *)
  bs_sites : int;
  bs_arms : int;       (** 2 × sites *)
  bs_covered : int;    (** arms taken at least once *)
}

val branches : t -> branch_summary list

val pct : int -> int -> float
(** [pct n d] is [100 * n / d], or [0.0] when [d <= 0]. *)

val summary_to_json : t -> Json.t
(** Percentage summary object with "peripherals" and "branches" lists. *)

val pp : Format.formatter -> t -> unit
(** One line per peripheral and per branch group (used by reports). *)
