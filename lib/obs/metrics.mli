(** A process-global counter/gauge/histogram registry with a
    Prometheus text-exposition dump.

    Metrics are registered by name; registering the same name twice
    with the same type returns the existing instance (so independent
    subsystems can share a metric).  Duplicate registration fails fast
    with [Invalid_argument] when it could change the rendered output:
    a type clash, or two different non-empty [help] strings for one
    name.  Re-registering with an empty [help] is always an idempotent
    lookup, so call sites that just want the handle need not repeat the
    help text.  Rendering is deterministic: metrics are emitted sorted
    by name. *)

type counter
type gauge
type histogram

val counter : ?help:string -> string -> counter
val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Seconds-scale latency buckets: 10us .. 5s. *)

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds; they are sorted internally and an
    implicit [+Inf] bucket is always appended. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val render : unit -> string
(** Prometheus text format: [# HELP]/[# TYPE] headers, cumulative
    [_bucket{le="..."}] lines, [_sum]/[_count] per histogram. *)

val save : string -> unit
(** Write [render ()] to a file. *)

val reset : unit -> unit
(** Drop every registered metric (tests, fresh CLI runs). *)
