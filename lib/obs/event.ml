type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Instant
  | Counter
  | Span_begin
  | Span_end
  | Complete of float

type t = {
  ts : float;
  cat : string;
  name : string;
  kind : kind;
  args : (string * arg) list;
}

let kind_to_string = function
  | Instant -> "i"
  | Counter -> "C"
  | Span_begin -> "B"
  | Span_end -> "E"
  | Complete _ -> "X"

let pp_arg ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let pp ppf e =
  Format.fprintf ppf "[%.1fus] %s/%s %s" e.ts e.cat e.name
    (kind_to_string e.kind);
  (match e.kind with
   | Complete dur -> Format.fprintf ppf " dur=%.1fus" dur
   | Instant | Counter | Span_begin | Span_end -> ());
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v)
    e.args
