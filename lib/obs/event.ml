type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Instant
  | Counter
  | Span_begin
  | Span_end
  | Complete of float

type t = {
  ts : float;
  cat : string;
  name : string;
  kind : kind;
  args : (string * arg) list;
}

let kind_to_string = function
  | Instant -> "i"
  | Counter -> "C"
  | Span_begin -> "B"
  | Span_end -> "E"
  | Complete _ -> "X"

let pp_arg ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let pp ppf e =
  Format.fprintf ppf "[%.1fus] %s/%s %s" e.ts e.cat e.name
    (kind_to_string e.kind);
  (match e.kind with
   | Complete dur -> Format.fprintf ppf " dur=%.1fus" dur
   | Instant | Counter | Span_begin | Span_end -> ());
  List.iter
    (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_arg v)
    e.args

(* JSON transport for forwarding events between processes (worker →
   master frames).  The arg payload maps 1:1 onto JSON scalars, so the
   round-trip is exact (floats go through the Json printer's %.17g). *)

let arg_to_json = function
  | Int n -> Json.Int n
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

let arg_of_json = function
  | Json.Int n -> Int n
  | Json.Float f -> Float f
  | Json.Str s -> Str s
  | Json.Bool b -> Bool b
  | Json.Null | Json.List _ | Json.Obj _ -> Str "?"

let to_json e =
  let base =
    [ ("ts", Json.Float e.ts);
      ("cat", Json.Str e.cat);
      ("name", Json.Str e.name);
      ("ph", Json.Str (kind_to_string e.kind)) ]
  in
  let dur = match e.kind with Complete d -> [ ("dur", Json.Float d) ] | _ -> [] in
  let args =
    match e.args with
    | [] -> []
    | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) l)) ]
  in
  Json.Obj (base @ dur @ args)

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let flt k = Option.bind (Json.member k j) Json.to_float_opt in
  match str "ph" with
  | None -> None
  | Some ph ->
    let kind =
      match ph with
      | "i" -> Some Instant
      | "C" -> Some Counter
      | "B" -> Some Span_begin
      | "E" -> Some Span_end
      | "X" -> Some (Complete (Option.value ~default:0.0 (flt "dur")))
      | _ -> None
    in
    Option.map
      (fun kind ->
         let args =
           match Json.member "args" j with
           | Some (Json.Obj l) -> List.map (fun (k, v) -> (k, arg_of_json v)) l
           | _ -> []
         in
         { ts = Option.value ~default:0.0 (flt "ts");
           cat = Option.value ~default:"" (str "cat");
           name = Option.value ~default:"" (str "name");
           kind; args })
      kind
