(* The global event sink.  [enabled] mirrors "at least one subscriber
   is installed" so instrumentation sites pay a single ref read on the
   fast path; everything heavier (timestamping, arg construction,
   dispatch) only happens behind that check. *)

let enabled = ref false

let subscribers : (int * (Event.t -> unit)) list ref = ref []
let next_id = ref 0

let epoch = ref nan

let refresh_enabled () = enabled := !subscribers <> []

let on () = !enabled

let now_us () =
  let t = Unix.gettimeofday () in
  if Float.is_nan !epoch then epoch := t;
  (t -. !epoch) *. 1e6

let subscribe f =
  if Float.is_nan !epoch then epoch := Unix.gettimeofday ();
  let id = !next_id in
  incr next_id;
  subscribers := (id, f) :: !subscribers;
  refresh_enabled ();
  id

let unsubscribe id =
  subscribers := List.filter (fun (i, _) -> i <> id) !subscribers;
  refresh_enabled ()

let reset () =
  subscribers := [];
  epoch := nan;
  refresh_enabled ()

let dispatch e = List.iter (fun (_, f) -> f e) !subscribers

let emit ?(args = []) ~cat ~name kind =
  if !enabled then
    dispatch { Event.ts = now_us (); cat; name; kind; args }

let instant ?args ~cat name = emit ?args ~cat ~name Event.Instant
let counter ?args ~cat name = emit ?args ~cat ~name Event.Counter
let span_begin ?args ~cat name = emit ?args ~cat ~name Event.Span_begin
let span_end ?args ~cat name = emit ?args ~cat ~name Event.Span_end

let complete ?(args = []) ~cat ~dur_us name =
  (* Chrome "X" events are stamped at span start; the caller measured
     the duration itself, so backdate the emission timestamp. *)
  if !enabled then
    dispatch
      { Event.ts = Float.max 0.0 (now_us () -. dur_us); cat; name;
        kind = Event.Complete dur_us; args }

let with_span ?args ~cat name f =
  if not !enabled then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      let t1 = now_us () in
      dispatch
        { Event.ts = t0; cat; name; kind = Event.Complete (t1 -. t0);
          args = (match args with Some a -> a | None -> []) }
    in
    Fun.protect ~finally:finish f
  end

(* Cross-process timeline support: a worker inherits the master's epoch
   so forwarded event timestamps land on one shared timeline. *)
let current_epoch () = !epoch
let set_epoch t = epoch := t
