(** A minimal JSON value type with a printer and a parser.

    The tree deliberately has no external JSON dependency; this module
    is the shared carrier for everything that round-trips structured
    data through files — checkpoints, machine-readable reports.  The
    printer is compact (single line); the parser accepts any JSON
    produced by it plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val save : string -> t -> unit
(** Write atomically: the value is written to a temporary file in the
    same directory and renamed over the target, so readers never see a
    torn checkpoint. *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result

(** {1 Accessors} — total lookups for decoding. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
