(** A minimal JSON value type with a printer and a parser.

    The tree deliberately has no external JSON dependency; this module
    is the shared carrier for everything that round-trips structured
    data through files — checkpoints, machine-readable reports.  The
    printer is compact (single line); the parser accepts any JSON
    produced by it plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val save : string -> t -> unit
(** Write atomically and durably: {!write_atomic} of the printed value
    plus a trailing newline, so readers never see a torn checkpoint and
    a crash cannot leave a zero-length replacement. *)

val write_atomic : string -> string -> unit
(** [write_atomic path contents] — the shared crash-safe replace used
    by every JSON writer in the tree (checkpoints, [--report-out],
    bench artifacts, the campaign journal's segment rotation): write
    [contents] to [path ^ ".tmp"], [fsync] the file, rename over
    [path], then [fsync] the directory.  Without the two syncs a crash
    shortly after the rename can surface as a zero-length file where
    the previous good one was. *)

val of_string : string -> (t, string) result
val load : string -> (t, string) result

(** {1 Accessors} — total lookups for decoding. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
