(* Solver-time attribution.  The solver reports wall-time slices via
   [record ~stage dt]; the engine tags each query with its origin (the
   decision or check site that caused it) via [set_origin].  Buckets are
   keyed by (origin, stage) so a report can answer "which sites at which
   pipeline stages dominate solver time". *)

type bucket = { b_count : int; b_time : float }

type t = ((string * string) * bucket) list

let zero = []

let tbl : (string * string, bucket ref) Hashtbl.t = Hashtbl.create 64
let cur_origin = ref "init"

(* Cumulative recorded stage time; lets the solver's top-level [check]
   attribute the wall time not covered by any inner stage to "other"
   without double-counting. *)
let stage_acc = ref 0.0

let reset () =
  Hashtbl.reset tbl;
  cur_origin := "init";
  stage_acc := 0.0

let set_origin site = cur_origin := site
let origin () = !cur_origin
let stage_clock () = !stage_acc

let record_as ~origin ~stage dt =
  (match Hashtbl.find_opt tbl (origin, stage) with
   | Some b -> b := { b_count = !b.b_count + 1; b_time = !b.b_time +. dt }
   | None -> Hashtbl.add tbl (origin, stage) (ref { b_count = 1; b_time = dt }));
  stage_acc := !stage_acc +. dt

let record ~stage dt = record_as ~origin:!cur_origin ~stage dt

let get () =
  Hashtbl.fold (fun k b acc -> (k, !b) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- delta arithmetic over sorted assoc lists ---- *)

let merge2 both only a b =
  let rec go a b =
    match a, b with
    | [], [] -> []
    | (ka, va) :: ta, [] -> cons ka (only va) (go ta [])
    | [], (kb, vb) :: tb -> cons kb (only vb) (go [] tb)
    | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = compare ka kb in
      if c < 0 then cons ka (only va) (go ta b)
      else if c > 0 then cons kb (only vb) (go a tb)
      else cons ka (both va vb) (go ta tb)
  and cons k v tl = match v with None -> tl | Some v -> (k, v) :: tl in
  go a b

let keep b = if b.b_count = 0 && Float.abs b.b_time < 1e-12 then None else Some b

(* [b] is negated up front so the merge is a single pointwise sum —
   negating inside [both] as well would turn common keys into x + y. *)
let sub a b =
  merge2
    (fun x y -> keep { b_count = x.b_count + y.b_count; b_time = x.b_time +. y.b_time })
    keep a
    (List.map (fun (k, v) -> (k, { b_count = -v.b_count; b_time = -.v.b_time })) b)

let add a b =
  merge2
    (fun x y -> Some { b_count = x.b_count + y.b_count; b_time = x.b_time +. y.b_time })
    (fun v -> Some v)
    a b

let total_time t = List.fold_left (fun acc (_, b) -> acc +. b.b_time) 0.0 t
let total_count t = List.fold_left (fun acc (_, b) -> acc + b.b_count) 0 t

let top ?(k = 10) t =
  let sorted =
    List.stable_sort
      (fun (ka, a) (kb, b) ->
         let c = compare b.b_time a.b_time in
         if c <> 0 then c else compare ka kb)
      t
  in
  List.filteri (fun i _ -> i < k) sorted

(* ---- JSON ---- *)

let to_json t =
  Json.List
    (List.map
       (fun ((origin, stage), b) ->
          Json.Obj
            [ ("origin", Json.Str origin);
              ("stage", Json.Str stage);
              ("count", Json.Int b.b_count);
              ("time", Json.Float b.b_time) ])
       t)

let of_json j =
  match Json.to_list_opt j with
  | None -> []
  | Some l ->
    List.map
      (fun o ->
         let str k =
           Option.value ~default:""
             (Option.bind (Json.member k o) Json.to_string_opt)
         in
         let origin = str "origin" and stage = str "stage" in
         let count =
           Option.value ~default:0
             (Option.bind (Json.member "count" o) Json.to_int_opt)
         in
         let time =
           Option.value ~default:0.0
             (Option.bind (Json.member "time" o) Json.to_float_opt)
         in
         ((origin, stage), { b_count = count; b_time = time }))
      l
    |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_top ?(k = 10) ppf t =
  let total = total_time t in
  Format.fprintf ppf "%-28s %-12s %8s %10s %6s@." "origin" "stage" "queries"
    "self(s)" "%";
  List.iter
    (fun ((origin, stage), b) ->
       Format.fprintf ppf "%-28s %-12s %8d %10.3f %5.1f%%@." origin stage
         b.b_count b.b_time
         (if total > 0.0 then 100.0 *. b.b_time /. total else 0.0))
    (top ~k t);
  Format.fprintf ppf "total: %d queries, %.3fs solver time@." (total_count t)
    total
