(** The global event sink.

    Instrumentation sites across the engine, solver, kernel and TLM
    layers emit {!Event.t} values here; consumers ({!Export.recorder},
    {!Export.metrics_bridge}, ad-hoc subscribers) register callbacks.

    {b Cost discipline}: [enabled] is true exactly while at least one
    subscriber is installed.  Instrumentation sites must guard any
    argument construction with [if !Sink.enabled then ...] (or call
    [emit], which performs the same check before timestamping), so a
    run without subscribers pays one ref read per site. *)

val enabled : bool ref
(** Read-only mirror of "has subscribers" — read it inline on hot
    paths; do not write it (subscribe/unsubscribe maintain it). *)

val on : unit -> bool

val subscribe : (Event.t -> unit) -> int
(** Install a callback; returns a subscription id.  The first
    subscription pins the timestamp epoch. *)

val unsubscribe : int -> unit

val reset : unit -> unit
(** Drop all subscribers and the epoch (tests). *)

val now_us : unit -> float
(** Microseconds since the sink epoch (pinned on first use). *)

val emit :
  ?args:(string * Event.arg) list ->
  cat:string -> name:string -> Event.kind -> unit
(** Timestamp and dispatch an event; no-op when disabled. *)

val instant :
  ?args:(string * Event.arg) list -> cat:string -> string -> unit

val counter :
  ?args:(string * Event.arg) list -> cat:string -> string -> unit

val span_begin :
  ?args:(string * Event.arg) list -> cat:string -> string -> unit

val span_end :
  ?args:(string * Event.arg) list -> cat:string -> string -> unit

val complete :
  ?args:(string * Event.arg) list ->
  cat:string -> dur_us:float -> string -> unit
(** A self-contained [Complete] span whose duration the caller already
    measured; the event timestamp is backdated by [dur_us] so the span
    renders at its start. *)

val with_span :
  ?args:(string * Event.arg) list ->
  cat:string -> string -> (unit -> 'a) -> 'a
(** Time [f] and emit a [Complete] span stamped at its start; when the
    sink is disabled this is exactly [f ()]. *)

val current_epoch : unit -> float
(** The pinned epoch (Unix time), or [nan] when no subscriber ever
    pinned it. *)

val set_epoch : float -> unit
(** Pin the epoch explicitly — used by pool workers to inherit the
    master's timeline so forwarded events merge onto one clock. *)
