type recorder = {
  mutable rev_events : Event.t list;
  mutable count : int;
  limit : int;
  mutable dropped : int;
  mutable sub : int;
}

let recorder ?(limit = 2_000_000) () =
  let r = { rev_events = []; count = 0; limit; dropped = 0; sub = -1 } in
  r.sub <-
    Sink.subscribe (fun e ->
        if r.count >= r.limit then r.dropped <- r.dropped + 1
        else begin
          r.rev_events <- e :: r.rev_events;
          r.count <- r.count + 1
        end);
  r

let stop r = Sink.unsubscribe r.sub
let events r = List.rev r.rev_events
let dropped r = r.dropped

(* ---- JSON helpers (hand-rolled: no JSON dependency in the tree) ---- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let json_arg = function
  | Event.Int n -> string_of_int n
  | Event.Float f -> json_float f
  | Event.Str s -> Printf.sprintf "\"%s\"" (escape_json s)
  | Event.Bool b -> if b then "true" else "false"

let json_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf "\"%s\":%s" (escape_json k) (json_arg v))
    args;
  Buffer.add_char buf '}'

(* ---- Chrome trace-event JSON ---- *)

(* One synthetic thread per category keeps Perfetto tracks readable:
   engine spans do not nest inside solver spans and vice versa. *)
let tid_table cats =
  let tbl = Hashtbl.create 8 in
  let next = ref 1 in
  List.iter
    (fun c ->
       if not (Hashtbl.mem tbl c) then begin
         Hashtbl.add tbl c !next;
         incr next
       end)
    cats;
  tbl

let chrome_event buf ~pid ~tid (e : Event.t) =
  Printf.bprintf buf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
    (escape_json e.Event.name) (escape_json e.Event.cat)
    (Event.kind_to_string e.Event.kind)
    (json_float e.Event.ts) pid tid;
  (match e.Event.kind with
   | Event.Complete dur -> Printf.bprintf buf ",\"dur\":%s" (json_float dur)
   | Event.Instant -> Buffer.add_string buf ",\"s\":\"t\""
   | Event.Counter | Event.Span_begin | Event.Span_end -> ());
  if e.Event.args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    json_args buf e.Event.args
  end;
  Buffer.add_char buf '}'

let to_chrome ?(pid = 1) events =
  let tids = tid_table (List.map (fun (e : Event.t) -> e.Event.cat) events) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* Thread-name metadata so Perfetto labels each category track. *)
  Hashtbl.fold (fun cat tid acc -> (cat, tid) :: acc) tids []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  |> List.iter (fun (cat, tid) ->
      sep ();
      Printf.bprintf buf
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid tid (escape_json cat));
  List.iter
    (fun (e : Event.t) ->
       sep ();
       chrome_event buf ~pid ~tid:(Hashtbl.find tids e.Event.cat) e)
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* ---- JSONL ---- *)

let jsonl_event buf (e : Event.t) =
  Printf.bprintf buf "{\"ts\":%s,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\""
    (json_float e.Event.ts) (escape_json e.Event.cat)
    (escape_json e.Event.name)
    (Event.kind_to_string e.Event.kind);
  (match e.Event.kind with
   | Event.Complete dur -> Printf.bprintf buf ",\"dur\":%s" (json_float dur)
   | Event.Instant | Event.Counter | Event.Span_begin | Event.Span_end -> ());
  Buffer.add_string buf ",\"args\":";
  json_args buf e.Event.args;
  Buffer.add_string buf "}\n"

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter (jsonl_event buf) events;
  Buffer.contents buf

let save_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let save_chrome ?pid events path = save_string path (to_chrome ?pid events)
let save_jsonl events path = save_string path (to_jsonl events)

(* ---- event -> metrics bridge ---- *)

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
       | _ -> '_')
    name

let metrics_bridge () =
  Sink.subscribe (fun (e : Event.t) ->
      let base = sanitize (e.Event.cat ^ "_" ^ e.Event.name) in
      (match e.Event.kind with
       | Event.Instant | Event.Complete _ | Event.Span_begin ->
         Metrics.inc (Metrics.counter (base ^ "_total"))
       | Event.Span_end | Event.Counter -> ());
      match e.Event.kind with
      | Event.Complete dur ->
        Metrics.observe (Metrics.histogram (base ^ "_seconds")) (dur *. 1e-6)
      | Event.Instant | Event.Counter | Event.Span_begin | Event.Span_end ->
        ())
