(* Events are stored tagged with a source: 0 is this process (the
   master), [w + 1] is pool worker [w] (via [inject]).  The untagged
   [events] view hides the tags, so single-process consumers are
   unaffected. *)
type recorder = {
  mutable rev_events : (int * Event.t) list;
  mutable count : int;
  limit : int;
  mutable dropped : int;
  mutable remote_dropped : int;
  mutable sub : int;
}

(* The most recently created, still-running recorder; lets the pool
   master route forwarded worker events without threading the recorder
   through the engine API. *)
let live : recorder option ref = ref None

let recorder ?(limit = 2_000_000) () =
  let r =
    { rev_events = []; count = 0; limit; dropped = 0; remote_dropped = 0;
      sub = -1 }
  in
  r.sub <-
    Sink.subscribe (fun e ->
        if r.count >= r.limit then r.dropped <- r.dropped + 1
        else begin
          r.rev_events <- (0, e) :: r.rev_events;
          r.count <- r.count + 1
        end);
  live := Some r;
  r

let stop r =
  Sink.unsubscribe r.sub;
  (match !live with Some l when l == r -> live := None | _ -> ())

let events r = List.rev_map snd r.rev_events
let tagged_events r = List.rev r.rev_events
let dropped r = r.dropped
let remote_dropped r = r.remote_dropped

let active () = Option.is_some !live

let inject ~worker evs =
  match !live with
  | None -> ()
  | Some r ->
    List.iter
      (fun e ->
         if r.count >= r.limit then r.dropped <- r.dropped + 1
         else begin
           r.rev_events <- (worker + 1, e) :: r.rev_events;
           r.count <- r.count + 1
         end)
      evs

let note_remote_dropped n =
  match !live with
  | None -> ()
  | Some r -> r.remote_dropped <- r.remote_dropped + n

let dropped_total () =
  match !live with None -> 0 | Some r -> r.dropped + r.remote_dropped

(* ---- worker-side forwarding buffer ----

   Pool workers have no recorder (the sink is reset after fork); when
   the master asked for forwarding they accumulate events here, bounded
   per work unit, and drain the buffer into each result frame. *)

let fwd_limit = ref 65_536
let fwd_rev : Event.t list ref = ref []
let fwd_count = ref 0
let fwd_dropped = ref 0
let fwd_sub = ref (-1)

let forwarding_begin ?limit () =
  (match limit with Some l -> fwd_limit := l | None -> ());
  fwd_rev := [];
  fwd_count := 0;
  fwd_dropped := 0;
  fwd_sub :=
    Sink.subscribe (fun e ->
        if !fwd_count >= !fwd_limit then incr fwd_dropped
        else begin
          fwd_rev := e :: !fwd_rev;
          incr fwd_count
        end)

let forwarding_take () =
  let evs = List.rev !fwd_rev and d = !fwd_dropped in
  fwd_rev := [];
  fwd_count := 0;
  fwd_dropped := 0;
  (evs, d)

(* ---- JSON helpers (hand-rolled: no JSON dependency in the tree) ---- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.3f" f

let json_arg = function
  | Event.Int n -> string_of_int n
  | Event.Float f -> json_float f
  | Event.Str s -> Printf.sprintf "\"%s\"" (escape_json s)
  | Event.Bool b -> if b then "true" else "false"

let json_args buf args =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char buf ',';
       Printf.bprintf buf "\"%s\":%s" (escape_json k) (json_arg v))
    args;
  Buffer.add_char buf '}'

(* ---- Chrome trace-event JSON ---- *)

(* One synthetic thread per category keeps Perfetto tracks readable:
   engine spans do not nest inside solver spans and vice versa. *)
let tid_table cats =
  let tbl = Hashtbl.create 8 in
  let next = ref 1 in
  List.iter
    (fun c ->
       if not (Hashtbl.mem tbl c) then begin
         Hashtbl.add tbl c !next;
         incr next
       end)
    cats;
  tbl

let chrome_event buf ~pid ~tid (e : Event.t) =
  Printf.bprintf buf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":%d"
    (escape_json e.Event.name) (escape_json e.Event.cat)
    (Event.kind_to_string e.Event.kind)
    (json_float e.Event.ts) pid tid;
  (match e.Event.kind with
   | Event.Complete dur -> Printf.bprintf buf ",\"dur\":%s" (json_float dur)
   | Event.Instant -> Buffer.add_string buf ",\"s\":\"t\""
   | Event.Counter | Event.Span_begin | Event.Span_end -> ());
  if e.Event.args <> [] then begin
    Buffer.add_string buf ",\"args\":";
    json_args buf e.Event.args
  end;
  Buffer.add_char buf '}'

let to_chrome ?(pid = 1) events =
  let tids = tid_table (List.map (fun (e : Event.t) -> e.Event.cat) events) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* Thread-name metadata so Perfetto labels each category track. *)
  Hashtbl.fold (fun cat tid acc -> (cat, tid) :: acc) tids []
  |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  |> List.iter (fun (cat, tid) ->
      sep ();
      Printf.bprintf buf
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid tid (escape_json cat));
  List.iter
    (fun (e : Event.t) ->
       sep ();
       chrome_event buf ~pid ~tid:(Hashtbl.find tids e.Event.cat) e)
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

(* ---- JSONL ---- *)

let jsonl_event buf (e : Event.t) =
  Printf.bprintf buf "{\"ts\":%s,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\""
    (json_float e.Event.ts) (escape_json e.Event.cat)
    (escape_json e.Event.name)
    (Event.kind_to_string e.Event.kind);
  (match e.Event.kind with
   | Event.Complete dur -> Printf.bprintf buf ",\"dur\":%s" (json_float dur)
   | Event.Instant | Event.Counter | Event.Span_begin | Event.Span_end -> ());
  Buffer.add_string buf ",\"args\":";
  json_args buf e.Event.args;
  Buffer.add_string buf "}\n"

let to_jsonl events =
  let buf = Buffer.create 4096 in
  List.iter (jsonl_event buf) events;
  Buffer.contents buf

let save_string path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

let save_chrome ?pid events path = save_string path (to_chrome ?pid events)
let save_jsonl events path = save_string path (to_jsonl events)

(* ---- multi-process Chrome trace (merged worker tracks) ----

   Tag [t] renders as Chrome process [t + 1] (so the master keeps the
   default pid 1 of [to_chrome]); each process carries a process_name
   metadata row ("master" / "worker N") plus the usual per-category
   thread names.  Events are stably sorted by timestamp so a merged
   trace reads chronologically regardless of frame arrival order. *)

let tag_name = function 0 -> "master" | t -> Printf.sprintf "worker %d" (t - 1)

let to_chrome_tagged tagged =
  let tagged =
    List.stable_sort
      (fun (_, (a : Event.t)) (_, (b : Event.t)) ->
         Float.compare a.Event.ts b.Event.ts)
      tagged
  in
  let tags =
    List.sort_uniq Int.compare (List.map fst tagged)
  in
  let tids_of =
    let tbl = Hashtbl.create 8 in
    fun tag ->
      match Hashtbl.find_opt tbl tag with
      | Some t -> t
      | None ->
        let cats =
          List.filter_map
            (fun (t, (e : Event.t)) -> if t = tag then Some e.Event.cat else None)
            tagged
        in
        let t = tid_table cats in
        Hashtbl.add tbl tag t;
        t
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_string buf ",\n" in
  List.iter
    (fun tag ->
       let pid = tag + 1 in
       sep ();
       Printf.bprintf buf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
         pid (escape_json (tag_name tag));
       Hashtbl.fold (fun cat tid acc -> (cat, tid) :: acc) (tids_of tag) []
       |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
       |> List.iter (fun (cat, tid) ->
           sep ();
           Printf.bprintf buf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
             pid tid (escape_json cat)))
    tags;
  List.iter
    (fun (tag, (e : Event.t)) ->
       sep ();
       chrome_event buf ~pid:(tag + 1)
         ~tid:(Hashtbl.find (tids_of tag) e.Event.cat)
         e)
    tagged;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let save_chrome_tagged tagged path = save_string path (to_chrome_tagged tagged)

let to_jsonl_tagged tagged =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (tag, (e : Event.t)) ->
       Printf.bprintf buf "{\"src\":\"%s\",\"ts\":%s,\"cat\":\"%s\",\"name\":\"%s\",\"ph\":\"%s\""
         (escape_json (tag_name tag))
         (json_float e.Event.ts) (escape_json e.Event.cat)
         (escape_json e.Event.name)
         (Event.kind_to_string e.Event.kind);
       (match e.Event.kind with
        | Event.Complete dur -> Printf.bprintf buf ",\"dur\":%s" (json_float dur)
        | Event.Instant | Event.Counter | Event.Span_begin | Event.Span_end ->
          ());
       Buffer.add_string buf ",\"args\":";
       json_args buf e.Event.args;
       Buffer.add_string buf "}\n")
    tagged;
  Buffer.contents buf

let save_jsonl_tagged tagged path = save_string path (to_jsonl_tagged tagged)

(* ---- event -> metrics bridge ---- *)

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
       | _ -> '_')
    name

let metrics_bridge () =
  Sink.subscribe (fun (e : Event.t) ->
      let base = sanitize (e.Event.cat ^ "_" ^ e.Event.name) in
      (match e.Event.kind with
       | Event.Instant | Event.Complete _ | Event.Span_begin ->
         Metrics.inc (Metrics.counter (base ^ "_total"))
       | Event.Span_end | Event.Counter -> ());
      match e.Event.kind with
      | Event.Complete dur ->
        Metrics.observe (Metrics.histogram (base ^ "_seconds")) (dur *. 1e-6)
      | Event.Instant | Event.Counter | Event.Span_begin | Event.Span_end ->
        ())
