(** Live exploration statistics.

    Two modes share one call-site contract: the engine (or pool master)
    calls {!due} after progress is made and, when it returns true,
    assembles a {!snapshot} and calls {!tick}.

    - {!configure} — the [klee-stats] analogue: one appended stats line
      every [interval] finished paths.
    - {!configure_top} — a [top]-style TTY dashboard redrawn in place
      every [refresh_s] seconds: paths/s, frontier depth, solver
      fraction, cache hit rate, and per-worker health/heartbeat age.

    Rates (paths/s, instructions/s) are computed over the window since
    the previous tick; solver fraction and cache hit rate are
    cumulative. *)

type worker_row = {
  wr_id : int;
  wr_addr : string;     (** peer transport/address, e.g. [pipe:w0] or
                            [tcp:127.0.0.1:51234] *)
  wr_busy : bool;       (** a work unit is currently dispatched to it *)
  wr_age : float;       (** seconds since its last heartbeat/frame *)
}

type snapshot = {
  paths : int;
  instructions : int;
  frontier : int;          (** pending path prefixes *)
  errors : int;            (** distinct errors so far *)
  solver_time : float;     (** cumulative seconds in the solver *)
  solver_queries : int;    (** cumulative solver queries *)
  cache_hits : int;        (** query-cache + counterexample-cache hits *)
  wall : float;            (** seconds since the run started *)
  workers : worker_row list;  (** empty for sequential runs *)
}

val configure : ?out:Format.formatter -> interval:int -> unit -> unit
(** Print a stats line every [interval] finished paths (default
    destination: stderr).  Raises [Invalid_argument] when
    [interval < 1]. *)

val configure_top : ?out:Format.formatter -> ?refresh_s:float -> unit -> unit
(** Redraw the dashboard at most every [refresh_s] seconds (default
    0.5).  Raises [Invalid_argument] when [refresh_s <= 0]. *)

val disable : unit -> unit

val interval : unit -> int option
(** The line-mode interval; [None] when disabled or in dashboard mode. *)

val top_enabled : unit -> bool

val due : paths:int -> bool
(** Whether a tick should be drawn now.  Line mode: true at most once
    per multiple of the interval (repeat polls at the same path count
    do not re-fire).  Dashboard mode: true when the refresh period has
    elapsed. *)

val tick : snapshot -> unit
(** Print one stats line / redraw the dashboard (no-op when not
    configured). *)
