(** Live exploration statistics — the [klee-stats
    --stats-write-interval] analogue.

    The engine calls {!due} after every finished path (one ref read
    plus a [mod] when configured, one ref read when not) and, when it
    returns true, assembles a {!snapshot} and calls {!tick}, which
    appends one stats line to the configured formatter.  Rates
    (paths/s, instructions/s) are computed over the window since the
    previous line; solver fraction and cache hit rate are cumulative. *)

type snapshot = {
  paths : int;
  instructions : int;
  frontier : int;          (** pending path prefixes *)
  errors : int;            (** distinct errors so far *)
  solver_time : float;     (** cumulative seconds in the solver *)
  solver_queries : int;    (** cumulative solver queries *)
  cache_hits : int;        (** query-cache + counterexample-cache hits *)
  wall : float;            (** seconds since the run started *)
}

val configure : ?out:Format.formatter -> interval:int -> unit -> unit
(** Print a stats line every [interval] finished paths (default
    destination: stderr).  Raises [Invalid_argument] when
    [interval < 1]. *)

val disable : unit -> unit

val interval : unit -> int option

val due : paths:int -> bool
(** True when a line should be printed after path number [paths]. *)

val tick : snapshot -> unit
(** Print one stats line (no-op when not configured). *)
