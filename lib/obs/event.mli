(** Structured telemetry events.

    An event is a timestamped, categorized record with a small typed
    argument list — deliberately shaped like one entry of the Chrome
    trace-event format so every exporter is a plain serialization.

    Categories used by the instrumented layers:
    - ["engine"]  — {!Symex.Engine}: path lifecycle, forks,
      solver-unknown path kills, run totals;
    - ["solver"]  — {!Smt.Solver}: query spans, per-independence-slice
      [slice] spans (outcome, via cache/cex/pipeline, constraint
      count), stage spans;
    - ["kernel"]  — {!Pk.Scheduler}: delta cycles, event fires,
      process resumptions, time advances;
    - ["tlm"]     — {!Tlm.Router}: transaction routing spans. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type kind =
  | Instant            (** point-in-time marker (Chrome ph ["i"]) *)
  | Counter            (** sampled counter values (Chrome ph ["C"]) *)
  | Span_begin         (** opens a nested duration span (ph ["B"]) *)
  | Span_end           (** closes the innermost open span (ph ["E"]) *)
  | Complete of float  (** self-contained span with its duration in
                           microseconds (ph ["X"]) *)

type t = {
  ts : float;                  (** microseconds since the sink epoch *)
  cat : string;                (** subsystem category *)
  name : string;
  kind : kind;
  args : (string * arg) list;
}

val kind_to_string : kind -> string
(** The Chrome trace-event phase letter. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
(** Transport encoding for worker→master frames: fields [ts], [cat],
    [name], [ph] (phase letter), [dur] (for ["X"]), [args]. *)

val of_json : Json.t -> t option
(** Inverse of {!to_json}; [None] on a malformed or unknown phase. *)
