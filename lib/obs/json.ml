type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
    if not (Float.is_finite f) then
      (* JSON has no NaN/Inf; null is the conventional stand-in. *)
      Buffer.add_string buf "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.bprintf buf "%.0f" f
    else Printf.bprintf buf "%.17g" f
  | Str s -> Printf.bprintf buf "\"%s\"" (escape s)
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
         if i > 0 then Buffer.add_char buf ',';
         write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         Printf.bprintf buf "\"%s\":" (escape k);
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* Durable atomic replace.  Write-to-tmp-and-rename alone is not
   crash-safe: after a power cut the rename can be on disk while the
   data blocks are not, leaving a zero-length (or partial) file where
   the old good one was.  So: write the temporary, fsync it, rename,
   then fsync the directory so the new directory entry itself is
   durable before we report success. *)
let fsync_dir dir =
  match Unix.openfile (if dir = "" then "." else dir) [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ ->
    (* Directories that refuse O_RDONLY (some filesystems) lose the
       directory-entry barrier but keep the data barrier. *)
    ()

let write_atomic path contents =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       let buf = Bytes.of_string contents in
       let n = Bytes.length buf in
       let written = ref 0 in
       while !written < n do
         written := !written + Unix.write fd buf !written (n - !written)
       done;
       Unix.fsync fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let save path v = write_atomic path (to_string v ^ "\n")

(* ---- parsing ---- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           pos := !pos + 4;
           (* ASCII only; everything we emit stays in that range. *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else Buffer.add_char buf '?'
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt text with
       | Some f -> Float f
       | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some c -> if c = '-' || (c >= '0' && c <= '9') then parse_number () else fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
  | exception Failure msg -> Error msg

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
