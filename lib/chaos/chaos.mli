(** Deterministic fault injection for the verifier itself.

    The paper validates the symbolic tests by injecting faults into the
    device under verification (Section 5.3); this module applies the
    same methodology to the verifier: named injection points in the
    solver, worker pool and checkpoint layers consult [fire], which
    draws from a seeded per-point PRNG stream and decides whether to
    inject the corresponding failure.  A given [(spec, seed)] pair
    yields the same injection decisions on every run of the same
    binary, so chaos campaigns are reproducible and CI can assert that
    a faulted run converges to the clean run's verdicts.

    The module only {e decides}; the failure behaviour itself (return
    Unknown, crash the worker, corrupt the frame, ...) lives at the
    injection site.  Each injection increments a per-point counter,
    bumps a [symsysc_chaos_*] {!Obs.Metrics} counter and emits a
    [chaos] {!Obs.Sink} instant, so every injected fault is
    accountable in the run report.

    State is process-global (the verifier's solver and engine are too).
    Worker processes inherit the master's streams over [fork]; the pool
    calls {!reseed} with the worker index so sibling workers draw
    distinct decisions. *)

type point =
  | Solver_unknown      (** solver query answers Unknown *)
  | Solver_stall        (** solver query stalls past its deadline *)
  | Worker_hang         (** worker hangs mid-unit (stops heartbeats) *)
  | Worker_crash        (** worker process dies abruptly *)
  | Frame_truncate      (** result frame cut short mid-write *)
  | Frame_corrupt       (** result frame payload corrupted *)
  | Checkpoint_corrupt  (** checkpoint file corrupted on write *)
  | Conn_drop           (** worker connection dropped before a send *)
  | Conn_stall          (** worker socket stalls (delayed write) *)
  | Frame_shear         (** connection cut mid-write, half a frame sent *)
  | Dup_result          (** result frame delivered twice *)
  | Journal_truncate    (** campaign journal append torn mid-record (the
                            writing process dies with half a frame on
                            disk) *)
  | Job_crash           (** campaign job process dies abruptly mid-run *)
  | Service_kill        (** campaign daemon killed abruptly (SIGKILL
                            semantics — no drain, no final flush) *)

val all_points : point list

val point_to_string : point -> string
(** The spec name: ["solver-unknown"], ["worker-crash"], ... *)

val point_of_string : string -> point option

type spec = (point * float) list
(** Injection rates in [0, 1] per point; absent points never fire. *)

val parse_spec : string -> (spec, string) result
(** Parse ["point:rate,point:rate,..."] (rate defaults to [1] when
    omitted).  [""] parses to the empty spec.  Errors on unknown point
    names and rates outside [0, 1]. *)

val spec_to_string : spec -> string

val configure : ?seed:int -> spec -> unit
(** Arm the injector: set rates, reset counters, seed one independent
    splitmix64 stream per point (so e.g. solver draws do not disturb
    pool draws).  Default seed 0. *)

val disable : unit -> unit
(** Disarm; [fire] returns false everywhere.  Counters survive until
    the next [configure]. *)

val active : unit -> bool

val reseed : int -> unit
(** Mix [salt] into every stream and zero the injection counters —
    called by pool workers with their worker index so each forked
    worker draws its own decisions and accounts only its own
    injections (the counters inherited over [fork] belong to the
    master). *)

val fire : point -> bool
(** Draw the point's stream against its rate; [true] means the caller
    must inject the failure now.  Points with rate 0 do not advance
    their stream. *)

val counts : unit -> (string * int) list
(** Injections so far per point (all points, zeros included), in
    [all_points] order. *)

val total : unit -> int
(** Sum of {!counts}. *)

val sub_counts : (string * int) list -> (string * int) list -> (string * int) list
(** Pointwise difference [after - before] of two {!counts} snapshots. *)

val add_counts : (string * int) list -> (string * int) list -> (string * int) list
(** Pointwise sum — merges per-worker injection counts. *)
