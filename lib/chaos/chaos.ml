(* Deterministic seeded fault injection; see chaos.mli. *)

type point =
  | Solver_unknown
  | Solver_stall
  | Worker_hang
  | Worker_crash
  | Frame_truncate
  | Frame_corrupt
  | Checkpoint_corrupt
  | Conn_drop
  | Conn_stall
  | Frame_shear
  | Dup_result
  | Journal_truncate
  | Job_crash
  | Service_kill

let all_points =
  [ Solver_unknown; Solver_stall; Worker_hang; Worker_crash;
    Frame_truncate; Frame_corrupt; Checkpoint_corrupt;
    Conn_drop; Conn_stall; Frame_shear; Dup_result;
    Journal_truncate; Job_crash; Service_kill ]

let point_to_string = function
  | Solver_unknown -> "solver-unknown"
  | Solver_stall -> "solver-stall"
  | Worker_hang -> "worker-hang"
  | Worker_crash -> "worker-crash"
  | Frame_truncate -> "frame-truncate"
  | Frame_corrupt -> "frame-corrupt"
  | Checkpoint_corrupt -> "checkpoint-corrupt"
  | Conn_drop -> "conn-drop"
  | Conn_stall -> "conn-stall"
  | Frame_shear -> "frame-shear"
  | Dup_result -> "dup-result"
  | Journal_truncate -> "journal-truncate"
  | Job_crash -> "job-crash"
  | Service_kill -> "service-kill"

let point_of_string s =
  List.find_opt (fun p -> point_to_string p = s) all_points

let idx = function
  | Solver_unknown -> 0
  | Solver_stall -> 1
  | Worker_hang -> 2
  | Worker_crash -> 3
  | Frame_truncate -> 4
  | Frame_corrupt -> 5
  | Checkpoint_corrupt -> 6
  | Conn_drop -> 7
  | Conn_stall -> 8
  | Frame_shear -> 9
  | Dup_result -> 10
  | Journal_truncate -> 11
  | Job_crash -> 12
  | Service_kill -> 13

let n_points = List.length all_points

type spec = (point * float) list

let parse_spec s =
  let s = String.trim s in
  if s = "" then Ok []
  else
    let parts = String.split_on_char ',' s in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | part :: rest ->
        let part = String.trim part in
        let name, rate_s =
          match String.index_opt part ':' with
          | None -> (part, "1")
          | Some i ->
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
        in
        (match point_of_string (String.trim name) with
         | None -> Error (Printf.sprintf "chaos: unknown point %S" name)
         | Some p ->
           (match float_of_string_opt (String.trim rate_s) with
            | Some r when r >= 0.0 && r <= 1.0 -> go ((p, r) :: acc) rest
            | _ ->
              Error
                (Printf.sprintf "chaos: rate %S for %s not in [0,1]" rate_s
                   name)))
    in
    go [] parts

let spec_to_string spec =
  String.concat ","
    (List.map
       (fun (p, r) -> Printf.sprintf "%s:%g" (point_to_string p) r)
       spec)

(* ------------------------------------------------------------------ *)
(* Seeded streams                                                      *)

(* splitmix64: one state per point so injection draws at one layer do
   not perturb decisions at another. *)
let splitmix64 st =
  let st = Int64.add st 0x9E3779B97F4A7C15L in
  let z = st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), st)

let rates = Array.make n_points 0.0
let states = Array.make n_points 0L
let injected = Array.make n_points 0
let armed = ref false

let configure ?(seed = 0) spec =
  Array.fill rates 0 n_points 0.0;
  Array.fill injected 0 n_points 0;
  List.iter (fun (p, r) -> rates.(idx p) <- r) spec;
  let base = Int64.of_int seed in
  Array.iteri
    (fun i _ ->
       let s0 =
         Int64.add base (Int64.mul (Int64.of_int (i + 1)) 0x9E3779B97F4A7C15L)
       in
       states.(i) <- fst (splitmix64 s0))
    states;
  armed := List.exists (fun (_, r) -> r > 0.0) spec

let disable () =
  armed := false;
  Array.fill rates 0 n_points 0.0

let active () = !armed

let reseed salt =
  let m = Int64.mul (Int64.of_int (salt + 1)) 0x9E3779B97F4A7C15L in
  Array.iteri
    (fun i st -> states.(i) <- fst (splitmix64 (Int64.logxor st m)))
    states;
  (* A forked worker inherits the master's counters; zero them so the
     worker reports only its own injections and the master can merge
     per-worker deltas without double counting. *)
  Array.fill injected 0 n_points 0

let metric p =
  let name =
    String.map (function '-' -> '_' | c -> c) (point_to_string p)
  in
  Obs.Metrics.counter
    ~help:"chaos injections fired at this point"
    ("symsysc_chaos_" ^ name ^ "_total")

let uniform i =
  let v, st = splitmix64 states.(i) in
  states.(i) <- st;
  Int64.to_float (Int64.shift_right_logical v 11) /. 9007199254740992.0

let fire p =
  !armed
  &&
  let i = idx p in
  rates.(i) > 0.0
  && uniform i < rates.(i)
  && begin
    injected.(i) <- injected.(i) + 1;
    Obs.Metrics.inc (metric p);
    if !Obs.Sink.enabled then Obs.Sink.instant ~cat:"chaos" (point_to_string p);
    true
  end

let counts () =
  List.map (fun p -> (point_to_string p, injected.(idx p))) all_points

let total () = Array.fold_left ( + ) 0 injected

let merge op a b =
  List.map
    (fun p ->
       let k = point_to_string p in
       let get l = match List.assoc_opt k l with Some n -> n | None -> 0 in
       (k, op (get a) (get b)))
    all_points

let sub_counts after before = merge ( - ) after before
let add_counts a b = merge ( + ) a b
