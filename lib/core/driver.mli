(** Driver programs: software-driven register accesses as data.

    TLM peripherals are exercised by processor software through
    memory-mapped reads and writes (Section 1 of the paper).  This
    module gives testbenches a small embedded language for such driver
    sequences, so an access pattern can be stored, printed, replayed
    and explored symbolically as one value — the shape firmware
    bring-up code has:

    {[
      Driver.run ~bus [
        write32 (plic 0x2000) ~value:(const 0xFFFFFFFF);   (* enable *)
        write32 (plic 0x200000) ~value:(sym "threshold");
        step;
        read32 (plic 0x200004) ~into:"claimed";
        check "claimed-valid" (fun env -> Value.le (get env "claimed") (const 51));
      ]
    ]}

    Registers read into the environment are available to later
    instructions by name; symbolic operands work like any other engine
    value. *)

type operand =
  | Const of int             (** immediate *)
  | Sym of string            (** fresh symbolic input, bound on first use *)
  | Reg of string            (** value read earlier into the environment *)

type env
(** Values bound by [Read32] and [Sym] operands. *)

type instr =
  | Write32 of { addr : int; value : operand }
  | Read32 of { addr : int; into : string }
  | Assume of string * (env -> Smt.Expr.t)
      (** named constraint over the environment *)
  | Check of string * (env -> Smt.Expr.t)
      (** named property over the environment (engine check site) *)
  | Step                      (** advance the kernel to the next event *)
  | Repeat of int * instr list

val get : env -> string -> Symex.Value.t
(** Raises [Not_found] for unbound names. *)

val run :
  ?env:env ->
  sched:Pk.Scheduler.t ->
  bus:Tlm.Router.transport_fn ->
  instr list ->
  env
(** Execute a driver program against a bus.  Transactions with error
    responses are reported at site ["driver:response"] (firmware
    assumes its register map is correct).  Pass [env] to continue with
    the bindings of an earlier program. *)

val empty_env : unit -> env

val explore :
  ?label:string ->
  session:Symex.Engine.Session.t ->
  system:(unit -> Pk.Scheduler.t * Tlm.Router.transport_fn) ->
  instr list ->
  Symex.Engine.report
(** Explore a driver program symbolically under a session — the
    campaign form of {!run}.  [system] must build a fresh
    scheduler/bus pair (the whole device under verification) on every
    call: the engine re-executes it once per path, including in pool
    workers when the session has [workers > 1].  [label] names the run
    in checkpoints (default ["driver"]). *)

val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> instr list -> unit
