(** Deterministic comparison of two machine-readable reports
    ({!Report.to_json} files), the substance of the [report-diff] CLI
    subcommand and the CI equivalence gate between worker counts.

    Compared: test name, verdict, strategy, termination
    (exhausted / stop_reason), path and instruction counters, the
    (site, kind) error {e set}, and the coverage map plus its
    percentage summary (both serialize canonically, so equality is
    structural).

    Excluded because they legitimately vary across runs or worker
    counts: wall and solver times, solver cache statistics, worker
    count, resilience counters, dropped-event counts, and the
    solver-time profile (its bucket population depends on per-worker
    private caches). *)

val compare_reports : Obs.Json.t -> Obs.Json.t -> string list
(** Human-readable difference lines; [[]] means the reports agree on
    every compared field. *)

val pp : Format.formatter -> string list -> unit
(** One difference per line. *)
