(* Deterministic comparison of two --report-out JSONs, for the CI gate
   between a -j 1 and a -j 4 run of the same campaign.

   Only fields that are deterministic for a fixed seed and path set are
   compared: verdict/strategy/termination, path and instruction
   counters, the (site, kind) error set, and the full coverage map plus
   its percentage summary.  Deliberately excluded: wall and solver
   times, solver cache statistics, worker count, resilience counters,
   the profile (bucket keys depend on per-worker private caches) and
   dropped-event counts — all legitimately vary across worker counts or
   runs. *)

module Json = Obs.Json

let scalar_to_string = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int n -> string_of_int n
  | Json.Float f -> Printf.sprintf "%g" f
  | Json.Str s -> s
  | (Json.List _ | Json.Obj _) as j -> Json.to_string j

let field name j =
  match Json.member name j with Some v -> v | None -> Json.Null

(* Scalar field equality; Int 3 and Float 3. compare equal so a report
   that went through a float-normalizing tool still diffs clean. *)
let scalar_equal a b =
  match a, b with
  | Json.Int n, Json.Float f | Json.Float f, Json.Int n ->
    f = float_of_int n
  | _ -> a = b

let compare_scalar name a b =
  let va = field name a and vb = field name b in
  if scalar_equal va vb then []
  else
    [ Printf.sprintf "%s: %s vs %s" name (scalar_to_string va)
        (scalar_to_string vb) ]

(* The error lists in reports are already sorted by (site, kind), but
   de-duplicate and re-sort anyway so the diff is set-based: the same
   bug found on a different number of paths is not a regression. *)
let error_set j =
  match Json.to_list_opt (field "errors" j) with
  | None -> []
  | Some errs ->
    List.sort_uniq compare
      (List.map
         (fun e ->
            ( Option.value ~default:"?"
                (Option.bind (Json.member "site" e) Json.to_string_opt),
              Option.value ~default:"?"
                (Option.bind (Json.member "kind" e) Json.to_string_opt) ))
         errs)

let compare_errors a b =
  let ea = error_set a and eb = error_set b in
  let fmt (site, kind) = Printf.sprintf "%s/%s" site kind in
  let missing tag xs ys =
    List.filter_map
      (fun e ->
         if List.mem e ys then None
         else Some (Printf.sprintf "errors: %s only in %s" (fmt e) tag))
      xs
  in
  missing "first" ea eb @ missing "second" eb ea

(* Coverage maps and their summaries serialize canonically (sorted keys,
   fixed field order), so structural equality is the comparison; on
   mismatch, drill one level down for a readable message. *)
let compare_coverage name a b =
  let ca = field name a and cb = field name b in
  if ca = cb then []
  else
    match ca, cb with
    | Json.Obj fa, Json.Obj fb ->
      let keys =
        List.sort_uniq compare (List.map fst fa @ List.map fst fb)
      in
      List.filter_map
        (fun k ->
           let va = field k ca and vb = field k cb in
           if va = vb then None
           else
             Some
               (Printf.sprintf "%s.%s: %s vs %s" name k
                  (Json.to_string va) (Json.to_string vb)))
        keys
    | _ ->
      [ Printf.sprintf "%s: %s vs %s" name (Json.to_string ca)
          (Json.to_string cb) ]

let compare_reports a b =
  List.concat
    [ compare_scalar "test" a b;
      compare_scalar "verdict" a b;
      compare_scalar "strategy" a b;
      compare_scalar "exhausted" a b;
      compare_scalar "stop_reason" a b;
      compare_scalar "paths" a b;
      compare_scalar "paths_completed" a b;
      compare_scalar "paths_errored" a b;
      compare_scalar "paths_infeasible" a b;
      compare_scalar "paths_unknown" a b;
      compare_scalar "instructions" a b;
      compare_errors a b;
      compare_coverage "coverage" a b;
      compare_coverage "coverage_summary" a b ]

let pp ppf diffs =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       Format.pp_print_string)
    diffs
