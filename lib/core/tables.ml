module Engine = Symex.Engine

(* The paper rounds detection times up to the next whole minute; at our
   scale sub-second detections are common, so keep seconds visible
   below one minute. *)
let format_duration seconds =
  if seconds >= 7200.0 then Printf.sprintf "%.0fh" (seconds /. 3600.0)
  else if seconds >= 60.0 then
    Printf.sprintf "%.0fm" (Float.of_int (int_of_float (ceil (seconds /. 60.0))))
  else if seconds >= 1.0 then Printf.sprintf "%.0fs" (ceil seconds)
  else Printf.sprintf "%.2fs" seconds

(* "full" when the run exhausted the state space; otherwise which
   budget stopped it ("deadline", "paths", ...) or "degraded" when a
   solver limit silently lost paths. *)
let coverage_note (r : Report.t) =
  match r.Report.engine.Engine.stop_reason with
  | Some reason -> Symex.Budget.reason_to_string reason
  | None -> if r.Report.engine.Engine.exhausted then "full" else "degraded"

let print_table1 ppf reports =
  Format.fprintf ppf
    "| Test | Result    | #Exec. Instr. | Time [s] | Paths | Solver  | \
     Coverage |@.";
  Format.fprintf ppf
    "|------|-----------|---------------|----------|-------|---------|\
     ----------|@.";
  List.iter
    (fun (r : Report.t) ->
       Format.fprintf ppf
         "| %-4s | %-9s | %13d | %8.2f | %5d | %6.2f%% | %-8s |@."
         r.Report.test_name
         (Report.verdict_to_string r.Report.verdict)
         r.Report.engine.Engine.instructions
         r.Report.engine.Engine.wall_time r.Report.engine.Engine.paths
         (100.0 *. Report.solver_fraction r)
         (coverage_note r))
    reports

(* Companion to Table 1: where the solver fraction actually goes.
   Times are per exploration run; Slices counts the independent
   constraint slices examined and Cache the fraction of them the two
   solver caches answered. *)
let print_solver_breakdown ppf reports =
  Format.fprintf ppf
    "| Test | Queries | Slices  | Cache  | Itv [s] | Blast [s] | SAT [s] | \
     Conflicts |@.";
  Format.fprintf ppf
    "|------|---------|---------|--------|---------|-----------|---------|\
     -----------|@.";
  List.iter
    (fun (r : Report.t) ->
       let s = r.Report.engine.Engine.solver_stats in
       Format.fprintf ppf
         "| %-4s | %7d | %7d | %5.1f%% | %7.3f | %9.3f | %7.3f | %9d |@."
         r.Report.test_name s.Smt.Solver.Stats.queries
         s.Smt.Solver.Stats.slices
         (100.0 *. Smt.Solver.Stats.cache_hit_rate s)
         s.Smt.Solver.Stats.interval_time s.Smt.Solver.Stats.bitblast_time
         s.Smt.Solver.Stats.sat_time s.Smt.Solver.Stats.sat_conflicts)
    reports

(* Coverage companion to Table 1: how much of each test's register file
   and decision tree the explored paths actually exercised.  Reg%% and
   Bit%% aggregate over every peripheral the test mapped; Arm%% is over
   all decision sites (both arms of a site count separately). *)
let print_coverage ppf reports =
  Format.fprintf ppf
    "| Test | Regs  | Reg %%  | Bit %%  | Sites | Arm %%  |@.";
  Format.fprintf ppf
    "|------|-------|--------|--------|-------|--------|@.";
  List.iter
    (fun (r : Report.t) ->
       let cov = r.Report.engine.Engine.coverage in
       let sum f =
         List.fold_left
           (fun acc p -> acc + f p)
           0
           (Obs.Coverage.peripherals cov)
       in
       let regs = sum (fun p -> p.Obs.Coverage.ps_registers) in
       let touched = sum (fun p -> p.Obs.Coverage.ps_touched) in
       let bits = sum (fun p -> p.Obs.Coverage.ps_bits) in
       let bits_touched = sum (fun p -> p.Obs.Coverage.ps_bits_touched) in
       let bsum f =
         List.fold_left
           (fun acc b -> acc + f b)
           0
           (Obs.Coverage.branches cov)
       in
       let arms = bsum (fun b -> b.Obs.Coverage.bs_arms) in
       let covered = bsum (fun b -> b.Obs.Coverage.bs_covered) in
       Format.fprintf ppf
         "| %-4s | %5d | %5.1f%% | %5.1f%% | %5d | %5.1f%% |@."
         r.Report.test_name regs
         (Obs.Coverage.pct touched regs)
         (Obs.Coverage.pct bits_touched bits)
         (arms / 2)
         (Obs.Coverage.pct covered arms))
    reports

(* Worker-scaling companion: each row is the same campaign run with a
   different worker count; speedup is relative to the first row (the
   single-worker baseline), over the summed per-run wall time. *)
let print_scaling ppf rows =
  let wall reports =
    List.fold_left
      (fun acc (r : Report.t) -> acc +. r.Report.engine.Engine.wall_time)
      0.0 reports
  in
  let base =
    match rows with (_, reports) :: _ -> wall reports | [] -> 0.0
  in
  Format.fprintf ppf
    "| Workers | Time [s] | Paths | Errors | Speedup |@.";
  Format.fprintf ppf
    "|---------|----------|-------|--------|---------|@.";
  List.iter
    (fun (workers, reports) ->
       let w = wall reports in
       let total f =
         List.fold_left
           (fun acc (r : Report.t) -> acc + f r.Report.engine)
           0 reports
       in
       Format.fprintf ppf "| %7d | %8.2f | %5d | %6d | %6.2fx |@." workers w
         (total (fun e -> e.Engine.paths))
         (total (fun e -> List.length e.Engine.errors))
         (if w > 0.0 then base /. w else 0.0))
    rows

let print_table2 ppf ~tests detections =
  let bug_names = List.map (fun d -> Verify.bug_to_string d.Verify.bug) detections in
  Format.fprintf ppf "|      ";
  List.iter (fun b -> Format.fprintf ppf "| %-6s " b) bug_names;
  Format.fprintf ppf "|@.";
  Format.fprintf ppf "|------";
  List.iter (fun _ -> Format.fprintf ppf "|--------") bug_names;
  Format.fprintf ppf "|@.";
  List.iter
    (fun test ->
       Format.fprintf ppf "| %-4s " test;
       List.iter
         (fun (d : Verify.detection) ->
            let cell =
              match List.assoc_opt test d.Verify.per_test with
              | Some (Some t) -> format_duration t
              | Some None | None -> "-"
            in
            Format.fprintf ppf "| %-6s " cell)
         detections;
       Format.fprintf ppf "|@.")
    tests
