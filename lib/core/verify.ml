module Engine = Symex.Engine
module Error = Symex.Error
module Fault = Plic.Fault
module Config = Plic.Config

type bug = F1 | F2 | F3 | F4 | F5 | F6 | Injected of Fault.t

let original_bugs = [ F1; F2; F3; F4; F5; F6 ]
let all_bugs = original_bugs @ List.map (fun f -> Injected f) Fault.all

let bug_to_string = function
  | F1 -> "F1"
  | F2 -> "F2"
  | F3 -> "F3"
  | F4 -> "F4"
  | F5 -> "F5"
  | F6 -> "F6"
  | Injected f -> Fault.to_string f

let bug_of_string s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun b -> bug_to_string b = s) all_bugs

(* Original bugs are identified by the detector site of the error. *)
let bug_matches bug (err : Error.t) =
  match bug with
  | F1 -> err.Error.site = "plic:trigger:bounds"
  | F2 -> err.Error.site = "reg:align"
  | F3 -> err.Error.site = "reg:mapping"
  | F4 -> err.Error.site = "reg:access"
  | F5 ->
    err.Error.kind = Error.Out_of_bounds
    && String.length err.Error.site >= 10
    && String.sub err.Error.site 0 10 = "reg:memcpy"
  | F6 -> err.Error.site = "plic:claim:eip"
  | Injected _ -> true

type scenario = {
  params : Tests.params;
  session : Engine.Session.t;
}

(* The cookie a distributed campaign uses to reject mismatched remote
   workers: a master and a worker launched with different PLIC scales,
   variants or fault plants would silently merge incomparable paths. *)
let params_signature (p : Tests.params) =
  Printf.sprintf "harts=%d;sources=%d;maxprio=%d;variant=%s;faults=%s;\
                  t4=%d;t5=%d;latency=%s"
    p.Tests.cfg.Config.num_harts p.Tests.cfg.Config.num_sources
    p.Tests.cfg.Config.max_priority
    (Config.variant_to_string p.Tests.variant)
    (String.concat "," (List.map Fault.to_string p.Tests.faults))
    p.Tests.t4_max_len p.Tests.t5_max_len
    (Pk.Sc_time.to_string p.Tests.latency_budget)

let scenario ?(num_sources = 8) ?(t5_max_len = 16) ?session ?max_paths
    ?max_seconds ?max_solver_conflicts ?solver_timeout_ms ?max_memory_mb
    ?stop_after_errors ?seed ?workers ?heartbeat_ms ?listen ?lease_ms
    ?validate ?snapshots ?strategy () =
  let params = Tests.scaled_params ~num_sources ~t5_max_len in
  let session =
    match session with
    | Some s -> s
    | None ->
      Engine.Session.make ?strategy
        ~limits:
          { Engine.no_limits with
            max_paths;
            max_seconds;
            max_solver_conflicts;
            solver_timeout_ms;
            max_memory_mb }
        ?stop_after_errors ?seed ?workers ?heartbeat_ms ?listen ?lease_ms
        ~cookie:(params_signature params) ?validate ?snapshots ()
  in
  { params; session }

let run_named session name params =
  match Tests.by_name name with
  | None -> invalid_arg ("Verify.run_test: unknown test " ^ name)
  | Some test ->
    let report = Engine.Session.run ~label:name session (test params) in
    Report.make name report

let run_test scenario name = run_named scenario.session name scenario.params

(* Remote worker side of a distributed campaign: serve one test's work
   units to a listening master.  The scenario must be built with the
   same parameters as the master's — the cookie in the hello handshake
   enforces it. *)
let serve ~host ~port ~workers ?backoff_seed scenario name =
  match Tests.by_name name with
  | None -> invalid_arg ("Verify.serve: unknown test " ^ name)
  | Some test ->
    Engine.Session.serve ~host ~port ~workers ?backoff_seed ~label:name
      scenario.session (test scenario.params)

(* Campaign runs execute many labelled tests under one scenario, so a
   session-level [resume] (whose checkpoint names a single test) and a
   [checkpoint] sink (one path, would be overwritten per test) cannot
   apply; strip them rather than fail on the second test. *)
let campaign_session scenario =
  { scenario.session with Engine.Session.resume = None; checkpoint = None }

let table1 scenario =
  let params = Tests.with_variant Config.Original scenario.params in
  let params = Tests.with_faults [] params in
  let session = campaign_session scenario in
  List.map (fun (name, _) -> run_named session name params) Tests.all

type detection = {
  bug : bug;
  per_test : (string * float option) list;
}

let detection_time bug (report : Report.t) =
  List.filter_map
    (fun (e : Error.t) ->
       if bug_matches bug e then Some e.Error.found_after else None)
    report.Report.engine.Engine.errors
  |> function
  | [] -> None
  | times -> Some (List.fold_left Float.min Float.infinity times)

let table2 ?(tests = List.map fst Tests.all) scenario =
  let session = campaign_session scenario in
  (* One run per test on the original PLIC serves all F columns. *)
  let original_params =
    Tests.with_faults [] (Tests.with_variant Config.Original scenario.params)
  in
  let original_reports =
    List.map (fun name -> (name, run_named session name original_params)) tests
  in
  let f_rows =
    List.map
      (fun bug ->
         {
           bug;
           per_test =
             List.map
               (fun (name, report) -> (name, detection_time bug report))
               original_reports;
         })
      original_bugs
  in
  (* Each injected fault runs on the fixed PLIC, one run per test; the
     engine can stop at the first error since the baseline is clean. *)
  let if_rows =
    List.map
      (fun fault ->
         let params =
           Tests.with_faults [ fault ]
             (Tests.with_variant Config.Fixed scenario.params)
         in
         let stop_session =
           { session with Engine.Session.stop_after_errors = Some 1 }
         in
         {
           bug = Injected fault;
           per_test =
             List.map
               (fun name ->
                  let report = run_named stop_session name params in
                  (name, detection_time (Injected fault) report))
               tests;
         })
      Fault.all
  in
  f_rows @ if_rows

(* The IF1–IF6 detection matrix with path-count latency: for every
   injected fault, on the fixed PLIC with exactly that fault planted,
   which tests detect it and how many paths the engine explored before
   the first detection (the error's [path_id]).  This is the
   regression-testable core of the paper's Section 5.3 campaign. *)
type matrix_cell = { detected : bool; first_path : int option }

let detection_matrix ?(tests = List.map fst Tests.all) scenario =
  let stop_session =
    { (campaign_session scenario) with
      Engine.Session.stop_after_errors = Some 1 }
  in
  List.map
    (fun fault ->
       let params =
         Tests.with_faults [ fault ]
           (Tests.with_variant Config.Fixed scenario.params)
       in
       ( fault,
         List.map
           (fun name ->
              let report = run_named stop_session name params in
              let first_path =
                List.filter_map
                  (fun (e : Error.t) ->
                     if bug_matches (Injected fault) e then
                       Some e.Error.path_id
                     else None)
                  report.Report.engine.Engine.errors
                |> function
                | [] -> None
                | ps -> Some (List.fold_left min max_int ps)
              in
              (name, { detected = first_path <> None; first_path }))
           tests ))
    Fault.all
