module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload

type operand =
  | Const of int
  | Sym of string
  | Reg of string

type instr =
  | Write32 of { addr : int; value : operand }
  | Read32 of { addr : int; into : string }
  | Assume of string * (env -> Smt.Expr.t)
  | Check of string * (env -> Smt.Expr.t)
  | Step
  | Repeat of int * instr list

and env = { mutable bindings : (string * Value.t) list }

let get env name =
  match List.assoc_opt name env.bindings with
  | Some v -> v
  | None -> raise Not_found

let bind env name v = env.bindings <- (name, v) :: env.bindings

let operand_value env = function
  | Const n -> Value.of_int n
  | Reg name -> get env name
  | Sym name ->
    (match List.assoc_opt name env.bindings with
     | Some v -> v
     | None ->
       let v = Value.symbolic name in
       bind env name v;
       v)

let check_response (p : Payload.t) =
  Engine.check ~site:"driver:response"
    ~message:
      (Printf.sprintf "driver access failed: %s"
         (Payload.response_to_string p.Payload.response))
    (Expr.bool (Payload.is_ok p))

let rec exec ~sched ~bus env instr =
  match instr with
  | Write32 { addr; value } ->
    let p =
      Payload.make_write32 ~addr:(Value.of_int addr)
        ~value:(operand_value env value)
    in
    ignore (bus p Pk.Sc_time.zero);
    check_response p
  | Read32 { addr; into } ->
    let p =
      Payload.make_read ~addr:(Value.of_int addr) ~len:(Value.of_int 4)
    in
    ignore (bus p Pk.Sc_time.zero);
    check_response p;
    bind env into (Payload.data32 p)
  | Assume (_, f) -> Engine.assume (f env)
  | Check (site, f) -> Engine.check ~site (f env)
  | Step -> ignore (Tlm.Peripheral.step sched)
  | Repeat (n, body) ->
    for _ = 1 to n do
      List.iter (exec ~sched ~bus env) body
    done

let empty_env () = { bindings = [] }

let run ?env ~sched ~bus program =
  let env = match env with Some e -> e | None -> empty_env () in
  List.iter (exec ~sched ~bus env) program;
  env

(* A driver program is itself a testbench: exploring it under a
   session turns "firmware access sequence" into a verification
   campaign without hand-writing the engine plumbing.  [system] builds
   a fresh scheduler/bus per path — the engine re-executes the thunk,
   so the DUV must be constructed inside it. *)
let explore ?(label = "driver") ~session ~system program =
  Engine.Session.run ~label session (fun () ->
      let sched, bus = system () in
      ignore (run ~sched ~bus program))

let pp_operand ppf = function
  | Const n -> Format.fprintf ppf "0x%x" n
  | Sym name -> Format.fprintf ppf "sym:%s" name
  | Reg name -> Format.fprintf ppf "%%%s" name

let rec pp_instr ppf = function
  | Write32 { addr; value } ->
    Format.fprintf ppf "w32 [0x%x] <- %a" addr pp_operand value
  | Read32 { addr; into } -> Format.fprintf ppf "r32 [0x%x] -> %%%s" addr into
  | Assume (name, _) -> Format.fprintf ppf "assume %s" name
  | Check (site, _) -> Format.fprintf ppf "check %s" site
  | Step -> Format.pp_print_string ppf "step"
  | Repeat (n, body) ->
    Format.fprintf ppf "@[<v 2>repeat %d {@,%a@]@,}" n pp_program body

and pp_program ppf program =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr ppf program
