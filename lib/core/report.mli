(** Per-test verification reports (one row of the paper's Table 1). *)

type verdict = Pass | Fail of int

type t = {
  test_name : string;
  verdict : verdict;
  engine : Symex.Engine.report;
}

val make : string -> Symex.Engine.report -> t
(** Derive the verdict from the engine report (Fail with the number of
    distinct detected failures, as in Table 1). *)

val solver_fraction : t -> float
(** Fraction of wall-clock time spent in the solver (Table 1's last
    column). *)

val cache_hit_rate : t -> float
(** Fraction of this run's solver queries answered by either solver
    cache, in [0, 1]. *)

val verdict_to_string : verdict -> string

val pp : Format.formatter -> t -> unit
(** One-line summary, including query count and cache hit rate. *)

val pp_coverage : Format.formatter -> t -> unit
(** Per-peripheral register/bit coverage and per-group branch-arm
    coverage percentages (one line each). *)

val pp_profile : ?k:int -> Format.formatter -> t -> unit
(** Top-[k] solver-time attribution table: (query origin, pipeline
    stage) buckets ranked by self time ([--profile]). *)

val pp_solver_breakdown : Format.formatter -> t -> unit
(** Multi-line per-stage solver breakdown (interval prescreen,
    bit-blasting, SAT search, cache hits, CDCL counters) — where the
    solver fraction of Table 1 actually goes. *)

val record_metrics : t -> unit
(** Set [symsysc_*] gauges in {!Obs.Metrics} from this report (run
    totals plus the per-stage solver breakdown), for the CLI's
    [--metrics-out] dump. *)

val pp_errors : Format.formatter -> t -> unit
(** Detailed error list with counterexamples. *)

val to_json : t -> Obs.Json.t
(** Machine-readable report.  Errors are sorted by (site, kind), so
    reports from runs that discovered the same bugs in different
    orders — e.g. interrupted-and-resumed vs straight-through —
    serialize their deterministic fields identically. *)

val save_json : string -> t -> unit
(** Atomically write {!to_json} to a file ([--report-out]). *)
