(** Experiment orchestration: run the symbolic tests against the PLIC
    and regenerate the paper's Table 1 and Table 2 data. *)

(** A bug identity — the six original PLIC bugs plus the six injected
    faults of Section 5.3. *)
type bug =
  | F1  (** missing graceful handling of invalid trigger ids *)
  | F2  (** alignment assert instead of a TLM error response *)
  | F3  (** register-mapping assert instead of a TLM error response *)
  | F4  (** access-type assert instead of a TLM error response *)
  | F5  (** transaction length may cross the register boundary *)
  | F6  (** claim/response completion race assert *)
  | Injected of Plic.Fault.t

val all_bugs : bug list
val bug_to_string : bug -> string
val bug_of_string : string -> bug option

val bug_matches : bug -> Symex.Error.t -> bool
(** Whether an engine error corresponds to this bug (by site/kind for
    the original bugs; any error counts for an injected fault, since the
    baseline fixed PLIC is clean). *)

type scenario = {
  params : Tests.params;
  session : Symex.Engine.Session.t;
      (** how every run of this scenario explores: strategy, budgets,
          worker count, checkpointing, resume *)
}

val params_signature : Tests.params -> string
(** Canonical one-line fingerprint of a parameter set (scale, variant,
    faults, length bounds, latency budget).  Used as the distributed
    handshake cookie: a remote worker whose scenario fingerprint
    differs from the master's is rejected at registration instead of
    silently merging incomparable paths. *)

val scenario :
  ?num_sources:int ->
  ?t5_max_len:int ->
  ?session:Symex.Engine.Session.t ->
  ?max_paths:int ->
  ?max_seconds:float ->
  ?max_solver_conflicts:int ->
  ?solver_timeout_ms:int ->
  ?max_memory_mb:int ->
  ?stop_after_errors:int ->
  ?seed:int ->
  ?workers:int ->
  ?heartbeat_ms:int ->
  ?listen:Symex.Transport.listener ->
  ?lease_ms:int ->
  ?validate:bool ->
  ?snapshots:bool ->
  ?strategy:Symex.Search.strategy ->
  unit ->
  scenario
(** Build a scenario; defaults: FE310 scale reduced to [num_sources]
    (default 8) and [t5_max_len] (default 16).  Pass a pre-built
    [session] (as the CLI does — one session shared by every layer) or
    let the remaining arguments build one via
    {!Symex.Engine.Session.make} with no budgets except those given;
    a scenario-built session carries {!params_signature} as its
    handshake cookie.  [listen] accepts remote TCP workers; [lease_ms]
    bounds how long a granted work unit may sit on a silent peer. *)

val run_test : scenario -> string -> Report.t
(** Run one test (by name, "T1".."T5") on the scenario's variant and
    faults under the scenario's session.  Raises [Invalid_argument] on
    unknown names.  Checkpointing and resume come from the session: a
    resume checkpoint's label must be the test name. *)

val serve :
  host:string -> port:int -> workers:int -> ?backoff_seed:int ->
  scenario -> string -> int
(** Remote worker pool for a distributed run of one test: dial the
    listening master at [host:port] and serve its work units with
    [workers] processes until it stops us (returns the worst worker
    exit code; 0 = clean).  The scenario must be built with the same
    parameters and strategy as the master's — {!params_signature}
    mismatches are rejected in the handshake.  Raises
    [Invalid_argument] on unknown test names. *)

val table1 : scenario -> Report.t list
(** All five tests against the {e original} PLIC — the paper's
    Table 1.  Campaign entrypoints (this, {!table2},
    {!detection_matrix}) run many labelled tests, so the session's
    [resume]/[checkpoint] (which name a single run) are ignored. *)

type detection = {
  bug : bug;
  per_test : (string * float option) list;
      (** seconds until first detection per test; [None] = not found *)
}

val table2 : ?tests:string list -> scenario -> detection list
(** Time-to-detection matrix — the paper's Table 2.  The original bugs
    are measured on the original PLIC (one run per test, several bugs
    may surface in one run, as in the paper); each injected fault is
    measured on the fixed PLIC with exactly that fault planted. *)

type matrix_cell = {
  detected : bool;
  first_path : int option;
      (** paths explored before the first detection (the detecting
          error's [path_id]); a deterministic latency measure, unlike
          wall-clock seconds *)
}

val detection_matrix :
  ?tests:string list -> scenario -> (Plic.Fault.t * (string * matrix_cell) list) list
(** The Section 5.3 fault-injection campaign as data: every injected
    fault on the fixed PLIC against every test (default T1..T5), with
    path-count detection latency.  Deterministic for a fixed scenario,
    so tests can pin the full matrix. *)
