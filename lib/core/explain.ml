module Error = Symex.Error

type t = {
  bug : Verify.bug option;
  summary : string;
  fix : string;
}

let known_sites =
  [
    ( "plic:trigger:bounds",
      {
        bug = Some Verify.F1;
        summary =
          "trigger_interrupt guards the interrupt id with a bare assert; \
           an invalid id aborts the whole program (and in a release \
           build would corrupt memory instead)";
        fix =
          "validate the id and ignore or report invalid triggers instead \
           of asserting";
      } );
    ( "reg:align",
      {
        bug = Some Verify.F2;
        summary =
          "the TLM register dispatch asserts 4-byte address alignment";
        fix =
          "return TLM_ADDRESS_ERROR_RESPONSE so the initiator can raise a \
           proper exception";
      } );
    ( "reg:mapping",
      {
        bug = Some Verify.F3;
        summary = "no register mapping handles the transaction address";
        fix = "return TLM_ADDRESS_ERROR_RESPONSE instead of asserting";
      } );
    ( "reg:access",
      {
        bug = Some Verify.F4;
        summary =
          "the target register is not registered for this access type";
        fix = "return TLM_COMMAND_ERROR_RESPONSE instead of asserting";
      } );
    ( "reg:memcpy:read",
      {
        bug = Some Verify.F5;
        summary =
          "the register range was matched by start address only, so the \
           transaction length crosses the register boundary and the data \
           copy reads out of bounds";
        fix =
          "match ranges against [addr, addr+len) and answer boundary \
           crossings with TLM_BURST_ERROR_RESPONSE";
      } );
    ( "reg:memcpy:write",
      {
        bug = Some Verify.F5;
        summary =
          "the register range was matched by start address only, so the \
           transaction length crosses the register boundary and the data \
           copy writes out of bounds";
        fix =
          "match ranges against [addr, addr+len) and answer boundary \
           crossings with TLM_BURST_ERROR_RESPONSE";
      } );
    ( "plic:claim:eip",
      {
        bug = Some Verify.F6;
        summary =
          "a completion reached the claim/response register before the \
           PLIC thread was scheduled (a race the high thread frequency \
           hides in normal operation), violating an assertion thought to \
           never fail";
        fix =
          "tolerate completions while no notification is in flight \
           instead of asserting";
      } );
    ( "plic:pending-array",
      {
        bug = Some (Verify.Injected Plic.Fault.IF1);
        summary = "the pending-interrupt array was indexed out of bounds";
        fix = "restore the strict bound check on the interrupt id";
      } );
    ( "tlm:response-set",
      {
        bug = None;
        summary = "a target returned without setting a response status";
        fix = "every transport path must set a definite response";
      } );
    ( "tlm:delay-monotonic",
      {
        bug = None;
        summary = "a target decreased the annotated transaction delay";
        fix = "targets may only add to the delay they receive";
      } );
    ( "tlm:read-length",
      {
        bug = None;
        summary = "a successful read returned a wrong number of bytes";
        fix = "fill exactly the requested length on TLM_OK_RESPONSE";
      } );
    (* CLINT timer-property detectors (testbench checks). *)
    ( "clint:not-early",
      {
        bug = None;
        summary =
          "the machine timer interrupt asserted before mtime reached \
           mtimecmp";
        fix =
          "raise the timer level only when mtime >= mtimecmp; re-derive \
           the comparison after every mtimecmp write";
      } );
    ( "clint:fired",
      {
        bug = None;
        summary =
          "the machine timer interrupt never asserted although mtime \
           passed mtimecmp";
        fix =
          "re-arm the comparison thread on mtimecmp writes so a \
           deadline already in the past still fires";
      } );
    ( "clint:exact",
      {
        bug = None;
        summary =
          "the machine timer interrupt asserted at a tick other than \
           the programmed mtimecmp deadline";
        fix =
          "compute the wakeup delay from the current mtime, not a \
           stale copy taken before the register write";
      } );
    ( "clint:retract",
      {
        bug = None;
        summary =
          "the timer level stayed asserted after mtimecmp was moved \
           into the future";
        fix = "retract the level whenever the comparison becomes false";
      } );
    ( "clint:delay",
      {
        bug = None;
        summary =
          "the CLINT could not concretize the wakeup delay mtimecmp - \
           mtime (unbounded symbolic deadline)";
        fix =
          "constrain mtimecmp in the testbench, or clamp the delay \
           before scheduling the comparison thread";
      } );
    (* UART detectors. *)
    ( "uart:loopback",
      {
        bug = None;
        summary =
          "a byte read back from the UART loopback differed from the \
           byte written to txdata";
        fix =
          "preserve the full 8 data bits through the TX shift, line \
           and RX FIFO path";
      } );
    ( "uart:wm-property",
      {
        bug = None;
        summary =
          "an interrupt-pending bit disagreed with its watermark \
           condition (txwm/rxwm vs FIFO occupancy)";
        fix =
          "recompute ip from the FIFO levels and txcnt/rxcnt on every \
           FIFO mutation, not only on register writes";
      } );
    ( "uart:div",
      {
        bug = None;
        summary =
          "the UART could not concretize the baud divisor (div left \
           fully symbolic)";
        fix =
          "write a concrete divisor before enabling TX, or bound div \
           with an assumption";
      } );
  ]

let lookup (err : Error.t) = List.assoc_opt err.Error.site known_sites

let pp ppf t =
  (match t.bug with
   | Some bug -> Format.fprintf ppf "[%s] " (Verify.bug_to_string bug)
   | None -> ());
  Format.fprintf ppf "%s.@ Fix: %s." t.summary t.fix
