(** Text rendering of the paper's tables. *)

val print_table1 : Format.formatter -> Report.t list -> unit
(** Table 1: Test | Result | #Exec. Instr. | Time [s] | Paths | Solver
    | Coverage ("full", a stop reason, or "degraded"). *)

val coverage_note : Report.t -> string
(** The Coverage cell of Table 1 for one report. *)

val print_solver_breakdown : Format.formatter -> Report.t list -> unit
(** Companion to Table 1: per-test solver-stage breakdown (queries,
    cache hit rate, interval/bit-blast/SAT seconds, CDCL conflicts). *)

val print_coverage : Format.formatter -> Report.t list -> unit
(** Coverage companion to Table 1: per-test register, byte-resolution
    bit and branch-arm coverage percentages, aggregated over every
    peripheral / decision site the test touched. *)

val print_scaling : Format.formatter -> (int * Report.t list) list -> unit
(** Worker-scaling table: rows are (worker count, reports of the same
    campaign at that count); Speedup is the first row's summed wall
    time over this row's. *)

val print_table2 :
  Format.formatter -> tests:string list -> Verify.detection list -> unit
(** Table 2: rows are tests, columns are bugs; cells are the rounded
    time until first detection ("–" when not found). *)

val format_duration : float -> string
(** Rounded like the paper: "1m" for anything under a minute boundary,
    "24h"-style above two hours. *)
