module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Config = Plic.Config

type duv = {
  sched : Pk.Scheduler.t;
  dut : Plic.t;
  hart : Plic.Hart.t;
}

let setup ?(variant = Plic.Config.Original) ?(faults = []) cfg =
  let sched = Pk.Scheduler.create () in
  Pk.Sc_compat.sc_set_context sched;
  Tlm.Peripheral.track_scheduler sched;
  let dut =
    Plic.Peripheral.make
      { Plic.Peripheral.pc_variant = variant; pc_faults = faults; pc_cfg = cfg }
      sched
  in
  let hart = Plic.Hart.create () in
  Plic.connect_hart dut 0 hart;
  (* Initialization phase: run threads until their first wait. *)
  Tlm.Peripheral.run_ready sched;
  { sched; dut; hart }

let klee_int name = Engine.fresh32 name
let klee_assume cond = Engine.assume cond
let klee_assert ~site ?message cond = Engine.check ~site ?message cond
let pkernel_step duv = Tlm.Peripheral.step duv.sched

let transport duv payload =
  ignore (Plic.Peripheral.serve duv.dut payload Pk.Sc_time.zero);
  payload

let read32 duv offset =
  let payload =
    Tlm.Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 4)
  in
  ignore (transport duv payload);
  Tlm.Payload.data32 payload

let write32 duv offset value =
  let payload =
    Tlm.Payload.make_write32 ~addr:(Value.of_int offset) ~value
  in
  ignore (transport duv payload)

let enable_words cfg = (cfg.Config.num_sources + 1 + 31) / 32

let enable_all_interrupts duv =
  let cfg = Plic.config duv.dut in
  for w = 0 to enable_words cfg - 1 do
    write32 duv (Config.enable_base + (4 * w)) (Value.of_int (-1))
  done

let set_all_priorities duv prio =
  let cfg = Plic.config duv.dut in
  for id = 1 to cfg.Config.num_sources do
    write32 duv (Config.priority_base + (4 * (id - 1))) prio
  done

let claim_interrupt duv =
  let id_word = read32 duv Config.claim_base in
  let id = Value.to_concrete ~site:"tb:claimed-id" id_word in
  if id <> 0 then begin
    let word = read32 duv (Config.pending_base + (4 * (id / 32))) in
    let still_pending =
      Value.truth ~site:"tb:cleared?" (Value.bit word (id mod 32))
    in
    duv.hart.Plic.Hart.was_cleared <- not still_pending
  end;
  (* Completion: write the id back to the claim/response register. *)
  write32 duv Config.claim_base id_word;
  id_word
