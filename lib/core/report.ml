module Engine = Symex.Engine

type verdict = Pass | Fail of int

type t = {
  test_name : string;
  verdict : verdict;
  engine : Engine.report;
}

let make test_name (engine : Engine.report) =
  let verdict =
    match List.length engine.Engine.errors with
    | 0 -> Pass
    | n -> Fail n
  in
  { test_name; verdict; engine }

let solver_fraction t =
  if t.engine.Engine.wall_time <= 0.0 then 0.0
  else t.engine.Engine.solver_time /. t.engine.Engine.wall_time

let cache_hit_rate t =
  Smt.Solver.Stats.cache_hit_rate t.engine.Engine.solver_stats

let verdict_to_string = function
  | Pass -> "Pass"
  | Fail n -> Printf.sprintf "Fail (%d)" n

(* Resilience events are rare enough that the one-line summary only
   mentions them when they fired; a quiet run stays one line. *)
let resilience_suffix (r : Engine.resilience) =
  let parts =
    List.filter_map
      (fun (n, label) -> if n > 0 then Some (Printf.sprintf "%d %s" n label)
        else None)
      [ (r.Engine.res_unvalidated, "UNVALIDATED");
        (r.Engine.res_quarantined, "quarantined");
        (r.Engine.res_hung, "hung");
        (r.Engine.res_worker_deaths, "worker deaths");
        (r.Engine.res_lease_expired, "leases expired");
        (r.Engine.res_duplicates, "duplicate results");
        (r.Engine.res_reconnects, "reconnects");
        (r.Engine.res_checkpoint_fallbacks, "checkpoint fallbacks");
        (Engine.(List.fold_left (fun a (_, n) -> a + n) 0 r.res_chaos),
         "injected faults") ]
  in
  match parts with
  | [] -> ""
  | _ -> Printf.sprintf " [%s]" (String.concat ", " parts)

(* Like resilience: snapshot forking only earns a mention when it did
   something (a --no-snapshots run stays on the plain one-liner). *)
let snapshot_suffix (e : Engine.report) =
  if e.Engine.snapshot_restores = 0 && e.Engine.replay_fallbacks = 0 then ""
  else
    Printf.sprintf " [%d snapshot restores saved %d instr%s]"
      e.Engine.snapshot_restores e.Engine.instructions_saved
      (if e.Engine.replay_fallbacks > 0 then
         Printf.sprintf ", %d replay fallbacks" e.Engine.replay_fallbacks
       else "")

let pp ppf t =
  Format.fprintf ppf
    "%s: %s — %d instr, %.2fs, %d paths, %.2f%% solver, %d queries, \
     %.1f%% cache%s%s%s%s"
    t.test_name
    (verdict_to_string t.verdict)
    t.engine.Engine.instructions t.engine.Engine.wall_time
    t.engine.Engine.paths
    (100.0 *. solver_fraction t)
    t.engine.Engine.solver_queries
    (100.0 *. cache_hit_rate t)
    (match t.engine.Engine.stop_reason with
     | Some r ->
       Printf.sprintf " (stopped: %s)" (Symex.Budget.reason_to_string r)
     | None -> if t.engine.Engine.exhausted then "" else " (degraded)")
    (snapshot_suffix t.engine)
    (resilience_suffix t.engine.Engine.resilience)
    (if t.engine.Engine.events_dropped > 0 then
       Printf.sprintf " [%d trace events dropped]"
         t.engine.Engine.events_dropped
     else "")

let pp_coverage ppf t =
  Obs.Coverage.pp ppf t.engine.Engine.coverage

let pp_profile ?k ppf t =
  Obs.Profile.pp_top ?k ppf t.engine.Engine.profile

let pp_solver_breakdown ppf t =
  let s = t.engine.Engine.solver_stats in
  let pct part =
    if s.Smt.Solver.Stats.time <= 0.0 then 0.0
    else 100.0 *. part /. s.Smt.Solver.Stats.time
  in
  Format.fprintf ppf
    "@[<v>solver breakdown for %s:@,\
     \  queries      %6d@,\
     \  slices       %6d (%d query-cache, %d cex-cache hits)@,\
     \  interval     %6.3fs (%4.1f%%) — %d unsat, %d sat@,\
     \  bit-blast    %6.3fs (%4.1f%%)@,\
     \  sat          %6.3fs (%4.1f%%) — %d calls, %d conflicts, %d decisions, \
     %d propagations@,\
     \  scope        %d pushes, %d pops, %d encodings reused, %d rebuilds@,\
     \  total        %6.3fs@]"
    t.test_name
    s.Smt.Solver.Stats.queries s.Smt.Solver.Stats.slices
    s.Smt.Solver.Stats.cache_hits s.Smt.Solver.Stats.cex_hits
    s.Smt.Solver.Stats.interval_time (pct s.Smt.Solver.Stats.interval_time)
    s.Smt.Solver.Stats.interval_unsat s.Smt.Solver.Stats.interval_sat
    s.Smt.Solver.Stats.bitblast_time (pct s.Smt.Solver.Stats.bitblast_time)
    s.Smt.Solver.Stats.sat_time (pct s.Smt.Solver.Stats.sat_time)
    s.Smt.Solver.Stats.sat_calls s.Smt.Solver.Stats.sat_conflicts
    s.Smt.Solver.Stats.sat_decisions s.Smt.Solver.Stats.sat_propagations
    s.Smt.Solver.Stats.scope_pushes s.Smt.Solver.Stats.scope_pops
    s.Smt.Solver.Stats.scope_reused s.Smt.Solver.Stats.scope_rebuilds
    s.Smt.Solver.Stats.time

(* Mirror the report into the Obs.Metrics registry so a --metrics-out
   dump carries the run totals next to the event-derived counters. *)
let record_metrics t =
  let e = t.engine in
  let s = e.Engine.solver_stats in
  let g name v = Obs.Metrics.set (Obs.Metrics.gauge name) v in
  let gi name v = g name (float_of_int v) in
  (* Some resilience totals are live counters owned by their subsystem
     (pool watchdog, checkpoint, validation, chaos) — but increments in
     forked workers die with the worker process, so the master's
     counter can undershoot the merged run total.  Top the existing
     counter up to the merged value rather than registering a clashing
     gauge under the same name. *)
  let ci name v =
    let c = Obs.Metrics.counter name in
    let d = v - Obs.Metrics.counter_value c in
    if d > 0 then Obs.Metrics.inc ~by:d c
  in
  gi "symsysc_engine_paths" e.Engine.paths;
  gi "symsysc_engine_paths_completed" e.Engine.paths_completed;
  gi "symsysc_engine_paths_errored" e.Engine.paths_errored;
  gi "symsysc_engine_paths_infeasible" e.Engine.paths_infeasible;
  gi "symsysc_engine_paths_unknown" e.Engine.paths_unknown;
  gi "symsysc_engine_instructions" e.Engine.instructions;
  gi "symsysc_engine_snapshots_taken" e.Engine.snapshots_taken;
  gi "symsysc_engine_snapshot_restores" e.Engine.snapshot_restores;
  gi "symsysc_engine_replay_fallbacks" e.Engine.replay_fallbacks;
  gi "symsysc_engine_instructions_saved" e.Engine.instructions_saved;
  gi "symsysc_engine_errors" (List.length e.Engine.errors);
  g "symsysc_engine_wall_seconds" e.Engine.wall_time;
  g "symsysc_solver_seconds" e.Engine.solver_time;
  gi "symsysc_solver_queries" e.Engine.solver_queries;
  gi "symsysc_solver_slices" s.Smt.Solver.Stats.slices;
  gi "symsysc_solver_slice_hits" s.Smt.Solver.Stats.slice_hits;
  g "symsysc_solver_cache_hit_rate" (Smt.Solver.Stats.cache_hit_rate s);
  g "symsysc_solver_interval_seconds" s.Smt.Solver.Stats.interval_time;
  g "symsysc_solver_bitblast_seconds" s.Smt.Solver.Stats.bitblast_time;
  g "symsysc_solver_sat_seconds" s.Smt.Solver.Stats.sat_time;
  gi "symsysc_solver_sat_conflicts" s.Smt.Solver.Stats.sat_conflicts;
  gi "symsysc_solver_sat_decisions" s.Smt.Solver.Stats.sat_decisions;
  gi "symsysc_solver_sat_propagations" s.Smt.Solver.Stats.sat_propagations;
  gi "symsysc_solver_sat_timeouts" s.Smt.Solver.Stats.sat_timeouts;
  gi "symsysc_solver_sat_retries" s.Smt.Solver.Stats.sat_retries;
  gi "symsysc_scope_pushes" s.Smt.Solver.Stats.scope_pushes;
  gi "symsysc_scope_pops" s.Smt.Solver.Stats.scope_pops;
  gi "symsysc_scope_reused" s.Smt.Solver.Stats.scope_reused;
  gi "symsysc_scope_rebuilds" s.Smt.Solver.Stats.scope_rebuilds;
  gi "symsysc_solver_query_evictions" s.Smt.Solver.Stats.query_evictions;
  gi "symsysc_solver_cex_evictions" s.Smt.Solver.Stats.cex_evictions;
  gi "symsysc_engine_exhausted" (if e.Engine.exhausted then 1 else 0);
  gi "symsysc_engine_workers" e.Engine.workers;
  (let r = e.Engine.resilience in
   gi "symsysc_engine_requeued" r.Engine.res_requeued;
   gi "symsysc_engine_worker_deaths" r.Engine.res_worker_deaths;
   ci "symsysc_pool_workers_hung" r.Engine.res_hung;
   ci "symsysc_pool_units_quarantined" r.Engine.res_quarantined;
   ci "symsysc_pool_lease_expired_total" r.Engine.res_lease_expired;
   ci "symsysc_pool_duplicate_results_total" r.Engine.res_duplicates;
   ci "symsysc_pool_reconnects_total" r.Engine.res_reconnects;
   ci "symsysc_checkpoint_fallbacks_total" r.Engine.res_checkpoint_fallbacks;
   ci "symsysc_unvalidated_errors_total" r.Engine.res_unvalidated;
   List.iter
     (fun (point, n) ->
        ci (Printf.sprintf "symsysc_chaos_%s_total"
              (String.map (function '-' -> '_' | c -> c) point))
          n)
     r.Engine.res_chaos);
  (* One-hot stop-reason gauges so alerting can key on a specific
     budget without string labels. *)
  List.iter
    (fun r ->
       gi
         ("symsysc_engine_stop_" ^ Symex.Budget.reason_to_string r)
         (if e.Engine.stop_reason = Some r then 1 else 0))
    Symex.Budget.
      [ Paths; Instructions; Deadline; Memory; Errors; Interrupt ];
  (* Coverage gauges: one per peripheral (register / byte-resolution bit
     percentages) and one per branch-site group (arm percentage).  Label
     syntax matches the existing symsysc_chaos_* convention: the key is
     folded into the metric name. *)
  let mname base key =
    Printf.sprintf "symsysc_coverage_%s_%s" base
      (String.map
         (function
           | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c
           | _ -> '_')
         key)
  in
  List.iter
    (fun (p : Obs.Coverage.peripheral_summary) ->
       g (mname "register_pct" p.Obs.Coverage.ps_peripheral)
         (Obs.Coverage.pct p.Obs.Coverage.ps_touched
            p.Obs.Coverage.ps_registers);
       g (mname "bit_pct" p.Obs.Coverage.ps_peripheral)
         (Obs.Coverage.pct p.Obs.Coverage.ps_bits_touched
            p.Obs.Coverage.ps_bits))
    (Obs.Coverage.peripherals e.Engine.coverage);
  List.iter
    (fun (b : Obs.Coverage.branch_summary) ->
       g (mname "arm_pct" b.Obs.Coverage.bs_group)
         (Obs.Coverage.pct b.Obs.Coverage.bs_covered b.Obs.Coverage.bs_arms))
    (Obs.Coverage.branches e.Engine.coverage);
  ci "symsysc_events_dropped_total" e.Engine.events_dropped

let pp_errors ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Symex.Error.pp)
    t.engine.Engine.errors

(* Machine-readable report, for --report-out and the CI resume-
   equivalence check.  Error sites are sorted (by site, then kind) so
   two runs that found the same bugs in different orders — e.g. an
   interrupted-and-resumed run vs a straight-through one under a
   non-DFS strategy — serialize identically.  Wall-clock fields are
   deliberately excluded from [errors] ordering but kept in the body;
   CI diffs should compare the deterministic fields. *)
let to_json t =
  let open Obs.Json in
  let e = t.engine in
  let errors =
    List.sort
      (fun (a : Symex.Error.t) (b : Symex.Error.t) ->
         match String.compare a.Symex.Error.site b.Symex.Error.site with
         | 0 ->
           String.compare
             (Symex.Error.kind_to_string a.Symex.Error.kind)
             (Symex.Error.kind_to_string b.Symex.Error.kind)
         | c -> c)
      e.Engine.errors
  in
  Obj
    [ ("test", Str t.test_name);
      ("verdict", Str (verdict_to_string t.verdict));
      ("strategy", Str (Symex.Search.strategy_to_string e.Engine.strategy));
      ("workers", Int e.Engine.workers);
      ("exhausted", Bool e.Engine.exhausted);
      ("stop_reason",
       match e.Engine.stop_reason with
       | None -> Null
       | Some r -> Str (Symex.Budget.reason_to_string r));
      ("paths", Int e.Engine.paths);
      ("paths_completed", Int e.Engine.paths_completed);
      ("paths_errored", Int e.Engine.paths_errored);
      ("paths_infeasible", Int e.Engine.paths_infeasible);
      ("paths_unknown", Int e.Engine.paths_unknown);
      ("instructions", Int e.Engine.instructions);
      (* Snapshot accounting is mode-dependent by design (a --no-snapshots
         run reports zeros), so CI equivalence diffs must not compare
         these four — Diff.compare_reports deliberately skips them. *)
      ("snapshots_taken", Int e.Engine.snapshots_taken);
      ("snapshot_restores", Int e.Engine.snapshot_restores);
      ("replay_fallbacks", Int e.Engine.replay_fallbacks);
      ("instructions_saved", Int e.Engine.instructions_saved);
      ("wall_time", Float e.Engine.wall_time);
      ("solver_time", Float e.Engine.solver_time);
      ("solver_queries", Int e.Engine.solver_queries);
      ("solver", Smt.Solver.Stats.to_json e.Engine.solver_stats);
      ("resilience",
       (let r = e.Engine.resilience in
        Obj
          [ ("requeued", Int r.Engine.res_requeued);
            ("worker_deaths", Int r.Engine.res_worker_deaths);
            ("hung", Int r.Engine.res_hung);
            ("quarantined", Int r.Engine.res_quarantined);
            ("lease_expired", Int r.Engine.res_lease_expired);
            ("duplicates", Int r.Engine.res_duplicates);
            ("reconnects", Int r.Engine.res_reconnects);
            ("checkpoint_fallbacks", Int r.Engine.res_checkpoint_fallbacks);
            ("unvalidated", Int r.Engine.res_unvalidated);
            ("chaos",
             Obj
               (List.map (fun (p, n) -> (p, Int n)) r.Engine.res_chaos)) ]));
      ("coverage", Obs.Coverage.to_json e.Engine.coverage);
      ("coverage_summary", Obs.Coverage.summary_to_json e.Engine.coverage);
      ("profile", Obs.Profile.to_json e.Engine.profile);
      ("events_dropped", Int e.Engine.events_dropped);
      ("errors", List (List.map Symex.Error.to_json errors)) ]

let save_json path t = Obs.Json.save path (to_json t)
