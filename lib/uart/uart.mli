(** The SiFive FE310 UART as modelled in riscv-vp — a third TLM
    peripheral for the paper's future-work direction of verifying
    "whole SystemC projects with a high number of individual
    components".

    Memory map (FE310 manual):

    {v
      0x00  txdata   write: enqueue byte; read: bit 31 = TX FIFO full
      0x04  rxdata   read: bit 31 = empty, bits 7:0 = dequeued byte
      0x08  txctrl   bit 0 = txen, bits 18:16 = TX watermark
      0x0C  rxctrl   bit 0 = rxen, bits 18:16 = RX watermark
      0x10  ie       bit 0 = txwm enable, bit 1 = rxwm enable
      0x14  ip       bit 0 = txwm pending, bit 1 = rxwm pending (RO)
      0x18  div      baud divider
    v}

    Watermark semantics (FE310 manual): the TX watermark interrupt is
    pending while the TX FIFO holds {e strictly fewer} entries than the
    watermark; the RX interrupt while the RX FIFO holds {e strictly
    more} entries than the watermark.  When the interrupt condition is
    asserted and enabled in [ie], the UART raises its global interrupt
    line (a callback, typically wired to a PLIC source).

    A translated transmitter thread drains the TX FIFO at the
    configured baud rate; received bytes are injected through
    {!receive_byte} (the custom interface function of the testbenches,
    like the PLIC's [trigger_interrupt]). *)

val fifo_depth : int
(** 8 entries, as on the FE310. *)

val txdata_base : int
val rxdata_base : int
val txctrl_base : int
val rxctrl_base : int
val ie_base : int
val ip_base : int
val div_base : int
val addr_window : int

type t

val create :
  ?policy:Tlm.Register.policy ->
  ?clock:Pk.Sc_time.t ->
  ?irq:(unit -> unit) ->
  Pk.Scheduler.t ->
  t
(** [clock] is the time per divider tick (default 10 ns); [irq] fires
    on a rising edge of the interrupt line. *)

val transport : t -> Tlm.Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t

val receive_byte : t -> Symex.Value.t -> unit
(** A byte arrives on the wire.  Overflow beyond the FIFO depth drops
    the byte, as real hardware does. *)

val transmitted : t -> Smt.Expr.t list
(** Bytes the transmitter has put on the wire, oldest first. *)

val tx_level : t -> int
val rx_level : t -> int
val interrupt_line : t -> bool
(** Current level of the interrupt output. *)

val reset : t -> unit
(** Restore the just-constructed device state (registers, FIFOs,
    transmit history, thread FSM); scheduler state is untouched. *)

(** The unified peripheral surface ({!Tlm.Peripheral.S}). *)
module Peripheral : sig
  type config = {
    uc_policy : Tlm.Register.policy;
    uc_clock : Pk.Sc_time.t;
    uc_irq : unit -> unit;
  }

  include Tlm.Peripheral.S with type t = t and type config := config
end
