module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Sc_time = Pk.Sc_time

let fifo_depth = 8
let txdata_base = 0x00
let rxdata_base = 0x04
let txctrl_base = 0x08
let rxctrl_base = 0x0C
let ie_base = 0x10
let ip_base = 0x14
let div_base = 0x18
let addr_window = 0x1C

(* Resume labels of the translated transmitter thread. *)
type tx_label = Idle | Draining

(* Captured device state: pure data, no aliasing into the live device. *)
type snap = {
  sn_txdata : Mem.state;
  sn_rxdata : Mem.state;
  sn_txctrl : Mem.state;
  sn_rxctrl : Mem.state;
  sn_ie : Mem.state;
  sn_ip : Mem.state;
  sn_divider : Mem.state;
  sn_tx_fifo : Expr.t Queue.t;  (* private copy, never mutated *)
  sn_rx_fifo : Expr.t Queue.t;
  sn_sent : Expr.t list;
  sn_line : bool;
  sn_fsm : tx_label;
}

type t = {
  sched : Pk.Scheduler.t;
  clock : Sc_time.t;
  irq : unit -> unit;
  regs : Tlm.Register.t;
  txdata : Mem.t;
  rxdata : Mem.t;
  txctrl : Mem.t;
  rxctrl : Mem.t;
  ie : Mem.t;
  ip : Mem.t;
  divider : Mem.t;
  tx_fifo : Expr.t Queue.t;
  rx_fifo : Expr.t Queue.t;
  mutable sent : Expr.t list;      (* newest first *)
  mutable line : bool;             (* interrupt output level *)
  e_kick : Pk.Event.t;
  tx_fsm : tx_label Pk.Process.Fsm.t;
  mutable reset_snap : snap option;
}

let tx_level t = Queue.length t.tx_fifo
let rx_level t = Queue.length t.rx_fifo
let interrupt_line t = t.line
let transmitted t = List.rev t.sent

let watermark ctrl = Value.band (Value.lshr ctrl (Value.of_int 16)) (Value.of_int 7)
let enabled_bit ctrl = Value.bit ctrl 0

(* FE310 watermark conditions: txwm pending while the TX FIFO is
   strictly below its watermark; rxwm pending while the RX FIFO is
   strictly above its watermark. *)
let pending_bits t =
  let txwm = watermark (Mem.read32 t.txctrl 0) in
  let rxwm = watermark (Mem.read32 t.rxctrl 0) in
  let txp =
    Value.truth ~site:"uart:txwm"
      (Value.lt (Value.of_int (tx_level t)) txwm)
  in
  let rxp =
    Value.truth ~site:"uart:rxwm"
      (Value.gt (Value.of_int (rx_level t)) rxwm)
  in
  (txp, rxp)

let update_irq t =
  let txp, rxp = pending_bits t in
  let ie = Mem.read32 t.ie 0 in
  let tx_en = Value.truth ~site:"uart:ie-tx" (Value.bit ie 0) in
  let rx_en = Value.truth ~site:"uart:ie-rx" (Value.bit ie 1) in
  let level = (txp && tx_en) || (rxp && rx_en) in
  if level && not t.line then t.irq ();
  t.line <- level

let refresh_ip t =
  let txp, rxp = pending_bits t in
  let v = (if txp then 1 else 0) lor if rxp then 2 else 0 in
  Mem.write32 t.ip 0 (Value.of_int v)

(* ---- register callbacks ---- *)

let on_txdata_write t =
  let word = Mem.read32 t.txdata 0 in
  if tx_level t < fifo_depth then begin
    Queue.push (Expr.extract ~hi:7 ~lo:0 word) t.tx_fifo;
    Pk.Scheduler.notify t.sched t.e_kick
  end;
  (* writes to a full FIFO are dropped, as on the FE310 *)
  update_irq t

let on_txdata_read t =
  (* bit 31 = full flag; data bits read back as zero *)
  let full = if tx_level t >= fifo_depth then 0x8000_0000 else 0 in
  Mem.write32 t.txdata 0 (Value.of_int full)

let on_rxdata_read t =
  if Queue.is_empty t.rx_fifo then
    Mem.write32 t.rxdata 0 (Value.of_int 0x8000_0000)
  else begin
    let byte = Queue.pop t.rx_fifo in
    Mem.write32 t.rxdata 0 (Expr.zext 32 byte);
    update_irq t
  end

(* ---- wire side ---- *)

let receive_byte t byte =
  (* Logged like a TLM transport: FIFO and irq-line changes land in
     the tracked component, so no payload effect is needed. *)
  Engine.syscall
    ~capture:(fun () -> Engine.Effect_none)
    ~apply:(fun _ -> ())
    (fun () ->
       if rx_level t < fifo_depth then begin
         Queue.push (Expr.extract ~hi:7 ~lo:0 byte) t.rx_fifo;
         update_irq t
       end)

(* Time to shift one frame out: (div + 1) ticks for each of the ~10
   bits of an 8N1 frame, collapsed into one wait. *)
let frame_time t =
  let div = Value.to_concrete ~site:"uart:div" (Mem.read32 t.divider 0) in
  Sc_time.mul_int t.clock ((div + 1) * 10)

(* ---- whole-device state capture ---- *)

let snapshot t =
  {
    sn_txdata = Mem.save t.txdata;
    sn_rxdata = Mem.save t.rxdata;
    sn_txctrl = Mem.save t.txctrl;
    sn_rxctrl = Mem.save t.rxctrl;
    sn_ie = Mem.save t.ie;
    sn_ip = Mem.save t.ip;
    sn_divider = Mem.save t.divider;
    sn_tx_fifo = Queue.copy t.tx_fifo;
    sn_rx_fifo = Queue.copy t.rx_fifo;
    sn_sent = t.sent;
    sn_line = t.line;
    sn_fsm = Pk.Process.Fsm.position t.tx_fsm;
  }

let restore t s =
  Mem.load t.txdata s.sn_txdata;
  Mem.load t.rxdata s.sn_rxdata;
  Mem.load t.txctrl s.sn_txctrl;
  Mem.load t.rxctrl s.sn_rxctrl;
  Mem.load t.ie s.sn_ie;
  Mem.load t.ip s.sn_ip;
  Mem.load t.divider s.sn_divider;
  Queue.clear t.tx_fifo;
  Queue.transfer (Queue.copy s.sn_tx_fifo) t.tx_fifo;
  Queue.clear t.rx_fifo;
  Queue.transfer (Queue.copy s.sn_rx_fifo) t.rx_fifo;
  t.sent <- s.sn_sent;
  t.line <- s.sn_line;
  Pk.Process.Fsm.set t.tx_fsm s.sn_fsm

type Engine.component_state += Uart_state of snap

let spawn_transmitter t =
  let fsm = t.tx_fsm in
  let can_send () =
    tx_level t > 0
    && Value.truth ~site:"uart:txen" (enabled_bit (Mem.read32 t.txctrl 0))
  in
  let body () =
    match Pk.Process.Fsm.position fsm with
    | Idle ->
      if can_send () then
        Pk.Process.Fsm.suspend fsm ~at:Draining
          (Pk.Process.Wait_time (frame_time t))
      else
        Pk.Process.Fsm.suspend fsm ~at:Idle (Pk.Process.Wait_event t.e_kick)
    | Draining ->
      (* one frame time elapsed: the byte is on the wire *)
      (match Queue.take_opt t.tx_fifo with
       | Some byte -> t.sent <- byte :: t.sent
       | None -> ());
      update_irq t;
      if can_send () then
        Pk.Process.Fsm.suspend fsm ~at:Draining
          (Pk.Process.Wait_time (frame_time t))
      else
        Pk.Process.Fsm.suspend fsm ~at:Idle (Pk.Process.Wait_event t.e_kick)
  in
  Pk.Scheduler.spawn t.sched (Pk.Process.make "uart:tx" body)

let create ?(policy = Tlm.Register.Fixed) ?(clock = Sc_time.ns 10)
    ?(irq = fun () -> ()) sched =
  let t =
    {
      sched;
      clock;
      irq;
      regs = Tlm.Register.create ~policy ~name:"uart" ();
      txdata = Mem.create ~name:"uart-txdata" ~size:4;
      rxdata = Mem.create ~name:"uart-rxdata" ~size:4;
      txctrl = Mem.create ~name:"uart-txctrl" ~size:4;
      rxctrl = Mem.create ~name:"uart-rxctrl" ~size:4;
      ie = Mem.create ~name:"uart-ie" ~size:4;
      ip = Mem.create ~name:"uart-ip" ~size:4;
      divider = Mem.create ~name:"uart-div" ~size:4;
      tx_fifo = Queue.create ();
      rx_fifo = Queue.create ();
      sent = [];
      line = false;
      e_kick = Pk.Event.make "uart:kick";
      tx_fsm = Pk.Process.Fsm.make ~init:Idle;
      reset_snap = None;
    }
  in
  let add = Tlm.Register.add_range t.regs in
  ignore
    (add ~name:"txdata" ~base:txdata_base ~access:Tlm.Register.Read_write
       ~pre_read:(fun () -> on_txdata_read t)
       ~post_write:(fun () -> on_txdata_write t)
       t.txdata);
  ignore
    (add ~name:"rxdata" ~base:rxdata_base ~access:Tlm.Register.Read_only
       ~pre_read:(fun () -> on_rxdata_read t)
       t.rxdata);
  ignore
    (add ~name:"txctrl" ~base:txctrl_base ~access:Tlm.Register.Read_write
       ~post_write:(fun () ->
           Pk.Scheduler.notify t.sched t.e_kick;
           update_irq t)
       t.txctrl);
  ignore
    (add ~name:"rxctrl" ~base:rxctrl_base ~access:Tlm.Register.Read_write
       ~post_write:(fun () -> update_irq t)
       t.rxctrl);
  ignore
    (add ~name:"ie" ~base:ie_base ~access:Tlm.Register.Read_write
       ~post_write:(fun () -> update_irq t)
       t.ie);
  ignore
    (add ~name:"ip" ~base:ip_base ~access:Tlm.Register.Read_only
       ~pre_read:(fun () -> refresh_ip t)
       t.ip);
  ignore
    (add ~name:"div" ~base:div_base ~access:Tlm.Register.Read_write t.divider);
  spawn_transmitter t;
  Engine.register_component
    ~save:(fun () -> Uart_state (snapshot t))
    ~restore:(function
      | Uart_state s -> restore t s
      | _ -> assert false);
  t.reset_snap <- Some (snapshot t);
  t

let transport t payload delay = Tlm.Register.transport t.regs payload delay

let reset t =
  match t.reset_snap with
  | Some s -> restore t s
  | None -> assert false

module Peripheral = struct
  type nonrec t = t

  type config = {
    uc_policy : Tlm.Register.policy;
    uc_clock : Sc_time.t;
    uc_irq : unit -> unit;
  }

  type state = snap

  let make c sched = create ~policy:c.uc_policy ~clock:c.uc_clock ~irq:c.uc_irq sched
  let reset = reset
  let serve = transport
  let snapshot = snapshot
  let restore = restore
end
