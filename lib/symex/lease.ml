(* Lease bookkeeping for dispatched work units.

   Every unit the master hands out is tracked here from dispatch until
   it is settled exactly once.  The same table answers three different
   failure questions with one mechanism:

   - peer died / disconnected: its entry is requeued (attempts intact)
     and regranted to the next idle peer;
   - peer went silent past the deadline: the entry expires and is
     requeued WITHOUT killing the holder — if the slow result arrives
     later it is merged iff the unit is still unsettled;
   - result arrives twice (dup-result chaos, or a regrant racing the
     original): [settle] is first-result-wins keyed by unit id, so the
     second arrival is counted and dropped, never double-merged. *)

type entry = {
  l_id : int;                     (* unique per dispatched unit, never reused *)
  l_site : string;                (* provenance label for the frontier *)
  l_prefix : Decision.t array;
  mutable l_attempts : int;       (* grants so far, >= 1 *)
  mutable l_deadline : float;     (* Unix time; infinity when no lease_s *)
}

type t = {
  lease_s : float option;
  settled : (int, unit) Hashtbl.t;
  pending : entry Queue.t;        (* expired/orphaned grants awaiting regrant *)
}

let create ~lease_ms =
  {
    lease_s = Option.map (fun ms -> float_of_int ms /. 1000.0) lease_ms;
    settled = Hashtbl.create 64;
    pending = Queue.create ();
  }

let deadline t ~now =
  match t.lease_s with Some s -> now +. s | None -> infinity

let make_entry t ~id ~site ~prefix ~now =
  { l_id = id; l_site = site; l_prefix = prefix;
    l_attempts = 1; l_deadline = deadline t ~now }

let regrant t e ~now =
  e.l_attempts <- e.l_attempts + 1;
  e.l_deadline <- deadline t ~now;
  e

let renew t e ~now = e.l_deadline <- deadline t ~now

let expired e ~now = now > e.l_deadline

let requeue t e = Queue.push e t.pending

let take_pending t = Queue.take_opt t.pending

let pending t = Queue.length t.pending

let pending_entries t = List.of_seq (Queue.to_seq t.pending)

let is_settled t id = Hashtbl.mem t.settled id

let settle t id =
  if Hashtbl.mem t.settled id then `Duplicate
  else begin
    Hashtbl.replace t.settled id ();
    (* A settled unit must not be regranted: drop any pending copy a
       prior expiry or death left behind. *)
    let live = Queue.create () in
    Queue.iter (fun e -> if e.l_id <> id then Queue.push e live) t.pending;
    Queue.clear t.pending;
    Queue.transfer live t.pending;
    `Fresh
  end

let force_settle t id = ignore (settle t id)
