type t = {
  max_paths : int option;
  max_instructions : int option;
  max_seconds : float option;
  max_solver_conflicts : int option;
  solver_timeout_ms : int option;
  max_memory_mb : int option;
}

let unlimited =
  {
    max_paths = None;
    max_instructions = None;
    max_seconds = None;
    max_solver_conflicts = None;
    solver_timeout_ms = None;
    max_memory_mb = None;
  }

type reason =
  | Paths
  | Instructions
  | Deadline
  | Memory
  | Errors
  | Interrupt

let reason_to_string = function
  | Paths -> "paths"
  | Instructions -> "instructions"
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Errors -> "errors"
  | Interrupt -> "interrupt"

let reason_of_string = function
  | "paths" -> Some Paths
  | "instructions" -> Some Instructions
  | "deadline" -> Some Deadline
  | "memory" -> Some Memory
  | "errors" -> Some Errors
  | "interrupt" -> Some Interrupt
  | _ -> None

let heap_mb () =
  let s = Gc.quick_stat () in
  float_of_int s.Gc.heap_words *. float_of_int (Sys.word_size / 8) /. 1e6

(* The interrupt flag is a plain bool ref: OCaml signal handlers run
   between bytecode/native safepoints, and a single-word store is
   atomic for them. *)
let interrupt_flag = ref false
let interrupted () = !interrupt_flag
let interrupt_now () = interrupt_flag := true
let clear_interrupt () = interrupt_flag := false

let handlers_installed = ref false

let install_signal_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    let handle = Sys.Signal_handle (fun _ -> interrupt_now ()) in
    ignore (Sys.signal Sys.sigint handle);
    ignore (Sys.signal Sys.sigterm handle)
  end
