type t = {
  max_paths : int option;
  max_instructions : int option;
  max_seconds : float option;
  max_solver_conflicts : int option;
  solver_timeout_ms : int option;
  max_memory_mb : int option;
}

let unlimited =
  {
    max_paths = None;
    max_instructions = None;
    max_seconds = None;
    max_solver_conflicts = None;
    solver_timeout_ms = None;
    max_memory_mb = None;
  }

type reason =
  | Paths
  | Instructions
  | Deadline
  | Memory
  | Errors
  | Interrupt

let reason_to_string = function
  | Paths -> "paths"
  | Instructions -> "instructions"
  | Deadline -> "deadline"
  | Memory -> "memory"
  | Errors -> "errors"
  | Interrupt -> "interrupt"

let reason_of_string = function
  | "paths" -> Some Paths
  | "instructions" -> Some Instructions
  | "deadline" -> Some Deadline
  | "memory" -> Some Memory
  | "errors" -> Some Errors
  | "interrupt" -> Some Interrupt
  | _ -> None

let heap_mb () =
  let s = Gc.quick_stat () in
  float_of_int s.Gc.heap_words *. float_of_int (Sys.word_size / 8) /. 1e6

(* The interrupt flag is a plain bool ref: OCaml signal handlers run
   between bytecode/native safepoints, and a single-word store is
   atomic for them. *)
let interrupt_flag = ref false
let interrupted () = !interrupt_flag
let interrupt_now () = interrupt_flag := true
let clear_interrupt () = interrupt_flag := false

(* Installing the interrupt route must compose with handlers other
   layers own: the campaign daemon installs a drain handler on SIGTERM
   and then per-job code calls [install_signal_handlers] again — the
   second install must keep the daemon's handler alive, not clobber
   it.  So installation chains: our handler sets the flag and then
   invokes whatever handler was installed before us.  Re-installs are
   detected (the previously installed closure is physically ours) and
   keep the existing chain instead of linking the handler to itself. *)

let chained : (int, (int -> unit)) Hashtbl.t = Hashtbl.create 4
let ours : (int, (int -> unit)) Hashtbl.t = Hashtbl.create 4

let install_signal_handlers () =
  List.iter
    (fun signo ->
       let handler s =
         interrupt_now ();
         match Hashtbl.find_opt chained signo with
         | Some f -> f s
         | None -> ()
       in
       match Sys.signal signo (Sys.Signal_handle handler) with
       | Sys.Signal_handle prev
         when (match Hashtbl.find_opt ours signo with
               | Some mine -> mine == prev
               | None -> false) ->
         (* Second install over our own handler: keep the chain. *)
         Hashtbl.replace ours signo handler
       | Sys.Signal_handle prev ->
         Hashtbl.replace chained signo prev;
         Hashtbl.replace ours signo handler
       | Sys.Signal_default | Sys.Signal_ignore ->
         Hashtbl.remove chained signo;
         Hashtbl.replace ours signo handler
       | exception (Invalid_argument _ | Sys_error _) -> ())
    [ Sys.sigint; Sys.sigterm ]
