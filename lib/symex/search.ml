type strategy =
  | Dfs
  | Bfs
  | Random_path of int
  | Cover_new

let strategy_to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_path seed -> Printf.sprintf "random:%d" seed
  | Cover_new -> "cover-new"

let strategy_of_string = function
  | "dfs" -> Some Dfs
  | "bfs" -> Some Bfs
  | "cover-new" -> Some Cover_new
  | s ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "random" ->
       (try Some (Random_path (int_of_string (String.sub s (i + 1) (String.length s - i - 1))))
        with Failure _ -> None)
     | _ -> if s = "random" then Some (Random_path 42) else None)

let all_strategies = [ Dfs; Bfs; Random_path 42; Cover_new ]

type 'a entry = { site : string; item : 'a }

(* The frontier is a deque over a circular-free array slice: live
   entries occupy [head, tail), oldest at [head], newest at [tail - 1].
   Dfs and Bfs pop at the ends in O(1); Random_path and Cover_new
   remove in the middle by shifting the shorter side, preserving
   exactly the order-sensitive semantics of the old list
   implementation (which paid a full [List.length] plus traversal on
   every pop). *)
type 'a t = {
  strategy : strategy;
  mutable buf : 'a entry option array;
  mutable head : int;  (* first live slot *)
  mutable tail : int;  (* one past the last live slot *)
  visits : (string, int) Hashtbl.t;
  rng : Random.State.t;
}

let create strategy =
  let seed = match strategy with Random_path s -> s | Dfs | Bfs | Cover_new -> 0 in
  {
    strategy;
    buf = Array.make 16 None;
    head = 0;
    tail = 0;
    visits = Hashtbl.create 64;
    rng = Random.State.make [| seed |];
  }

let length t = t.tail - t.head
let is_empty t = t.tail = t.head

let push t ~site item =
  if t.tail = Array.length t.buf then begin
    let live = length t in
    if 2 * live <= Array.length t.buf then begin
      (* Plenty of dead space at the front: compact in place. *)
      Array.blit t.buf t.head t.buf 0 live;
      Array.fill t.buf live (Array.length t.buf - live) None
    end
    else begin
      let bigger = Array.make (max 16 (2 * live)) None in
      Array.blit t.buf t.head bigger 0 live;
      t.buf <- bigger
    end;
    t.head <- 0;
    t.tail <- live
  end;
  t.buf.(t.tail) <- Some { site; item };
  t.tail <- t.tail + 1

let record_visit t site =
  let n = match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0 in
  Hashtbl.replace t.visits site (n + 1)

let visit_counts t =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.visits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let visits t site =
  match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0

let get t p =
  match t.buf.(p) with
  | Some e -> e
  | None -> assert false (* slots in [head, tail) are always live *)

(* Remove the entry at physical index [p], shifting whichever side of
   it is shorter so a pop near either end stays O(1). *)
let remove_at t p =
  let e = get t p in
  if p - t.head <= t.tail - 1 - p then begin
    Array.blit t.buf t.head t.buf (t.head + 1) (p - t.head);
    t.buf.(t.head) <- None;
    t.head <- t.head + 1
  end
  else begin
    Array.blit t.buf (p + 1) t.buf p (t.tail - 1 - p);
    t.buf.(t.tail - 1) <- None;
    t.tail <- t.tail - 1
  end;
  e.item

let pop t =
  if is_empty t then None
  else
    match t.strategy with
    | Dfs -> Some (remove_at t (t.tail - 1))
    | Bfs -> Some (remove_at t t.head)
    | Random_path _ ->
      (* The old implementation drew the i-th newest entry. *)
      let i = Random.State.int t.rng (length t) in
      Some (remove_at t (t.tail - 1 - i))
    | Cover_new ->
      (* First minimum in newest-first order (strict [<] on a
         newest-to-oldest scan), as before. *)
      let best = ref (t.tail - 1) and best_v = ref max_int in
      for p = t.tail - 1 downto t.head do
        let v = visits t (get t p).site in
        if v < !best_v then begin
          best := p;
          best_v := v
        end
      done;
      Some (remove_at t !best)
