type strategy =
  | Dfs
  | Bfs
  | Random_path of int
  | Cover_new

let strategy_to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_path seed -> Printf.sprintf "random:%d" seed
  | Cover_new -> "cover-new"

let strategy_of_string = function
  | "dfs" -> Some Dfs
  | "bfs" -> Some Bfs
  | "cover-new" -> Some Cover_new
  | s ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "random" ->
       (try Some (Random_path (int_of_string (String.sub s (i + 1) (String.length s - i - 1))))
        with Failure _ -> None)
     | _ -> if s = "random" then Some (Random_path 42) else None)

let all_strategies = [ Dfs; Bfs; Random_path 42; Cover_new ]

type 'a entry = { site : string; item : 'a }

(* splitmix64: a tiny, high-quality PRNG whose entire state is one
   [int64] — chosen over [Random.State] so checkpoints can serialize
   the search state exactly and a resumed [Random_path] run draws the
   same sequence it would have drawn uninterrupted. *)
let splitmix64 state =
  let state = Int64.add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  (state, Int64.logxor z (Int64.shift_right_logical z 31))

(* The frontier is a deque over a circular-free array slice: live
   entries occupy [head, tail), oldest at [head], newest at [tail - 1].
   Dfs and Bfs pop at the ends in O(1); Random_path and Cover_new
   remove in the middle by shifting the shorter side, preserving
   exactly the order-sensitive semantics of the old list
   implementation (which paid a full [List.length] plus traversal on
   every pop). *)
type 'a t = {
  strategy : strategy;
  mutable buf : 'a entry option array;
  mutable head : int;  (* first live slot *)
  mutable tail : int;  (* one past the last live slot *)
  visits : (string, int) Hashtbl.t;
  mutable rng : int64;  (* splitmix64 state *)
}

let create strategy =
  let seed = match strategy with Random_path s -> s | Dfs | Bfs | Cover_new -> 0 in
  {
    strategy;
    buf = Array.make 16 None;
    head = 0;
    tail = 0;
    visits = Hashtbl.create 64;
    rng = Int64.of_int seed;
  }

let rand_int t n =
  let state, z = splitmix64 t.rng in
  t.rng <- state;
  Int64.to_int (Int64.unsigned_rem z (Int64.of_int n))

let rng_state t = t.rng
let set_rng_state t s = t.rng <- s

let length t = t.tail - t.head
let is_empty t = t.tail = t.head

let push t ~site item =
  if t.tail = Array.length t.buf then begin
    let live = length t in
    if 2 * live <= Array.length t.buf then begin
      (* Plenty of dead space at the front: compact in place. *)
      Array.blit t.buf t.head t.buf 0 live;
      Array.fill t.buf live (Array.length t.buf - live) None
    end
    else begin
      let bigger = Array.make (max 16 (2 * live)) None in
      Array.blit t.buf t.head bigger 0 live;
      t.buf <- bigger
    end;
    t.head <- 0;
    t.tail <- live
  end;
  t.buf.(t.tail) <- Some { site; item };
  t.tail <- t.tail + 1

let record_visit t site =
  let n = match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0 in
  Hashtbl.replace t.visits site (n + 1)

(* Inverse of [record_visit], used when the engine abandons a
   partially executed path at a budget stop: the path is re-queued and
   will re-record its visits when re-executed after resume, so the
   partial execution must leave no trace in the counts. *)
let unrecord_visit t site =
  match Hashtbl.find_opt t.visits site with
  | Some 1 -> Hashtbl.remove t.visits site
  | Some n when n > 1 -> Hashtbl.replace t.visits site (n - 1)
  | Some _ | None -> ()

(* Fold another run's visit counts into this frontier's — the pool
   master merges per-unit deltas reported by workers. *)
let merge_visit_counts t counts =
  List.iter
    (fun (site, n) ->
       let cur =
         match Hashtbl.find_opt t.visits site with Some c -> c | None -> 0
       in
       Hashtbl.replace t.visits site (cur + n))
    counts

let set_visit_counts t counts =
  Hashtbl.reset t.visits;
  List.iter (fun (site, n) -> Hashtbl.replace t.visits site n) counts

let visit_counts t =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.visits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let visits t site =
  match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0

let get t p =
  match t.buf.(p) with
  | Some e -> e
  | None -> assert false (* slots in [head, tail) are always live *)

let entries t =
  List.init (length t) (fun i ->
      let e = get t (t.head + i) in
      (e.site, e.item))

(* Remove the entry at physical index [p], shifting whichever side of
   it is shorter so a pop near either end stays O(1). *)
let remove_at t p =
  let e = get t p in
  if p - t.head <= t.tail - 1 - p then begin
    Array.blit t.buf t.head t.buf (t.head + 1) (p - t.head);
    t.buf.(t.head) <- None;
    t.head <- t.head + 1
  end
  else begin
    Array.blit t.buf (p + 1) t.buf p (t.tail - 1 - p);
    t.buf.(t.tail - 1) <- None;
    t.tail <- t.tail - 1
  end;
  e.item

let pop t =
  if is_empty t then None
  else
    match t.strategy with
    | Dfs -> Some (remove_at t (t.tail - 1))
    | Bfs -> Some (remove_at t t.head)
    | Random_path _ ->
      (* The old implementation drew the i-th newest entry. *)
      let i = rand_int t (length t) in
      Some (remove_at t (t.tail - 1 - i))
    | Cover_new ->
      (* First minimum in newest-first order (strict [<] on a
         newest-to-oldest scan), as before. *)
      let best = ref (t.tail - 1) and best_v = ref max_int in
      for p = t.tail - 1 downto t.head do
        let v = visits t (get t p).site in
        if v < !best_v then begin
          best := p;
          best_v := v
        end
      done;
      Some (remove_at t !best)
