(** Master/worker parallel path exploration.

    Pending paths of the re-execution engine share nothing but the
    testbench, so exploration parallelizes at the path level: the
    {e master} owns the frontier and hands out {e work units} — one
    decision prefix each — to [N] forked worker processes over pipes
    (length-prefixed {!Obs.Json} frames).  Each worker re-executes the
    testbench under its prefix with a private solver (caches and all)
    and streams back the forks it discovered, the errors it found, and
    its counter / {!Smt.Solver.Stats} deltas.  The master re-balances
    by work-sharing: a unit is dispatched to whichever worker is idle,
    so no worker idles while the frontier is non-empty.

    This module is deliberately independent of {!Engine}: the actual
    unit execution is injected as the [exec] callback (which runs in
    the worker processes, after [fork]).  {!Engine.Session} wires the
    two together and is the API testbenches use.

    {1 Merge semantics}

    Reports merge deterministically: errors are de-duplicated by
    [(site, kind)] and returned in canonical (site, kind) order,
    counters are summed, per-stage solver times aggregated across
    workers (so the reported solver time is {e CPU} seconds, which can
    exceed wall time under parallelism).  Budgets are enforced by the
    master between dispatches; a budget stop lets in-flight units
    finish and merges them.  A checkpoint is the master frontier plus
    the in-flight prefixes folded back into it, so parallel runs
    compose with [--checkpoint-out] / [--resume-from] (in either
    direction: a sequential run can resume a parallel checkpoint and
    vice versa).

    {1 Fault tolerance}

    A worker that dies mid-unit (killed, crashed) is detected by EOF
    on its pipe — or by a torn/unparsable frame, which marks the worker
    compromised.  Its in-flight prefix is re-queued and a replacement
    worker is forked while work remains, so the run completes at full
    strength (a spawn cap bounds pathological crash loops).

    With [heartbeat_ms] set, workers emit periodic heartbeat frames
    from a SIGALRM timer and the master runs a {e watchdog}: a worker
    holding a unit that produces no frame for [max (8*hb, 1s)] is
    presumed wedged (e.g. SIGSTOPped), killed, and treated as a death
    — without heartbeats such a worker would block the run forever.

    A {e poison unit} whose prefix kills [max_unit_crashes] workers is
    quarantined rather than requeued: the path is dropped, the run is
    marked degraded (no exhaustiveness claim) and the quarantine is
    surfaced in [r_quarantined].

    With a {!Chaos} spec armed, workers reseed their injection streams
    with their worker id and fire the [worker-crash], [worker-hang],
    [frame-truncate] and [frame-corrupt] points; the per-worker
    injection counts travel back in result frames and are merged into
    [r_chaos]. *)

(** How a single work-unit execution ended in the worker. *)
type unit_outcome =
  | Unit_completed   (** ran to the end of the testbench *)
  | Unit_errored     (** terminated by an error *)
  | Unit_infeasible  (** killed by an unsatisfiable assumption *)
  | Unit_unknown     (** killed by a solver resource limit *)
  | Unit_aborted
      (** interrupted mid-path (e.g. SIGINT in the worker): rolled
          back; the master re-queues the prefix in [requeue] *)

type unit_result = {
  outcome : unit_outcome;
  forks : (string * Decision.t array) list;
      (** frontier entries discovered by this unit, in discovery order *)
  errors : Error.t list;
  visits : (string * int) list;
      (** branch-site visit deltas of this unit (empty when aborted) *)
  instructions : int;  (** instruction delta (0 when aborted) *)
  degraded : bool;     (** a solver resource limit fired *)
  solver : Smt.Solver.Stats.t;  (** solver activity delta of this unit *)
  requeue : Decision.t array option;
      (** for [Unit_aborted]: the decisions taken before the abort,
          re-queued by the master so nothing is lost *)
  chaos : (string * int) list;
      (** cumulative {!Chaos.counts} of this worker process; the
          master folds per-result deltas into [r_chaos] *)
  coverage : Obs.Coverage.t;
      (** register/branch-arm coverage delta of this unit (zero when
          aborted — mirrors [visits]) *)
  profile : Obs.Profile.t;
      (** solver-time attribution delta of this unit (ships even when
          aborted — mirrors [solver]) *)
  events : Obs.Event.t list;
      (** forwarded trace events (bounded); empty unless the master
          requested forwarding *)
  events_dropped : int;
      (** events lost to the worker's forwarding buffer limit *)
}

type config = {
  workers : int;                  (** worker processes to fork, >= 1 *)
  strategy : Search.strategy;     (** master frontier pop order *)
  limits : Budget.t;              (** global budgets (master-enforced) *)
  stop_after_errors : int option;
  label : string;                 (** run name, checked on resume *)
  heartbeat_ms : int option;
      (** worker heartbeat period; [None] disables heartbeats and the
          watchdog (a wedged worker then blocks the run) *)
  max_unit_crashes : int;
      (** worker deaths attributable to one prefix before that unit is
          quarantined instead of requeued; >= 1 *)
}

type result = {
  r_errors : Error.t list;
      (** de-duplicated by [(site, kind)], canonical (site, kind) order *)
  r_paths : int;
  r_completed : int;
  r_errored : int;
  r_infeasible : int;
  r_unknown : int;
  r_instructions : int;
  r_wall_time : float;
  r_solver : Smt.Solver.Stats.t;
  r_exhausted : bool;
  r_stop_reason : Budget.reason option;
  r_visits : (string * int) list;  (** merged branch coverage *)
  r_dispatched : int;   (** units handed to workers (incl. re-runs) *)
  r_requeued : int;     (** units re-queued (aborts + worker deaths) *)
  r_worker_deaths : int;  (** workers lost (crashes + watchdog kills) *)
  r_hung : int;         (** workers killed by the heartbeat watchdog *)
  r_quarantined : int;  (** poison units dropped after repeated crashes *)
  r_chaos : (string * int) list;
      (** merged {!Chaos} injection counts: the master's own plus the
          per-result deltas reported by workers (injections in a
          worker's final, torn frame are unaccountable and lost) *)
  r_coverage : Obs.Coverage.t;
      (** merged coverage: the sum of non-aborted unit deltas — exactly
          one contribution per executed path, so bit-for-bit equal to a
          sequential run over the same path set *)
  r_profile : Obs.Profile.t;
      (** merged solver-time attribution (CPU seconds, like [r_solver]) *)
}

val run :
  config ->
  ?resume:Checkpoint.t ->
  ?checkpoint:Checkpoint.policy ->
  exec:(prefix:Decision.t array -> unit_result) ->
  unit ->
  result
(** Explore with [config.workers] forked workers.  [exec] is called in
    the worker processes only — one call per received unit; worker
    state (solver caches, pooled inputs) persists across calls within
    one worker.  Raises [Failure] if every worker dies while work
    remains and the respawn cap is spent, if the master's dispatch
    stalls without progress, or if a worker reports a fatal testbench
    error (the analogue of an exception escaping {!Engine.run}). *)

val fork_map :
  workers:int -> (int -> Obs.Json.t) -> (Obs.Json.t, string) Stdlib.result list
(** Generic fork helper: run [f i] in [workers] forked child processes
    and collect one JSON result frame from each, in index order
    ([Error] for a child that died before reporting).  Used for the
    parallel random-testing baseline. *)
