(** Master/worker parallel path exploration — local and distributed.

    Pending paths of the re-execution engine share nothing but the
    testbench, so exploration parallelizes at the path level: the
    {e master} owns the frontier and hands out {e work units} — one
    decision prefix each — to worker processes over length-prefixed
    {!Obs.Json} frames (see {!Transport}).  Workers come in two
    transports, speaking the same protocol: [config.workers] forked
    local processes over pipes, and — with [config.listen] set — any
    number of remote TCP peers that dial in, register with a
    [hello]/[welcome] handshake, and are dispatched to exactly like
    local workers (see {!serve}).  Each worker re-executes the
    testbench under its prefix with a private solver (caches and all)
    and streams back the forks it discovered, the errors it found, and
    its counter / {!Smt.Solver.Stats} deltas.  The master re-balances
    by work-sharing: a unit is dispatched to whichever peer is idle,
    so no peer idles while the frontier is non-empty.

    This module is deliberately independent of {!Engine}: the actual
    unit execution is injected as the [exec] callback (which runs in
    the worker processes).  {!Engine.Session} wires the two together
    and is the API testbenches use.

    {1 Leases}

    Every dispatched unit is tracked by a {!Lease}: a never-reused unit
    id, a deadline, and an attempt count.  Any frame from the holder
    (heartbeat or result) renews the deadline; a holder silent past it
    loses the grant — the unit is requeued for another peer — but is
    {e not} killed, so a merely slow worker keeps computing.  Whichever
    copy finishes first {e settles} the unit; every later result for
    the same id is counted in [r_duplicates] and dropped
    (first-result-wins).  This makes the master idempotent under
    duplicate, late and replayed results, and bounds every
    lost-connection or stalled-socket shape by the lease deadline
    instead of hanging.

    {1 Merge semantics}

    Reports merge deterministically: errors are de-duplicated by
    [(site, kind)] and returned in canonical (site, kind) order,
    counters are summed, per-stage solver times aggregated across
    workers (so the reported solver time is {e CPU} seconds, which can
    exceed wall time under parallelism).  Budgets are enforced by the
    master between dispatches; a budget stop lets in-flight units
    finish and merges them.  A checkpoint is the master frontier plus
    the granted-but-unsettled leases (prefix + attempt count), so
    parallel and distributed runs compose with [--checkpoint-out] /
    [--resume-from] in any direction: sequential, parallel and
    distributed runs can resume each other's checkpoints.

    {1 Fault tolerance}

    A peer that dies mid-unit (killed, crashed, connection reset) is
    detected by EOF or a transport error on its connection — or by a
    torn/unparsable frame, which marks the peer compromised.  Its
    in-flight lease is re-queued; dead {e local} workers are replaced
    by respawning while work remains (a spawn cap bounds pathological
    crash loops), dead {e remote} workers replace themselves by
    reconnecting with seeded exponential backoff
    ({!Transport.backoff_delay}).  A remote worker receiving SIGTERM
    drains gracefully: it finishes the unit in hand, flushes the
    result, sends a [bye] frame and deregisters without counting as a
    death.

    With [heartbeat_ms] set, workers emit periodic heartbeat frames
    from a SIGALRM timer and the master runs a {e watchdog}: a peer
    holding a unit that produces no frame for [max (8*hb, 1s)] is
    presumed wedged (e.g. SIGSTOPped), killed (local) or disconnected
    (remote), and treated as a death — without heartbeats such a
    worker would block the run forever (unless a lease deadline is
    set, which requeues the unit without the kill).

    A {e poison unit} whose prefix kills [max_unit_crashes] workers is
    quarantined rather than requeued: the path is dropped (and
    pre-settled, so a late result cannot resurrect it), the run is
    marked degraded (no exhaustiveness claim) and the quarantine is
    surfaced in [r_quarantined].  Quarantine is keyed on worker
    {e crashes}, never on lease expiries: a slow unit regranted many
    times is not poison.

    With a {!Chaos} spec armed, workers reseed their injection streams
    with their peer id and fire the [worker-crash], [worker-hang],
    [frame-truncate], [frame-corrupt], [conn-drop], [conn-stall],
    [frame-shear] and [dup-result] points; the per-worker injection
    counts travel back in result frames and are merged into
    [r_chaos]. *)

(** How a single work-unit execution ended in the worker. *)
type unit_outcome =
  | Unit_completed   (** ran to the end of the testbench *)
  | Unit_errored     (** terminated by an error *)
  | Unit_infeasible  (** killed by an unsatisfiable assumption *)
  | Unit_unknown     (** killed by a solver resource limit *)
  | Unit_aborted
      (** interrupted mid-path (e.g. SIGINT in the worker): rolled
          back; the master re-queues the prefix in [requeue] *)

type unit_result = {
  outcome : unit_outcome;
  forks : (string * Decision.t array) list;
      (** frontier entries discovered by this unit, in discovery order *)
  errors : Error.t list;
  visits : (string * int) list;
      (** branch-site visit deltas of this unit (empty when aborted) *)
  instructions : int;  (** instruction delta (0 when aborted) *)
  degraded : bool;     (** a solver resource limit fired *)
  solver : Smt.Solver.Stats.t;  (** solver activity delta of this unit *)
  requeue : Decision.t array option;
      (** for [Unit_aborted]: the decisions taken before the abort,
          re-queued by the master so nothing is lost *)
  chaos : (string * int) list;
      (** cumulative {!Chaos.counts} of this worker process; the
          master folds per-result deltas into [r_chaos] *)
  coverage : Obs.Coverage.t;
      (** register/branch-arm coverage delta of this unit (zero when
          aborted — mirrors [visits]) *)
  profile : Obs.Profile.t;
      (** solver-time attribution delta of this unit (ships even when
          aborted — mirrors [solver]) *)
  events : Obs.Event.t list;
      (** forwarded trace events (bounded); empty unless the master
          requested forwarding *)
  events_dropped : int;
      (** events lost to the worker's forwarding buffer limit *)
  snapshots_taken : int;
      (** forks pushed with a usable syscall-log snapshot *)
  snapshot_restores : int;
      (** paths fast-forwarded from the worker's snapshot cache *)
  replay_fallbacks : int;
      (** 1 when this unit's prefix missed the snapshot cache and was
          replayed in full, 0 otherwise *)
  instructions_saved : int;
      (** instruction count accounted by fast-forward (included in
          [instructions]) *)
}

type config = {
  workers : int;
      (** local worker processes to fork: >= 1, or >= 0 with [listen]
          set (a listening master may rely on remote peers alone) *)
  strategy : Search.strategy;     (** master frontier pop order *)
  limits : Budget.t;              (** global budgets (master-enforced) *)
  stop_after_errors : int option;
  label : string;                 (** run name, checked on resume and
                                      in the remote hello handshake *)
  heartbeat_ms : int option;
      (** worker heartbeat period, pushed to remote peers in the
          welcome frame; [None] disables heartbeats and the watchdog
          (a wedged worker then blocks the run unless [lease_ms]
          bounds it) *)
  max_unit_crashes : int;
      (** worker deaths attributable to one prefix before that unit is
          quarantined instead of requeued; >= 1 *)
  listen : Transport.listener option;
      (** accept remote TCP workers on this (already-bound) listener;
          the caller owns and closes it.  [None] for a purely local
          pool *)
  lease_ms : int option;
      (** lease deadline per grant; a holder silent this long loses
          the grant (requeue, no kill).  [None] disables expiry —
          liveness then rests on the watchdog alone *)
  cookie : string option;
      (** opaque parameter fingerprint; a dialing worker must present
          the same cookie or its hello is rejected, catching
          master/worker flag mismatches before they corrupt a
          campaign.  [None] skips the check *)
}

type result = {
  r_errors : Error.t list;
      (** de-duplicated by [(site, kind)], canonical (site, kind) order *)
  r_paths : int;
  r_completed : int;
  r_errored : int;
  r_infeasible : int;
  r_unknown : int;
  r_instructions : int;
  r_wall_time : float;
  r_solver : Smt.Solver.Stats.t;
  r_exhausted : bool;
  r_stop_reason : Budget.reason option;
  r_visits : (string * int) list;  (** merged branch coverage *)
  r_dispatched : int;   (** units handed to workers (incl. re-grants) *)
  r_requeued : int;
      (** units re-queued (aborts + worker deaths + lease expiries) *)
  r_worker_deaths : int;  (** peers lost (crashes, resets, watchdog) *)
  r_hung : int;         (** peers killed by the heartbeat watchdog *)
  r_quarantined : int;  (** poison units dropped after repeated crashes *)
  r_lease_expired : int;
      (** leases that passed their deadline and were re-granted *)
  r_duplicates : int;
      (** duplicate/late results dropped by first-result-wins *)
  r_reconnects : int;
      (** remote peer re-registrations after a lost connection *)
  r_chaos : (string * int) list;
      (** merged {!Chaos} injection counts: the master's own plus the
          per-result deltas reported by workers (injections in a
          worker's final, torn frame are unaccountable and lost) *)
  r_coverage : Obs.Coverage.t;
      (** merged coverage: the sum of non-aborted unit deltas — exactly
          one contribution per executed path, so bit-for-bit equal to a
          sequential run over the same path set *)
  r_profile : Obs.Profile.t;
      (** merged solver-time attribution (CPU seconds, like [r_solver]) *)
  r_snapshots_taken : int;
  r_snapshot_restores : int;
  r_replay_fallbacks : int;
      (** summed snapshot counters of all non-duplicate unit results;
          snapshots never cross the wire, so a unit executed away from
          the worker that discovered it counts one fallback *)
  r_instructions_saved : int;
}

val run :
  config ->
  ?resume:Checkpoint.t ->
  ?checkpoint:Checkpoint.policy ->
  exec:(prefix:Decision.t array -> unit_result) ->
  unit ->
  result
(** Explore with [config.workers] forked workers plus any remote peers
    accepted on [config.listen].  [exec] is called in the worker
    processes only — one call per received unit; worker state (solver
    caches, pooled inputs) persists across calls within one worker.
    Raises [Failure] if every local worker dies while work remains and
    the respawn cap is spent (with no listener to wait on), if the
    master's dispatch stalls without progress, or if a worker reports
    a fatal testbench error (the analogue of an exception escaping
    {!Engine.Session.run}).  A listening master with work remaining and no
    live peers waits for (re)connections instead — bound it with a
    budget. *)

val serve :
  host:string ->
  port:int ->
  workers:int ->
  label:string ->
  strategy:Search.strategy ->
  ?cookie:string ->
  ?backoff_seed:int ->
  ?max_dials:int ->
  exec:(prefix:Decision.t array -> unit_result) ->
  unit ->
  int
(** Run a remote worker pool: fork [workers] processes ([workers = 1]
    serves in the calling process), each dialing [host:port],
    registering with [hello] (label, strategy, [cookie]) and serving
    units until the master sends [stop].  A lost connection reconnects
    with {!Transport.backoff_delay} under a per-slot seed derived from
    [backoff_seed]; [max_dials] bounds consecutive failed dials (the
    default retries forever).  A [fatal] answer to the hello
    (label/strategy/cookie mismatch) is terminal, not retried.
    SIGTERM drains the pool gracefully.  Returns the worst worker exit
    code (0 = clean stop or drain). *)

val fork_map :
  workers:int -> (int -> Obs.Json.t) -> (Obs.Json.t, string) Stdlib.result list
(** Generic fork helper: run [f i] in [workers] forked child processes
    and collect one JSON result frame from each, in index order
    ([Error] for a child that died before reporting).  Used for the
    parallel random-testing baseline. *)
