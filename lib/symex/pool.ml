module Json = Obs.Json
module Stats = Smt.Solver.Stats

type unit_outcome =
  | Unit_completed
  | Unit_errored
  | Unit_infeasible
  | Unit_unknown
  | Unit_aborted

type unit_result = {
  outcome : unit_outcome;
  forks : (string * Decision.t array) list;
  errors : Error.t list;
  visits : (string * int) list;
  instructions : int;
  degraded : bool;
  solver : Stats.t;
  requeue : Decision.t array option;
}

type config = {
  workers : int;
  strategy : Search.strategy;
  limits : Budget.t;
  stop_after_errors : int option;
  label : string;
}

type result = {
  r_errors : Error.t list;
  r_paths : int;
  r_completed : int;
  r_errored : int;
  r_infeasible : int;
  r_unknown : int;
  r_instructions : int;
  r_wall_time : float;
  r_solver : Stats.t;
  r_exhausted : bool;
  r_stop_reason : Budget.reason option;
  r_visits : (string * int) list;
  r_dispatched : int;
  r_requeued : int;
  r_worker_deaths : int;
}

(* ------------------------------------------------------------------ *)
(* Framing: ASCII decimal payload length, a newline, then one JSON
   document.  Both directions of both pipes speak this format; it
   reuses the existing Obs.Json printer/parser rather than inventing a
   binary protocol, and a frame is trivially inspectable with strace
   or by dumping the pipe. *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd j =
  let payload = Json.to_string j in
  let s = string_of_int (String.length payload) ^ "\n" ^ payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> raise End_of_file
  | _ -> Bytes.get b 0
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd b off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame fd =
  let hdr = Buffer.create 8 in
  let rec header () =
    match read_byte fd with
    | '\n' -> ()
    | c -> Buffer.add_char hdr c; header ()
  in
  header ();
  let len =
    match int_of_string_opt (Buffer.contents hdr) with
    | Some n when n >= 0 && n <= 1 lsl 30 -> n
    | _ -> failwith "pool: malformed frame header"
  in
  match Json.of_string (read_exact fd len) with
  | Ok j -> j
  | Error e -> failwith ("pool: malformed frame: " ^ e)

(* ------------------------------------------------------------------ *)
(* Message encoding.  Prefixes travel in their Decision.to_string form
   — the same representation checkpoints use — so work units are
   replayed without consulting the solver. *)

let prefix_to_json prefix =
  Json.List
    (Array.to_list
       (Array.map (fun d -> Json.Str (Decision.to_string d)) prefix))

let map_result f l =
  List.fold_right
    (fun x acc ->
       match acc with
       | Error _ -> acc
       | Ok tl -> (match f x with Ok y -> Ok (y :: tl) | Error e -> Error e))
    l (Ok [])

let prefix_of_json j =
  match Json.to_list_opt j with
  | None -> Error "pool: malformed prefix"
  | Some l ->
    Result.map Array.of_list
      (map_result
         (fun dj ->
            match Json.to_string_opt dj with
            | Some s -> Decision.of_string s
            | None -> Error "pool: malformed decision")
         l)

let outcome_to_string = function
  | Unit_completed -> "completed"
  | Unit_errored -> "errored"
  | Unit_infeasible -> "infeasible"
  | Unit_unknown -> "unknown"
  | Unit_aborted -> "aborted"

let outcome_of_string = function
  | "completed" -> Some Unit_completed
  | "errored" -> Some Unit_errored
  | "infeasible" -> Some Unit_infeasible
  | "unknown" -> Some Unit_unknown
  | "aborted" -> Some Unit_aborted
  | _ -> None

let unit_to_json id prefix =
  Json.Obj
    [ ("cmd", Json.Str "unit");
      ("id", Json.Int id);
      ("prefix", prefix_to_json prefix) ]

let stop_msg = Json.Obj [ ("cmd", Json.Str "stop") ]

let fatal_msg msg =
  Json.Obj [ ("cmd", Json.Str "fatal"); ("msg", Json.Str msg) ]

let result_to_json id (r : unit_result) =
  Json.Obj
    [ ("cmd", Json.Str "result");
      ("id", Json.Int id);
      ("outcome", Json.Str (outcome_to_string r.outcome));
      ("forks",
       Json.List
         (List.map
            (fun (site, prefix) ->
               Json.Obj
                 [ ("site", Json.Str site); ("prefix", prefix_to_json prefix) ])
            r.forks));
      ("errors", Json.List (List.map Error.to_json r.errors));
      ("visits",
       Json.List
         (List.map
            (fun (site, n) ->
               Json.Obj [ ("site", Json.Str site); ("count", Json.Int n) ])
            r.visits));
      ("instructions", Json.Int r.instructions);
      ("degraded", Json.Bool r.degraded);
      ("solver", Stats.to_json r.solver);
      ("requeue",
       match r.requeue with None -> Json.Null | Some p -> prefix_to_json p) ]

let result_of_json j =
  let ( let* ) = Result.bind in
  let require name = function
    | Some v -> Ok v
    | None -> Error ("pool: result missing " ^ name)
  in
  let* id = require "id" (Option.bind (Json.member "id" j) Json.to_int_opt) in
  let* outcome_s =
    require "outcome" (Option.bind (Json.member "outcome" j) Json.to_string_opt)
  in
  let* outcome = require "outcome" (outcome_of_string outcome_s) in
  let* forks_l =
    require "forks" (Option.bind (Json.member "forks" j) Json.to_list_opt)
  in
  let* forks =
    map_result
      (fun fj ->
         let* site =
           require "fork site"
             (Option.bind (Json.member "site" fj) Json.to_string_opt)
         in
         let* prefix =
           match Json.member "prefix" fj with
           | Some pj -> prefix_of_json pj
           | None -> Error "pool: fork missing prefix"
         in
         Ok (site, prefix))
      forks_l
  in
  let* errors =
    match Option.bind (Json.member "errors" j) Json.to_list_opt with
    | None -> Ok []
    | Some l -> map_result Error.of_json l
  in
  let* visits =
    match Option.bind (Json.member "visits" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun vj ->
           match
             ( Option.bind (Json.member "site" vj) Json.to_string_opt,
               Option.bind (Json.member "count" vj) Json.to_int_opt )
           with
           | Some site, Some n -> Ok (site, n)
           | _ -> Error "pool: malformed visit entry")
        l
  in
  let* requeue =
    match Json.member "requeue" j with
    | None | Some Json.Null -> Ok None
    | Some pj -> Result.map Option.some (prefix_of_json pj)
  in
  let solver =
    match Json.member "solver" j with
    | Some sj -> Stats.of_json sj
    | None -> Stats.zero
  in
  Ok
    ( id,
      { outcome;
        forks;
        errors;
        visits;
        instructions =
          Option.value ~default:0
            (Option.bind (Json.member "instructions" j) Json.to_int_opt);
        degraded =
          Option.value ~default:false
            (Option.bind (Json.member "degraded" j) Json.to_bool_opt);
        solver;
        requeue } )

(* ------------------------------------------------------------------ *)
(* Worker side.  Runs after [fork]: silence the inherited telemetry
   (the master keeps the only progress meter and trace recorder), then
   serve units until a stop frame or EOF.  A worker exits through
   [Unix._exit] so it never runs the parent's [at_exit] hooks or
   re-flushes inherited channel buffers. *)

let worker_main ~exec r w =
  Obs.Progress.disable ();
  Obs.Sink.reset ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let rec loop () =
    let j = read_frame r in
    match Option.bind (Json.member "cmd" j) Json.to_string_opt with
    | Some "stop" | None -> ()
    | Some "unit" ->
      let id =
        Option.value ~default:0
          (Option.bind (Json.member "id" j) Json.to_int_opt)
      in
      (match
         match Json.member "prefix" j with
         | Some pj -> prefix_of_json pj
         | None -> Error "pool: unit missing prefix"
       with
       | Error msg -> write_frame w (fatal_msg msg)
       | Ok prefix ->
         (match exec ~prefix with
          | res -> write_frame w (result_to_json id res); loop ()
          | exception exn ->
            write_frame w (fatal_msg (Printexc.to_string exn))))
    | Some _ -> loop ()
  in
  (try loop () with End_of_file -> () | _ -> ());
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Master side. *)

type worker_state = {
  w_id : int;
  w_pid : int;
  w_in : Unix.file_descr;   (* master -> worker *)
  w_out : Unix.file_descr;  (* worker -> master *)
  mutable w_unit : (int * Decision.t array * float) option;
      (* unit id, dispatched prefix, dispatch time *)
  mutable w_alive : bool;
}

exception Worker_fatal of string

let run cfg ?resume ?checkpoint ~exec () =
  if cfg.workers < 1 then invalid_arg "Pool.run: workers must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let frontier = Search.create cfg.strategy in
  let error_table : (string * Error.kind, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let errors_rev = ref [] in
  let n_errors = ref 0 in
  let n_paths = ref 0 in
  let n_completed = ref 0 in
  let n_errored = ref 0 in
  let n_infeasible = ref 0 in
  let n_unknown = ref 0 in
  let instr = ref 0 in
  let solver_acc = ref Stats.zero in
  let degraded = ref false in
  let stop_reason = ref None in
  let dispatched = ref 0 in
  let requeued = ref 0 in
  let deaths = ref 0 in
  let now = Unix.gettimeofday () in
  let started =
    match resume with None -> now | Some ck -> now -. ck.Checkpoint.wall_time
  in
  (match resume with
   | None -> Search.push frontier ~site:"root" [||]
   | Some ck ->
     if ck.Checkpoint.label <> cfg.label then
       failwith
         (Printf.sprintf "Pool.run: checkpoint is for %S, not %S"
            ck.Checkpoint.label cfg.label);
     let here = Search.strategy_to_string cfg.strategy in
     if ck.Checkpoint.strategy <> here then
       failwith
         (Printf.sprintf
            "Pool.run: checkpoint used strategy %s, this run uses %s"
            ck.Checkpoint.strategy here);
     List.iter
       (fun (site, prefix) -> Search.push frontier ~site prefix)
       ck.Checkpoint.frontier;
     Search.set_visit_counts frontier ck.Checkpoint.visits;
     Search.set_rng_state frontier ck.Checkpoint.rng;
     n_paths := ck.Checkpoint.paths;
     n_completed := ck.Checkpoint.completed;
     n_errored := ck.Checkpoint.errored;
     n_infeasible := ck.Checkpoint.infeasible;
     n_unknown := ck.Checkpoint.unknown;
     instr := ck.Checkpoint.instructions;
     solver_acc := ck.Checkpoint.solver;
     degraded := ck.Checkpoint.degraded;
     List.iter
       (fun (e : Error.t) ->
          Hashtbl.replace error_table (e.Error.site, e.Error.kind) ();
          errors_rev := e :: !errors_rev;
          incr n_errors)
       ck.Checkpoint.errors);
  let m_queue =
    Obs.Metrics.gauge ~help:"pending work units in the master frontier"
      "symsysc_pool_queue_depth"
  in
  let m_busy =
    Obs.Metrics.gauge ~help:"workers currently executing a unit"
      "symsysc_pool_workers_busy"
  in
  let m_dispatched =
    Obs.Metrics.counter ~help:"work units handed to workers"
      "symsysc_pool_units_dispatched"
  in
  let m_requeued =
    Obs.Metrics.counter
      ~help:"work units re-queued (aborts and worker deaths)"
      "symsysc_pool_requeues"
  in
  let m_deaths =
    Obs.Metrics.counter ~help:"worker processes lost mid-run"
      "symsysc_pool_worker_deaths"
  in
  (* All pipe pairs are created before any fork so each child can close
     every descriptor that is not its own.  Without this, a late-forked
     sibling would inherit an earlier worker's write end and keep it
     open past that worker's death, and the master would never see the
     EOF that signals the death. *)
  let pipes =
    Array.init cfg.workers (fun _ -> (Unix.pipe (), Unix.pipe ()))
  in
  let spawn i =
    let (ur, uw), (rr, rw) = pipes.(i) in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      Array.iteri
        (fun j ((ur', uw'), (rr', rw')) ->
           if j = i then begin
             (try Unix.close uw' with _ -> ());
             (try Unix.close rr' with _ -> ())
           end
           else
             List.iter
               (fun fd -> try Unix.close fd with _ -> ())
               [ ur'; uw'; rr'; rw' ])
        pipes;
      (try worker_main ~exec ur rw with _ -> ());
      Unix._exit 125
    | pid ->
      { w_id = i; w_pid = pid; w_in = uw; w_out = rr; w_unit = None;
        w_alive = true }
  in
  let workers = Array.init cfg.workers spawn in
  Array.iter
    (fun ((ur, _), (_, rw)) ->
       (try Unix.close ur with _ -> ());
       (try Unix.close rw with _ -> ()))
    pipes;
  let elapsed () = Unix.gettimeofday () -. started in
  let inflight () =
    Array.fold_left
      (fun acc w -> acc + (match w.w_unit with Some _ -> 1 | None -> 0))
      0 workers
  in
  let stop reason = if !stop_reason = None then stop_reason := Some reason in
  let snapshot ~final =
    let in_flight =
      Array.to_list workers
      |> List.filter_map (fun w ->
          match w.w_unit with
          | Some (_, prefix, _) -> Some ("in-flight", prefix)
          | None -> None)
    in
    { Checkpoint.label = cfg.label;
      strategy = Search.strategy_to_string cfg.strategy;
      frontier = Search.entries frontier @ in_flight;
      visits = Search.visit_counts frontier;
      rng = Search.rng_state frontier;
      paths = !n_paths - inflight ();
      completed = !n_completed;
      errored = !n_errored;
      infeasible = !n_infeasible;
      unknown = !n_unknown;
      instructions = !instr;
      wall_time = elapsed ();
      solver = !solver_acc;
      errors = List.rev !errors_rev;
      degraded = !degraded;
      stop_reason =
        (if final then Option.map Budget.reason_to_string !stop_reason
         else None) }
  in
  let handle_death w =
    w.w_alive <- false;
    (try Unix.close w.w_in with _ -> ());
    (try Unix.close w.w_out with _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
    incr deaths;
    Obs.Metrics.inc m_deaths;
    (match w.w_unit with
     | Some (id, prefix, _) ->
       w.w_unit <- None;
       decr n_paths;
       incr requeued;
       Obs.Metrics.inc m_requeued;
       Search.push frontier ~site:"requeued" prefix;
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"pool" "worker-death"
           ~args:[ ("worker", Obs.Event.Int w.w_id);
                   ("unit", Obs.Event.Int id);
                   ("requeued", Obs.Event.Bool true) ]
     | None ->
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"pool" "worker-death"
           ~args:[ ("worker", Obs.Event.Int w.w_id);
                   ("requeued", Obs.Event.Bool false) ])
  in
  let dispatch w =
    match Search.pop frontier with
    | None -> ()
    | Some prefix ->
      let id = !n_paths in
      incr n_paths;
      incr dispatched;
      w.w_unit <- Some (id, prefix, Unix.gettimeofday ());
      Obs.Metrics.inc m_dispatched;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"pool" "dispatch"
          ~args:[ ("worker", Obs.Event.Int w.w_id);
                  ("unit", Obs.Event.Int id);
                  ("prefix_len", Obs.Event.Int (Array.length prefix));
                  ("frontier", Obs.Event.Int (Search.length frontier)) ];
      (try write_frame w.w_in (unit_to_json id prefix)
       with _ -> handle_death w)
  in
  let merge w id (r : unit_result) =
    match w.w_unit with
    | Some (uid, prefix, t0) when uid = id ->
      w.w_unit <- None;
      (match r.outcome with
       | Unit_aborted ->
         decr n_paths;
         incr requeued;
         Obs.Metrics.inc m_requeued;
         let p = match r.requeue with Some p -> p | None -> prefix in
         Search.push frontier ~site:"requeued" p
       | Unit_completed -> incr n_completed
       | Unit_errored -> incr n_errored
       | Unit_infeasible -> incr n_infeasible
       | Unit_unknown -> incr n_unknown);
      if r.outcome <> Unit_aborted then begin
        instr := !instr + r.instructions;
        Search.merge_visit_counts frontier r.visits
      end;
      List.iter (fun (site, p) -> Search.push frontier ~site p) r.forks;
      solver_acc := Stats.add !solver_acc r.solver;
      if r.degraded then degraded := true;
      List.iter
        (fun (e : Error.t) ->
           let key = (e.Error.site, e.Error.kind) in
           if not (Hashtbl.mem error_table key) then begin
             Hashtbl.add error_table key ();
             (* Rewrite the worker-local bookkeeping fields into
                campaign terms: the unit id is the global path id and
                discovery time/instructions are campaign totals. *)
             errors_rev :=
               { e with
                 Error.path_id = id;
                 found_after = elapsed ();
                 instructions = !instr }
               :: !errors_rev;
             incr n_errors;
             if !Obs.Sink.enabled then
               Obs.Sink.instant ~cat:"pool" "error"
                 ~args:[ ("site", Obs.Event.Str e.Error.site);
                         ("kind",
                          Obs.Event.Str (Error.kind_to_string e.Error.kind));
                         ("worker", Obs.Event.Int w.w_id) ];
             match cfg.stop_after_errors with
             | Some n when !n_errors >= n -> stop Budget.Errors
             | _ -> ()
           end)
        r.errors;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.complete ~cat:"pool"
          ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6)
          "unit"
          ~args:[ ("worker", Obs.Event.Int w.w_id);
                  ("unit", Obs.Event.Int id);
                  ("outcome", Obs.Event.Str (outcome_to_string r.outcome));
                  ("forks", Obs.Event.Int (List.length r.forks)) ]
    | Some _ | None -> ()
  in
  let shutdown ~force () =
    Array.iter
      (fun w ->
         if w.w_alive then begin
           if force then (try Unix.kill w.w_pid Sys.sigkill with _ -> ())
           else (try write_frame w.w_in stop_msg with _ -> ());
           (try Unix.close w.w_in with _ -> ());
           (try Unix.close w.w_out with _ -> ());
           (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
           w.w_alive <- false
         end)
      workers
  in
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"pool" "run:start"
      ~args:[ ("workers", Obs.Event.Int cfg.workers);
              ("strategy",
               Obs.Event.Str (Search.strategy_to_string cfg.strategy));
              ("resumed", Obs.Event.Bool (resume <> None)) ];
  let last_checkpoint = ref now in
  let main_loop () =
    let continue = ref true in
    while !continue do
      (* Budgets, first reason wins; same precedence as the sequential
         engine's per-path checks. *)
      if !stop_reason = None then begin
        if Budget.interrupted () then stop Budget.Interrupt
        else begin
          (match cfg.limits.Budget.max_paths with
           | Some n when !n_paths >= n -> stop Budget.Paths
           | _ -> ());
          (match cfg.limits.Budget.max_instructions with
           | Some n when !instr > n -> stop Budget.Instructions
           | _ -> ());
          (match cfg.limits.Budget.max_seconds with
           | Some s when elapsed () > s -> stop Budget.Deadline
           | _ -> ());
          (match cfg.limits.Budget.max_memory_mb with
           | Some mb when Budget.heap_mb () > float_of_int mb ->
             stop Budget.Memory
           | _ -> ())
        end
      end;
      (match checkpoint with
       | Some p ->
         let t = Unix.gettimeofday () in
         if t -. !last_checkpoint >= p.Checkpoint.every_s then begin
           last_checkpoint := t;
           p.Checkpoint.write (snapshot ~final:false)
         end
       | None -> ());
      (* Work-sharing: fill every idle worker while budget remains. *)
      let rec fill () =
        if !stop_reason = None && not (Search.is_empty frontier) then begin
          let paths_left =
            match cfg.limits.Budget.max_paths with
            | Some n -> !n_paths < n
            | None -> true
          in
          if paths_left then
            match
              Array.to_seq workers
              |> Seq.find (fun w -> w.w_alive && w.w_unit = None)
            with
            | Some w -> dispatch w; fill ()
            | None -> ()
        end
      in
      fill ();
      let busy = inflight () in
      Obs.Metrics.set m_busy (float_of_int busy);
      if busy = 0 then begin
        if Search.is_empty frontier || !stop_reason <> None then
          continue := false
        else if
          not (Array.exists (fun w -> w.w_alive) workers)
        then begin
          (* Work remains but nobody can run it: persist the frontier
             (so the run is resumable) and report the failure. *)
          (match checkpoint with
           | Some p -> p.Checkpoint.write (snapshot ~final:false)
           | None -> ());
          raise
            (Worker_fatal
               (Printf.sprintf "all %d workers died with work remaining"
                  cfg.workers))
        end
        (* else: dispatch failed because the only idle workers died
           while being written to; loop and retry with the survivors. *)
      end
      else begin
        let fds =
          Array.to_list workers
          |> List.filter_map (fun w ->
              if w.w_alive && w.w_unit <> None then Some w.w_out else None)
        in
        match Unix.select fds [] [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          List.iter
            (fun fd ->
               match
                 Array.to_seq workers |> Seq.find (fun w -> w.w_out == fd)
               with
               | None -> ()
               | Some w ->
                 (match read_frame fd with
                  | exception _ -> handle_death w
                  | j ->
                    (match
                       Option.bind (Json.member "cmd" j) Json.to_string_opt
                     with
                     | Some "result" ->
                       (match result_of_json j with
                        | Ok (id, r) -> merge w id r
                        | Error msg -> raise (Worker_fatal msg))
                     | Some "fatal" ->
                       let msg =
                         Option.value ~default:"worker failure"
                           (Option.bind (Json.member "msg" j)
                              Json.to_string_opt)
                       in
                       raise (Worker_fatal msg)
                     | _ -> ())))
            ready
      end
    done
  in
  match main_loop () with
  | () ->
    shutdown ~force:false ();
    (match checkpoint with
     | Some p -> p.Checkpoint.write (snapshot ~final:true)
     | None -> ());
    let wall = elapsed () in
    let errors =
      List.rev !errors_rev
      |> List.sort (fun (a : Error.t) (b : Error.t) ->
          match String.compare a.Error.site b.Error.site with
          | 0 ->
            String.compare
              (Error.kind_to_string a.Error.kind)
              (Error.kind_to_string b.Error.kind)
          | c -> c)
    in
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"pool" "run:end"
        ~args:[ ("paths", Obs.Event.Int !n_paths);
                ("errors", Obs.Event.Int !n_errors);
                ("requeues", Obs.Event.Int !requeued);
                ("worker_deaths", Obs.Event.Int !deaths) ];
    { r_errors = errors;
      r_paths = !n_paths;
      r_completed = !n_completed;
      r_errored = !n_errored;
      r_infeasible = !n_infeasible;
      r_unknown = !n_unknown;
      r_instructions = !instr;
      r_wall_time = wall;
      r_solver = !solver_acc;
      r_exhausted = !stop_reason = None && not !degraded;
      r_stop_reason = !stop_reason;
      r_visits = Search.visit_counts frontier;
      r_dispatched = !dispatched;
      r_requeued = !requeued;
      r_worker_deaths = !deaths }
  | exception Worker_fatal msg ->
    shutdown ~force:true ();
    failwith ("Engine pool: " ^ msg)
  | exception exn ->
    shutdown ~force:true ();
    raise exn

(* ------------------------------------------------------------------ *)

let fork_map ~workers f =
  if workers < 1 then invalid_arg "Pool.fork_map: workers must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  flush stdout;
  flush stderr;
  (* As in [run]: create every pipe before the first fork so each child
     can close the write ends it inherited from its siblings' pipes —
     otherwise a child dying early would never produce an EOF. *)
  let pipes = Array.init workers (fun _ -> Unix.pipe ()) in
  let children =
    Array.to_list
      (Array.init workers (fun i ->
           match Unix.fork () with
           | 0 ->
             Array.iteri
               (fun j (r', w') ->
                  if j = i then (try Unix.close r' with _ -> ())
                  else begin
                    (try Unix.close r' with _ -> ());
                    (try Unix.close w' with _ -> ())
                  end)
               pipes;
             Obs.Progress.disable ();
             Obs.Sink.reset ();
             (try write_frame (snd pipes.(i)) (f i) with _ -> ());
             Unix._exit 0
           | pid -> (pid, fst pipes.(i))))
  in
  Array.iter (fun (_, w) -> try Unix.close w with _ -> ()) pipes;
  List.map
    (fun (pid, r) ->
       let res =
         match read_frame r with
         | j -> Ok j
         | exception _ -> Error "worker died before reporting"
       in
       (try Unix.close r with _ -> ());
       (try ignore (Unix.waitpid [] pid) with _ -> ());
       res)
    children
