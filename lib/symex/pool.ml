module Json = Obs.Json
module Stats = Smt.Solver.Stats

type unit_outcome =
  | Unit_completed
  | Unit_errored
  | Unit_infeasible
  | Unit_unknown
  | Unit_aborted

type unit_result = {
  outcome : unit_outcome;
  forks : (string * Decision.t array) list;
  errors : Error.t list;
  visits : (string * int) list;
  instructions : int;
  degraded : bool;
  solver : Stats.t;
  requeue : Decision.t array option;
  chaos : (string * int) list;
  coverage : Obs.Coverage.t;
  profile : Obs.Profile.t;
  events : Obs.Event.t list;
  events_dropped : int;
}

type config = {
  workers : int;
  strategy : Search.strategy;
  limits : Budget.t;
  stop_after_errors : int option;
  label : string;
  heartbeat_ms : int option;
  max_unit_crashes : int;
}

type result = {
  r_errors : Error.t list;
  r_paths : int;
  r_completed : int;
  r_errored : int;
  r_infeasible : int;
  r_unknown : int;
  r_instructions : int;
  r_wall_time : float;
  r_solver : Stats.t;
  r_exhausted : bool;
  r_stop_reason : Budget.reason option;
  r_visits : (string * int) list;
  r_dispatched : int;
  r_requeued : int;
  r_worker_deaths : int;
  r_hung : int;
  r_quarantined : int;
  r_chaos : (string * int) list;
  r_coverage : Obs.Coverage.t;
  r_profile : Obs.Profile.t;
}

(* ------------------------------------------------------------------ *)
(* Framing: ASCII decimal payload length, a newline, then one JSON
   document.  Both directions of both pipes speak this format; it
   reuses the existing Obs.Json printer/parser rather than inventing a
   binary protocol, and a frame is trivially inspectable with strace
   or by dumping the pipe. *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let frame_string j =
  let payload = Json.to_string j in
  string_of_int (String.length payload) ^ "\n" ^ payload

let write_frame fd j =
  let s = frame_string j in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> raise End_of_file
  | _ -> Bytes.get b 0
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd b off (n - off) with
      | 0 -> raise End_of_file
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame fd =
  let hdr = Buffer.create 8 in
  let rec header () =
    match read_byte fd with
    | '\n' -> ()
    | c -> Buffer.add_char hdr c; header ()
  in
  header ();
  let len =
    match int_of_string_opt (Buffer.contents hdr) with
    | Some n when n >= 0 && n <= 1 lsl 30 -> n
    | _ -> failwith "pool: malformed frame header"
  in
  match Json.of_string (read_exact fd len) with
  | Ok j -> j
  | Error e -> failwith ("pool: malformed frame: " ^ e)

(* ------------------------------------------------------------------ *)
(* Message encoding.  Prefixes travel in their Decision.to_string form
   — the same representation checkpoints use — so work units are
   replayed without consulting the solver. *)

let prefix_to_json prefix =
  Json.List
    (Array.to_list
       (Array.map (fun d -> Json.Str (Decision.to_string d)) prefix))

let map_result f l =
  List.fold_right
    (fun x acc ->
       match acc with
       | Error _ -> acc
       | Ok tl -> (match f x with Ok y -> Ok (y :: tl) | Error e -> Error e))
    l (Ok [])

let prefix_of_json j =
  match Json.to_list_opt j with
  | None -> Error "pool: malformed prefix"
  | Some l ->
    Result.map Array.of_list
      (map_result
         (fun dj ->
            match Json.to_string_opt dj with
            | Some s -> Decision.of_string s
            | None -> Error "pool: malformed decision")
         l)

let outcome_to_string = function
  | Unit_completed -> "completed"
  | Unit_errored -> "errored"
  | Unit_infeasible -> "infeasible"
  | Unit_unknown -> "unknown"
  | Unit_aborted -> "aborted"

let outcome_of_string = function
  | "completed" -> Some Unit_completed
  | "errored" -> Some Unit_errored
  | "infeasible" -> Some Unit_infeasible
  | "unknown" -> Some Unit_unknown
  | "aborted" -> Some Unit_aborted
  | _ -> None

let unit_to_json id prefix =
  Json.Obj
    [ ("cmd", Json.Str "unit");
      ("id", Json.Int id);
      ("prefix", prefix_to_json prefix) ]

let stop_msg = Json.Obj [ ("cmd", Json.Str "stop") ]

let fatal_msg msg =
  Json.Obj [ ("cmd", Json.Str "fatal"); ("msg", Json.Str msg) ]

let hb_msg id = Json.Obj [ ("cmd", Json.Str "hb"); ("worker", Json.Int id) ]

let result_to_json id (r : unit_result) =
  Json.Obj
    [ ("cmd", Json.Str "result");
      ("id", Json.Int id);
      ("outcome", Json.Str (outcome_to_string r.outcome));
      ("forks",
       Json.List
         (List.map
            (fun (site, prefix) ->
               Json.Obj
                 [ ("site", Json.Str site); ("prefix", prefix_to_json prefix) ])
            r.forks));
      ("errors", Json.List (List.map Error.to_json r.errors));
      ("visits",
       Json.List
         (List.map
            (fun (site, n) ->
               Json.Obj [ ("site", Json.Str site); ("count", Json.Int n) ])
            r.visits));
      ("instructions", Json.Int r.instructions);
      ("degraded", Json.Bool r.degraded);
      ("solver", Stats.to_json r.solver);
      ("chaos",
       Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.chaos));
      ("coverage", Obs.Coverage.to_json r.coverage);
      ("profile", Obs.Profile.to_json r.profile);
      ("events", Json.List (List.map Obs.Event.to_json r.events));
      ("events_dropped", Json.Int r.events_dropped);
      ("requeue",
       match r.requeue with None -> Json.Null | Some p -> prefix_to_json p) ]

let result_of_json j =
  let ( let* ) = Result.bind in
  let require name = function
    | Some v -> Ok v
    | None -> Error ("pool: result missing " ^ name)
  in
  let* id = require "id" (Option.bind (Json.member "id" j) Json.to_int_opt) in
  let* outcome_s =
    require "outcome" (Option.bind (Json.member "outcome" j) Json.to_string_opt)
  in
  let* outcome = require "outcome" (outcome_of_string outcome_s) in
  let* forks_l =
    require "forks" (Option.bind (Json.member "forks" j) Json.to_list_opt)
  in
  let* forks =
    map_result
      (fun fj ->
         let* site =
           require "fork site"
             (Option.bind (Json.member "site" fj) Json.to_string_opt)
         in
         let* prefix =
           match Json.member "prefix" fj with
           | Some pj -> prefix_of_json pj
           | None -> Error "pool: fork missing prefix"
         in
         Ok (site, prefix))
      forks_l
  in
  let* errors =
    match Option.bind (Json.member "errors" j) Json.to_list_opt with
    | None -> Ok []
    | Some l -> map_result Error.of_json l
  in
  let* visits =
    match Option.bind (Json.member "visits" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun vj ->
           match
             ( Option.bind (Json.member "site" vj) Json.to_string_opt,
               Option.bind (Json.member "count" vj) Json.to_int_opt )
           with
           | Some site, Some n -> Ok (site, n)
           | _ -> Error "pool: malformed visit entry")
        l
  in
  let* requeue =
    match Json.member "requeue" j with
    | None | Some Json.Null -> Ok None
    | Some pj -> Result.map Option.some (prefix_of_json pj)
  in
  let solver =
    match Json.member "solver" j with
    | Some sj -> Stats.of_json sj
    | None -> Stats.zero
  in
  let chaos =
    match Json.member "chaos" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int_opt v))
        fields
    | _ -> []
  in
  let coverage =
    match Json.member "coverage" j with
    | Some cj -> Obs.Coverage.of_json cj
    | None -> Obs.Coverage.zero
  in
  let profile =
    match Json.member "profile" j with
    | Some pj -> Obs.Profile.of_json pj
    | None -> Obs.Profile.zero
  in
  let events =
    match Option.bind (Json.member "events" j) Json.to_list_opt with
    | None -> []
    | Some l -> List.filter_map Obs.Event.of_json l
  in
  Ok
    ( id,
      { outcome;
        forks;
        errors;
        visits;
        instructions =
          Option.value ~default:0
            (Option.bind (Json.member "instructions" j) Json.to_int_opt);
        degraded =
          Option.value ~default:false
            (Option.bind (Json.member "degraded" j) Json.to_bool_opt);
        solver;
        requeue;
        chaos;
        coverage;
        profile;
        events;
        events_dropped =
          Option.value ~default:0
            (Option.bind (Json.member "events_dropped" j) Json.to_int_opt) } )

(* ------------------------------------------------------------------ *)
(* Worker side.  Runs after [fork]: silence the inherited telemetry
   (the master keeps the only progress meter and trace recorder), then
   serve units until a stop frame or EOF.  A worker exits through
   [Unix._exit] so it never runs the parent's [at_exit] hooks or
   re-flushes inherited channel buffers.

   With [heartbeat_ms] set, a SIGALRM-driven timer writes a tiny "hb"
   frame at that period, proving to the master's watchdog that the
   worker is alive even while a long solver call is in flight.  The
   [writing] flag keeps the handler from splicing a heartbeat into the
   middle of a result frame. *)

let worker_main ~exec ~worker_id ~heartbeat_ms r w =
  Obs.Progress.disable ();
  (* If the master has a live trace recorder, this worker forwards its
     own event stream back in result frames.  Capture the master's
     epoch before resetting the sink, then re-pin it, so forwarded
     timestamps share the master's timeline. *)
  let forward = Obs.Export.active () in
  let master_epoch = Obs.Sink.current_epoch () in
  Obs.Sink.reset ();
  if forward then begin
    if not (Float.is_nan master_epoch) then Obs.Sink.set_epoch master_epoch;
    Obs.Export.forwarding_begin ()
  end;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* Each forked worker must draw its own chaos decisions — siblings
     inherit identical PRNG streams over [fork] and would otherwise all
     fail on the same draw.  This also zeroes the injection counters
     inherited from the master, so the worker accounts only its own. *)
  if Chaos.active () then Chaos.reseed worker_id;
  let writing = ref false in
  let stop_heartbeat () =
    try
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0; it_value = 0.0 })
    with _ -> ()
  in
  (match heartbeat_ms with
   | None -> ()
   | Some ms ->
     let iv = float_of_int (max 1 ms) /. 1000.0 in
     Sys.set_signal Sys.sigalrm
       (Sys.Signal_handle
          (fun _ ->
             if not !writing then
               try write_frame w (hb_msg worker_id) with _ -> ()));
     ignore
       (Unix.setitimer Unix.ITIMER_REAL
          { Unix.it_interval = iv; it_value = iv }));
  let send_string s =
    writing := true;
    Fun.protect
      ~finally:(fun () -> writing := false)
      (fun () -> write_all w (Bytes.unsafe_of_string s) 0 (String.length s))
  in
  let send j = send_string (frame_string j) in
  let send_result id res =
    let res =
      if forward then begin
        let events, events_dropped = Obs.Export.forwarding_take () in
        { res with chaos = Chaos.counts (); events; events_dropped }
      end
      else { res with chaos = Chaos.counts () }
    in
    let j = result_to_json id res in
    if Chaos.fire Chaos.Frame_truncate then begin
      (* A worker dying mid-write: half a frame, then gone.  Exiting
         here (rather than carrying on) makes the master see EOF right
         after the torn bytes, exactly as a real crash would. *)
      let s = frame_string j in
      writing := true;
      (try write_all w (Bytes.unsafe_of_string s) 0 (String.length s / 2)
       with _ -> ());
      stop_heartbeat ();
      Unix._exit 132
    end
    else if Chaos.fire Chaos.Frame_corrupt then begin
      (* Well-framed garbage: the length header is intact but the
         payload no longer parses, so the master must treat this
         worker as compromised and requeue its unit. *)
      let payload = Bytes.of_string (Json.to_string j) in
      if Bytes.length payload > 0 then Bytes.set payload 0 'X';
      send_string
        (string_of_int (Bytes.length payload) ^ "\n"
        ^ Bytes.to_string payload)
    end
    else send j
  in
  let rec loop () =
    let j = read_frame r in
    match Option.bind (Json.member "cmd" j) Json.to_string_opt with
    | Some "stop" | None -> ()
    | Some "unit" ->
      let id =
        Option.value ~default:0
          (Option.bind (Json.member "id" j) Json.to_int_opt)
      in
      (match
         match Json.member "prefix" j with
         | Some pj -> prefix_of_json pj
         | None -> Error "pool: unit missing prefix"
       with
       | Error msg -> send (fatal_msg msg)
       | Ok prefix ->
         if Chaos.fire Chaos.Worker_crash then begin
           stop_heartbeat ();
           Unix._exit 131
         end;
         if Chaos.fire Chaos.Worker_hang then begin
           (* A stuck worker: no heartbeats, no result, no exit.  Only
              the master's watchdog can clear it. *)
           stop_heartbeat ();
           while true do
             Unix.sleepf 3600.0
           done
         end;
         (match exec ~prefix with
          | res -> send_result id res; loop ()
          | exception exn -> send (fatal_msg (Printexc.to_string exn))))
    | Some _ -> loop ()
  in
  (try loop () with End_of_file -> () | _ -> ());
  stop_heartbeat ();
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Master side. *)

type worker_state = {
  w_id : int;
  w_pid : int;
  w_in : Unix.file_descr;   (* master -> worker *)
  w_out : Unix.file_descr;  (* worker -> master *)
  mutable w_unit : (int * Decision.t array * float) option;
      (* unit id, dispatched prefix, dispatch time *)
  mutable w_alive : bool;
  mutable w_last_seen : float;
      (* last frame (result or heartbeat) received from this worker *)
  mutable w_chaos : (string * int) list;
      (* cumulative injection counts last reported by this worker *)
}

exception Worker_fatal of string

(* A dispatch can fail (worker died while being written to) without the
   run being dead — bounded by this many consecutive no-progress loop
   iterations before the master gives up and persists the frontier. *)
let max_dispatch_stalls = 10_000

let run cfg ?resume ?checkpoint ~exec () =
  if cfg.workers < 1 then invalid_arg "Pool.run: workers must be >= 1";
  if cfg.max_unit_crashes < 1 then
    invalid_arg "Pool.run: max_unit_crashes must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let frontier = Search.create cfg.strategy in
  let error_table : (string * Error.kind, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let errors_rev = ref [] in
  let n_errors = ref 0 in
  let n_paths = ref 0 in
  let n_completed = ref 0 in
  let n_errored = ref 0 in
  let n_infeasible = ref 0 in
  let n_unknown = ref 0 in
  let instr = ref 0 in
  let solver_acc = ref Stats.zero in
  let degraded = ref false in
  let stop_reason = ref None in
  let dispatched = ref 0 in
  let requeued = ref 0 in
  let deaths = ref 0 in
  let hung = ref 0 in
  let quarantined = ref 0 in
  let stalls = ref 0 in
  let chaos0 = Chaos.counts () in
  let worker_chaos = ref [] in
  let coverage_acc = ref Obs.Coverage.zero in
  let profile_acc = ref Obs.Profile.zero in
  let now = Unix.gettimeofday () in
  let started =
    match resume with None -> now | Some ck -> now -. ck.Checkpoint.wall_time
  in
  (match resume with
   | None -> Search.push frontier ~site:"root" [||]
   | Some ck ->
     if ck.Checkpoint.label <> cfg.label then
       failwith
         (Printf.sprintf "Pool.run: checkpoint is for %S, not %S"
            ck.Checkpoint.label cfg.label);
     let here = Search.strategy_to_string cfg.strategy in
     if ck.Checkpoint.strategy <> here then
       failwith
         (Printf.sprintf
            "Pool.run: checkpoint used strategy %s, this run uses %s"
            ck.Checkpoint.strategy here);
     List.iter
       (fun (site, prefix) -> Search.push frontier ~site prefix)
       ck.Checkpoint.frontier;
     Search.set_visit_counts frontier ck.Checkpoint.visits;
     Search.set_rng_state frontier ck.Checkpoint.rng;
     n_paths := ck.Checkpoint.paths;
     n_completed := ck.Checkpoint.completed;
     n_errored := ck.Checkpoint.errored;
     n_infeasible := ck.Checkpoint.infeasible;
     n_unknown := ck.Checkpoint.unknown;
     instr := ck.Checkpoint.instructions;
     solver_acc := ck.Checkpoint.solver;
     degraded := ck.Checkpoint.degraded;
     List.iter
       (fun (e : Error.t) ->
          Hashtbl.replace error_table (e.Error.site, e.Error.kind) ();
          errors_rev := e :: !errors_rev;
          incr n_errors)
       ck.Checkpoint.errors);
  let m_queue =
    Obs.Metrics.gauge ~help:"pending work units in the master frontier"
      "symsysc_pool_queue_depth"
  in
  let m_busy =
    Obs.Metrics.gauge ~help:"workers currently executing a unit"
      "symsysc_pool_workers_busy"
  in
  let m_dispatched =
    Obs.Metrics.counter ~help:"work units handed to workers"
      "symsysc_pool_units_dispatched"
  in
  let m_requeued =
    Obs.Metrics.counter
      ~help:"work units re-queued (aborts and worker deaths)"
      "symsysc_pool_requeues"
  in
  let m_deaths =
    Obs.Metrics.counter ~help:"worker processes lost mid-run"
      "symsysc_pool_worker_deaths"
  in
  let m_hung =
    Obs.Metrics.counter
      ~help:"workers killed by the heartbeat watchdog"
      "symsysc_pool_workers_hung"
  in
  let m_quarantined =
    Obs.Metrics.counter
      ~help:"work units quarantined after repeatedly killing workers"
      "symsysc_pool_units_quarantined"
  in
  (* Workers are spawned dynamically (the master replaces dead ones),
     so each spawn creates its own pipe pair and the master closes the
     worker-side ends immediately after the fork.  A child can then
     only inherit the master-side ends (write-to-worker / read-from-
     worker) of the siblings alive at its fork — it closes those too —
     and crucially can never inherit a sibling's result-write end,
     which is what would mask the EOF that signals that sibling's
     death. *)
  let workers : worker_state list ref = ref [] in
  let next_id = ref 0 in
  let spawns = ref 0 in
  let spawn_cap = cfg.workers + 1024 in
  let spawn () =
    let ur, uw = Unix.pipe () in
    let rr, rw = Unix.pipe () in
    flush stdout;
    flush stderr;
    let id = !next_id in
    incr next_id;
    incr spawns;
    match Unix.fork () with
    | 0 ->
      (try Unix.close uw with _ -> ());
      (try Unix.close rr with _ -> ());
      List.iter
        (fun w ->
           (try Unix.close w.w_in with _ -> ());
           (try Unix.close w.w_out with _ -> ()))
        !workers;
      (try
         worker_main ~exec ~worker_id:id ~heartbeat_ms:cfg.heartbeat_ms ur rw
       with _ -> ());
      Unix._exit 125
    | pid ->
      (try Unix.close ur with _ -> ());
      (try Unix.close rw with _ -> ());
      let w =
        { w_id = id; w_pid = pid; w_in = uw; w_out = rr; w_unit = None;
          w_alive = true; w_last_seen = Unix.gettimeofday (); w_chaos = [] }
      in
      workers := !workers @ [ w ]
  in
  for _ = 1 to cfg.workers do spawn () done;
  let elapsed () = Unix.gettimeofday () -. started in
  let alive () = List.filter (fun w -> w.w_alive) !workers in
  let inflight () =
    List.fold_left
      (fun acc w -> acc + (match w.w_unit with Some _ -> 1 | None -> 0))
      0 !workers
  in
  let stop reason = if !stop_reason = None then stop_reason := Some reason in
  let snapshot ~final =
    let in_flight =
      List.filter_map
        (fun w ->
           match w.w_unit with
           | Some (_, prefix, _) -> Some ("in-flight", prefix)
           | None -> None)
        !workers
    in
    { Checkpoint.label = cfg.label;
      strategy = Search.strategy_to_string cfg.strategy;
      frontier = Search.entries frontier @ in_flight;
      visits = Search.visit_counts frontier;
      rng = Search.rng_state frontier;
      paths = !n_paths - inflight ();
      completed = !n_completed;
      errored = !n_errored;
      infeasible = !n_infeasible;
      unknown = !n_unknown;
      instructions = !instr;
      wall_time = elapsed ();
      solver = !solver_acc;
      errors = List.rev !errors_rev;
      degraded = !degraded;
      stop_reason =
        (if final then Option.map Budget.reason_to_string !stop_reason
         else None) }
  in
  (* Units that repeatedly take their worker down with them are poison:
     after [max_unit_crashes] deaths attributable to the same prefix,
     the unit is quarantined instead of requeued — losing one path
     (and the exhaustiveness claim) beats losing the whole campaign. *)
  let crash_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let prefix_key p =
    String.concat ";" (Array.to_list (Array.map Decision.to_string p))
  in
  let handle_death ?(hung = false) w =
    w.w_alive <- false;
    (* SIGKILL before reaping: a hung worker never exits on its own,
       and one that sent a corrupt frame may still be running. *)
    (try Unix.kill w.w_pid Sys.sigkill with _ -> ());
    (try Unix.close w.w_in with _ -> ());
    (try Unix.close w.w_out with _ -> ());
    (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
    incr deaths;
    Obs.Metrics.inc m_deaths;
    (match w.w_unit with
     | Some (id, prefix, _) ->
       w.w_unit <- None;
       decr n_paths;
       let key = prefix_key prefix in
       let crashes =
         1 + Option.value ~default:0 (Hashtbl.find_opt crash_counts key)
       in
       Hashtbl.replace crash_counts key crashes;
       let quarantine = crashes >= cfg.max_unit_crashes in
       if quarantine then begin
         incr quarantined;
         Obs.Metrics.inc m_quarantined;
         degraded := true
       end
       else begin
         incr requeued;
         Obs.Metrics.inc m_requeued;
         Search.push frontier ~site:"requeued" prefix
       end;
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"pool"
           (if quarantine then "quarantine" else "worker-death")
           ~args:[ ("worker", Obs.Event.Int w.w_id);
                   ("unit", Obs.Event.Int id);
                   ("hung", Obs.Event.Bool hung);
                   ("crashes", Obs.Event.Int crashes);
                   ("requeued", Obs.Event.Bool (not quarantine)) ]
     | None ->
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"pool" "worker-death"
           ~args:[ ("worker", Obs.Event.Int w.w_id);
                   ("hung", Obs.Event.Bool hung);
                   ("requeued", Obs.Event.Bool false) ])
  in
  let dispatch w =
    match Search.pop frontier with
    | None -> ()
    | Some prefix ->
      let id = !n_paths in
      incr n_paths;
      incr dispatched;
      w.w_unit <- Some (id, prefix, Unix.gettimeofday ());
      w.w_last_seen <- Unix.gettimeofday ();
      Obs.Metrics.inc m_dispatched;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"pool" "dispatch"
          ~args:[ ("worker", Obs.Event.Int w.w_id);
                  ("unit", Obs.Event.Int id);
                  ("prefix_len", Obs.Event.Int (Array.length prefix));
                  ("frontier", Obs.Event.Int (Search.length frontier)) ];
      (try write_frame w.w_in (unit_to_json id prefix); stalls := 0
       with _ -> handle_death w)
  in
  let merge w id (r : unit_result) =
    match w.w_unit with
    | Some (uid, prefix, t0) when uid = id ->
      w.w_unit <- None;
      stalls := 0;
      (* The worker reports cumulative injection counts; fold in the
         delta since its previous report so multi-unit workers are
         accounted exactly once. *)
      let delta = Chaos.sub_counts r.chaos w.w_chaos in
      w.w_chaos <- r.chaos;
      worker_chaos := Chaos.add_counts !worker_chaos delta;
      (match r.outcome with
       | Unit_aborted ->
         decr n_paths;
         incr requeued;
         Obs.Metrics.inc m_requeued;
         let p = match r.requeue with Some p -> p | None -> prefix in
         Search.push frontier ~site:"requeued" p
       | Unit_completed -> incr n_completed
       | Unit_errored -> incr n_errored
       | Unit_infeasible -> incr n_infeasible
       | Unit_unknown -> incr n_unknown);
      if r.outcome <> Unit_aborted then begin
        instr := !instr + r.instructions;
        Search.merge_visit_counts frontier r.visits;
        (* Coverage merges only from units that counted: exactly one
           contribution per executed path, so the merged map matches a
           sequential run over the same path set bit for bit. *)
        coverage_acc := Obs.Coverage.add !coverage_acc r.coverage
      end;
      List.iter (fun (site, p) -> Search.push frontier ~site p) r.forks;
      solver_acc := Stats.add !solver_acc r.solver;
      (* Profile and forwarded events mirror the solver stats: work
         done is accounted even when the unit aborted. *)
      profile_acc := Obs.Profile.add !profile_acc r.profile;
      Obs.Export.inject ~worker:w.w_id r.events;
      if r.events_dropped > 0 then
        Obs.Export.note_remote_dropped r.events_dropped;
      if r.degraded then degraded := true;
      List.iter
        (fun (e : Error.t) ->
           let key = (e.Error.site, e.Error.kind) in
           if not (Hashtbl.mem error_table key) then begin
             Hashtbl.add error_table key ();
             (* Rewrite the worker-local bookkeeping fields into
                campaign terms: the unit id is the global path id and
                discovery time/instructions are campaign totals. *)
             errors_rev :=
               { e with
                 Error.path_id = id;
                 found_after = elapsed ();
                 instructions = !instr }
               :: !errors_rev;
             incr n_errors;
             if !Obs.Sink.enabled then
               Obs.Sink.instant ~cat:"pool" "error"
                 ~args:[ ("site", Obs.Event.Str e.Error.site);
                         ("kind",
                          Obs.Event.Str (Error.kind_to_string e.Error.kind));
                         ("worker", Obs.Event.Int w.w_id) ];
             match cfg.stop_after_errors with
             | Some n when !n_errors >= n -> stop Budget.Errors
             | _ -> ()
           end)
        r.errors;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.complete ~cat:"pool"
          ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6)
          "unit"
          ~args:[ ("worker", Obs.Event.Int w.w_id);
                  ("unit", Obs.Event.Int id);
                  ("outcome", Obs.Event.Str (outcome_to_string r.outcome));
                  ("forks", Obs.Event.Int (List.length r.forks)) ]
    | Some _ | None -> ()
  in
  let shutdown ~force () =
    List.iter
      (fun w ->
         if w.w_alive then begin
           if force then (try Unix.kill w.w_pid Sys.sigkill with _ -> ())
           else (try write_frame w.w_in stop_msg with _ -> ());
           (try Unix.close w.w_in with _ -> ());
           (try Unix.close w.w_out with _ -> ());
           (try ignore (Unix.waitpid [] w.w_pid) with _ -> ());
           w.w_alive <- false
         end)
      !workers
  in
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"pool" "run:start"
      ~args:[ ("workers", Obs.Event.Int cfg.workers);
              ("strategy",
               Obs.Event.Str (Search.strategy_to_string cfg.strategy));
              ("heartbeat_ms",
               Obs.Event.Int (Option.value ~default:0 cfg.heartbeat_ms));
              ("resumed", Obs.Event.Bool (resume <> None)) ];
  let last_checkpoint = ref now in
  let main_loop () =
    let continue = ref true in
    while !continue do
      (* Budgets, first reason wins; same precedence as the sequential
         engine's per-path checks. *)
      if !stop_reason = None then begin
        if Budget.interrupted () then stop Budget.Interrupt
        else begin
          (match cfg.limits.Budget.max_paths with
           | Some n when !n_paths >= n -> stop Budget.Paths
           | _ -> ());
          (match cfg.limits.Budget.max_instructions with
           | Some n when !instr > n -> stop Budget.Instructions
           | _ -> ());
          (match cfg.limits.Budget.max_seconds with
           | Some s when elapsed () > s -> stop Budget.Deadline
           | _ -> ());
          (match cfg.limits.Budget.max_memory_mb with
           | Some mb when Budget.heap_mb () > float_of_int mb ->
             stop Budget.Memory
           | _ -> ())
        end
      end;
      (match checkpoint with
       | Some p ->
         let t = Unix.gettimeofday () in
         if t -. !last_checkpoint >= p.Checkpoint.every_s then begin
           last_checkpoint := t;
           p.Checkpoint.write (snapshot ~final:false)
         end
       | None -> ());
      (* Watchdog: a worker with a unit in flight that has produced no
         frame — result or heartbeat — within the grace period is
         presumed wedged (SIGSTOP, runaway loop, injected hang).  It is
         killed and its unit requeued; EOF detection alone would wait
         on it forever. *)
      (match cfg.heartbeat_ms with
       | None -> ()
       | Some ms ->
         (* Generous on purpose: a missed heartbeat must mean a wedged
            worker, not a loaded machine — a spurious kill is healed by
            the requeue, but three on one slow unit would quarantine
            it. *)
         let grace = Float.max (8.0 *. float_of_int ms /. 1000.0) 1.0 in
         let t = Unix.gettimeofday () in
         List.iter
           (fun w ->
              if w.w_alive && w.w_unit <> None
                 && t -. w.w_last_seen > grace
              then begin
                incr hung;
                Obs.Metrics.inc m_hung;
                if !Obs.Sink.enabled then
                  Obs.Sink.instant ~cat:"pool" "watchdog-kill"
                    ~args:[ ("worker", Obs.Event.Int w.w_id);
                            ("silent_s",
                             Obs.Event.Float (t -. w.w_last_seen)) ];
                handle_death ~hung:true w
              end)
           !workers);
      (* Keep the pool at strength: dead workers are replaced while
         work remains, so a chaos campaign (or a string of genuine
         crashes) degrades throughput rather than the verdict.  The
         spawn cap bounds a pathological crash loop. *)
      if !stop_reason = None && not (Search.is_empty frontier) then begin
        let missing = cfg.workers - List.length (alive ()) in
        for _ = 1 to min missing (spawn_cap - !spawns) do
          spawn ()
        done
      end;
      (* Work-sharing: fill every idle worker while budget remains. *)
      let rec fill () =
        if !stop_reason = None && not (Search.is_empty frontier) then begin
          let paths_left =
            match cfg.limits.Budget.max_paths with
            | Some n -> !n_paths < n
            | None -> true
          in
          if paths_left then
            match
              List.find_opt (fun w -> w.w_alive && w.w_unit = None) !workers
            with
            | Some w -> dispatch w; fill ()
            | None -> ()
        end
      in
      fill ();
      let busy = inflight () in
      Obs.Metrics.set m_busy (float_of_int busy);
      (* Live progress (line mode or the --top dashboard); [due]
         dedupes, so polling every loop iteration is cheap. *)
      (let done_paths = !n_paths - busy in
       if Obs.Progress.due ~paths:done_paths then begin
         let t = Unix.gettimeofday () in
         Obs.Progress.tick
           { Obs.Progress.paths = done_paths;
             instructions = !instr;
             frontier = Search.length frontier;
             errors = !n_errors;
             solver_time = !solver_acc.Stats.time;
             solver_queries = !solver_acc.Stats.queries;
             cache_hits = !solver_acc.Stats.cache_hits + !solver_acc.Stats.cex_hits;
             wall = elapsed ();
             workers =
               List.filter_map
                 (fun w ->
                    if w.w_alive then
                      Some
                        { Obs.Progress.wr_id = w.w_id;
                          wr_busy = w.w_unit <> None;
                          wr_age = t -. w.w_last_seen }
                    else None)
                 !workers }
       end);
      if busy = 0 then begin
        if Search.is_empty frontier || !stop_reason <> None then
          continue := false
        else if
          not (List.exists (fun w -> w.w_alive) !workers)
          && !spawns >= spawn_cap
        then begin
          (* Work remains but nobody can run it and the respawn budget
             is spent: persist the frontier (so the run is resumable)
             and report the failure. *)
          (match checkpoint with
           | Some p -> p.Checkpoint.write (snapshot ~final:false)
           | None -> ());
          raise
            (Worker_fatal
               (Printf.sprintf
                  "all workers died with work remaining (%d spawned)"
                  !spawns))
        end
        else begin
          (* Dispatch made no progress this iteration (the idle workers
             died while being written to, or were just respawned).
             Retry — but boundedly, so a repeated dispatch failure
             cannot spin the master forever. *)
          incr stalls;
          if !stalls >= max_dispatch_stalls then begin
            (match checkpoint with
             | Some p -> p.Checkpoint.write (snapshot ~final:false)
             | None -> ());
            raise
              (Worker_fatal
                 (Printf.sprintf
                    "dispatch stalled %d consecutive times with work \
                     remaining"
                    !stalls))
          end;
          ignore (Unix.select [] [] [] 0.001)
        end
      end
      else begin
        let fds =
          List.filter_map
            (fun w -> if w.w_alive then Some w.w_out else None)
            !workers
        in
        match Unix.select fds [] [] 0.1 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | ready, _, _ ->
          List.iter
            (fun fd ->
               (* Match on liveness too: a dead worker's closed fd
                  number is reused by the next spawn's pipe, and the
                  stale entry would otherwise shadow the live worker —
                  swallowing its frames until the watchdog killed it. *)
               match
                 List.find_opt
                   (fun w -> w.w_alive && w.w_out == fd)
                   !workers
               with
               | None -> ()
               | Some w ->
                 if w.w_alive then
                   match read_frame fd with
                   | exception _ -> handle_death w
                   | j ->
                     w.w_last_seen <- Unix.gettimeofday ();
                     (match
                        Option.bind (Json.member "cmd" j) Json.to_string_opt
                      with
                      | Some "result" ->
                        (match result_of_json j with
                         | Ok (id, r) -> merge w id r
                         | Error msg -> raise (Worker_fatal msg))
                      | Some "hb" -> ()
                      | Some "fatal" ->
                        let msg =
                          Option.value ~default:"worker failure"
                            (Option.bind (Json.member "msg" j)
                               Json.to_string_opt)
                        in
                        raise (Worker_fatal msg)
                      | _ -> ()))
            ready
      end
    done
  in
  match main_loop () with
  | () ->
    shutdown ~force:false ();
    (match checkpoint with
     | Some p -> p.Checkpoint.write (snapshot ~final:true)
     | None -> ());
    let wall = elapsed () in
    let errors =
      List.rev !errors_rev
      |> List.sort (fun (a : Error.t) (b : Error.t) ->
          match String.compare a.Error.site b.Error.site with
          | 0 ->
            String.compare
              (Error.kind_to_string a.Error.kind)
              (Error.kind_to_string b.Error.kind)
          | c -> c)
    in
    let chaos =
      Chaos.add_counts
        (Chaos.sub_counts (Chaos.counts ()) chaos0)
        !worker_chaos
    in
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"pool" "run:end"
        ~args:[ ("paths", Obs.Event.Int !n_paths);
                ("errors", Obs.Event.Int !n_errors);
                ("requeues", Obs.Event.Int !requeued);
                ("worker_deaths", Obs.Event.Int !deaths);
                ("hung", Obs.Event.Int !hung);
                ("quarantined", Obs.Event.Int !quarantined) ];
    { r_errors = errors;
      r_paths = !n_paths;
      r_completed = !n_completed;
      r_errored = !n_errored;
      r_infeasible = !n_infeasible;
      r_unknown = !n_unknown;
      r_instructions = !instr;
      r_wall_time = wall;
      r_solver = !solver_acc;
      r_exhausted = !stop_reason = None && not !degraded;
      r_stop_reason = !stop_reason;
      r_visits = Search.visit_counts frontier;
      r_dispatched = !dispatched;
      r_requeued = !requeued;
      r_worker_deaths = !deaths;
      r_hung = !hung;
      r_quarantined = !quarantined;
      r_chaos = chaos;
      r_coverage = !coverage_acc;
      r_profile = !profile_acc }
  | exception Worker_fatal msg ->
    shutdown ~force:true ();
    failwith ("Engine pool: " ^ msg)
  | exception exn ->
    shutdown ~force:true ();
    raise exn

(* ------------------------------------------------------------------ *)

let fork_map ~workers f =
  if workers < 1 then invalid_arg "Pool.fork_map: workers must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  flush stdout;
  flush stderr;
  (* Create every pipe before the first fork so each child can close
     the write ends it inherited from its siblings' pipes — otherwise a
     child dying early would never produce an EOF. *)
  let pipes = Array.init workers (fun _ -> Unix.pipe ()) in
  let children =
    Array.to_list
      (Array.init workers (fun i ->
           match Unix.fork () with
           | 0 ->
             Array.iteri
               (fun j (r', w') ->
                  if j = i then (try Unix.close r' with _ -> ())
                  else begin
                    (try Unix.close r' with _ -> ());
                    (try Unix.close w' with _ -> ())
                  end)
               pipes;
             Obs.Progress.disable ();
             Obs.Sink.reset ();
             (try write_frame (snd pipes.(i)) (f i) with _ -> ());
             Unix._exit 0
           | pid -> (pid, fst pipes.(i))))
  in
  Array.iter (fun (_, w) -> try Unix.close w with _ -> ()) pipes;
  List.map
    (fun (pid, r) ->
       let res =
         match read_frame r with
         | j -> Ok j
         | exception _ -> Error "worker died before reporting"
       in
       (try Unix.close r with _ -> ());
       (try ignore (Unix.waitpid [] pid) with _ -> ());
       res)
    children
