module Json = Obs.Json
module Stats = Smt.Solver.Stats

type unit_outcome =
  | Unit_completed
  | Unit_errored
  | Unit_infeasible
  | Unit_unknown
  | Unit_aborted

type unit_result = {
  outcome : unit_outcome;
  forks : (string * Decision.t array) list;
  errors : Error.t list;
  visits : (string * int) list;
  instructions : int;
  degraded : bool;
  solver : Stats.t;
  requeue : Decision.t array option;
  chaos : (string * int) list;
  coverage : Obs.Coverage.t;
  profile : Obs.Profile.t;
  events : Obs.Event.t list;
  events_dropped : int;
  snapshots_taken : int;
  snapshot_restores : int;
  replay_fallbacks : int;
  instructions_saved : int;
}

type config = {
  workers : int;
  strategy : Search.strategy;
  limits : Budget.t;
  stop_after_errors : int option;
  label : string;
  heartbeat_ms : int option;
  max_unit_crashes : int;
  listen : Transport.listener option;
  lease_ms : int option;
  cookie : string option;
}

type result = {
  r_errors : Error.t list;
  r_paths : int;
  r_completed : int;
  r_errored : int;
  r_infeasible : int;
  r_unknown : int;
  r_instructions : int;
  r_wall_time : float;
  r_solver : Stats.t;
  r_exhausted : bool;
  r_stop_reason : Budget.reason option;
  r_visits : (string * int) list;
  r_dispatched : int;
  r_requeued : int;
  r_worker_deaths : int;
  r_hung : int;
  r_quarantined : int;
  r_lease_expired : int;
  r_duplicates : int;
  r_reconnects : int;
  r_chaos : (string * int) list;
  r_coverage : Obs.Coverage.t;
  r_profile : Obs.Profile.t;
  r_snapshots_taken : int;
  r_snapshot_restores : int;
  r_replay_fallbacks : int;
  r_instructions_saved : int;
}

(* ------------------------------------------------------------------ *)
(* Message encoding.  Prefixes travel in their Decision.to_string form
   — the same representation checkpoints use — so work units are
   replayed without consulting the solver.  The framing itself
   (length-prefixed JSON) lives in {!Transport} and is identical over
   pipes and sockets. *)

let frame_string = Transport.frame_string

let prefix_to_json prefix =
  Json.List
    (Array.to_list
       (Array.map (fun d -> Json.Str (Decision.to_string d)) prefix))

let map_result f l =
  List.fold_right
    (fun x acc ->
       match acc with
       | Error _ -> acc
       | Ok tl -> (match f x with Ok y -> Ok (y :: tl) | Error e -> Error e))
    l (Ok [])

let prefix_of_json j =
  match Json.to_list_opt j with
  | None -> Error "pool: malformed prefix"
  | Some l ->
    Result.map Array.of_list
      (map_result
         (fun dj ->
            match Json.to_string_opt dj with
            | Some s -> Decision.of_string s
            | None -> Error "pool: malformed decision")
         l)

let outcome_to_string = function
  | Unit_completed -> "completed"
  | Unit_errored -> "errored"
  | Unit_infeasible -> "infeasible"
  | Unit_unknown -> "unknown"
  | Unit_aborted -> "aborted"

let outcome_of_string = function
  | "completed" -> Some Unit_completed
  | "errored" -> Some Unit_errored
  | "infeasible" -> Some Unit_infeasible
  | "unknown" -> Some Unit_unknown
  | "aborted" -> Some Unit_aborted
  | _ -> None

let unit_to_json id prefix =
  Json.Obj
    [ ("cmd", Json.Str "unit");
      ("id", Json.Int id);
      ("prefix", prefix_to_json prefix) ]

let stop_msg = Json.Obj [ ("cmd", Json.Str "stop") ]

let bye_msg = Json.Obj [ ("cmd", Json.Str "bye") ]

let fatal_msg msg =
  Json.Obj [ ("cmd", Json.Str "fatal"); ("msg", Json.Str msg) ]

let hb_msg id = Json.Obj [ ("cmd", Json.Str "hb"); ("worker", Json.Int id) ]

(* The TCP registration handshake.  A dialing worker introduces itself
   with [hello]; the master either answers [welcome] (assigning the
   peer id and pushing down heartbeat/forwarding settings) or a [fatal]
   frame naming the mismatch — a worker started with the wrong
   testbench, strategy or parameters must fail loudly, not corrupt the
   campaign. *)
let hello_msg ~label ~strategy ~slot ~reconnects ~cookie =
  Json.Obj
    ([ ("cmd", Json.Str "hello");
       ("label", Json.Str label);
       ("strategy", Json.Str strategy);
       ("slot", Json.Int slot);
       ("reconnects", Json.Int reconnects) ]
     @ match cookie with None -> [] | Some c -> [ ("cookie", Json.Str c) ])

let welcome_msg ~peer ~heartbeat_ms ~forward ~epoch =
  Json.Obj
    [ ("cmd", Json.Str "welcome");
      ("peer", Json.Int peer);
      ("heartbeat_ms", Json.Int (Option.value ~default:0 heartbeat_ms));
      ("forward", Json.Bool forward);
      ("epoch", if Float.is_nan epoch then Json.Null else Json.Float epoch) ]

let result_to_json id (r : unit_result) =
  Json.Obj
    [ ("cmd", Json.Str "result");
      ("id", Json.Int id);
      ("outcome", Json.Str (outcome_to_string r.outcome));
      ("forks",
       Json.List
         (List.map
            (fun (site, prefix) ->
               Json.Obj
                 [ ("site", Json.Str site); ("prefix", prefix_to_json prefix) ])
            r.forks));
      ("errors", Json.List (List.map Error.to_json r.errors));
      ("visits",
       Json.List
         (List.map
            (fun (site, n) ->
               Json.Obj [ ("site", Json.Str site); ("count", Json.Int n) ])
            r.visits));
      ("instructions", Json.Int r.instructions);
      ("degraded", Json.Bool r.degraded);
      ("solver", Stats.to_json r.solver);
      ("chaos",
       Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) r.chaos));
      ("coverage", Obs.Coverage.to_json r.coverage);
      ("profile", Obs.Profile.to_json r.profile);
      ("events", Json.List (List.map Obs.Event.to_json r.events));
      ("events_dropped", Json.Int r.events_dropped);
      ("snapshots_taken", Json.Int r.snapshots_taken);
      ("snapshot_restores", Json.Int r.snapshot_restores);
      ("replay_fallbacks", Json.Int r.replay_fallbacks);
      ("instructions_saved", Json.Int r.instructions_saved);
      ("requeue",
       match r.requeue with None -> Json.Null | Some p -> prefix_to_json p) ]

let result_of_json j =
  let ( let* ) = Result.bind in
  let require name = function
    | Some v -> Ok v
    | None -> Error ("pool: result missing " ^ name)
  in
  let* id = require "id" (Option.bind (Json.member "id" j) Json.to_int_opt) in
  let* outcome_s =
    require "outcome" (Option.bind (Json.member "outcome" j) Json.to_string_opt)
  in
  let* outcome = require "outcome" (outcome_of_string outcome_s) in
  let* forks_l =
    require "forks" (Option.bind (Json.member "forks" j) Json.to_list_opt)
  in
  let* forks =
    map_result
      (fun fj ->
         let* site =
           require "fork site"
             (Option.bind (Json.member "site" fj) Json.to_string_opt)
         in
         let* prefix =
           match Json.member "prefix" fj with
           | Some pj -> prefix_of_json pj
           | None -> Error "pool: fork missing prefix"
         in
         Ok (site, prefix))
      forks_l
  in
  let* errors =
    match Option.bind (Json.member "errors" j) Json.to_list_opt with
    | None -> Ok []
    | Some l -> map_result Error.of_json l
  in
  let* visits =
    match Option.bind (Json.member "visits" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun vj ->
           match
             ( Option.bind (Json.member "site" vj) Json.to_string_opt,
               Option.bind (Json.member "count" vj) Json.to_int_opt )
           with
           | Some site, Some n -> Ok (site, n)
           | _ -> Error "pool: malformed visit entry")
        l
  in
  let* requeue =
    match Json.member "requeue" j with
    | None | Some Json.Null -> Ok None
    | Some pj -> Result.map Option.some (prefix_of_json pj)
  in
  let solver =
    match Json.member "solver" j with
    | Some sj -> Stats.of_json sj
    | None -> Stats.zero
  in
  let chaos =
    match Json.member "chaos" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) -> Option.map (fun n -> (k, n)) (Json.to_int_opt v))
        fields
    | _ -> []
  in
  let coverage =
    match Json.member "coverage" j with
    | Some cj -> Obs.Coverage.of_json cj
    | None -> Obs.Coverage.zero
  in
  let profile =
    match Json.member "profile" j with
    | Some pj -> Obs.Profile.of_json pj
    | None -> Obs.Profile.zero
  in
  let events =
    match Option.bind (Json.member "events" j) Json.to_list_opt with
    | None -> []
    | Some l -> List.filter_map Obs.Event.of_json l
  in
  Ok
    ( id,
      { outcome;
        forks;
        errors;
        visits;
        instructions =
          Option.value ~default:0
            (Option.bind (Json.member "instructions" j) Json.to_int_opt);
        degraded =
          Option.value ~default:false
            (Option.bind (Json.member "degraded" j) Json.to_bool_opt);
        solver;
        requeue;
        chaos;
        coverage;
        profile;
        events;
        events_dropped =
          Option.value ~default:0
            (Option.bind (Json.member "events_dropped" j) Json.to_int_opt);
        snapshots_taken =
          Option.value ~default:0
            (Option.bind (Json.member "snapshots_taken" j) Json.to_int_opt);
        snapshot_restores =
          Option.value ~default:0
            (Option.bind (Json.member "snapshot_restores" j) Json.to_int_opt);
        replay_fallbacks =
          Option.value ~default:0
            (Option.bind (Json.member "replay_fallbacks" j) Json.to_int_opt);
        instructions_saved =
          Option.value ~default:0
            (Option.bind (Json.member "instructions_saved" j) Json.to_int_opt) } )

(* ------------------------------------------------------------------ *)
(* Worker side: the unit-serving loop, shared by forked pipe workers
   and remote TCP workers.  Both silence inherited telemetry, serve
   units until a stop frame, EOF or drain, and exit without running the
   master's [at_exit] hooks.

   With a heartbeat period configured, a SIGALRM-driven timer writes a
   tiny "hb" frame at that period, proving to the master's watchdog
   that the worker is alive even while a long solver call is in
   flight.  The [writing] flag keeps the handler from splicing a
   heartbeat into the middle of a result frame.

   SIGTERM requests a {e drain}: the worker finishes the unit in hand,
   flushes its result (with the event/coverage/profile deltas), sends a
   [bye] frame so the master deregisters it without counting a death,
   and exits. *)

type served = Served_stop | Served_drain

let stop_heartbeat () =
  try
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = 0.0; it_value = 0.0 })
  with _ -> ()

let start_heartbeat ~heartbeat_ms ~writing conn id =
  match heartbeat_ms with
  | None -> ()
  | Some ms ->
    let iv = float_of_int (max 1 ms) /. 1000.0 in
    Sys.set_signal Sys.sigalrm
      (Sys.Signal_handle
         (fun _ ->
            if not !writing then
              try Transport.write_frame conn (hb_msg id) with _ -> ()));
    ignore
      (Unix.setitimer Unix.ITIMER_REAL
         { Unix.it_interval = iv; it_value = iv })

let serve_conn ~exec ~conn ~drain ~writing ~forward ~reconnectable () =
  let send_raw s len =
    writing := true;
    Fun.protect
      ~finally:(fun () -> writing := false)
      (fun () ->
         Transport.write_all conn.Transport.c_out (Bytes.unsafe_of_string s) 0
           len)
  in
  let send j =
    let s = frame_string j in
    send_raw s (String.length s)
  in
  (* A pipe worker cannot redial its pipe: connection-level chaos kills
     the process so the master sees EOF, exactly as a real crash
     would.  A TCP worker closes the socket and unwinds to its
     reconnect loop instead. *)
  let vanish code =
    stop_heartbeat ();
    Unix._exit code
  in
  let send_result id res =
    let res =
      if forward then begin
        let events, events_dropped = Obs.Export.forwarding_take () in
        { res with chaos = Chaos.counts (); events; events_dropped }
      end
      else { res with chaos = Chaos.counts () }
    in
    let j = result_to_json id res in
    if Chaos.fire Chaos.Frame_truncate then begin
      (* A worker dying mid-write: half a frame, then gone. *)
      let s = frame_string j in
      (try send_raw s (String.length s / 2) with _ -> ());
      vanish 132
    end
    else if Chaos.fire Chaos.Frame_corrupt then begin
      (* Well-framed garbage: the length header is intact but the
         payload no longer parses, so the master must treat this
         worker as compromised and requeue its unit. *)
      let payload = Bytes.of_string (Json.to_string j) in
      if Bytes.length payload > 0 then Bytes.set payload 0 'X';
      let s =
        string_of_int (Bytes.length payload) ^ "\n" ^ Bytes.to_string payload
      in
      send_raw s (String.length s)
    end
    else if Chaos.fire Chaos.Conn_drop then begin
      (* The connection goes away before the result ships: the master
         requeues the unit under its lease. *)
      if reconnectable then begin
        Transport.close conn;
        raise (Transport.Disconnected "chaos conn-drop")
      end
      else vanish 134
    end
    else if Chaos.fire Chaos.Frame_shear then begin
      (* The connection dies mid-write: the master reads a sheared
         frame, then EOF. *)
      let s = frame_string j in
      (try send_raw s (String.length s / 2) with _ -> ());
      if reconnectable then begin
        Transport.close conn;
        raise (Transport.Disconnected "chaos frame-shear")
      end
      else vanish 133
    end
    else begin
      if Chaos.fire Chaos.Conn_stall then begin
        (* A stalled socket: the result arrives, but late — late enough
           to expire a short lease, short enough that a clean run's
           watchdog (>= 1 s grace) never reaps the worker.  [writing]
           also suppresses heartbeats for the duration, so the stall is
           real silence on the wire. *)
        writing := true;
        Unix.sleepf 0.2;
        writing := false
      end;
      send j;
      (* First-result-wins on the master makes the duplicate frame a
         counted no-op. *)
      if Chaos.fire Chaos.Dup_result then send j
    end
  in
  let graceful () =
    (try send bye_msg with _ -> ());
    Served_drain
  in
  (* Wait for a frame without blocking past a drain request: a SIGTERM
     during the select shows up as EINTR (or the next timeout) and the
     idle worker deregisters immediately instead of hanging in read. *)
  let rec await () =
    if !drain then None
    else
      match Unix.select [ conn.Transport.c_in ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
      | [], _, _ -> await ()
      | _ -> Some (Transport.read_frame conn)
  in
  let rec loop () =
    match await () with
    | None -> graceful ()
    | Some j ->
      (match Option.bind (Json.member "cmd" j) Json.to_string_opt with
       | Some "stop" | None -> Served_stop
       | Some "unit" ->
         let id =
           Option.value ~default:0
             (Option.bind (Json.member "id" j) Json.to_int_opt)
         in
         (match
            match Json.member "prefix" j with
            | Some pj -> prefix_of_json pj
            | None -> Error "pool: unit missing prefix"
          with
          | Error msg -> send (fatal_msg msg); Served_stop
          | Ok prefix ->
            if Chaos.fire Chaos.Worker_crash then vanish 131;
            if Chaos.fire Chaos.Worker_hang then begin
              (* A stuck worker: no heartbeats, no result, no exit.
                 Only the master's watchdog (or lease) can clear it. *)
              stop_heartbeat ();
              while true do
                Unix.sleepf 3600.0
              done
            end;
            (match exec ~prefix with
             | res ->
               send_result id res;
               if !drain then graceful () else loop ()
             | exception exn ->
               send (fatal_msg (Printexc.to_string exn));
               Served_stop))
       | Some _ -> loop ())
  in
  loop ()

let worker_main ~exec ~worker_id ~heartbeat_ms r w =
  Obs.Progress.disable ();
  (* If the master has a live trace recorder, this worker forwards its
     own event stream back in result frames.  Capture the master's
     epoch before resetting the sink, then re-pin it, so forwarded
     timestamps share the master's timeline. *)
  let forward = Obs.Export.active () in
  let master_epoch = Obs.Sink.current_epoch () in
  Obs.Sink.reset ();
  if forward then begin
    if not (Float.is_nan master_epoch) then Obs.Sink.set_epoch master_epoch;
    Obs.Export.forwarding_begin ()
  end;
  Transport.init ();
  (* Each forked worker must draw its own chaos decisions — siblings
     inherit identical PRNG streams over [fork] and would otherwise all
     fail on the same draw.  This also zeroes the injection counters
     inherited from the master, so the worker accounts only its own. *)
  if Chaos.active () then Chaos.reseed worker_id;
  let conn = Transport.pipe_conn ~addr:(Printf.sprintf "w%d" worker_id) r w in
  let writing = ref false in
  let drain = ref false in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain := true));
  start_heartbeat ~heartbeat_ms ~writing conn worker_id;
  (match serve_conn ~exec ~conn ~drain ~writing ~forward ~reconnectable:false () with
   | Served_stop | Served_drain -> ()
   | exception _ -> ());
  stop_heartbeat ();
  Unix._exit 0

(* ------------------------------------------------------------------ *)
(* Master side. *)

type peer = {
  p_id : int;
  p_pid : int option;          (* forked local workers only *)
  p_conn : Transport.conn;
  mutable p_lease : (Lease.entry * float) option;
      (* granted lease and dispatch time *)
  mutable p_alive : bool;
  mutable p_last_seen : float;
      (* last frame (result, bye or heartbeat) received from this peer *)
  mutable p_chaos : (string * int) list;
      (* cumulative injection counts last reported by this peer *)
}

exception Worker_fatal of string

(* A dispatch can fail (worker died while being written to) without the
   run being dead — bounded by this many consecutive no-progress loop
   iterations before the master gives up and persists the frontier. *)
let max_dispatch_stalls = 10_000

(* A dialed-in connection that never completes its hello is dropped
   after this long, so a port scanner or wedged dialer cannot pin
   master resources. *)
let handshake_timeout_s = 5.0

let run cfg ?resume ?checkpoint ~exec () =
  (match cfg.listen with
   | None ->
     if cfg.workers < 1 then invalid_arg "Pool.run: workers must be >= 1"
   | Some _ ->
     if cfg.workers < 0 then invalid_arg "Pool.run: workers must be >= 0");
  if cfg.max_unit_crashes < 1 then
    invalid_arg "Pool.run: max_unit_crashes must be >= 1";
  (match cfg.lease_ms with
   | Some ms when ms < 1 -> invalid_arg "Pool.run: lease_ms must be >= 1"
   | _ -> ());
  Transport.init ();
  let leases = Lease.create ~lease_ms:cfg.lease_ms in
  let frontier = Search.create cfg.strategy in
  let error_table : (string * Error.kind, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let errors_rev = ref [] in
  let n_errors = ref 0 in
  let n_paths = ref 0 in
  let n_completed = ref 0 in
  let n_errored = ref 0 in
  let n_infeasible = ref 0 in
  let n_unknown = ref 0 in
  let instr = ref 0 in
  let snapshots_taken = ref 0 in
  let snapshot_restores = ref 0 in
  let replay_fallbacks = ref 0 in
  let instructions_saved = ref 0 in
  let solver_acc = ref Stats.zero in
  let degraded = ref false in
  let stop_reason = ref None in
  (* Unit ids come from their own monotonic sequence, never reused:
     aborts and quarantines shrink [n_paths], and a reused id would
     collide with the settled table and drop a fresh result as a
     duplicate. *)
  let unit_seq = ref 0 in
  let dispatched = ref 0 in
  let requeued = ref 0 in
  let deaths = ref 0 in
  let hung = ref 0 in
  let quarantined = ref 0 in
  let lease_expired = ref 0 in
  let duplicates = ref 0 in
  let reconnects = ref 0 in
  let stalls = ref 0 in
  let chaos0 = Chaos.counts () in
  let worker_chaos = ref [] in
  let coverage_acc = ref Obs.Coverage.zero in
  let profile_acc = ref Obs.Profile.zero in
  let now = Unix.gettimeofday () in
  let started =
    match resume with None -> now | Some ck -> now -. ck.Checkpoint.wall_time
  in
  (match resume with
   | None -> Search.push frontier ~site:"root" [||]
   | Some ck ->
     if ck.Checkpoint.label <> cfg.label then
       failwith
         (Printf.sprintf "Pool.run: checkpoint is for %S, not %S"
            ck.Checkpoint.label cfg.label);
     let here = Search.strategy_to_string cfg.strategy in
     if ck.Checkpoint.strategy <> here then
       failwith
         (Printf.sprintf
            "Pool.run: checkpoint used strategy %s, this run uses %s"
            ck.Checkpoint.strategy here);
     List.iter
       (fun (site, prefix) -> Search.push frontier ~site prefix)
       ck.Checkpoint.frontier;
     Search.set_visit_counts frontier ck.Checkpoint.visits;
     Search.set_rng_state frontier ck.Checkpoint.rng;
     n_paths := ck.Checkpoint.paths;
     n_completed := ck.Checkpoint.completed;
     n_errored := ck.Checkpoint.errored;
     n_infeasible := ck.Checkpoint.infeasible;
     n_unknown := ck.Checkpoint.unknown;
     instr := ck.Checkpoint.instructions;
     solver_acc := ck.Checkpoint.solver;
     degraded := ck.Checkpoint.degraded;
     (* Units that were granted but unsettled at snapshot time re-enter
        through the pending queue with their attempt counts intact.
        They were excluded from the snapshot's [paths], so count them
        back in as the outstanding grants they are. *)
     List.iter
       (fun (site, prefix, attempts) ->
          let e =
            { Lease.l_id = !unit_seq; l_site = site; l_prefix = prefix;
              l_attempts = attempts; l_deadline = infinity }
          in
          incr unit_seq;
          incr n_paths;
          Lease.requeue leases e)
       ck.Checkpoint.leases;
     List.iter
       (fun (e : Error.t) ->
          Hashtbl.replace error_table (e.Error.site, e.Error.kind) ();
          errors_rev := e :: !errors_rev;
          incr n_errors)
       ck.Checkpoint.errors);
  let m_queue =
    Obs.Metrics.gauge ~help:"pending work units in the master frontier"
      "symsysc_pool_queue_depth"
  in
  let m_busy =
    Obs.Metrics.gauge ~help:"workers currently executing a unit"
      "symsysc_pool_workers_busy"
  in
  let m_dispatched =
    Obs.Metrics.counter ~help:"work units handed to workers"
      "symsysc_pool_units_dispatched"
  in
  let m_requeued =
    Obs.Metrics.counter
      ~help:"work units re-queued (aborts, worker deaths, lease expiries)"
      "symsysc_pool_requeues"
  in
  let m_deaths =
    Obs.Metrics.counter ~help:"worker processes lost mid-run"
      "symsysc_pool_worker_deaths"
  in
  let m_hung =
    Obs.Metrics.counter
      ~help:"workers killed by the heartbeat watchdog"
      "symsysc_pool_workers_hung"
  in
  let m_quarantined =
    Obs.Metrics.counter
      ~help:"work units quarantined after repeatedly killing workers"
      "symsysc_pool_units_quarantined"
  in
  let m_lease_expired =
    Obs.Metrics.counter
      ~help:"leases that passed their deadline and were requeued"
      "symsysc_pool_lease_expired_total"
  in
  let m_duplicates =
    Obs.Metrics.counter
      ~help:"duplicate or late unit results dropped by first-result-wins"
      "symsysc_pool_duplicate_results_total"
  in
  let m_reconnects =
    Obs.Metrics.counter ~help:"remote worker re-registrations"
      "symsysc_pool_reconnects_total"
  in
  (* Workers are spawned dynamically (the master replaces dead ones),
     so each spawn creates its own pipe pair and the master closes the
     worker-side ends immediately after the fork.  A child can then
     only inherit the master-side ends of the siblings alive at its
     fork — it closes those too — and crucially can never inherit a
     sibling's result-write end, which is what would mask the EOF that
     signals that sibling's death.  The listener descriptor is closed
     in the child for the same reason. *)
  let peers : peer list ref = ref [] in
  let unregistered : (Transport.conn * float) list ref = ref [] in
  let next_id = ref 0 in
  let spawns = ref 0 in
  let spawn_cap = cfg.workers + 1024 in
  let spawn () =
    let ur, uw = Unix.pipe () in
    let rr, rw = Unix.pipe () in
    flush stdout;
    flush stderr;
    let id = !next_id in
    incr next_id;
    incr spawns;
    match Unix.fork () with
    | 0 ->
      (try Unix.close uw with _ -> ());
      (try Unix.close rr with _ -> ());
      (match cfg.listen with
       | Some l -> (try Unix.close (Transport.listener_fd l) with _ -> ())
       | None -> ());
      List.iter (fun p -> Transport.close p.p_conn) !peers;
      List.iter (fun (c, _) -> Transport.close c) !unregistered;
      (try
         worker_main ~exec ~worker_id:id ~heartbeat_ms:cfg.heartbeat_ms ur rw
       with _ -> ());
      Unix._exit 125
    | pid ->
      (try Unix.close ur with _ -> ());
      (try Unix.close rw with _ -> ());
      let p =
        { p_id = id; p_pid = Some pid;
          p_conn = Transport.pipe_conn ~addr:(Printf.sprintf "w%d" id) rr uw;
          p_lease = None; p_alive = true;
          p_last_seen = Unix.gettimeofday (); p_chaos = [] }
      in
      peers := !peers @ [ p ]
  in
  for _ = 1 to cfg.workers do spawn () done;
  let elapsed () = Unix.gettimeofday () -. started in
  let local_alive () =
    List.filter (fun p -> p.p_alive && p.p_pid <> None) !peers
  in
  let inflight () =
    List.fold_left
      (fun acc p -> acc + (match p.p_lease with Some _ -> 1 | None -> 0))
      0 !peers
  in
  let stop reason = if !stop_reason = None then stop_reason := Some reason in
  (* All grants not yet settled: held by peers (minus already-settled
     ids a slow holder is still finishing) plus the pending queue. *)
  let unsettled_entries () =
    let held =
      List.filter_map
        (fun p ->
           match p.p_lease with
           | Some (e, _) when not (Lease.is_settled leases e.Lease.l_id) ->
             Some e
           | _ -> None)
        !peers
    in
    held @ Lease.pending_entries leases
  in
  let snapshot ~final =
    let entries = unsettled_entries () in
    { Checkpoint.label = cfg.label;
      strategy = Search.strategy_to_string cfg.strategy;
      frontier = Search.entries frontier;
      leases =
        List.map
          (fun (e : Lease.entry) ->
             (e.Lease.l_site, e.Lease.l_prefix, e.Lease.l_attempts))
          entries;
      visits = Search.visit_counts frontier;
      rng = Search.rng_state frontier;
      paths = !n_paths - List.length entries;
      completed = !n_completed;
      errored = !n_errored;
      infeasible = !n_infeasible;
      unknown = !n_unknown;
      instructions = !instr;
      wall_time = elapsed ();
      solver = !solver_acc;
      errors = List.rev !errors_rev;
      degraded = !degraded;
      stop_reason =
        (if final then Option.map Budget.reason_to_string !stop_reason
         else None) }
  in
  (* Units that repeatedly take their worker down with them are poison:
     after [max_unit_crashes] deaths attributable to the same prefix,
     the unit is quarantined instead of requeued — losing one path
     (and the exhaustiveness claim) beats losing the whole campaign.
     Keyed on crashes, not lease attempts: expiry regrants of a merely
     slow unit must never quarantine it. *)
  let crash_counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let prefix_key p =
    String.concat ";" (Array.to_list (Array.map Decision.to_string p))
  in
  let handle_death ?(hung = false) ?(graceful = false) p =
    p.p_alive <- false;
    (match p.p_pid with
     | Some pid ->
       (* SIGKILL before reaping: a hung worker never exits on its own,
          and one that sent a corrupt frame may still be running. *)
       if not graceful then (try Unix.kill pid Sys.sigkill with _ -> ());
       Transport.close p.p_conn;
       (try ignore (Unix.waitpid [] pid) with _ -> ())
     | None -> Transport.close p.p_conn);
    if not graceful then begin
      incr deaths;
      Obs.Metrics.inc m_deaths
    end;
    (match p.p_lease with
     | Some (e, _) ->
       p.p_lease <- None;
       if Lease.is_settled leases e.Lease.l_id then ()
       else if graceful then begin
         (* A draining peer should have settled its unit first; if not,
            the unit is simply another orphaned grant. *)
         incr requeued;
         Obs.Metrics.inc m_requeued;
         Lease.requeue leases e
       end
       else begin
         let key = prefix_key e.Lease.l_prefix in
         let crashes =
           1 + Option.value ~default:0 (Hashtbl.find_opt crash_counts key)
         in
         Hashtbl.replace crash_counts key crashes;
         let quarantine = crashes >= cfg.max_unit_crashes in
         if quarantine then begin
           incr quarantined;
           Obs.Metrics.inc m_quarantined;
           degraded := true;
           decr n_paths;
           (* Pre-settle the dropped unit so a late result from an
              earlier grant cannot resurrect the path and corrupt the
              counters. *)
           Lease.force_settle leases e.Lease.l_id
         end
         else begin
           incr requeued;
           Obs.Metrics.inc m_requeued;
           Lease.requeue leases e
         end;
         if !Obs.Sink.enabled then
           Obs.Sink.instant ~cat:"pool"
             (if quarantine then "quarantine" else "worker-death")
             ~args:[ ("worker", Obs.Event.Int p.p_id);
                     ("addr", Obs.Event.Str (Transport.describe p.p_conn));
                     ("unit", Obs.Event.Int e.Lease.l_id);
                     ("attempt", Obs.Event.Int e.Lease.l_attempts);
                     ("hung", Obs.Event.Bool hung);
                     ("crashes", Obs.Event.Int crashes);
                     ("requeued", Obs.Event.Bool (not quarantine)) ]
       end
     | None ->
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"pool"
           (if graceful then "peer-drain" else "worker-death")
           ~args:[ ("worker", Obs.Event.Int p.p_id);
                   ("addr", Obs.Event.Str (Transport.describe p.p_conn));
                   ("hung", Obs.Event.Bool hung);
                   ("requeued", Obs.Event.Bool false) ])
  in
  let dispatch p =
    let t = Unix.gettimeofday () in
    let entry =
      match Lease.take_pending leases with
      | Some e -> Some (Lease.regrant leases e ~now:t)
      | None ->
        (match Search.pop frontier with
         | None -> None
         | Some prefix ->
           let id = !unit_seq in
           incr unit_seq;
           incr n_paths;
           Some (Lease.make_entry leases ~id ~site:"in-flight" ~prefix ~now:t))
    in
    match entry with
    | None -> ()
    | Some e ->
      incr dispatched;
      p.p_lease <- Some (e, t);
      p.p_last_seen <- t;
      Obs.Metrics.inc m_dispatched;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"pool" "dispatch"
          ~args:[ ("worker", Obs.Event.Int p.p_id);
                  ("unit", Obs.Event.Int e.Lease.l_id);
                  ("attempt", Obs.Event.Int e.Lease.l_attempts);
                  ("prefix_len", Obs.Event.Int (Array.length e.Lease.l_prefix));
                  ("frontier", Obs.Event.Int (Search.length frontier)) ];
      (try
         Transport.write_frame p.p_conn
           (unit_to_json e.Lease.l_id e.Lease.l_prefix);
         stalls := 0
       with _ -> handle_death p)
  in
  let merge p id (r : unit_result) =
    (* Fold the chaos delta on every result frame — duplicates resend
       the same cumulative counts, so their delta is zero. *)
    let delta = Chaos.sub_counts r.chaos p.p_chaos in
    p.p_chaos <- r.chaos;
    worker_chaos := Chaos.add_counts !worker_chaos delta;
    let held =
      match p.p_lease with
      | Some (e, t0) when e.Lease.l_id = id -> Some (e, t0)
      | _ -> None
    in
    (match held with
     | Some _ ->
       p.p_lease <- None;
       stalls := 0
     | None -> ());
    match Lease.settle leases id with
    | `Duplicate ->
      (* First-result-wins: a regrant raced the original holder (or the
         dup-result chaos point fired).  Count it; merge nothing. *)
      incr duplicates;
      Obs.Metrics.inc m_duplicates;
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"pool" "duplicate-result"
          ~args:[ ("worker", Obs.Event.Int p.p_id);
                  ("unit", Obs.Event.Int id) ]
    | `Fresh ->
      (match r.outcome with
       | Unit_aborted ->
         decr n_paths;
         incr requeued;
         Obs.Metrics.inc m_requeued;
         (match r.requeue, held with
          | Some pr, _ -> Search.push frontier ~site:"requeued" pr
          | None, Some (e, _) ->
            Search.push frontier ~site:"requeued" e.Lease.l_prefix
          | None, None ->
            (* No prefix to recover (a late abort from a peer that no
               longer holds the lease, carrying no requeue): the path
               is lost and the run can no longer claim exhaustion. *)
            degraded := true)
       | Unit_completed -> incr n_completed
       | Unit_errored -> incr n_errored
       | Unit_infeasible -> incr n_infeasible
       | Unit_unknown -> incr n_unknown);
      if r.outcome <> Unit_aborted then begin
        instr := !instr + r.instructions;
        Search.merge_visit_counts frontier r.visits;
        (* Coverage merges only from units that counted: exactly one
           contribution per executed path, so the merged map matches a
           sequential run over the same path set bit for bit. *)
        coverage_acc := Obs.Coverage.add !coverage_acc r.coverage
      end;
      List.iter (fun (site, pr) -> Search.push frontier ~site pr) r.forks;
      snapshots_taken := !snapshots_taken + r.snapshots_taken;
      snapshot_restores := !snapshot_restores + r.snapshot_restores;
      replay_fallbacks := !replay_fallbacks + r.replay_fallbacks;
      instructions_saved := !instructions_saved + r.instructions_saved;
      solver_acc := Stats.add !solver_acc r.solver;
      (* Profile and forwarded events mirror the solver stats: work
         done is accounted even when the unit aborted. *)
      profile_acc := Obs.Profile.add !profile_acc r.profile;
      Obs.Export.inject ~worker:p.p_id r.events;
      if r.events_dropped > 0 then
        Obs.Export.note_remote_dropped r.events_dropped;
      if r.degraded then degraded := true;
      List.iter
        (fun (e : Error.t) ->
           let key = (e.Error.site, e.Error.kind) in
           if not (Hashtbl.mem error_table key) then begin
             Hashtbl.add error_table key ();
             (* Rewrite the worker-local bookkeeping fields into
                campaign terms: the unit id is the global path id and
                discovery time/instructions are campaign totals. *)
             errors_rev :=
               { e with
                 Error.path_id = id;
                 found_after = elapsed ();
                 instructions = !instr }
               :: !errors_rev;
             incr n_errors;
             if !Obs.Sink.enabled then
               Obs.Sink.instant ~cat:"pool" "error"
                 ~args:[ ("site", Obs.Event.Str e.Error.site);
                         ("kind",
                          Obs.Event.Str (Error.kind_to_string e.Error.kind));
                         ("worker", Obs.Event.Int p.p_id) ];
             match cfg.stop_after_errors with
             | Some n when !n_errors >= n -> stop Budget.Errors
             | _ -> ()
           end)
        r.errors;
      Obs.Metrics.set m_queue (float_of_int (Search.length frontier));
      if !Obs.Sink.enabled then
        Obs.Sink.complete ~cat:"pool"
          ~dur_us:
            ((match held with
              | Some (_, t0) -> Unix.gettimeofday () -. t0
              | None -> 0.0)
             *. 1e6)
          "unit"
          ~args:[ ("worker", Obs.Event.Int p.p_id);
                  ("unit", Obs.Event.Int id);
                  ("outcome", Obs.Event.Str (outcome_to_string r.outcome));
                  ("forks", Obs.Event.Int (List.length r.forks)) ]
  in
  let strategy_str = Search.strategy_to_string cfg.strategy in
  (* TCP registration: answer a well-formed, matching hello with a
     welcome (assigning the peer id); answer anything else with a fatal
     frame naming the mismatch, so a misconfigured worker fails loudly
     instead of silently computing the wrong campaign. *)
  let register c =
    match Transport.read_frame c with
    | exception _ -> Transport.close c
    | j ->
      let field k = Option.bind (Json.member k j) Json.to_string_opt in
      let cmd = field "cmd" in
      let label_ok = field "label" = Some cfg.label in
      let strat_ok = field "strategy" = Some strategy_str in
      let cookie_ok =
        match cfg.cookie with
        | None -> true
        | Some c0 -> field "cookie" = Some c0
      in
      if cmd <> Some "hello" || not (label_ok && strat_ok && cookie_ok) then begin
        let why =
          if cmd <> Some "hello" then "expected a hello frame"
          else if not label_ok then
            Printf.sprintf "label mismatch (master runs %S)" cfg.label
          else if not strat_ok then
            Printf.sprintf "strategy mismatch (master uses %s)" strategy_str
          else
            "parameter mismatch (worker flags must match the master's \
             test parameters)"
        in
        (try Transport.write_frame c (fatal_msg ("hello rejected: " ^ why))
         with _ -> ());
        Transport.close c
      end
      else begin
        let id = !next_id in
        incr next_id;
        let recon =
          Option.value ~default:0
            (Option.bind (Json.member "reconnects" j) Json.to_int_opt)
        in
        if recon > 0 then begin
          incr reconnects;
          Obs.Metrics.inc m_reconnects
        end;
        match
          Transport.write_frame c
            (welcome_msg ~peer:id ~heartbeat_ms:cfg.heartbeat_ms
               ~forward:(Obs.Export.active ())
               ~epoch:(Obs.Sink.current_epoch ()))
        with
        | exception _ -> Transport.close c
        | () ->
          let p =
            { p_id = id; p_pid = None; p_conn = c; p_lease = None;
              p_alive = true; p_last_seen = Unix.gettimeofday ();
              p_chaos = [] }
          in
          peers := !peers @ [ p ];
          if !Obs.Sink.enabled then
            Obs.Sink.instant ~cat:"pool" "peer-join"
              ~args:[ ("worker", Obs.Event.Int id);
                      ("addr", Obs.Event.Str (Transport.describe c));
                      ("reconnects", Obs.Event.Int recon) ]
      end
  in
  let shutdown ~force () =
    List.iter
      (fun p ->
         if p.p_alive then begin
           (match p.p_pid with
            | Some pid ->
              if force then (try Unix.kill pid Sys.sigkill with _ -> ())
              else (try Transport.write_frame p.p_conn stop_msg with _ -> ());
              Transport.close p.p_conn;
              (try ignore (Unix.waitpid [] pid) with _ -> ())
            | None ->
              if not force then
                (try Transport.write_frame p.p_conn stop_msg with _ -> ());
              Transport.close p.p_conn);
           p.p_alive <- false
         end)
      !peers;
    List.iter (fun (c, _) -> Transport.close c) !unregistered;
    unregistered := []
  in
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"pool" "run:start"
      ~args:
        ([ ("workers", Obs.Event.Int cfg.workers);
           ("strategy", Obs.Event.Str strategy_str);
           ("heartbeat_ms",
            Obs.Event.Int (Option.value ~default:0 cfg.heartbeat_ms));
           ("lease_ms",
            Obs.Event.Int (Option.value ~default:0 cfg.lease_ms));
           ("resumed", Obs.Event.Bool (resume <> None)) ]
         @
         match cfg.listen with
         | None -> []
         | Some l ->
           let host, port = Transport.listener_addr l in
           [ ("listen", Obs.Event.Str (Printf.sprintf "%s:%d" host port)) ]);
  let last_checkpoint = ref now in
  let main_loop () =
    let continue = ref true in
    while !continue do
      (* Budgets, first reason wins; same precedence as the sequential
         engine's per-path checks. *)
      if !stop_reason = None then begin
        if Budget.interrupted () then stop Budget.Interrupt
        else begin
          (match cfg.limits.Budget.max_paths with
           | Some n when !n_paths >= n -> stop Budget.Paths
           | _ -> ());
          (match cfg.limits.Budget.max_instructions with
           | Some n when !instr > n -> stop Budget.Instructions
           | _ -> ());
          (match cfg.limits.Budget.max_seconds with
           | Some s when elapsed () > s -> stop Budget.Deadline
           | _ -> ());
          (match cfg.limits.Budget.max_memory_mb with
           | Some mb when Budget.heap_mb () > float_of_int mb ->
             stop Budget.Memory
           | _ -> ())
        end
      end;
      (match checkpoint with
       | Some p ->
         let t = Unix.gettimeofday () in
         if t -. !last_checkpoint >= p.Checkpoint.every_s then begin
           last_checkpoint := t;
           p.Checkpoint.write (snapshot ~final:false)
         end
       | None -> ());
      (* Lease expiry: a holder silent past its deadline loses the
         grant — the unit is requeued for another peer — but is NOT
         killed.  If the slow result still arrives it settles the unit
         iff nobody beat it; otherwise it is a counted duplicate.
         This bounds every lost-connection / stalled-socket shape by
         the lease deadline without ever discarding work. *)
      (match cfg.lease_ms with
       | None -> ()
       | Some _ ->
         let t = Unix.gettimeofday () in
         List.iter
           (fun p ->
              match p.p_lease with
              | Some (e, _) when p.p_alive && Lease.expired e ~now:t ->
                p.p_lease <- None;
                if not (Lease.is_settled leases e.Lease.l_id) then begin
                  incr lease_expired;
                  Obs.Metrics.inc m_lease_expired;
                  incr requeued;
                  Obs.Metrics.inc m_requeued;
                  Lease.requeue leases e;
                  if !Obs.Sink.enabled then
                    Obs.Sink.instant ~cat:"pool" "lease-expired"
                      ~args:[ ("worker", Obs.Event.Int p.p_id);
                              ("addr",
                               Obs.Event.Str (Transport.describe p.p_conn));
                              ("unit", Obs.Event.Int e.Lease.l_id);
                              ("attempt", Obs.Event.Int e.Lease.l_attempts) ]
                end
              | _ -> ())
           !peers);
      (* Watchdog: a peer with a unit in flight that has produced no
         frame — result or heartbeat — within the grace period is
         presumed wedged (SIGSTOP, runaway loop, injected hang).  It is
         killed (local) or disconnected (remote) and its unit requeued;
         EOF detection alone would wait on it forever. *)
      (match cfg.heartbeat_ms with
       | None -> ()
       | Some ms ->
         (* Generous on purpose: a missed heartbeat must mean a wedged
            worker, not a loaded machine — a spurious kill is healed by
            the requeue, but three on one slow unit would quarantine
            it. *)
         let grace = Float.max (8.0 *. float_of_int ms /. 1000.0) 1.0 in
         let t = Unix.gettimeofday () in
         List.iter
           (fun p ->
              if p.p_alive && p.p_lease <> None
                 && t -. p.p_last_seen > grace
              then begin
                incr hung;
                Obs.Metrics.inc m_hung;
                if !Obs.Sink.enabled then
                  Obs.Sink.instant ~cat:"pool" "watchdog-kill"
                    ~args:[ ("worker", Obs.Event.Int p.p_id);
                            ("addr",
                             Obs.Event.Str (Transport.describe p.p_conn));
                            ("silent_s",
                             Obs.Event.Float (t -. p.p_last_seen)) ];
                handle_death ~hung:true p
              end)
           !peers);
      (* Keep the local pool at strength: dead forked workers are
         replaced while work remains, so a chaos campaign (or a string
         of genuine crashes) degrades throughput rather than the
         verdict.  The spawn cap bounds a pathological crash loop.
         Remote peers replace themselves by reconnecting. *)
      if !stop_reason = None
         && (Lease.pending leases > 0 || not (Search.is_empty frontier))
      then begin
        let missing = cfg.workers - List.length (local_alive ()) in
        for _ = 1 to min missing (spawn_cap - !spawns) do
          spawn ()
        done
      end;
      (* Work-sharing: fill every idle peer while budget remains.
         Orphaned grants (pending regrants) go out before fresh
         frontier pops, so a requeued unit is never starved. *)
      let rec fill () =
        if !stop_reason = None
           && (Lease.pending leases > 0 || not (Search.is_empty frontier))
        then begin
          let paths_left =
            match cfg.limits.Budget.max_paths with
            | Some n -> !n_paths < n
            | None -> true
          in
          if paths_left then
            match
              List.find_opt (fun p -> p.p_alive && p.p_lease = None) !peers
            with
            | Some p -> dispatch p; fill ()
            | None -> ()
        end
      in
      fill ();
      let busy = inflight () in
      Obs.Metrics.set m_busy (float_of_int busy);
      (* Live progress (line mode or the --top dashboard); [due]
         dedupes, so polling every loop iteration is cheap. *)
      (let outstanding = List.length (unsettled_entries ()) in
       let done_paths = !n_paths - outstanding in
       if Obs.Progress.due ~paths:done_paths then begin
         let t = Unix.gettimeofday () in
         Obs.Progress.tick
           { Obs.Progress.paths = done_paths;
             instructions = !instr;
             frontier = Search.length frontier;
             errors = !n_errors;
             solver_time = !solver_acc.Stats.time;
             solver_queries = !solver_acc.Stats.queries;
             cache_hits = !solver_acc.Stats.cache_hits + !solver_acc.Stats.cex_hits;
             wall = elapsed ();
             workers =
               List.filter_map
                 (fun p ->
                    if p.p_alive then
                      Some
                        { Obs.Progress.wr_id = p.p_id;
                          wr_busy = p.p_lease <> None;
                          wr_age = t -. p.p_last_seen;
                          wr_addr = Transport.describe p.p_conn }
                    else None)
                 !peers }
       end);
      if busy = 0
         && (!stop_reason <> None
             || (Search.is_empty frontier && Lease.pending leases = 0))
      then continue := false
      else if busy = 0 && cfg.listen = None then begin
        if
          not (List.exists (fun p -> p.p_alive) !peers)
          && !spawns >= spawn_cap
        then begin
          (* Work remains but nobody can run it and the respawn budget
             is spent: persist the frontier (so the run is resumable)
             and report the failure. *)
          (match checkpoint with
           | Some p -> p.Checkpoint.write (snapshot ~final:false)
           | None -> ());
          raise
            (Worker_fatal
               (Printf.sprintf
                  "all workers died with work remaining (%d spawned)"
                  !spawns))
        end
        else begin
          (* Dispatch made no progress this iteration (the idle workers
             died while being written to, or were just respawned).
             Retry — but boundedly, so a repeated dispatch failure
             cannot spin the master forever. *)
          incr stalls;
          if !stalls >= max_dispatch_stalls then begin
            (match checkpoint with
             | Some p -> p.Checkpoint.write (snapshot ~final:false)
             | None -> ());
            raise
              (Worker_fatal
                 (Printf.sprintf
                    "dispatch stalled %d consecutive times with work \
                     remaining"
                    !stalls))
          end;
          ignore (Unix.select [] [] [] 0.001)
        end
      end
      else begin
        let listener_fds =
          match cfg.listen with
          | Some l -> [ Transport.listener_fd l ]
          | None -> []
        in
        let unreg_fds =
          List.map (fun (c, _) -> c.Transport.c_in) !unregistered
        in
        let peer_fds =
          List.filter_map
            (fun p -> if p.p_alive then Some p.p_conn.Transport.c_in else None)
            !peers
        in
        (match Unix.select (listener_fds @ unreg_fds @ peer_fds) [] [] 0.1 with
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
         | ready, _, _ ->
           List.iter
             (fun fd ->
                match cfg.listen with
                | Some l when fd == Transport.listener_fd l ->
                  (match Transport.accept l with
                   | c ->
                     unregistered :=
                       !unregistered @ [ (c, Unix.gettimeofday ()) ]
                   | exception _ -> ())
                | _ ->
                  (match
                     List.find_opt
                       (fun (c, _) -> c.Transport.c_in == fd)
                       !unregistered
                   with
                   | Some (c, _) ->
                     unregistered :=
                       List.filter (fun (c', _) -> c' != c) !unregistered;
                     register c
                   | None ->
                     (* Match on liveness too: a dead peer's closed fd
                        number is reused by the next spawn or accept,
                        and the stale entry would otherwise shadow the
                        live peer — swallowing its frames until the
                        watchdog killed it. *)
                     (match
                        List.find_opt
                          (fun p ->
                             p.p_alive && p.p_conn.Transport.c_in == fd)
                          !peers
                      with
                      | None -> ()
                      | Some p ->
                        (match Transport.read_frame p.p_conn with
                         | exception _ -> handle_death p
                         | j ->
                           p.p_last_seen <- Unix.gettimeofday ();
                           (* Any frame from the holder proves liveness:
                              renew the lease so heartbeats keep a slow
                              unit from expiring. *)
                           (match p.p_lease with
                            | Some (e, _) ->
                              Lease.renew leases e ~now:p.p_last_seen
                            | None -> ());
                           (match
                              Option.bind (Json.member "cmd" j)
                                Json.to_string_opt
                            with
                            | Some "result" ->
                              (match result_of_json j with
                               | Ok (id, r) -> merge p id r
                               | Error msg -> raise (Worker_fatal msg))
                            | Some "hb" -> ()
                            | Some "bye" -> handle_death ~graceful:true p
                            | Some "fatal" ->
                              let msg =
                                Option.value ~default:"worker failure"
                                  (Option.bind (Json.member "msg" j)
                                     Json.to_string_opt)
                              in
                              raise (Worker_fatal msg)
                            | _ -> ())))))
             ready);
        (* Reap half-open dials that never said hello. *)
        let t = Unix.gettimeofday () in
        unregistered :=
          List.filter
            (fun (c, t0) ->
               if t -. t0 > handshake_timeout_s then begin
                 Transport.close c;
                 false
               end
               else true)
            !unregistered
      end
    done
  in
  match main_loop () with
  | () ->
    shutdown ~force:false ();
    (match checkpoint with
     | Some p -> p.Checkpoint.write (snapshot ~final:true)
     | None -> ());
    let wall = elapsed () in
    let errors =
      List.rev !errors_rev
      |> List.sort (fun (a : Error.t) (b : Error.t) ->
          match String.compare a.Error.site b.Error.site with
          | 0 ->
            String.compare
              (Error.kind_to_string a.Error.kind)
              (Error.kind_to_string b.Error.kind)
          | c -> c)
    in
    let chaos =
      Chaos.add_counts
        (Chaos.sub_counts (Chaos.counts ()) chaos0)
        !worker_chaos
    in
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"pool" "run:end"
        ~args:[ ("paths", Obs.Event.Int !n_paths);
                ("errors", Obs.Event.Int !n_errors);
                ("requeues", Obs.Event.Int !requeued);
                ("worker_deaths", Obs.Event.Int !deaths);
                ("hung", Obs.Event.Int !hung);
                ("quarantined", Obs.Event.Int !quarantined);
                ("lease_expired", Obs.Event.Int !lease_expired);
                ("duplicates", Obs.Event.Int !duplicates);
                ("reconnects", Obs.Event.Int !reconnects) ];
    { r_errors = errors;
      r_paths = !n_paths;
      r_completed = !n_completed;
      r_errored = !n_errored;
      r_infeasible = !n_infeasible;
      r_unknown = !n_unknown;
      r_instructions = !instr;
      r_wall_time = wall;
      r_solver = !solver_acc;
      r_exhausted = !stop_reason = None && not !degraded;
      r_stop_reason = !stop_reason;
      r_visits = Search.visit_counts frontier;
      r_dispatched = !dispatched;
      r_requeued = !requeued;
      r_worker_deaths = !deaths;
      r_hung = !hung;
      r_quarantined = !quarantined;
      r_lease_expired = !lease_expired;
      r_duplicates = !duplicates;
      r_reconnects = !reconnects;
      r_chaos = chaos;
      r_coverage = !coverage_acc;
      r_profile = !profile_acc;
      r_snapshots_taken = !snapshots_taken;
      r_snapshot_restores = !snapshot_restores;
      r_replay_fallbacks = !replay_fallbacks;
      r_instructions_saved = !instructions_saved }
  | exception Worker_fatal msg ->
    shutdown ~force:true ();
    failwith ("Engine pool: " ^ msg)
  | exception exn ->
    shutdown ~force:true ();
    raise exn

(* ------------------------------------------------------------------ *)
(* Remote worker pool: dial a listening master, register, serve units.
   Reconnects with seeded exponential backoff + jitter; a fatal frame
   from the master (configuration mismatch) is terminal.  SIGTERM
   drains: finish the unit in hand, flush the result, send bye, exit. *)

let serve ~host ~port ~workers ~label ~strategy ?cookie ?(backoff_seed = 0)
    ?max_dials ~exec () =
  if workers < 1 then invalid_arg "Pool.serve: workers must be >= 1";
  (match max_dials with
   | Some n when n < 1 -> invalid_arg "Pool.serve: max_dials must be >= 1"
   | _ -> ());
  Transport.init ();
  let strategy_str = Search.strategy_to_string strategy in
  let worker_loop slot =
    let drain = ref false in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> drain := true));
    let writing = ref false in
    let reconnects = ref 0 in
    let dial_attempt = ref 0 in
    let continue = ref true in
    let code = ref 0 in
    let backoff_or_give_up () =
      incr dial_attempt;
      match max_dials with
      | Some n when !dial_attempt >= n ->
        Printf.eprintf "symsysc worker %d: giving up after %d failed dials\n%!"
          slot !dial_attempt;
        code := 1;
        continue := false
      | _ ->
        (* Distinct per-slot seeds desynchronize a worker pool that was
           cut off at the same instant. *)
        Unix.sleepf
          (Transport.backoff_delay
             ~seed:(backoff_seed + (31 * slot))
             ~attempt:!dial_attempt)
    in
    while !continue && not !drain do
      match Transport.connect ~host ~port with
      | exception Transport.Disconnected _ -> backoff_or_give_up ()
      | conn ->
        (match
           Transport.write_frame conn
             (hello_msg ~label ~strategy:strategy_str ~slot
                ~reconnects:!reconnects ~cookie);
           Transport.read_frame conn
         with
         | exception _ ->
           Transport.close conn;
           backoff_or_give_up ()
         | j ->
           (match Option.bind (Json.member "cmd" j) Json.to_string_opt with
            | Some "fatal" ->
              Printf.eprintf "symsysc worker %d: %s\n%!" slot
                (Option.value ~default:"registration rejected"
                   (Option.bind (Json.member "msg" j) Json.to_string_opt));
              Transport.close conn;
              code := 1;
              continue := false
            | Some "welcome" ->
              dial_attempt := 0;
              let peer =
                Option.value ~default:0
                  (Option.bind (Json.member "peer" j) Json.to_int_opt)
              in
              let heartbeat_ms =
                match
                  Option.bind (Json.member "heartbeat_ms" j) Json.to_int_opt
                with
                | Some ms when ms > 0 -> Some ms
                | _ -> None
              in
              let forward =
                Option.value ~default:false
                  (Option.bind (Json.member "forward" j) Json.to_bool_opt)
              in
              if forward then begin
                Obs.Sink.reset ();
                (match
                   Option.bind (Json.member "epoch" j) Json.to_float_opt
                 with
                 | Some e -> Obs.Sink.set_epoch e
                 | None -> ());
                Obs.Export.forwarding_begin ()
              end;
              (* The master-assigned peer id is unique per registration,
                 so reseeded chaos streams differ across reconnects and
                 across siblings. *)
              if Chaos.active () then Chaos.reseed peer;
              start_heartbeat ~heartbeat_ms ~writing conn peer;
              (match
                 serve_conn ~exec ~conn ~drain ~writing ~forward
                   ~reconnectable:true ()
               with
               | Served_stop | Served_drain ->
                 stop_heartbeat ();
                 Transport.close conn;
                 continue := false
               | exception Transport.Disconnected _ | exception Failure _ ->
                 (* The master went away (or chaos cut the line): come
                    back with backoff, starting the schedule over. *)
                 stop_heartbeat ();
                 Transport.close conn;
                 incr reconnects;
                 backoff_or_give_up ())
            | _ ->
              Transport.close conn;
              backoff_or_give_up ()))
    done;
    !code
  in
  if workers = 1 then worker_loop 0
  else begin
    flush stdout;
    flush stderr;
    let pids =
      List.init workers (fun slot ->
          match Unix.fork () with
          | 0 ->
            Obs.Progress.disable ();
            Obs.Sink.reset ();
            let code = try worker_loop slot with _ -> 1 in
            Unix._exit code
          | pid -> pid)
    in
    (* Forward a drain request to every worker in the pool. *)
    Sys.set_signal Sys.sigterm
      (Sys.Signal_handle
         (fun _ ->
            List.iter
              (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ())
              pids));
    List.fold_left
      (fun worst pid ->
         match Unix.waitpid [] pid with
         | _, Unix.WEXITED c -> max worst c
         | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> max worst 1
         | exception _ -> worst)
      0 pids
  end

(* ------------------------------------------------------------------ *)

let fork_map ~workers f =
  if workers < 1 then invalid_arg "Pool.fork_map: workers must be >= 1";
  Transport.init ();
  flush stdout;
  flush stderr;
  (* Create every pipe before the first fork so each child can close
     the write ends it inherited from its siblings' pipes — otherwise a
     child dying early would never produce an EOF. *)
  let pipes = Array.init workers (fun _ -> Unix.pipe ()) in
  let children =
    Array.to_list
      (Array.init workers (fun i ->
           match Unix.fork () with
           | 0 ->
             Array.iteri
               (fun j (r', w') ->
                  if j = i then (try Unix.close r' with _ -> ())
                  else begin
                    (try Unix.close r' with _ -> ());
                    (try Unix.close w' with _ -> ())
                  end)
               pipes;
             Obs.Progress.disable ();
             Obs.Sink.reset ();
             (try Transport.write_frame_fd (snd pipes.(i)) (f i)
              with _ -> ());
             Unix._exit 0
           | pid -> (pid, fst pipes.(i))))
  in
  Array.iter (fun (_, w) -> try Unix.close w with _ -> ()) pipes;
  List.map
    (fun (pid, r) ->
       let res =
         match Transport.read_frame_fd r with
         | j -> Ok j
         | exception _ -> Error "worker died before reporting"
       in
       (try Unix.close r with _ -> ());
       (try ignore (Unix.waitpid [] pid) with _ -> ());
       res)
    children
