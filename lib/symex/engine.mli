(** The symbolic-execution engine (the KLEE stand-in).

    {1 Exploration model}

    The engine explores a testbench (an OCaml thunk) by {e re-execution
    with decision prefixes}: every pending path is a vector of branch
    decisions; executing the testbench under a prefix deterministically
    replays those decisions, and the first unprescribed symbolic branch
    consults the solver — if both directions are feasible the path
    forks, one direction continues and the other is pushed onto the
    frontier.  This requires the testbench to be deterministic (build
    the whole device under verification inside the thunk) and yields the
    same observable exploration as KLEE's state forking.

    Symbolic inputs are pooled positionally across re-executions: the
    k-th [fresh] call of every execution returns the same term, so path
    conditions of shared prefixes are physically equal and the solver
    caches hit across paths.

    {1 Error semantics}

    As in KLEE, a violable [check] records an error with a concrete
    counterexample and terminates only the failing side; exploration
    continues until the frontier is exhausted or a limit is reached.
    Errors are de-duplicated by [(site, kind)].

    {1 Entry points}

    {!Session} is the one way to configure and start an exploration:
    build a session with {!Session.make} (strategy, budgets, workers,
    checkpointing, resume) and run any number of testbenches through
    it with {!Session.run}.  With [workers > 1] the session runs the
    worker-pool engine ({!Pool}); with the default single worker it
    runs the in-process sequential loop — same verdicts either way.

    {1 Snapshot forking}

    By default the engine forks by {e snapshot}: every peripheral call
    wrapped in {!syscall} appends a log entry capturing its full effect
    (path bookkeeping, coverage events, tracked component states, and a
    payload effect).  A forked child carries the parent's log and
    fast-forwards through it — restoring state instead of re-executing
    the calls — then runs only its suffix live.  Decision-prefix replay
    is kept as the checkpoint/wire representation: snapshots never
    leave the process, and a path whose snapshot is unavailable (cache
    eviction, resume, worker hand-off) silently degrades to full
    replay, counted in [replay_fallbacks]. *)

type limits = Budget.t = {
  max_paths : int option;
  max_instructions : int option;
  max_seconds : float option;
  max_solver_conflicts : int option;
      (** per-query CDCL conflict budget; a query that exceeds it
          terminates only the current path (counted in
          [paths_unknown]) and marks the run non-exhaustive *)
  solver_timeout_ms : int option;
      (** per-query wall-clock budget, same path-local semantics; the
          CDCL loop polls the deadline at propagation boundaries *)
  max_memory_mb : int option;
      (** OCaml heap watermark (from [Gc] statistics), polled between
          branches; exceeding it stops the run gracefully *)
}

val no_limits : limits

type config = {
  strategy : Search.strategy;
  limits : limits;
  stop_after_errors : int option;
      (** stop exploration once this many distinct errors are known *)
  snapshots : bool;
      (** fork by fast-forwarding the parent's syscall log (default);
          when [false] every path replays its full decision prefix *)
}

val default_config : config

type checkpoint_policy = Checkpoint.policy = {
  write : Checkpoint.t -> unit;
      (** called with a frontier snapshot; typically
          [Checkpoint.save path] *)
  every_s : float;
      (** minimum seconds between periodic snapshots; a final snapshot
          is always written when the run stops or exhausts *)
}
(** Alias of {!Checkpoint.policy}, kept for source compatibility. *)

type resilience = {
  res_requeued : int;        (** work units re-queued after a fault *)
  res_worker_deaths : int;   (** worker processes lost (incl. watchdog kills) *)
  res_hung : int;            (** workers killed by the heartbeat watchdog *)
  res_quarantined : int;     (** poison units dropped after repeated crashes *)
  res_lease_expired : int;   (** leases past deadline, re-granted elsewhere *)
  res_duplicates : int;      (** duplicate/late results dropped
                                 (first-result-wins) *)
  res_reconnects : int;      (** remote peer re-registrations after a lost
                                 connection *)
  res_checkpoint_fallbacks : int;
      (** checkpoint loads answered by the [.bak] rotation (process
          total, see {!Checkpoint.fallbacks}) *)
  res_unvalidated : int;     (** errors whose counterexample replay failed *)
  res_chaos : (string * int) list;
      (** {!Chaos} injections fired during the run, per point (master
          plus workers) — all zeros when chaos is disarmed *)
}
(** Self-healing ledger of a run: every retried query, requeued unit,
    killed worker, quarantined unit, checkpoint fallback and
    unconfirmed counterexample, so a fault — injected by {!Chaos} or
    genuine — is accounted in the report rather than silently
    absorbed. *)

val no_resilience : resilience

type report = {
  errors : Error.t list;        (** distinct errors, in discovery order *)
  paths : int;                  (** total executions *)
  paths_completed : int;        (** ran to the end of the testbench *)
  paths_errored : int;          (** terminated by an error *)
  paths_infeasible : int;       (** killed by an unsatisfiable [assume] *)
  paths_unknown : int;          (** killed by a solver resource limit *)
  instructions : int;           (** symbolic operations executed *)
  wall_time : float;            (** seconds *)
  solver_time : float;          (** seconds spent in the solver *)
  solver_queries : int;
  solver_stats : Smt.Solver.Stats.t;
      (** full solver activity of this run (per-stage times, cache
          hits, SAT counters) — the difference of {!Smt.Solver.Stats}
          snapshots taken around the run; after a resume it includes
          the checkpointed segment's activity *)
  exhausted : bool;             (** the whole state space was explored *)
  stop_reason : Budget.reason option;
      (** which budget stopped the run, [None] on exhaustion *)
  strategy : Search.strategy;   (** the strategy the run used *)
  branch_coverage : (string * int) list;
      (** executed branch sites with execution counts (KLEE-style
          coverage reporting) *)
  workers : int;                (** worker processes the run used (1 =
                                    in-process sequential exploration) *)
  resilience : resilience;      (** faults absorbed during the run *)
  coverage : Obs.Coverage.t;
      (** register/branch-arm coverage recorded during the run, merged
          across workers; deterministic for a fixed path set *)
  profile : Obs.Profile.t;
      (** solver wall time bucketed by (query origin, pipeline stage) *)
  events_dropped : int;
      (** trace events lost to recorder/forwarding limits (local +
          worker-reported) *)
  snapshots_taken : int;
      (** forks pushed with a usable syscall-log snapshot *)
  snapshot_restores : int;
      (** paths that started by fast-forwarding a snapshot *)
  replay_fallbacks : int;
      (** paths whose snapshot was unavailable (evicted, resumed from
          a checkpoint, or handed to another worker) and that replayed
          their full decision prefix instead *)
  instructions_saved : int;
      (** symbolic instructions accounted by fast-forward instead of
          re-execution (included in [instructions]) *)
}

(** The unified exploration entry point: one value carrying everything
    that used to be spread over [Engine.run]'s argument bundle
    (config, checkpoint policy, resume state, seed, worker count). *)
module Session : sig
  type t = {
    strategy : Search.strategy;
    limits : limits;
    stop_after_errors : int option;
    checkpoint : Checkpoint.policy option;
    resume : Checkpoint.t option;
    seed : int option;     (** recorded seed (drives the default
                               [Random_path] strategy when set) *)
    workers : int;
    heartbeat_ms : int option;
        (** worker heartbeat period: workers emit liveness frames at
            this period and the master kills (and requeues the unit
            of) any worker silent for [max (8*hb, 1s)]; [None]
            disables the watchdog.  Ignored for sequential runs. *)
    listen : Transport.listener option;
        (** accept remote TCP workers on this bound listener (the
            caller owns and closes it); forces the pool engine even
            with [workers <= 1], and allows [workers = 0] *)
    lease_ms : int option;
        (** work-unit lease deadline: a granted unit whose holder is
            silent this long is re-queued for another peer (the holder
            is not killed; its late result is dropped
            first-result-wins).  [None] disables lease expiry. *)
    cookie : string option;
        (** parameter fingerprint checked against remote workers'
            hello frames; a mismatch rejects the worker before it can
            corrupt the campaign *)
    validate : bool;
        (** replay every error's counterexample concretely after the
            run and demote unconfirmed errors to
            [Error.validated = false] (default [true]) *)
    snapshots : bool;
        (** snapshot forking (default [true]); see the module docs.
            Verdicts, error sites and path totals are identical either
            way — only re-executed work differs. *)
  }

  val make :
    ?strategy:Search.strategy ->
    ?limits:limits ->
    ?stop_after_errors:int ->
    ?checkpoint:Checkpoint.policy ->
    ?resume:Checkpoint.t ->
    ?seed:int ->
    ?workers:int ->
    ?heartbeat_ms:int ->
    ?listen:Transport.listener ->
    ?lease_ms:int ->
    ?cookie:string ->
    ?validate:bool ->
    ?snapshots:bool ->
    unit ->
    t
  (** Build a session.  Defaults: no budgets, no checkpointing, one
      worker, no heartbeats, no listener, no leases, validation on.
      The strategy defaults to [Random_path seed] when [seed] is given
      and [strategy] is not, and to [Dfs] otherwise.  Raises
      [Invalid_argument] when [workers < 1] without [listen] (with a
      listener [workers = 0] is allowed — remote peers do all the
      work), or when [heartbeat_ms < 1] or [lease_ms < 1]. *)

  val config : t -> config
  (** The legacy config bundle this session denotes (strategy, limits,
      error threshold) — for code still on the deprecated API. *)

  val run : ?label:string -> t -> (unit -> unit) -> report
  (** Explore a testbench under this session.  Nested runs are not
      allowed.

      [label] names the run inside checkpoints (defaults to ["run"]);
      resuming checks it, so a checkpoint cannot be replayed against
      the wrong testbench.  [t.resume] restores a checkpointed
      frontier, search state, counters and errors, and continues as if
      never interrupted: an interrupted-then-resumed exploration
      reaches the same verdicts, path totals and error sites as an
      uninterrupted one (pop {e order} may differ for non-DFS
      strategies, totals do not).  [t.checkpoint] writes periodic
      snapshots plus a final one at stop/exhaustion.

      With [t.workers > 1] exploration runs on the {!Pool}
      master/worker engine: same verdicts, error sites and exhausted
      flag as a single-worker run of the same session, and identical
      path totals when the run is exhaustive.  Checkpoints taken by a
      parallel run resume fine under any worker count, and vice versa.

      The engine polls {!Budget.interrupted} between branches and
      inside SAT solving, so SIGINT/SIGTERM (via
      {!Budget.install_signal_handlers}) stop the run gracefully: the
      final checkpoint is written and a partial report returned.

      With [t.validate] (the default), every reported error's
      counterexample is replayed concretely — solver-free — after the
      run; an error that does not reproduce the same [(site, kind)] is
      returned with [Error.validated = false], counted in
      [resilience.res_unvalidated] and in the
      [symsysc_unvalidated_errors_total] metric.  A clean engine and
      solver produce zero unvalidated errors; a nonzero count means
      the verifier itself (not the DUV) is suspect.

      With [t.listen] set the master also accepts remote TCP workers
      (see {!serve}); units are leased ([t.lease_ms]) and results
      merged first-result-wins, so the final report is byte-equivalent
      to a pipe-only run of the same session regardless of worker
      placement, reconnects or duplicated results. *)

  val serve :
    host:string -> port:int -> workers:int -> ?backoff_seed:int ->
    label:string -> t -> (unit -> unit) -> int
  (** Remote worker side of a distributed run: fork [workers] processes
      that dial a listening master at [host:port] and execute its work
      units over the session's testbench.  The session's [strategy],
      [cookie] and label must match the master's or registration is
      rejected.  Lost connections re-dial with
      {!Transport.backoff_delay} seeded by [backoff_seed].  Blocks
      until the master sends [stop] (or SIGTERM drains the pool);
      returns the worst worker exit code (0 = clean).  Raises
      [Invalid_argument] when [workers < 1]. *)
end

(** {1 Snapshot plumbing (peripheral-facing)}

    Peripherals opt into snapshot forking by (a) registering their
    mutable state as components and (b) wrapping their engine-visible
    entry points in {!syscall}.  Wrapping is an optimization, never a
    correctness requirement: an unwrapped call simply re-executes on
    fast-forwarded paths and its effects are overwritten by the next
    consumed entry's component restore. *)

type component_state = ..
(** Extensible captured-state constructors; each peripheral adds its
    own (the engine never inspects them). *)

type effect_data = ..
(** Extensible per-call payload effect (e.g. the TLM payload bytes a
    transport wrote back). *)

type effect_data += Effect_none

val register_component :
  save:(unit -> component_state) ->
  restore:(component_state -> unit) ->
  unit
(** Track a piece of mutable state for snapshotting.  Must be called
    during path execution (typically from construction glue inside the
    testbench thunk) and never from inside a {!syscall}-wrapped call;
    outside exploration it is a no-op.  Components are captured after
    every wrapped call in registration order. *)

val add_path_start_hook : (unit -> unit) -> unit
(** Run [f] at the start of every path execution (process-global, for
    resetting ambient registries).  The engine resets the {!Pk} id
    counters itself; hooks run after that. *)

val syscall :
  capture:(unit -> effect_data) ->
  apply:(effect_data -> unit) ->
  (unit -> unit) ->
  unit
(** [syscall ~capture ~apply f] runs the peripheral call [f] and logs
    its complete effect: engine bookkeeping (decisions, path condition,
    fresh inputs, visits, coverage, instruction count), the states of
    all registered components, and [capture ()]'s payload effect.  On a
    fast-forwarded path the logged entry is consumed instead: state is
    restored and [apply] re-applies the payload effect, without running
    [f].  Return values are threaded through refs closed over by
    [capture]/[apply].  Outside exploration (or with snapshots
    disabled, or when nested) it just runs [f]. *)

(** {1 Testbench / DUV intrinsics}

    These mirror the KLEE interface functions.  They are callable from
    anywhere inside the thunk passed to {!Session.run} (or [replay]);
    the engine context is ambient, as KLEE's is. *)

val fresh : string -> int -> Smt.Expr.t
(** [fresh name width] — a new symbolic input ([klee_int] et al.). *)

val fresh32 : string -> Smt.Expr.t
(** [fresh name 32] — the shape used by all PLIC testbenches. *)

val assume : Smt.Expr.t -> unit
(** [klee_assume]: constrain the current path; silently terminates the
    path when the constraint is infeasible. *)

val branch : ?site:string -> Smt.Expr.t -> bool
(** Branch on a boolean term; forks when both directions are feasible.
    This is what every [if] in DUV code goes through. *)

val check : site:string -> ?message:string -> Smt.Expr.t -> unit
(** Assert a property.  If it is violable, record an
    {!Error.Assertion_failure} with a counterexample; the failing side
    terminates, the passing side continues. *)

val fatal_check : site:string -> ?message:string -> Smt.Expr.t -> unit
(** Like [check] but records {!Error.Abort} — models a C [assert] whose
    failure would abort the whole program (bug F1 of the paper). *)

val check_kind :
  Error.kind -> site:string -> ?message:string -> Smt.Expr.t -> unit
(** Generalized [check] used by the memory subsystem (out-of-bounds,
    division by zero). *)

val report_error : Error.kind -> site:string -> message:string -> unit
(** Record an unconditional error on the current path and terminate
    the path. *)

val concretize : ?site:string -> Smt.Expr.t -> Smt.Bv.t
(** Concretize a term to a feasible value, constraining the path to that
    value; alternative values are explored on forked paths (KLEE's
    behaviour at [switch] statements and float operations). *)

val path_condition : unit -> Smt.Expr.t list

val terminate_path : unit -> 'a
(** Silently kill the current path (infeasible). *)

val in_symbolic_context : unit -> bool
(** Whether a [run] or [replay] is active. *)

val exploring : unit -> bool
(** Whether symbolic exploration specifically is active — true under
    [run]/[Session.run], false under replay or random trials.  Coverage
    instrumentation gates on this so re-validation of counterexamples
    does not inflate the counts. *)

exception Check_failed of string
(** Raised by [check] in plain concrete execution (outside [run] /
    [replay]) — the OCaml analogue of an assert aborting a native run. *)

(** {1 Counterexample replay}

    The paper compiles the bytecode to a native executable to replay
    counterexamples under a debugger; here, [replay] re-runs the
    testbench concretely, feeding the recorded input values
    positionally. *)

val replay :
  (string * Smt.Bv.t) list -> (unit -> unit) -> (Error.t, string) result option
(** [replay counterexample testbench] returns [Some (Ok error)] when a
    check fails during concrete re-execution (the expected outcome for
    a true counterexample), [Some (Error msg)] when replay diverges
    (e.g. an [assume] fails), and [None] when the run completes without
    failure. *)

(** {1 Random-testing baseline}

    Concrete random testing over the same testbench API — the classic
    baseline symbolic execution is compared against.  [fresh] draws
    uniform random values, [assume] rejects the trial when violated,
    and a failing [check] ends the campaign with the trial's inputs as
    the counterexample. *)

type random_report = {
  trials : int;           (** trials executed (including the failing one) *)
  rejected : int;         (** trials rejected by an [assume] *)
  failure : (Error.t * int) option;
      (** first failure and the 1-based trial index it occurred on *)
  random_wall_time : float;
  seed : int;             (** the seed the campaign ran with, so a
                              failing campaign can be reproduced *)
  workers : int;          (** processes the campaign ran on *)
}

val random_test :
  ?seed:int ->
  ?max_trials:int ->
  ?max_seconds:float ->
  ?workers:int ->
  (unit -> unit) ->
  random_report
(** Run up to [max_trials] (default 10_000) random trials or until
    [max_seconds] elapse or a check fails.

    With [workers > 1] the trial budget is split over forked worker
    processes, each drawing from its own RNG stream derived from
    [seed] via splitmix64 — so a campaign is reproducible for a given
    [(seed, workers)] pair.  Workers run their full quota (no
    cross-worker cancellation); the merged verdict is the
    lowest-indexed worker's failure, with a worker-local trial
    index. *)
