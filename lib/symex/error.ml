type kind =
  | Assertion_failure
  | Abort
  | Out_of_bounds
  | Division_by_zero
  | Unhandled_exception

type t = {
  kind : kind;
  site : string;
  message : string;
  counterexample : (string * Smt.Bv.t) list;
  path_id : int;
  instructions : int;
  found_after : float;
  validated : bool;
}

let kind_to_string = function
  | Assertion_failure -> "assertion failure"
  | Abort -> "abort"
  | Out_of_bounds -> "out-of-bounds access"
  | Division_by_zero -> "division by zero"
  | Unhandled_exception -> "unhandled exception"

let kind_of_string = function
  | "assertion failure" -> Some Assertion_failure
  | "abort" -> Some Abort
  | "out-of-bounds access" -> Some Out_of_bounds
  | "division by zero" -> Some Division_by_zero
  | "unhandled exception" -> Some Unhandled_exception
  | _ -> None

let to_json t =
  let open Obs.Json in
  Obj
    [ ("kind", Str (kind_to_string t.kind));
      ("site", Str t.site);
      ("message", Str t.message);
      ("counterexample",
       List
         (List.map
            (fun (name, v) ->
               Obj
                 [ ("name", Str name);
                   ("width", Int (Smt.Bv.width v));
                   ("value", Str (Printf.sprintf "0x%Lx" (Smt.Bv.to_int64 v))) ])
            t.counterexample));
      ("path_id", Int t.path_id);
      ("instructions", Int t.instructions);
      ("found_after", Float t.found_after);
      ("validated", Bool t.validated) ]

let of_json j =
  let open Obs.Json in
  let str k = Option.bind (member k j) to_string_opt in
  let int k = Option.bind (member k j) to_int_opt in
  match str "kind", str "site" with
  | Some kind_s, Some site ->
    (match kind_of_string kind_s with
     | None -> Error (Printf.sprintf "unknown error kind %S" kind_s)
     | Some kind ->
       let binding bj =
         match
           ( Option.bind (member "name" bj) to_string_opt,
             Option.bind (member "width" bj) to_int_opt,
             Option.bind (member "value" bj) to_string_opt )
         with
         | Some name, Some width, Some hex ->
           (match Int64.of_string_opt hex with
            | Some v when width >= 1 && width <= 64 ->
              Ok (name, Smt.Bv.make ~width v)
            | _ -> Error "malformed counterexample value"
           )
         | _ -> Error "malformed counterexample binding"
       in
       let cex =
         match Option.bind (member "counterexample" j) to_list_opt with
         | None -> Ok []
         | Some l ->
           List.fold_right
             (fun bj acc ->
                match acc, binding bj with
                | Ok tl, Ok b -> Ok (b :: tl)
                | (Error _ as e), _ -> e
                | _, (Error _ as e) -> e)
             l (Ok [])
       in
       (match cex with
        | Error e -> Error e
        | Ok counterexample ->
          Ok
            { kind;
              site;
              message = Option.value ~default:"" (str "message");
              counterexample;
              path_id = Option.value ~default:0 (int "path_id");
              instructions = Option.value ~default:0 (int "instructions");
              found_after =
                Option.value ~default:0.0
                  (Option.bind (member "found_after" j) to_float_opt);
              validated =
                Option.value ~default:true
                  (Option.bind (member "validated" j) to_bool_opt) }))
  | _ -> Error "error record missing kind/site"

let pp_counterexample ppf t =
  let pp_binding ppf (name, v) =
    Format.fprintf ppf "%s = %a" name Smt.Bv.pp v
  in
  Format.fprintf ppf "@[<v 2>counterexample:@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_binding)
    t.counterexample

let pp ppf t =
  Format.fprintf ppf "@[<v>%s at %s: %s (path %d, %.2fs)%s@,%a@]"
    (kind_to_string t.kind) t.site t.message t.path_id t.found_after
    (if t.validated then "" else " [UNVALIDATED]")
    pp_counterexample t
