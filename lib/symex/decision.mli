(** One recorded exploration decision.

    A pending path is a vector of decisions replayed by re-execution.
    Plain branches record the direction taken.  Concretization records
    the chosen value {e and} the direction, because the value comes
    from a solver model and model choice depends on solver-cache
    history: replaying a concretization by direction alone could pick a
    different value on a resumed run (cold caches) and explore a
    different state space.  Recording the value makes replay — and
    therefore checkpoint/resume — deterministic without consulting the
    solver. *)

type t =
  | Dir of bool
      (** a branch: [true] took the condition, [false] its negation *)
  | Pick of { value : Smt.Bv.t; dir : bool }
      (** a concretization candidate: [dir = true] constrained the term
          to [value]; [dir = false] excluded it and moved on *)

val to_string : t -> string
(** Compact form used inside checkpoints: ["T"] / ["F"] for branches,
    ["+0x<hex>:<width>"] / ["-0x<hex>:<width>"] for picks. *)

val of_string : string -> (t, string) result

val pp : Format.formatter -> t -> unit
