module Json = Obs.Json

(* A peer that went away mid-conversation.  Both framing directions map
   the "other side is gone" errno family (and EOF) onto this exception,
   so the pool can route every lost-connection shape — dead pipe peer,
   TCP reset, half-closed socket — through one worker-death path
   instead of dying on an unhandled EPIPE. *)
exception Disconnected of string

let disconnected where = raise (Disconnected where)

let init () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

type kind = Pipe | Tcp

let kind_to_string = function Pipe -> "pipe" | Tcp -> "tcp"

type conn = {
  c_in : Unix.file_descr;   (* frames arriving from the peer *)
  c_out : Unix.file_descr;  (* frames going to the peer *)
  c_kind : kind;
  c_addr : string;          (* human-readable peer address *)
}

let pipe_conn ~addr c_in c_out = { c_in; c_out; c_kind = Pipe; c_addr = addr }

let describe c = Printf.sprintf "%s:%s" (kind_to_string c.c_kind) c.c_addr

let close c =
  (try Unix.close c.c_in with _ -> ());
  if c.c_out != c.c_in then (try Unix.close c.c_out with _ -> ())

(* ------------------------------------------------------------------ *)
(* Framing: ASCII decimal payload length, a newline, then one JSON
   document.  Both directions of every transport speak this format; it
   reuses the existing Obs.Json printer/parser rather than inventing a
   binary protocol, and a frame is trivially inspectable with strace or
   by dumping the stream. *)

let gone_errno = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ESHUTDOWN
  | Unix.EBADF ->
    true
  | _ -> false

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error (e, _, _) when gone_errno e ->
        disconnected ("write: " ^ Unix.error_message e)
    in
    write_all fd buf (off + n) (len - n)
  end

let frame_string j =
  let payload = Json.to_string j in
  string_of_int (String.length payload) ^ "\n" ^ payload

let write_frame_fd fd j =
  let s = frame_string j in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> disconnected "read: EOF"
  | _ -> Bytes.get b 0
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_byte fd
  | exception Unix.Unix_error (e, _, _) when gone_errno e ->
    disconnected ("read: " ^ Unix.error_message e)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then
      match Unix.read fd b off (n - off) with
      | 0 -> disconnected "read: EOF mid-frame"
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) when gone_errno e ->
        disconnected ("read: " ^ Unix.error_message e)
  in
  go 0;
  Bytes.unsafe_to_string b

let read_frame_fd fd =
  let hdr = Buffer.create 8 in
  let rec header () =
    match read_byte fd with
    | '\n' -> ()
    | c -> Buffer.add_char hdr c; header ()
  in
  header ();
  let len =
    match int_of_string_opt (Buffer.contents hdr) with
    | Some n when n >= 0 && n <= 1 lsl 30 -> n
    | _ -> failwith "transport: malformed frame header"
  in
  match Json.of_string (read_exact fd len) with
  | Ok j -> j
  | Error e -> failwith ("transport: malformed frame: " ^ e)

let write_frame c j = write_frame_fd c.c_out j
let read_frame c = read_frame_fd c.c_in

(* ------------------------------------------------------------------ *)
(* TCP listener / dialer *)

type listener = {
  l_fd : Unix.file_descr;
  l_host : string;
  l_port : int;  (* the bound port — resolved when asked for port 0 *)
}

let resolve host =
  try (Unix.gethostbyname host).Unix.h_addr_list.(0)
  with _ ->
    (try Unix.inet_addr_of_string host
     with _ -> failwith (Printf.sprintf "transport: cannot resolve %S" host))

let addr_string sockaddr =
  match sockaddr with
  | Unix.ADDR_INET (a, p) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let listen ?(backlog = 16) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (resolve host, port));
     Unix.listen fd backlog
   with exn ->
     (try Unix.close fd with _ -> ());
     raise exn);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { l_fd = fd; l_host = host; l_port = bound_port }

let listener_addr l = (l.l_host, l.l_port)
let listener_fd l = l.l_fd

let close_listener l = try Unix.close l.l_fd with _ -> ()

let accept l =
  let fd, peer = Unix.accept l.l_fd in
  Unix.set_close_on_exec fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
  { c_in = fd; c_out = fd; c_kind = Tcp; c_addr = addr_string peer }

let connect ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.set_close_on_exec fd;
     (try Unix.setsockopt fd Unix.TCP_NODELAY true with _ -> ());
     Unix.connect fd (Unix.ADDR_INET (resolve host, port))
   with
   | Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with _ -> ());
     disconnected ("connect: " ^ Unix.error_message e)
   | exn ->
     (try Unix.close fd with _ -> ());
     raise exn);
  { c_in = fd; c_out = fd; c_kind = Tcp;
    c_addr = Printf.sprintf "%s:%d" host port }

(* ------------------------------------------------------------------ *)
(* Reconnect backoff *)

(* splitmix64 (same generator the search and chaos layers use), here
   keyed on (seed, attempt) so the whole reconnect schedule is a pure
   function of the pair: tests can enumerate it, and two workers given
   different seeds never thunder in lockstep. *)
let splitmix64 st =
  let st = Int64.add st 0x9E3779B97F4A7C15L in
  let z = st in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let backoff_base_s = 0.05
let backoff_cap_s = 5.0

let backoff_delay ~seed ~attempt =
  let attempt = max 1 attempt in
  (* Exponential growth capped well before the jitter draw, so the
     deterministic ceiling holds for every (seed, attempt). *)
  let expo =
    backoff_base_s *. (2.0 ** float_of_int (min 16 (attempt - 1)))
  in
  let ceiling = Float.min expo backoff_cap_s in
  let h =
    splitmix64
      (Int64.logxor
         (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
         (Int64.of_int attempt))
  in
  let unit_f =
    Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0
  in
  (* Full jitter over (0, ceiling]: mean ceiling/2, never 0 (a zero
     sleep would busy-spin on a refused connect). *)
  Float.max (ceiling *. unit_f) 0.001
