module Expr = Smt.Expr
module Bv = Smt.Bv
module Solver = Smt.Solver
module Model = Smt.Model

type limits = {
  max_paths : int option;
  max_instructions : int option;
  max_seconds : float option;
  max_solver_conflicts : int option;
}

let no_limits =
  {
    max_paths = None;
    max_instructions = None;
    max_seconds = None;
    max_solver_conflicts = None;
  }

type config = {
  strategy : Search.strategy;
  limits : limits;
  stop_after_errors : int option;
}

let default_config =
  { strategy = Search.Dfs; limits = no_limits; stop_after_errors = None }

type report = {
  errors : Error.t list;
  paths : int;
  paths_completed : int;
  paths_errored : int;
  paths_infeasible : int;
  paths_unknown : int;
  instructions : int;
  wall_time : float;
  solver_time : float;
  solver_queries : int;
  solver_stats : Solver.Stats.t;
  exhausted : bool;
  branch_coverage : (string * int) list;
}

exception Check_failed of string

(* Path-local termination reasons. *)
type path_end = End_error | End_infeasible | End_unknown

exception Terminate_path of path_end
exception Stop_exploration
exception Replay_stop
exception Replay_diverged of string

type path_state = {
  prefix : bool array;            (* prescribed decisions *)
  mutable pos : int;              (* prescribed decisions consumed *)
  mutable taken : bool list;      (* all decisions, newest first *)
  mutable pc : Expr.t list;       (* path condition, newest first *)
  mutable inputs : (string * Expr.t) list;  (* newest first *)
  mutable fresh_idx : int;
  path_id : int;
}

type explore_state = {
  cfg : config;
  frontier : bool array Search.t;
  mutable pool : (string * int * Expr.t) array;
  mutable pool_len : int;
  mutable cur : path_state option;
  error_table : (string * Error.kind, unit) Hashtbl.t;
  mutable errors_rev : Error.t list;
  mutable n_paths : int;
  mutable n_completed : int;
  mutable n_errored : int;
  mutable n_infeasible : int;
  mutable n_unknown : int;
  mutable exhausted : bool;
  started : float;
  instr_base : int;
}

type replay_state = {
  values : (string * Bv.t) array;
  mutable idx : int;
  mutable failure : Error.t option;
}

type rand_state = {
  rng : Random.State.t;
  mutable r_inputs : (string * Bv.t) list; (* newest first *)
  mutable r_failure : Error.t option;
}

exception Trial_rejected

type mode =
  | Off
  | Explore of explore_state
  | Replay of replay_state
  | Rand of rand_state

let mode = ref Off

let in_symbolic_context () =
  match !mode with Off -> false | Explore _ | Replay _ | Rand _ -> true

let current_path st =
  match st.cur with
  | Some ps -> ps
  | None -> failwith "Engine: no active path (intrinsic called outside run)"

let elapsed st = Unix.gettimeofday () -. st.started
let instructions_so_far st = Expr.instruction_count () - st.instr_base

let check_limits st =
  let l = st.cfg.limits in
  let hit =
    (match l.max_instructions with
     | Some n -> instructions_so_far st > n
     | None -> false)
    || (match l.max_seconds with Some s -> elapsed st > s | None -> false)
  in
  if hit then begin
    st.exhausted <- false;
    raise Stop_exploration
  end

(* ------------------------------------------------------------------ *)
(* Symbolic inputs                                                     *)

let pool_fresh st ps name width =
  let k = ps.fresh_idx in
  ps.fresh_idx <- k + 1;
  let e =
    if k < st.pool_len then begin
      let pname, pwidth, pe = st.pool.(k) in
      if pname = name && pwidth = width then pe
      else Expr.fresh_var name width (* divergent suffix: do not pool *)
    end
    else begin
      let e = Expr.fresh_var name width in
      if k = st.pool_len then begin
        if st.pool_len = Array.length st.pool then begin
          let bigger =
            Array.make (max 16 (2 * st.pool_len)) ("", 0, Expr.tru)
          in
          Array.blit st.pool 0 bigger 0 st.pool_len;
          st.pool <- bigger
        end;
        st.pool.(st.pool_len) <- (name, width, e);
        st.pool_len <- st.pool_len + 1
      end;
      e
    end
  in
  ps.inputs <- (name, e) :: ps.inputs;
  e

let fresh name width =
  match !mode with
  | Explore st ->
    let ps = current_path st in
    pool_fresh st ps name width
  | Replay rs ->
    if rs.idx >= Array.length rs.values then
      raise (Replay_diverged
               (Printf.sprintf "input %s requested beyond recorded inputs" name))
    else begin
      let _, v = rs.values.(rs.idx) in
      rs.idx <- rs.idx + 1;
      if Bv.width v <> width then
        raise (Replay_diverged
                 (Printf.sprintf "input %s width mismatch" name));
      Expr.const v
    end
  | Rand rs ->
    let raw = Random.State.int64 rs.rng Int64.max_int in
    let v = Bv.make ~width raw in
    rs.r_inputs <- (name, v) :: rs.r_inputs;
    Expr.const v
  | Off -> failwith "Engine.fresh: no symbolic context"

let fresh32 name = fresh name 32

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)

let terminate_path () = raise (Terminate_path End_infeasible)

let path_condition () =
  match !mode with
  | Explore st -> List.rev (current_path st).pc
  | Replay _ | Rand _ | Off -> []

(* A solver [Unknown] (conflict limit hit) in the middle of a path
   terminates only that path, KLEE-style, instead of aborting the whole
   exploration: the remaining frontier is still explored and the run is
   reported as non-exhaustive, so [--max-solver-conflicts] composes
   with the other [--max-*] limits. *)
let solver_unknown st msg =
  st.exhausted <- false;
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"engine" "solver-unknown"
      ~args:[ ("reason", Obs.Event.Str msg) ];
  raise (Terminate_path End_unknown)

let path_check st constraints =
  Solver.check ?conflict_limit:st.cfg.limits.max_solver_conflicts constraints

let feasible st constraints =
  match path_check st constraints with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown msg -> solver_unknown st msg

let take st ps cond d =
  ignore st;
  ps.taken <- d :: ps.taken;
  ps.pc <- (if d then cond else Expr.not_ cond) :: ps.pc;
  d

let branch ?(site = "branch") cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> failwith "Engine.branch: symbolic branch outside run")
  | Replay _ ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> raise (Replay_diverged "symbolic branch during replay"))
  | Rand _ ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> raise (Replay_diverged "symbolic branch during random trial"))
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    Search.record_visit st.frontier site;
    (match Expr.to_bool cond with
     | Some b -> b
     | None ->
       if ps.pos < Array.length ps.prefix then begin
         let d = ps.prefix.(ps.pos) in
         ps.pos <- ps.pos + 1;
         take st ps cond d
       end
       else begin
         let sat_true = feasible st (cond :: ps.pc) in
         let sat_false = feasible st (Expr.not_ cond :: ps.pc) in
         match sat_true, sat_false with
         | true, true ->
           let alt = Array.of_list (List.rev (false :: ps.taken)) in
           Search.push st.frontier ~site alt;
           if !Obs.Sink.enabled then
             Obs.Sink.instant ~cat:"engine" "fork"
               ~args:
                 [ ("site", Obs.Event.Str site);
                   ("path", Obs.Event.Int ps.path_id);
                   ("frontier", Obs.Event.Int (Search.length st.frontier)) ];
           take st ps cond true
         | true, false -> take st ps cond true
         | false, true -> take st ps cond false
         | false, false ->
           (* The path condition itself became unsatisfiable — can only
              happen via solver resource limits; kill the path. *)
           raise (Terminate_path End_infeasible)
       end)

let assume cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> failwith "Engine.assume: false assumption"
     | None -> failwith "Engine.assume: symbolic assumption outside run")
  | Replay _ ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> raise (Replay_diverged "assumption failed"))
  | Rand _ ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> raise Trial_rejected)
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> raise (Terminate_path End_infeasible)
     | None ->
       if feasible st (cond :: ps.pc) then ps.pc <- cond :: ps.pc
       else raise (Terminate_path End_infeasible))

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

let counterexample_of_model ps model =
  List.rev_map
    (fun (name, e) ->
       let value =
         match e.Expr.node with
         | Expr.Var v -> Model.find model v
         | Expr.Bv_const v -> v
         | _ -> Model.eval model e
       in
       (name, value))
    ps.inputs

let record_error st ps kind site message model =
  let key = (site, kind) in
  if not (Hashtbl.mem st.error_table key) then begin
    Hashtbl.add st.error_table key ();
    let err : Error.t =
      {
        Error.kind;
        site;
        message;
        counterexample = counterexample_of_model ps model;
        path_id = ps.path_id;
        instructions = instructions_so_far st;
        found_after = elapsed st;
      }
    in
    st.errors_rev <- err :: st.errors_rev;
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"engine" "error"
        ~args:
          [ ("site", Obs.Event.Str site);
            ("kind", Obs.Event.Str (Error.kind_to_string kind));
            ("path", Obs.Event.Int ps.path_id) ];
    match st.cfg.stop_after_errors with
    | Some n when List.length st.errors_rev >= n ->
      st.exhausted <- false;
      raise Stop_exploration
    | Some _ | None -> ()
  end

let replay_failure rs kind site message =
  let err : Error.t =
    {
      Error.kind;
      site;
      message;
      counterexample = Array.to_list rs.values;
      path_id = 0;
      instructions = 0;
      found_after = 0.0;
    }
  in
  rs.failure <- Some err;
  raise Replay_stop

let random_failure rs kind site message =
  let err : Error.t =
    {
      Error.kind;
      site;
      message;
      counterexample = List.rev rs.r_inputs;
      path_id = 0;
      instructions = 0;
      found_after = 0.0;
    }
  in
  rs.r_failure <- Some err;
  raise Replay_stop

let check_kind kind ~site ?(message = "property violated") cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> raise (Check_failed site)
     | None -> failwith "Engine.check: symbolic check outside run")
  | Replay rs ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> replay_failure rs kind site message)
  | Rand rs ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> random_failure rs kind site message)
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false ->
       (match path_check st ps.pc with
        | Solver.Sat m ->
          record_error st ps kind site message m;
          raise (Terminate_path End_error)
        | Solver.Unsat -> raise (Terminate_path End_infeasible)
        | Solver.Unknown msg -> solver_unknown st msg)
     | None ->
       (match path_check st (Expr.not_ cond :: ps.pc) with
        | Solver.Sat m ->
          record_error st ps kind site message m;
          (* The failing side terminates; continue on the passing side
             when it is feasible. *)
          if feasible st (cond :: ps.pc) then ps.pc <- cond :: ps.pc
          else raise (Terminate_path End_error)
        | Solver.Unsat -> ps.pc <- cond :: ps.pc
        | Solver.Unknown msg -> solver_unknown st msg))

let check ~site ?message cond = check_kind Error.Assertion_failure ~site ?message cond
let fatal_check ~site ?message cond = check_kind Error.Abort ~site ?message cond

let report_error kind ~site ~message =
  match !mode with
  | Off -> raise (Check_failed site)
  | Replay rs -> replay_failure rs kind site message
  | Rand rs -> random_failure rs kind site message
  | Explore st ->
    let ps = current_path st in
    (match path_check st ps.pc with
     | Solver.Sat m ->
       record_error st ps kind site message m;
       raise (Terminate_path End_error)
     | Solver.Unsat -> raise (Terminate_path End_infeasible)
     | Solver.Unknown msg -> solver_unknown st msg)

(* ------------------------------------------------------------------ *)
(* Concretization (KLEE-style enumerating fork)                        *)

let rec concretize ?(site = "concretize") e =
  match Expr.to_bv e with
  | Some v -> v
  | None ->
    (match !mode with
     | Off -> failwith "Engine.concretize: symbolic value outside run"
     | Replay _ -> raise (Replay_diverged "symbolic value during replay")
     | Rand _ -> raise (Replay_diverged "symbolic value during random trial")
     | Explore st ->
       let ps = current_path st in
       (match path_check st ps.pc with
        | Solver.Sat m ->
          let v = Model.eval m e in
          if branch ~site (Expr.eq e (Expr.const v)) then v
          else concretize ~site e
        | Solver.Unsat -> raise (Terminate_path End_infeasible)
        | Solver.Unknown msg -> solver_unknown st msg))

(* ------------------------------------------------------------------ *)
(* Exploration loop                                                    *)

let run ?(config = default_config) body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.run: nested runs are not allowed");
  let solver_stats0 = Solver.Stats.get () in
  let st =
    {
      cfg = config;
      frontier = Search.create config.strategy;
      pool = Array.make 16 ("", 0, Expr.tru);
      pool_len = 0;
      cur = None;
      error_table = Hashtbl.create 16;
      errors_rev = [];
      n_paths = 0;
      n_completed = 0;
      n_errored = 0;
      n_infeasible = 0;
      n_unknown = 0;
      exhausted = true;
      started = Unix.gettimeofday ();
      instr_base = Expr.instruction_count ();
    }
  in
  mode := Explore st;
  Search.push st.frontier ~site:"root" [||];
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"engine" "run:start"
      ~args:
        [ ("strategy",
           Obs.Event.Str (Search.strategy_to_string config.strategy)) ];
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      (try
         let continue = ref true in
         while !continue do
           (match config.limits.max_paths with
            | Some n when st.n_paths >= n ->
              st.exhausted <- false;
              raise Stop_exploration
            | Some _ | None -> ());
           (* Instruction/time budgets are also enforced between paths,
              so straight-line testbenches cannot overrun them. *)
           check_limits st;
           match Search.pop st.frontier with
           | None -> continue := false
           | Some prefix ->
             let ps =
               {
                 prefix;
                 pos = 0;
                 taken = [];
                 pc = [];
                 inputs = [];
                 fresh_idx = 0;
                 path_id = st.n_paths;
               }
             in
             st.cur <- Some ps;
             st.n_paths <- st.n_paths + 1;
             if !Obs.Sink.enabled then
               Obs.Sink.span_begin ~cat:"engine" "path"
                 ~args:
                   [ ("path", Obs.Event.Int ps.path_id);
                     ("prefix", Obs.Event.Int (Array.length prefix)) ];
             let ended = ref false in
             let end_path outcome =
               if (not !ended) && !Obs.Sink.enabled then begin
                 ended := true;
                 Obs.Sink.span_end ~cat:"engine" "path"
                   ~args:
                     [ ("path", Obs.Event.Int ps.path_id);
                       ("outcome", Obs.Event.Str outcome);
                       ("frontier",
                        Obs.Event.Int (Search.length st.frontier)) ]
               end
             in
             (try
                (try
                   body ();
                   st.n_completed <- st.n_completed + 1;
                   end_path "completed"
                 with
                 | Terminate_path End_error ->
                   st.n_errored <- st.n_errored + 1;
                   end_path "error"
                 | Terminate_path End_infeasible ->
                   st.n_infeasible <- st.n_infeasible + 1;
                   end_path "infeasible"
                 | Terminate_path End_unknown ->
                   st.n_unknown <- st.n_unknown + 1;
                   end_path "unknown"
                 | Stop_exploration as e -> raise e
                 | Check_failed _ as e -> raise e
                 | exn ->
                   (* An OCaml exception escaped the testbench: report it
                      like KLEE reports an unhandled C++ exception. *)
                   let site = "exception:" ^ Printexc.to_string exn in
                   (match Solver.check ps.pc with
                    | Solver.Sat m ->
                      (try
                         record_error st ps Error.Unhandled_exception site
                           (Printexc.to_string exn) m
                       with Stop_exploration as e ->
                         st.n_errored <- st.n_errored + 1;
                         end_path "error";
                         raise e);
                      st.n_errored <- st.n_errored + 1;
                      end_path "error"
                    | Solver.Unsat ->
                      st.n_infeasible <- st.n_infeasible + 1;
                      end_path "infeasible"
                    | Solver.Unknown _ ->
                      st.exhausted <- false;
                      st.n_unknown <- st.n_unknown + 1;
                      end_path "unknown"))
              with Stop_exploration as e ->
                end_path "stopped";
                st.cur <- None;
                raise e);
             st.cur <- None;
             if Obs.Progress.due ~paths:st.n_paths then begin
               let s = Solver.Stats.sub (Solver.Stats.get ()) solver_stats0 in
               Obs.Progress.tick
                 {
                   Obs.Progress.paths = st.n_paths;
                   instructions = instructions_so_far st;
                   frontier = Search.length st.frontier;
                   errors = List.length st.errors_rev;
                   solver_time = s.Solver.Stats.time;
                   solver_queries = s.Solver.Stats.queries;
                   cache_hits =
                     s.Solver.Stats.cache_hits + s.Solver.Stats.cex_hits;
                   wall = elapsed st;
                 }
             end
         done
       with Stop_exploration -> ());
      let solver_stats =
        Solver.Stats.sub (Solver.Stats.get ()) solver_stats0
      in
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"engine" "run:end"
          ~args:
            [ ("paths", Obs.Event.Int st.n_paths);
              ("completed", Obs.Event.Int st.n_completed);
              ("errored", Obs.Event.Int st.n_errored);
              ("infeasible", Obs.Event.Int st.n_infeasible);
              ("unknown", Obs.Event.Int st.n_unknown);
              ("instructions", Obs.Event.Int (instructions_so_far st));
              ("exhausted", Obs.Event.Bool st.exhausted) ];
      {
        errors = List.rev st.errors_rev;
        paths = st.n_paths;
        paths_completed = st.n_completed;
        paths_errored = st.n_errored;
        paths_infeasible = st.n_infeasible;
        paths_unknown = st.n_unknown;
        instructions = instructions_so_far st;
        wall_time = elapsed st;
        solver_time = solver_stats.Solver.Stats.time;
        solver_queries = solver_stats.Solver.Stats.queries;
        solver_stats;
        exhausted = st.exhausted;
        branch_coverage = Search.visit_counts st.frontier;
      })

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let replay values body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.replay: nested runs are not allowed");
  let rs = { values = Array.of_list values; idx = 0; failure = None } in
  mode := Replay rs;
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      try
        body ();
        None
      with
      | Replay_stop ->
        (match rs.failure with
         | Some err -> Some (Ok err)
         | None -> Some (Error "replay stopped without failure"))
      | Replay_diverged msg -> Some (Error msg)
      | exn -> Some (Error ("exception during replay: " ^ Printexc.to_string exn)))

(* ------------------------------------------------------------------ *)
(* Random-testing baseline                                             *)

type random_report = {
  trials : int;
  rejected : int;
  failure : (Error.t * int) option;
  random_wall_time : float;
}

let random_test ?(seed = 42) ?(max_trials = 10_000) ?max_seconds body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.random_test: nested runs are not allowed");
  let rng = Random.State.make [| seed |] in
  let started = Unix.gettimeofday () in
  let trials = ref 0 and rejected = ref 0 in
  let failure = ref None in
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      let continue = ref true in
      while
        !continue && !failure = None && !trials < max_trials
        && (match max_seconds with
            | Some s -> Unix.gettimeofday () -. started < s
            | None -> true)
      do
        let rs = { rng; r_inputs = []; r_failure = None } in
        mode := Rand rs;
        incr trials;
        (try body () with
         | Replay_stop ->
           failure :=
             Option.map (fun e -> (e, !trials)) rs.r_failure
         | Trial_rejected -> incr rejected
         | Check_failed site ->
           (* a concrete-mode style failure escaping DUV code *)
           failure :=
             Some
               ( {
                   Error.kind = Error.Abort;
                   site;
                   message = "check failed during random trial";
                   counterexample = List.rev rs.r_inputs;
                   path_id = 0;
                   instructions = 0;
                   found_after = Unix.gettimeofday () -. started;
                 },
                 !trials )
         | Stdlib.Exit -> continue := false
         | exn ->
           failure :=
             Some
               ( {
                   Error.kind = Error.Unhandled_exception;
                   site = "exception:" ^ Printexc.to_string exn;
                   message = Printexc.to_string exn;
                   counterexample = List.rev rs.r_inputs;
                   path_id = 0;
                   instructions = 0;
                   found_after = Unix.gettimeofday () -. started;
                 },
                 !trials ));
        mode := Off
      done;
      {
        trials = !trials;
        rejected = !rejected;
        failure = !failure;
        random_wall_time = Unix.gettimeofday () -. started;
      })
