module Expr = Smt.Expr
module Bv = Smt.Bv
module Solver = Smt.Solver
module Model = Smt.Model

type limits = Budget.t = {
  max_paths : int option;
  max_instructions : int option;
  max_seconds : float option;
  max_solver_conflicts : int option;
  solver_timeout_ms : int option;
  max_memory_mb : int option;
}

let no_limits = Budget.unlimited

type config = {
  strategy : Search.strategy;
  limits : limits;
  stop_after_errors : int option;
  snapshots : bool;
}

let default_config =
  { strategy = Search.Dfs;
    limits = no_limits;
    stop_after_errors = None;
    snapshots = true }

type checkpoint_policy = Checkpoint.policy = {
  write : Checkpoint.t -> unit;
  every_s : float;
}

(* How much self-healing the run needed: every retried query, requeued
   unit, killed worker, quarantined unit, checkpoint fallback and
   unconfirmed counterexample is surfaced here so a fault — injected or
   genuine — is visible in the report rather than silently absorbed. *)
type resilience = {
  res_requeued : int;
  res_worker_deaths : int;
  res_hung : int;
  res_quarantined : int;
  res_lease_expired : int;
  res_duplicates : int;
  res_reconnects : int;
  res_checkpoint_fallbacks : int;
  res_unvalidated : int;
  res_chaos : (string * int) list;
}

let no_resilience =
  { res_requeued = 0;
    res_worker_deaths = 0;
    res_hung = 0;
    res_quarantined = 0;
    res_lease_expired = 0;
    res_duplicates = 0;
    res_reconnects = 0;
    res_checkpoint_fallbacks = 0;
    res_unvalidated = 0;
    res_chaos = [] }

type report = {
  errors : Error.t list;
  paths : int;
  paths_completed : int;
  paths_errored : int;
  paths_infeasible : int;
  paths_unknown : int;
  instructions : int;
  wall_time : float;
  solver_time : float;
  solver_queries : int;
  solver_stats : Solver.Stats.t;
  exhausted : bool;
  stop_reason : Budget.reason option;
  strategy : Search.strategy;
  branch_coverage : (string * int) list;
  workers : int;
  resilience : resilience;
  coverage : Obs.Coverage.t;
  profile : Obs.Profile.t;
  events_dropped : int;
  snapshots_taken : int;
  snapshot_restores : int;
  replay_fallbacks : int;
  instructions_saved : int;
}

exception Check_failed of string

(* Path-local termination reasons. *)
type path_end = End_error | End_infeasible | End_unknown

exception Terminate_path of path_end
exception Stop_exploration
exception Replay_stop
exception Replay_diverged of string

(* ------------------------------------------------------------------ *)
(* Snapshot forking (the syscall log)                                  *)

(* Peripheral state snapshots are opaque to the engine: each tracked
   component (a register backing store, a scheduler, a device's loose
   mutable fields) contributes a save/restore closure pair, and the
   state payloads live in an extensible variant so every library can
   add its own without the engine depending on it. *)
type component_state = ..
type effect_data = ..
type effect_data += Effect_none

type component = {
  comp_save : unit -> component_state;
  comp_restore : component_state -> unit;
}

(* One completed engine-visible peripheral call ("syscall").  The entry
   records the path bookkeeping *after* the call — the taken/pc/inputs/
   visited lists share their tails across entries, so appending is O(1)
   — plus everything needed to skip the call in a later re-execution:
   the constraints it appended (to mirror into the incremental solver
   scope), the visit/coverage events it recorded, the instructions it
   executed, a snapshot of every tracked component, and the
   caller-captured payload effect (return value, payload mutations). *)
type syscall_entry = {
  sc_pos : int;                    (* decisions taken when the call
                                      completed — all of them are
                                      prescribed in any forked child,
                                      so fast-forward jumps [pos]
                                      here *)
  sc_taken : Decision.t list;
  sc_pc : Expr.t list;
  sc_new_pc : Expr.t list;         (* constraints added, oldest first *)
  sc_inputs : (string * Expr.t) list;
  sc_fresh_idx : int;
  sc_visited : string list;
  sc_new_visits : string list;     (* sites visited, oldest first *)
  sc_cov : Obs.Coverage.event list;  (* coverage events, oldest first *)
  sc_instr : int;                  (* instructions the call executed *)
  sc_comps : component_state array;  (* in registration order *)
  sc_effect : effect_data;
}

(* A frontier item: the decision prefix (always present — the canonical,
   wire-safe representation) plus an optional snapshot, the forking
   path's syscall log at fork time.  [None] means the snapshot is
   unavailable (resume, requeue, cross-worker dispatch) and the path
   replays its prefix from the root; [Some []] is a genuinely empty log
   (the fork happened before the first completed syscall). *)
type frontier_item = {
  fi_prefix : Decision.t array;
  fi_snap : syscall_entry list option;  (* newest first *)
}

type path_state = {
  prefix : Decision.t array;      (* prescribed decisions *)
  mutable pos : int;              (* prescribed decisions consumed *)
  mutable taken : Decision.t list;  (* all decisions, newest first *)
  mutable pc : Expr.t list;       (* path condition, newest first *)
  mutable inputs : (string * Expr.t) list;  (* newest first *)
  mutable fresh_idx : int;
  mutable visited : string list;  (* sites visited on this path, for
                                     rollback when it is abandoned *)
  instr_start : int;              (* instructions_so_far at path start *)
  path_id : int;
  mutable comps_rev : component list;  (* tracked components, newest first *)
  mutable log : syscall_entry list;    (* completed syscalls, newest first *)
  snap : syscall_entry array;          (* entries to fast-forward through,
                                          oldest first *)
  mutable snap_pos : int;              (* entries consumed *)
  mutable saved : int;            (* instructions skipped on this path *)
  mutable in_syscall : bool;      (* nested wrapped calls run transparently *)
}

type explore_state = {
  cfg : config;
  scope : Solver.Scope.t;
      (* incremental solving scope mirroring this context's decision
         stack; owned per exploration context (one per pool worker) *)
  mutable frontier : frontier_item Search.t;
      (* the run's frontier in a sequential exploration; a per-unit
         fork collector in a pool worker (replaced for every unit) *)
  mutable pool : (string * int * Expr.t) array;
  mutable pool_len : int;
  mutable cur : path_state option;
  error_table : (string * Error.kind, unit) Hashtbl.t;
  mutable errors_rev : Error.t list;
  mutable n_paths : int;
  mutable n_completed : int;
  mutable n_errored : int;
  mutable n_infeasible : int;
  mutable n_unknown : int;
  mutable degraded : bool;
      (* a path was lost to a solver resource limit: the run can no
         longer be exhaustive, even after a resume *)
  mutable stop_reason : Budget.reason option;
  started : float;
  mutable instr_base : int;
  mutable n_snapshots : int;       (* forks pushed with a non-empty log *)
  mutable n_restores : int;        (* paths started from a snapshot *)
  mutable n_fallbacks : int;       (* non-root paths replayed without one *)
  mutable n_saved : int;           (* instructions skipped by fast-forward *)
  snap_cache : (string, syscall_entry list) Hashtbl.t;
      (* pool-worker snapshot stash keyed by prefix digest: snapshots
         never cross the wire, so a worker keeps the logs of the forks
         it produced and fast-forwards any of them the master hands
         back; a miss (other worker's fork, resume) replays *)
}

type replay_state = {
  values : (string * Bv.t) array;
  mutable idx : int;
  mutable failure : Error.t option;
}

type rand_state = {
  rng : Random.State.t;
  mutable r_inputs : (string * Bv.t) list; (* newest first *)
  mutable r_failure : Error.t option;
}

exception Trial_rejected

type mode =
  | Off
  | Explore of explore_state
  | Replay of replay_state
  | Rand of rand_state

let mode = ref Off

let in_symbolic_context () =
  match !mode with Off -> false | Explore _ | Replay _ | Rand _ -> true

(* Coverage is recorded only while exploring: replay/random re-runs of
   already-explored paths must not inflate the counts. *)
let exploring () =
  match !mode with Explore _ -> true | Off | Replay _ | Rand _ -> false

let current_path st =
  match st.cur with
  | Some ps -> ps
  | None -> failwith "Engine: no active path (intrinsic called outside run)"

let elapsed st = Unix.gettimeofday () -. st.started
let instructions_so_far st = Expr.instruction_count () - st.instr_base

(* Record why exploration stops (the first reason wins) and unwind.
   Unlike [degraded], a recorded stop reason is recoverable: the
   checkpointed frontier still covers the unexplored states. *)
let stop st reason =
  if st.stop_reason = None then st.stop_reason <- Some reason;
  raise Stop_exploration

let check_limits st =
  if Budget.interrupted () then stop st Budget.Interrupt;
  let l = st.cfg.limits in
  (match l.max_instructions with
   | Some n when instructions_so_far st > n -> stop st Budget.Instructions
   | Some _ | None -> ());
  (match l.max_seconds with
   | Some s when elapsed st > s -> stop st Budget.Deadline
   | Some _ | None -> ());
  match l.max_memory_mb with
  | Some m when Budget.heap_mb () > float_of_int m -> stop st Budget.Memory
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Symbolic inputs                                                     *)

let pool_fresh st ps name width =
  let k = ps.fresh_idx in
  ps.fresh_idx <- k + 1;
  let e =
    if k < st.pool_len then begin
      let pname, pwidth, pe = st.pool.(k) in
      if pname = name && pwidth = width then pe
      else Expr.fresh_var name width (* divergent suffix: do not pool *)
    end
    else begin
      let e = Expr.fresh_var name width in
      if k = st.pool_len then begin
        if st.pool_len = Array.length st.pool then begin
          let bigger =
            Array.make (max 16 (2 * st.pool_len)) ("", 0, Expr.tru)
          in
          Array.blit st.pool 0 bigger 0 st.pool_len;
          st.pool <- bigger
        end;
        st.pool.(st.pool_len) <- (name, width, e);
        st.pool_len <- st.pool_len + 1
      end;
      e
    end
  in
  ps.inputs <- (name, e) :: ps.inputs;
  e

let fresh name width =
  match !mode with
  | Explore st ->
    let ps = current_path st in
    pool_fresh st ps name width
  | Replay rs ->
    if rs.idx >= Array.length rs.values then
      raise (Replay_diverged
               (Printf.sprintf "input %s requested beyond recorded inputs" name))
    else begin
      let _, v = rs.values.(rs.idx) in
      rs.idx <- rs.idx + 1;
      if Bv.width v <> width then
        raise (Replay_diverged
                 (Printf.sprintf "input %s width mismatch" name));
      Expr.const v
    end
  | Rand rs ->
    let raw = Random.State.int64 rs.rng Int64.max_int in
    let v = Bv.make ~width raw in
    rs.r_inputs <- (name, v) :: rs.r_inputs;
    Expr.const v
  | Off -> failwith "Engine.fresh: no symbolic context"

let fresh32 name = fresh name 32

(* ------------------------------------------------------------------ *)
(* Branching                                                           *)

let terminate_path () = raise (Terminate_path End_infeasible)

let path_condition () =
  match !mode with
  | Explore st -> List.rev (current_path st).pc
  | Replay _ | Rand _ | Off -> []

(* A solver [Unknown] (conflict or timeout budget hit) in the middle of
   a path terminates only that path, KLEE-style, instead of aborting
   the whole exploration: the remaining frontier is still explored and
   the run is reported as non-exhaustive, so [--max-solver-conflicts]
   and [--solver-timeout-ms] compose with the other [--max-*] limits.
   An [Unknown] caused by the interrupt flag is different — nothing was
   exhausted, the query was merely cut short — so it stops the whole
   run instead of killing (and losing) the current path. *)
let solver_unknown st msg =
  if Budget.interrupted () then stop st Budget.Interrupt;
  st.degraded <- true;
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"engine" "solver-unknown"
      ~args:[ ("reason", Obs.Event.Str msg) ];
  raise (Terminate_path End_unknown)

let path_check st constraints =
  Expr.without_counting (fun () ->
      Solver.check ~scope:st.scope
        ?conflict_limit:st.cfg.limits.max_solver_conflicts
        ?timeout_ms:st.cfg.limits.solver_timeout_ms constraints)

(* Queries whose [Sat] model is consumed — error witnesses and
   concretization values — run without the scope: a scratch solve's
   model is a pure function of the constraint slice, so witnesses and
   value enumeration are identical across sequential, parallel and
   incremental-off runs.  The scope's retained instances answer with
   history-dependent models (learned clauses and saved phases steer the
   search), which is fine for feasibility verdicts but would make a
   worker replaying a decision prefix pick different concrete values
   than the run that forked it. *)
let path_model st constraints =
  Expr.without_counting (fun () ->
      Solver.check
        ?conflict_limit:st.cfg.limits.max_solver_conflicts
        ?timeout_ms:st.cfg.limits.solver_timeout_ms constraints)

let feasible st constraints =
  match path_check st constraints with
  | Solver.Sat _ -> true
  | Solver.Unsat -> false
  | Solver.Unknown msg -> solver_unknown st msg

(* Every path-condition extension mirrors its decision into the
   context's solver scope: one frame per appended constraint, so the
   scope stack tracks the decision stack exactly (and is reset by
   [exec_path] when the next path restarts from the root). *)
let extend_pc st ps c =
  ps.pc <- c :: ps.pc;
  Solver.Scope.push st.scope;
  Solver.Scope.assume st.scope c

let take ~site st ps cond d =
  ps.taken <- Decision.Dir d :: ps.taken;
  extend_pc st ps (if d then cond else Expr.not_ cond);
  Obs.Coverage.record_arm ~site d;
  d

let record_visit st ps site =
  Search.record_visit st.frontier site;
  ps.visited <- site :: ps.visited

(* Fork: push the flipped decision vector, carrying the forking path's
   syscall log so the child can fast-forward instead of replaying.  The
   in-flight syscall (if any) is deliberately absent from the log — only
   completed calls are logged — so the child re-executes it for real and
   the flipped decision lands inside live code. *)
let push_fork st ps ~site alt =
  let snap =
    if st.cfg.snapshots then begin
      if ps.log <> [] then st.n_snapshots <- st.n_snapshots + 1;
      Some ps.log
    end
    else None
  in
  Search.push st.frontier ~site { fi_prefix = alt; fi_snap = snap }

let branch ?(site = "branch") cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> failwith "Engine.branch: symbolic branch outside run")
  | Replay _ ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> raise (Replay_diverged "symbolic branch during replay"))
  | Rand _ ->
    (match Expr.to_bool cond with
     | Some b -> b
     | None -> raise (Replay_diverged "symbolic branch during random trial"))
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    record_visit st ps site;
    Obs.Profile.set_origin site;
    (match Expr.to_bool cond with
     | Some b -> b
     | None ->
       if ps.pos < Array.length ps.prefix then begin
         match ps.prefix.(ps.pos) with
         | Decision.Dir d ->
           ps.pos <- ps.pos + 1;
           take ~site st ps cond d
         | Decision.Pick _ ->
           failwith
             "Engine.branch: decision trace diverged (prescribed \
              concretization at a branch)"
       end
       else begin
         (* Both children decided as one variational query: the prefix
            slices untouched by [cond] are solved once and shared.  The
            true child's outcome is inspected first, preserving the
            pre-batching order of solver-unknown path kills. *)
         let rt, rf =
           Expr.without_counting (fun () ->
               Solver.check_pair ~scope:st.scope
                 ?conflict_limit:st.cfg.limits.max_solver_conflicts
                 ?timeout_ms:st.cfg.limits.solver_timeout_ms ~cond ps.pc)
         in
         let verdict = function
           | Solver.Sat _ -> true
           | Solver.Unsat -> false
           | Solver.Unknown msg -> solver_unknown st msg
         in
         let sat_true = verdict rt in
         let sat_false = verdict rf in
         match sat_true, sat_false with
         | true, true ->
           let alt =
             Array.of_list (List.rev (Decision.Dir false :: ps.taken))
           in
           push_fork st ps ~site alt;
           if !Obs.Sink.enabled then
             Obs.Sink.instant ~cat:"engine" "fork"
               ~args:
                 [ ("site", Obs.Event.Str site);
                   ("path", Obs.Event.Int ps.path_id);
                   ("frontier", Obs.Event.Int (Search.length st.frontier)) ];
           take ~site st ps cond true
         | true, false -> take ~site st ps cond true
         | false, true -> take ~site st ps cond false
         | false, false ->
           (* The path condition itself became unsatisfiable — can only
              happen via solver resource limits; kill the path. *)
           raise (Terminate_path End_infeasible)
       end)

let assume cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> failwith "Engine.assume: false assumption"
     | None -> failwith "Engine.assume: symbolic assumption outside run")
  | Replay _ ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> raise (Replay_diverged "assumption failed"))
  | Rand _ ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> raise Trial_rejected)
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> raise (Terminate_path End_infeasible)
     | None ->
       Obs.Profile.set_origin "assume";
       if feasible st (cond :: ps.pc) then extend_pc st ps cond
       else raise (Terminate_path End_infeasible))

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)

let counterexample_of_model ps model =
  List.rev_map
    (fun (name, e) ->
       let value =
         match e.Expr.node with
         | Expr.Var v -> Model.find model v
         | Expr.Bv_const v -> v
         | _ -> Model.eval model e
       in
       (name, value))
    ps.inputs

let record_error st ps kind site message model =
  let key = (site, kind) in
  if not (Hashtbl.mem st.error_table key) then begin
    Hashtbl.add st.error_table key ();
    let err : Error.t =
      {
        Error.kind;
        site;
        message;
        counterexample = counterexample_of_model ps model;
        path_id = ps.path_id;
        instructions = instructions_so_far st;
        found_after = elapsed st;
        validated = true;
      }
    in
    st.errors_rev <- err :: st.errors_rev;
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"engine" "error"
        ~args:
          [ ("site", Obs.Event.Str site);
            ("kind", Obs.Event.Str (Error.kind_to_string kind));
            ("path", Obs.Event.Int ps.path_id) ];
    match st.cfg.stop_after_errors with
    | Some n when List.length st.errors_rev >= n -> stop st Budget.Errors
    | Some _ | None -> ()
  end

let replay_failure rs kind site message =
  let err : Error.t =
    {
      Error.kind;
      site;
      message;
      counterexample = Array.to_list rs.values;
      path_id = 0;
      instructions = 0;
      found_after = 0.0;
      validated = true;
    }
  in
  rs.failure <- Some err;
  raise Replay_stop

let random_failure rs kind site message =
  let err : Error.t =
    {
      Error.kind;
      site;
      message;
      counterexample = List.rev rs.r_inputs;
      path_id = 0;
      instructions = 0;
      found_after = 0.0;
      validated = true;
    }
  in
  rs.r_failure <- Some err;
  raise Replay_stop

let check_kind kind ~site ?(message = "property violated") cond =
  Expr.add_instructions 1;
  match !mode with
  | Off ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false -> raise (Check_failed site)
     | None -> failwith "Engine.check: symbolic check outside run")
  | Replay rs ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> replay_failure rs kind site message)
  | Rand rs ->
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false | None -> random_failure rs kind site message)
  | Explore st ->
    check_limits st;
    let ps = current_path st in
    Obs.Profile.set_origin site;
    (match Expr.to_bool cond with
     | Some true -> ()
     | Some false ->
       (match path_model st ps.pc with
        | Solver.Sat m ->
          record_error st ps kind site message m;
          raise (Terminate_path End_error)
        | Solver.Unsat -> raise (Terminate_path End_infeasible)
        | Solver.Unknown msg -> solver_unknown st msg)
     | None ->
       (match path_model st (Expr.not_ cond :: ps.pc) with
        | Solver.Sat m ->
          record_error st ps kind site message m;
          (* The failing side terminates; continue on the passing side
             when it is feasible. *)
          if feasible st (cond :: ps.pc) then extend_pc st ps cond
          else raise (Terminate_path End_error)
        | Solver.Unsat -> extend_pc st ps cond
        | Solver.Unknown msg -> solver_unknown st msg))

let check ~site ?message cond = check_kind Error.Assertion_failure ~site ?message cond
let fatal_check ~site ?message cond = check_kind Error.Abort ~site ?message cond

let report_error kind ~site ~message =
  match !mode with
  | Off -> raise (Check_failed site)
  | Replay rs -> replay_failure rs kind site message
  | Rand rs -> random_failure rs kind site message
  | Explore st ->
    let ps = current_path st in
    Obs.Profile.set_origin site;
    (match path_model st ps.pc with
     | Solver.Sat m ->
       record_error st ps kind site message m;
       raise (Terminate_path End_error)
     | Solver.Unsat -> raise (Terminate_path End_infeasible)
     | Solver.Unknown msg -> solver_unknown st msg)

(* ------------------------------------------------------------------ *)
(* Concretization (KLEE-style enumerating fork)                        *)

(* Concretization decisions are recorded as [Decision.Pick] — value
   included — because the value comes from a solver model, and model
   choice depends on cache history.  Replaying by value keeps a
   resumed run (cold caches) on exactly the value enumeration the
   original run would have explored; prescribed picks consult no
   solver at all. *)
let rec concretize ?(site = "concretize") e =
  match Expr.to_bv e with
  | Some v -> v
  | None ->
    (match !mode with
     | Off -> failwith "Engine.concretize: symbolic value outside run"
     | Replay _ -> raise (Replay_diverged "symbolic value during replay")
     | Rand _ -> raise (Replay_diverged "symbolic value during random trial")
     | Explore st ->
       Expr.add_instructions 1;
       check_limits st;
       let ps = current_path st in
       record_visit st ps site;
       Obs.Profile.set_origin site;
       if ps.pos < Array.length ps.prefix then begin
         match ps.prefix.(ps.pos) with
         | Decision.Pick { value; dir } ->
           ps.pos <- ps.pos + 1;
           let cond = Expr.eq e (Expr.const value) in
           ps.taken <- Decision.Pick { value; dir } :: ps.taken;
           extend_pc st ps (if dir then cond else Expr.not_ cond);
           Obs.Coverage.record_arm ~site dir;
           if dir then value else concretize ~site e
         | Decision.Dir _ ->
           failwith
             "Engine.concretize: decision trace diverged (prescribed \
              branch at a concretization)"
       end
       else
         (match path_model st ps.pc with
          | Solver.Sat m ->
            let v = Model.eval m e in
            let cond = Expr.eq e (Expr.const v) in
            (* [m] already witnesses [e = v]; only the excluded side
               needs a feasibility query before forking. *)
            if
              Expr.without_counting (fun () ->
                  feasible st (Expr.not_ cond :: ps.pc))
            then begin
              let alt =
                Array.of_list
                  (List.rev
                     (Decision.Pick { value = v; dir = false } :: ps.taken))
              in
              push_fork st ps ~site alt;
              if !Obs.Sink.enabled then
                Obs.Sink.instant ~cat:"engine" "fork"
                  ~args:
                    [ ("site", Obs.Event.Str site);
                      ("path", Obs.Event.Int ps.path_id);
                      ("frontier", Obs.Event.Int (Search.length st.frontier)) ]
            end;
            ps.taken <- Decision.Pick { value = v; dir = true } :: ps.taken;
            extend_pc st ps cond;
            Obs.Coverage.record_arm ~site true;
            v
          | Solver.Unsat -> raise (Terminate_path End_infeasible)
          | Solver.Unknown msg -> solver_unknown st msg))

(* ------------------------------------------------------------------ *)
(* Syscall log (snapshot forking)                                      *)

let register_component ~save ~restore =
  match !mode with
  | Explore st ->
    (match st.cur with
     | Some ps ->
       ps.comps_rev <- { comp_save = save; comp_restore = restore } :: ps.comps_rev
     | None -> ())
  | Off | Replay _ | Rand _ -> ()

(* Hooks run at the start of every explored path, before the testbench
   body — the place to reset any global counters the re-executed
   construction glue depends on for determinism. *)
let path_start_hooks : (unit -> unit) list ref = ref []
let add_path_start_hook f = path_start_hooks := !path_start_hooks @ [ f ]

(* Head elements of [l] down to the (physically shared) [tail],
   oldest-first.  The bookkeeping lists only grow by consing, so the
   old list is always a tail of the new one. *)
let added_since l tail =
  let rec go acc l =
    if l == tail then acc
    else match l with [] -> acc | x :: rest -> go (x :: acc) rest
  in
  go [] l

(* Wrap an engine-visible peripheral call.  During real execution the
   completed call is appended to the path's syscall log; when the path
   was forked off with a snapshot, the call is skipped entirely and the
   logged entry replayed instead: path bookkeeping jumps to the
   after-state, the appended constraints are mirrored into the
   incremental solver scope (assumption frames only — the feasibility
   verdicts were already established by the forking path), visit and
   coverage deltas are re-recorded, the skipped instructions are
   re-counted (so instruction totals match a replaying run exactly),
   every tracked component is restored, and the caller's [apply]
   reproduces the payload effect.  Wrapping is an optimization, never a
   correctness requirement: an unwrapped call simply re-executes, and
   its effects are overwritten by the next consumed entry's component
   restore. *)
let syscall ~capture ~apply f =
  match !mode with
  | Off | Replay _ | Rand _ -> f ()
  | Explore st ->
    let ps = current_path st in
    if (not st.cfg.snapshots) || ps.in_syscall then f ()
    else if ps.snap_pos < Array.length ps.snap then begin
      (* fast-forward: consume the logged entry instead of executing *)
      let e = ps.snap.(ps.snap_pos) in
      ps.snap_pos <- ps.snap_pos + 1;
      ps.pos <- e.sc_pos;
      ps.taken <- e.sc_taken;
      ps.inputs <- e.sc_inputs;
      ps.fresh_idx <- e.sc_fresh_idx;
      (* mirrored into the scope without instruction accounting: the
         construction cost is already inside [sc_instr] below *)
      Expr.without_counting (fun () ->
          List.iter
            (fun c ->
               Solver.Scope.push st.scope;
               Solver.Scope.assume st.scope c)
            e.sc_new_pc);
      ps.pc <- e.sc_pc;
      List.iter (Search.record_visit st.frontier) e.sc_new_visits;
      ps.visited <- e.sc_visited;
      List.iter Obs.Coverage.replay e.sc_cov;
      Expr.add_instructions e.sc_instr;
      ps.saved <- ps.saved + e.sc_instr;
      st.n_saved <- st.n_saved + e.sc_instr;
      let comps = List.rev ps.comps_rev in
      if List.length comps <> Array.length e.sc_comps then
        failwith
          "Engine.syscall: tracked component set diverged during \
           fast-forward (components must not be registered inside \
           wrapped calls)";
      List.iteri (fun i c -> c.comp_restore e.sc_comps.(i)) comps;
      apply e.sc_effect;
      ps.log <- e :: ps.log
    end
    else begin
      ps.in_syscall <- true;
      let pc0 = ps.pc and visited0 = ps.visited in
      let instr0 = Expr.instruction_count () in
      let cov_buf = ref [] in
      let prev_tap = !Obs.Coverage.tap in
      Obs.Coverage.tap := Some (fun ev -> cov_buf := ev :: !cov_buf);
      let finish () =
        Obs.Coverage.tap := prev_tap;
        ps.in_syscall <- false
      in
      Fun.protect ~finally:finish f;
      (* Only completed calls are logged: a call that terminated its
         path raised out of [f] above, so a fork's log never skips past
         the decision that created it. *)
      let entry =
        {
          sc_pos = List.length ps.taken;
          sc_taken = ps.taken;
          sc_pc = ps.pc;
          sc_new_pc = added_since ps.pc pc0;
          sc_inputs = ps.inputs;
          sc_fresh_idx = ps.fresh_idx;
          sc_visited = ps.visited;
          sc_new_visits = added_since ps.visited visited0;
          sc_cov = List.rev !cov_buf;
          sc_instr = Expr.instruction_count () - instr0;
          sc_comps =
            Array.of_list
              (List.map (fun c -> c.comp_save ()) (List.rev ps.comps_rev));
          sc_effect = capture ();
        }
      in
      ps.log <- entry :: ps.log
    end

(* ------------------------------------------------------------------ *)
(* Exploration loop                                                    *)

(* Run [body] once under [prefix], updating the counters, error table
   and telemetry of [st].  On a budget stop the partial path is rolled
   back — visit counts, instructions and the path count leave no trace
   — and the decisions taken so far are returned so the caller can
   re-queue them: the sequential loop pushes them back onto its own
   frontier, the worker-pool unit runner ships them to the master. *)
let exec_path ?(snap = [||]) st body ~prefix =
  (* Each path restarts from the decision-tree root — including after a
     resume, whose checkpoint may have been written mid-scope. *)
  Solver.Scope.pop_to_root st.scope;
  (* Id counters are reset per path so re-executed construction glue
     allocates deterministic process/event ids — snapshots reference
     objects by id across re-executions. *)
  Pk.Process.reset_ids ();
  Pk.Event.reset_ids ();
  List.iter (fun f -> f ()) !path_start_hooks;
  let ps =
    {
      prefix;
      pos = 0;
      taken = [];
      pc = [];
      inputs = [];
      fresh_idx = 0;
      visited = [];
      instr_start = instructions_so_far st;
      path_id = st.n_paths;
      comps_rev = [];
      log = [];
      snap;
      snap_pos = 0;
      saved = 0;
      in_syscall = false;
    }
  in
  if Array.length snap > 0 then st.n_restores <- st.n_restores + 1;
  st.cur <- Some ps;
  st.n_paths <- st.n_paths + 1;
  (* Snapshot so an abandoned path's coverage rolls back with its visit
     counts — keeping sequential budget stops and pool unit aborts on
     identical accounting. *)
  let cov0 = Obs.Coverage.get () in
  if !Obs.Sink.enabled then
    Obs.Sink.span_begin ~cat:"engine" "path"
      ~args:
        [ ("path", Obs.Event.Int ps.path_id);
          ("prefix", Obs.Event.Int (Array.length prefix)) ];
  let ended = ref false in
  let end_path outcome =
    if (not !ended) && !Obs.Sink.enabled then begin
      ended := true;
      Obs.Sink.span_end ~cat:"engine" "path"
        ~args:
          [ ("path", Obs.Event.Int ps.path_id);
            ("outcome", Obs.Event.Str outcome);
            ("frontier", Obs.Event.Int (Search.length st.frontier)) ]
    end
  in
  let result =
    try
      (try
         body ();
         st.n_completed <- st.n_completed + 1;
         end_path "completed"
       with
       | Terminate_path End_error ->
         st.n_errored <- st.n_errored + 1;
         end_path "error"
       | Terminate_path End_infeasible ->
         st.n_infeasible <- st.n_infeasible + 1;
         end_path "infeasible"
       | Terminate_path End_unknown ->
         st.n_unknown <- st.n_unknown + 1;
         end_path "unknown"
       | Stop_exploration as e -> raise e
       | Check_failed _ as e -> raise e
       | exn ->
         (* An OCaml exception escaped the testbench: report it like
            KLEE reports an unhandled C++ exception. *)
         let site = "exception:" ^ Printexc.to_string exn in
         Obs.Profile.set_origin "exception";
         (match Solver.check ps.pc with
          | Solver.Sat m ->
            (* A [Stop_exploration] from the error threshold propagates
               to the abandonment handler below, which re-queues the
               path; the recorded error survives and resume
               de-duplicates it. *)
            record_error st ps Error.Unhandled_exception site
              (Printexc.to_string exn) m;
            st.n_errored <- st.n_errored + 1;
            end_path "error"
          | Solver.Unsat ->
            st.n_infeasible <- st.n_infeasible + 1;
            end_path "infeasible"
          | Solver.Unknown _ ->
            st.degraded <- true;
            st.n_unknown <- st.n_unknown + 1;
            end_path "unknown"));
      `Done
    with Stop_exploration ->
      (* A budget stop caught the path mid-execution.  Abandon it
         without losing it: roll back its visit counts and
         instructions; re-queuing the returned decisions lets a
         resumed run re-execute the path in full, so total counters
         match an uninterrupted run exactly. *)
      List.iter (Search.unrecord_visit st.frontier) ps.visited;
      Obs.Coverage.restore cov0;
      let partial = instructions_so_far st - ps.instr_start in
      st.instr_base <- st.instr_base + partial;
      st.n_paths <- st.n_paths - 1;
      (* The re-queued path re-runs in full, so the instructions its
         fast-forward skipped are not durably saved. *)
      st.n_saved <- st.n_saved - ps.saved;
      end_path "stopped";
      `Stopped (Array.of_list (List.rev ps.taken))
  in
  st.cur <- None;
  result

(* A checkpoint is a pure function of the exploration state; [final]
   distinguishes the last snapshot of a stopped run (which records the
   stop reason) from a periodic one. *)
let snapshot ~label st solver_base ~final =
  {
    Checkpoint.label;
    strategy = Search.strategy_to_string st.cfg.strategy;
    (* Snapshots never leave the process: checkpoints carry decision
       prefixes only, and a resumed run replays them from the root. *)
    frontier =
      List.map (fun (site, it) -> (site, it.fi_prefix))
        (Search.entries st.frontier);
    leases = [];
    visits = Search.visit_counts st.frontier;
    rng = Search.rng_state st.frontier;
    paths = st.n_paths;
    completed = st.n_completed;
    errored = st.n_errored;
    infeasible = st.n_infeasible;
    unknown = st.n_unknown;
    instructions = instructions_so_far st;
    wall_time = elapsed st;
    solver = Solver.Stats.sub (Solver.Stats.get ()) solver_base;
    errors = List.rev st.errors_rev;
    degraded = st.degraded;
    stop_reason =
      (if final then Option.map Budget.reason_to_string st.stop_reason
       else None);
  }

let seq_run ~(config : config) ~label ?resume ?checkpoint body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.run: nested runs are not allowed");
  (match resume with
   | Some ck ->
     let want = Search.strategy_to_string config.strategy in
     if ck.Checkpoint.strategy <> want then
       failwith
         (Printf.sprintf
            "Engine.run: checkpoint was taken under strategy %s, not %s"
            ck.Checkpoint.strategy want);
     if ck.Checkpoint.label <> label then
       failwith
         (Printf.sprintf "Engine.run: checkpoint is for %S, not %S"
            ck.Checkpoint.label label)
   | None -> ());
  (* Baselines are shifted by the checkpointed totals so elapsed time,
     instruction counts and the final solver-stats difference all
     include the pre-interruption segment. *)
  let solver_stats0 =
    match resume with
    | None -> Solver.Stats.get ()
    | Some ck -> Solver.Stats.sub (Solver.Stats.get ()) ck.Checkpoint.solver
  in
  let now = Unix.gettimeofday () in
  let chaos0 = Chaos.counts () in
  (* Coverage/profile baselines are process-global deltas like the
     solver stats; checkpoints do not carry them, so a resumed run
     reports post-resume coverage only. *)
  let coverage0 = Obs.Coverage.get () in
  let profile0 = Obs.Profile.get () in
  let st =
    {
      cfg = config;
      scope = Solver.Scope.create ();
      frontier = Search.create config.strategy;
      pool = Array.make 16 ("", 0, Expr.tru);
      pool_len = 0;
      cur = None;
      error_table = Hashtbl.create 16;
      errors_rev = [];
      n_paths = 0;
      n_completed = 0;
      n_errored = 0;
      n_infeasible = 0;
      n_unknown = 0;
      degraded = false;
      stop_reason = None;
      started =
        (match resume with
         | None -> now
         | Some ck -> now -. ck.Checkpoint.wall_time);
      instr_base = Expr.instruction_count ();
      n_snapshots = 0;
      n_restores = 0;
      n_fallbacks = 0;
      n_saved = 0;
      snap_cache = Hashtbl.create 16;
    }
  in
  let push_prefix ~site prefix =
    Search.push st.frontier ~site { fi_prefix = prefix; fi_snap = None }
  in
  (match resume with
   | None -> push_prefix ~site:"root" [||]
   | Some ck ->
     List.iter
       (fun (site, prefix) -> push_prefix ~site prefix)
       ck.Checkpoint.frontier;
     (* A pool/distributed checkpoint may carry granted-but-unsettled
        leases; a sequential resume just re-executes those prefixes as
        ordinary frontier entries. *)
     List.iter
       (fun (site, prefix, _attempts) -> push_prefix ~site prefix)
       ck.Checkpoint.leases;
     Search.set_visit_counts st.frontier ck.Checkpoint.visits;
     Search.set_rng_state st.frontier ck.Checkpoint.rng;
     st.errors_rev <- List.rev ck.Checkpoint.errors;
     List.iter
       (fun (e : Error.t) ->
          Hashtbl.replace st.error_table (e.Error.site, e.Error.kind) ())
       ck.Checkpoint.errors;
     st.n_paths <- ck.Checkpoint.paths;
     st.n_completed <- ck.Checkpoint.completed;
     st.n_errored <- ck.Checkpoint.errored;
     st.n_infeasible <- ck.Checkpoint.infeasible;
     st.n_unknown <- ck.Checkpoint.unknown;
     st.degraded <- ck.Checkpoint.degraded;
     st.instr_base <- Expr.instruction_count () - ck.Checkpoint.instructions);
  Solver.set_interrupt_check Budget.interrupted;
  mode := Explore st;
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"engine" "run:start"
      ~args:
        [ ("strategy",
           Obs.Event.Str (Search.strategy_to_string config.strategy));
          ("resumed", Obs.Event.Bool (resume <> None)) ];
  let last_checkpoint = ref now in
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      (try
         let continue = ref true in
         while !continue do
           (match config.limits.max_paths with
            | Some n when st.n_paths >= n -> stop st Budget.Paths
            | Some _ | None -> ());
           (* Instruction/time budgets are also enforced between paths,
              so straight-line testbenches cannot overrun them. *)
           check_limits st;
           (match checkpoint with
            | Some policy ->
              let t = Unix.gettimeofday () in
              if t -. !last_checkpoint >= policy.every_s then begin
                last_checkpoint := t;
                policy.write (snapshot ~label st solver_stats0 ~final:false)
              end
            | None -> ());
           match Search.pop st.frontier with
           | None -> continue := false
           | Some { fi_prefix = prefix; fi_snap } ->
             let snap =
               match fi_snap with
               | Some log -> Array.of_list (List.rev log)
               | None ->
                 if config.snapshots && Array.length prefix > 0 then
                   st.n_fallbacks <- st.n_fallbacks + 1;
                 [||]
             in
             (match exec_path st body ~prefix ~snap with
              | `Stopped taken ->
                push_prefix ~site:"requeued" taken;
                raise Stop_exploration
              | `Done -> ());
             if Obs.Progress.due ~paths:st.n_paths then begin
               let s = Solver.Stats.sub (Solver.Stats.get ()) solver_stats0 in
               Obs.Progress.tick
                 {
                   Obs.Progress.paths = st.n_paths;
                   instructions = instructions_so_far st;
                   frontier = Search.length st.frontier;
                   errors = List.length st.errors_rev;
                   solver_time = s.Solver.Stats.time;
                   solver_queries = s.Solver.Stats.queries;
                   cache_hits =
                     s.Solver.Stats.cache_hits + s.Solver.Stats.cex_hits;
                   wall = elapsed st;
                   workers = [];
                 }
             end
         done
       with Stop_exploration -> ());
      let exhausted = st.stop_reason = None && not st.degraded in
      (* The final checkpoint is written both on budget stops and on
         exhaustion (where it records an empty frontier), so a resumed
         run of a finished exploration simply returns the carried
         totals. *)
      (match checkpoint with
       | Some policy ->
         policy.write (snapshot ~label st solver_stats0 ~final:true)
       | None -> ());
      let solver_stats =
        Solver.Stats.sub (Solver.Stats.get ()) solver_stats0
      in
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"engine" "run:end"
          ~args:
            [ ("paths", Obs.Event.Int st.n_paths);
              ("completed", Obs.Event.Int st.n_completed);
              ("errored", Obs.Event.Int st.n_errored);
              ("infeasible", Obs.Event.Int st.n_infeasible);
              ("unknown", Obs.Event.Int st.n_unknown);
              ("instructions", Obs.Event.Int (instructions_so_far st));
              ("exhausted", Obs.Event.Bool exhausted);
              ("stop",
               Obs.Event.Str
                 (match st.stop_reason with
                  | None -> "none"
                  | Some r -> Budget.reason_to_string r)) ];
      {
        errors = List.rev st.errors_rev;
        paths = st.n_paths;
        paths_completed = st.n_completed;
        paths_errored = st.n_errored;
        paths_infeasible = st.n_infeasible;
        paths_unknown = st.n_unknown;
        instructions = instructions_so_far st;
        wall_time = elapsed st;
        solver_time = solver_stats.Solver.Stats.time;
        solver_queries = solver_stats.Solver.Stats.queries;
        solver_stats;
        exhausted;
        stop_reason = st.stop_reason;
        strategy = config.strategy;
        branch_coverage = Search.visit_counts st.frontier;
        workers = 1;
        resilience =
          { no_resilience with
            res_checkpoint_fallbacks = Checkpoint.fallbacks ();
            res_chaos = Chaos.sub_counts (Chaos.counts ()) chaos0 };
        coverage = Obs.Coverage.sub (Obs.Coverage.get ()) coverage0;
        profile = Obs.Profile.sub (Obs.Profile.get ()) profile0;
        events_dropped = Obs.Export.dropped_total ();
        snapshots_taken = st.n_snapshots;
        snapshot_restores = st.n_restores;
        replay_fallbacks = st.n_fallbacks;
        instructions_saved = st.n_saved;
      })

(* ------------------------------------------------------------------ *)
(* Worker-pool integration                                             *)

(* Persistent per-worker execution context.  Global budgets are
   stripped — the master enforces them between dispatches — while the
   per-query solver limits stay with the worker's private solver, and
   [stop_after_errors] is handled by the master (a worker must never
   stop the whole run on its own).  The positional symbolic-input pool
   survives across units so the worker's solver caches stay warm, just
   as they do across paths of a sequential run. *)
let unit_ctx config =
  let limits =
    { config.limits with
      max_paths = None;
      max_instructions = None;
      max_seconds = None;
      max_memory_mb = None }
  in
  {
    cfg = { config with limits; stop_after_errors = None };
    scope = Solver.Scope.create ();
    frontier = Search.create config.strategy;
    pool = Array.make 16 ("", 0, Expr.tru);
    pool_len = 0;
    cur = None;
    error_table = Hashtbl.create 16;
    errors_rev = [];
    n_paths = 0;
    n_completed = 0;
    n_errored = 0;
    n_infeasible = 0;
    n_unknown = 0;
    degraded = false;
    stop_reason = None;
    started = Unix.gettimeofday ();
    instr_base = Expr.instruction_count ();
    n_snapshots = 0;
    n_restores = 0;
    n_fallbacks = 0;
    n_saved = 0;
    snap_cache = Hashtbl.create 64;
  }

(* Snapshots are keyed by their decision prefix: the master's frontier,
   checkpoints and the wire all stay prefix-only, and a worker simply
   recognizes a prefix it forked itself. *)
let prefix_key prefix = Digest.string (Marshal.to_string prefix [])

let snap_cache_cap = 64

(* Execute one work unit: a single path under [prefix], collecting the
   forks it discovers into a fresh frontier.  The error/counter fields
   of [st] are per-unit (reset here); the input pool is not.  Worker-
   local bookkeeping in the result (error path ids, found_after) is in
   unit-relative terms — the master rewrites it into campaign terms at
   merge time. *)
let run_unit st body ~prefix =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.run_unit: nested runs are not allowed");
  st.frontier <- Search.create st.cfg.strategy;
  Hashtbl.reset st.error_table;
  st.errors_rev <- [];
  st.n_paths <- 0;
  st.n_completed <- 0;
  st.n_errored <- 0;
  st.n_infeasible <- 0;
  st.n_unknown <- 0;
  st.degraded <- false;
  st.stop_reason <- None;
  st.instr_base <- Expr.instruction_count ();
  st.n_snapshots <- 0;
  st.n_restores <- 0;
  st.n_fallbacks <- 0;
  st.n_saved <- 0;
  let solver0 = Solver.Stats.get () in
  let coverage0 = Obs.Coverage.get () in
  let profile0 = Obs.Profile.get () in
  let snap =
    if not st.cfg.snapshots then [||]
    else
      match Hashtbl.find_opt st.snap_cache (prefix_key prefix) with
      | Some log -> Array.of_list (List.rev log)
      | None ->
        if Array.length prefix > 0 then st.n_fallbacks <- 1;
        [||]
  in
  Solver.set_interrupt_check Budget.interrupted;
  mode := Explore st;
  let finish () = mode := Off in
  let outcome =
    Fun.protect ~finally:finish (fun () -> exec_path st body ~prefix ~snap)
  in
  let solver = Solver.Stats.sub (Solver.Stats.get ()) solver0 in
  (* An aborted unit's coverage delta is zero by construction —
     [exec_path] restored the registry — mirroring the visits/
     instructions rollback; the profile delta ships regardless, like
     the solver stats. *)
  let coverage = Obs.Coverage.sub (Obs.Coverage.get ()) coverage0 in
  let profile = Obs.Profile.sub (Obs.Profile.get ()) profile0 in
  let fork_items = Search.entries st.frontier in
  (* Ship the forks as bare prefixes and stash their logs locally: if
     the master hands one of them back to this worker it fast-forwards,
     any other worker replays. *)
  let forks = List.map (fun (site, it) -> (site, it.fi_prefix)) fork_items in
  if st.cfg.snapshots then begin
    if Hashtbl.length st.snap_cache > snap_cache_cap then
      Hashtbl.reset st.snap_cache;
    List.iter
      (fun (_site, it) ->
         match it.fi_snap with
         | Some log -> Hashtbl.replace st.snap_cache (prefix_key it.fi_prefix) log
         | None -> ())
      fork_items
  end;
  let errors = List.rev st.errors_rev in
  match outcome with
  | `Stopped taken ->
    (* Mirror of the sequential budget-stop requeue: the partial path
       was rolled back by [exec_path]; forks and errors found before
       the stop are kept (resume de-duplicates the errors). *)
    { Pool.outcome = Pool.Unit_aborted;
      forks;
      errors;
      visits = [];
      instructions = 0;
      degraded = st.degraded;
      solver;
      requeue = Some taken;
      chaos = [];
      coverage;
      profile;
      events = [];
      events_dropped = 0;
      snapshots_taken = st.n_snapshots;
      snapshot_restores = st.n_restores;
      replay_fallbacks = st.n_fallbacks;
      instructions_saved = st.n_saved }
  | `Done ->
    let outcome =
      if st.n_completed > 0 then Pool.Unit_completed
      else if st.n_errored > 0 then Pool.Unit_errored
      else if st.n_infeasible > 0 then Pool.Unit_infeasible
      else Pool.Unit_unknown
    in
    { Pool.outcome;
      forks;
      errors;
      visits = Search.visit_counts st.frontier;
      instructions = instructions_so_far st;
      degraded = st.degraded;
      solver;
      requeue = None;
      chaos = [];
      coverage;
      profile;
      events = [];
      events_dropped = 0;
      snapshots_taken = st.n_snapshots;
      snapshot_restores = st.n_restores;
      replay_fallbacks = st.n_fallbacks;
      instructions_saved = st.n_saved }

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let replay values body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.replay: nested runs are not allowed");
  let rs = { values = Array.of_list values; idx = 0; failure = None } in
  mode := Replay rs;
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      try
        body ();
        None
      with
      | Replay_stop ->
        (match rs.failure with
         | Some err -> Some (Ok err)
         | None -> Some (Error "replay stopped without failure"))
      | Replay_diverged msg -> Some (Error msg)
      | exn -> Some (Error ("exception during replay: " ^ Printexc.to_string exn)))

(* ------------------------------------------------------------------ *)
(* Counterexample validation                                           *)

(* The engine as a self-checking oracle: every error's model is
   replayed concretely (solver-free) through the testbench, and an
   error whose replay does not reproduce the same (site, kind) is
   demoted to [validated = false] instead of being silently trusted —
   a solver or engine defect then surfaces in the report rather than
   as a false bug ticket. *)

let m_unvalidated =
  lazy
    (Obs.Metrics.counter
       ~help:"reported errors whose counterexample replay did not \
              reproduce the failure"
       "symsysc_unvalidated_errors_total")

let confirm_error body (e : Error.t) =
  match replay e.Error.counterexample body with
  | Some (Ok e') ->
    e'.Error.site = e.Error.site && e'.Error.kind = e.Error.kind
  | Some (Error msg) ->
    (* An unhandled exception escapes the replay harness as [Error];
       it confirms an [Unhandled_exception] finding when it is the
       same exception the explorer recorded (site "exception:<exn>"). *)
    (match e.Error.kind with
     | Error.Unhandled_exception ->
       let prefix = "exception:" in
       let plen = String.length prefix in
       String.length e.Error.site > plen
       && String.sub e.Error.site 0 plen = prefix
       && msg
          = "exception during replay: "
            ^ String.sub e.Error.site plen (String.length e.Error.site - plen)
     | _ -> false)
  | None | (exception _) -> false

let validate_errors body (rep : report) =
  let unvalidated = ref 0 in
  let errors =
    List.map
      (fun (e : Error.t) ->
         if confirm_error body e then e
         else begin
           incr unvalidated;
           Obs.Metrics.inc (Lazy.force m_unvalidated);
           if !Obs.Sink.enabled then
             Obs.Sink.instant ~cat:"engine" "unvalidated"
               ~args:
                 [ ("site", Obs.Event.Str e.Error.site);
                   ("kind", Obs.Event.Str (Error.kind_to_string e.Error.kind)) ];
           { e with Error.validated = false }
         end)
      rep.errors
  in
  { rep with
    errors;
    resilience = { rep.resilience with res_unvalidated = !unvalidated } }

(* ------------------------------------------------------------------ *)
(* Session API                                                         *)

module Session = struct
  type t = {
    strategy : Search.strategy;
    limits : limits;
    stop_after_errors : int option;
    checkpoint : Checkpoint.policy option;
    resume : Checkpoint.t option;
    seed : int option;
    workers : int;
    heartbeat_ms : int option;
    listen : Transport.listener option;
    lease_ms : int option;
    cookie : string option;
    validate : bool;
    snapshots : bool;
  }

  (* Poison-unit quarantine threshold: a unit that has taken down this
     many workers is dropped rather than requeued. *)
  let max_unit_crashes = 3

  let make ?strategy ?(limits = no_limits) ?stop_after_errors ?checkpoint
      ?resume ?seed ?(workers = 1) ?heartbeat_ms ?listen ?lease_ms ?cookie
      ?(validate = true) ?(snapshots = true) () =
    if workers < 1 && listen = None then
      invalid_arg "Engine.Session.make: workers must be >= 1";
    if workers < 0 then
      invalid_arg "Engine.Session.make: workers must be >= 0";
    (match heartbeat_ms with
     | Some ms when ms < 1 ->
       invalid_arg "Engine.Session.make: heartbeat_ms must be >= 1"
     | _ -> ());
    (match lease_ms with
     | Some ms when ms < 1 ->
       invalid_arg "Engine.Session.make: lease_ms must be >= 1"
     | _ -> ());
    let strategy =
      match strategy, seed with
      | Some s, _ -> s
      | None, Some seed -> Search.Random_path seed
      | None, None -> Search.Dfs
    in
    { strategy; limits; stop_after_errors; checkpoint; resume; seed; workers;
      heartbeat_ms; listen; lease_ms; cookie; validate; snapshots }

  let config t =
    { strategy = t.strategy;
      limits = t.limits;
      stop_after_errors = t.stop_after_errors;
      snapshots = t.snapshots }

  let run ?(label = "run") t body =
    let rep =
      if t.workers = 1 && t.listen = None then
        seq_run ~config:(config t) ~label ?resume:t.resume
          ?checkpoint:t.checkpoint body
      else begin
        (match !mode with
         | Off -> ()
         | Explore _ | Replay _ | Rand _ ->
           failwith "Engine.Session.run: nested runs are not allowed");
        let pool_cfg =
          { Pool.workers = t.workers;
            strategy = t.strategy;
            limits = t.limits;
            stop_after_errors = t.stop_after_errors;
            label;
            heartbeat_ms = t.heartbeat_ms;
            max_unit_crashes;
            listen = t.listen;
            lease_ms = t.lease_ms;
            cookie = t.cookie }
        in
        (* The context is created lazily so it materializes in each
           worker process after the fork, never in the master. *)
        let ctx = lazy (unit_ctx (config t)) in
        let exec ~prefix = run_unit (Lazy.force ctx) body ~prefix in
        let r =
          Pool.run pool_cfg ?resume:t.resume ?checkpoint:t.checkpoint ~exec ()
        in
        {
          errors = r.Pool.r_errors;
          paths = r.Pool.r_paths;
          paths_completed = r.Pool.r_completed;
          paths_errored = r.Pool.r_errored;
          paths_infeasible = r.Pool.r_infeasible;
          paths_unknown = r.Pool.r_unknown;
          instructions = r.Pool.r_instructions;
          wall_time = r.Pool.r_wall_time;
          solver_time = r.Pool.r_solver.Solver.Stats.time;
          solver_queries = r.Pool.r_solver.Solver.Stats.queries;
          solver_stats = r.Pool.r_solver;
          exhausted = r.Pool.r_exhausted;
          stop_reason = r.Pool.r_stop_reason;
          strategy = t.strategy;
          branch_coverage = r.Pool.r_visits;
          workers = t.workers;
          resilience =
            { no_resilience with
              res_requeued = r.Pool.r_requeued;
              res_worker_deaths = r.Pool.r_worker_deaths;
              res_hung = r.Pool.r_hung;
              res_quarantined = r.Pool.r_quarantined;
              res_lease_expired = r.Pool.r_lease_expired;
              res_duplicates = r.Pool.r_duplicates;
              res_reconnects = r.Pool.r_reconnects;
              res_checkpoint_fallbacks = Checkpoint.fallbacks ();
              res_chaos = r.Pool.r_chaos };
          coverage = r.Pool.r_coverage;
          profile = r.Pool.r_profile;
          events_dropped = Obs.Export.dropped_total ();
          snapshots_taken = r.Pool.r_snapshots_taken;
          snapshot_restores = r.Pool.r_snapshot_restores;
          replay_fallbacks = r.Pool.r_replay_fallbacks;
          instructions_saved = r.Pool.r_instructions_saved;
        }
      end
    in
    if t.validate then validate_errors body rep else rep

  (* Remote worker side of a distributed run: dial the master and serve
     units with the same per-worker execution context a local forked
     worker would use. *)
  let serve ~host ~port ~workers ?backoff_seed ~label t body =
    if workers < 1 then
      invalid_arg "Engine.Session.serve: workers must be >= 1";
    (match !mode with
     | Off -> ()
     | Explore _ | Replay _ | Rand _ ->
       failwith "Engine.Session.serve: nested runs are not allowed");
    let ctx = lazy (unit_ctx (config t)) in
    let exec ~prefix = run_unit (Lazy.force ctx) body ~prefix in
    Pool.serve ~host ~port ~workers ~label ~strategy:t.strategy
      ?cookie:t.cookie ?backoff_seed ~exec ()
end

(* ------------------------------------------------------------------ *)
(* Random-testing baseline                                             *)

type random_report = {
  trials : int;
  rejected : int;
  failure : (Error.t * int) option;
  random_wall_time : float;
  seed : int;
  workers : int;
}

let random_test_seq ~seed ~max_trials ?max_seconds body =
  (match !mode with
   | Off -> ()
   | Explore _ | Replay _ | Rand _ ->
     failwith "Engine.random_test: nested runs are not allowed");
  let rng = Random.State.make [| seed |] in
  let started = Unix.gettimeofday () in
  let trials = ref 0 and rejected = ref 0 in
  let failure = ref None in
  let finish () = mode := Off in
  Fun.protect ~finally:finish (fun () ->
      let continue = ref true in
      while
        !continue && !failure = None && !trials < max_trials
        && (match max_seconds with
            | Some s -> Unix.gettimeofday () -. started < s
            | None -> true)
      do
        let rs = { rng; r_inputs = []; r_failure = None } in
        mode := Rand rs;
        incr trials;
        (try body () with
         | Replay_stop ->
           failure :=
             Option.map (fun e -> (e, !trials)) rs.r_failure
         | Trial_rejected -> incr rejected
         | Check_failed site ->
           (* a concrete-mode style failure escaping DUV code *)
           failure :=
             Some
               ( {
                   Error.kind = Error.Abort;
                   site;
                   message = "check failed during random trial";
                   counterexample = List.rev rs.r_inputs;
                   path_id = 0;
                   instructions = 0;
                   found_after = Unix.gettimeofday () -. started;
                   validated = true;
                 },
                 !trials )
         | Stdlib.Exit -> continue := false
         | exn ->
           failure :=
             Some
               ( {
                   Error.kind = Error.Unhandled_exception;
                   site = "exception:" ^ Printexc.to_string exn;
                   message = Printexc.to_string exn;
                   counterexample = List.rev rs.r_inputs;
                   path_id = 0;
                   instructions = 0;
                   found_after = Unix.gettimeofday () -. started;
                   validated = true;
                 },
                 !trials ));
        mode := Off
      done;
      {
        trials = !trials;
        rejected = !rejected;
        failure = !failure;
        random_wall_time = Unix.gettimeofday () -. started;
        seed;
        workers = 1;
      })

(* Transport form of a random report for the fork-map pipe (the
   counterexample travels inside [Error.to_json]). *)
let random_report_to_json r =
  let open Obs.Json in
  Obj
    [ ("trials", Int r.trials);
      ("rejected", Int r.rejected);
      ("wall", Float r.random_wall_time);
      ("failure",
       match r.failure with
       | None -> Null
       | Some (e, trial) ->
         Obj [ ("error", Error.to_json e); ("trial", Int trial) ]) ]

let random_report_of_json ~seed j =
  let open Obs.Json in
  let int k = Option.value ~default:0 (Option.bind (member k j) to_int_opt) in
  let failure =
    match member "failure" j with
    | None | Some Null -> None
    | Some fj ->
      Option.bind (member "error" fj) (fun ej ->
          match Error.of_json ej with
          | Ok e ->
            Some
              ( e,
                Option.value ~default:0
                  (Option.bind (member "trial" fj) to_int_opt) )
          | Error _ -> None)
  in
  {
    trials = int "trials";
    rejected = int "rejected";
    failure;
    random_wall_time =
      Option.value ~default:0.0
        (Option.bind (member "wall" j) to_float_opt);
    seed;
    workers = 1;
  }

(* The i-th worker draws from its own RNG stream, derived from the run
   seed by walking the splitmix64 sequence — so [--seed X --workers N]
   is reproducible for a given N (and explores different trial sets
   for different N, which is the point of adding workers). *)
let derive_worker_seed seed i =
  let rec go state k =
    let state, z = Search.splitmix64 state in
    if k = 0 then Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL)
    else go state (k - 1)
  in
  go (Int64.of_int seed) i

let random_test ?(seed = 42) ?(max_trials = 10_000) ?max_seconds
    ?(workers = 1) body =
  if workers < 1 then invalid_arg "Engine.random_test: workers must be >= 1";
  if workers = 1 then random_test_seq ~seed ~max_trials ?max_seconds body
  else begin
    (match !mode with
     | Off -> ()
     | Explore _ | Replay _ | Rand _ ->
       failwith "Engine.random_test: nested runs are not allowed");
    let started = Unix.gettimeofday () in
    let per_worker = (max_trials + workers - 1) / workers in
    let results =
      Pool.fork_map ~workers (fun i ->
          random_report_to_json
            (random_test_seq ~seed:(derive_worker_seed seed i)
               ~max_trials:per_worker ?max_seconds body))
    in
    let reports =
      List.filter_map
        (function Ok j -> Some (random_report_of_json ~seed j) | Error _ -> None)
        results
    in
    {
      trials = List.fold_left (fun a r -> a + r.trials) 0 reports;
      rejected = List.fold_left (fun a r -> a + r.rejected) 0 reports;
      (* The lowest-indexed worker's failure wins, keeping the merged
         verdict deterministic; its trial number is worker-local. *)
      failure = List.find_map (fun r -> r.failure) reports;
      random_wall_time = Unix.gettimeofday () -. started;
      seed;
      workers;
    }
  end
