(** Path-selection strategies.

    KLEE interleaves several searchers; we provide the standard ones and
    let the engine pick per run.  The frontier holds pending path
    prefixes; the strategy decides which to execute next. *)

type strategy =
  | Dfs           (** depth-first: newest prefix first *)
  | Bfs           (** breadth-first: oldest prefix first *)
  | Random_path of int  (** uniform random choice, seeded *)
  | Cover_new
      (** prefer prefixes forked at the branch site executed least often
          — an approximation of KLEE's coverage-guided searcher *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option
val all_strategies : strategy list

type 'a t

val create : strategy -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> site:string -> 'a -> unit
(** [site] is the branch site at which the prefix was forked (used by
    [Cover_new]). *)

val pop : 'a t -> 'a option

val record_visit : 'a t -> string -> unit
(** Tell the coverage-guided strategy that a branch site executed. *)

val unrecord_visit : 'a t -> string -> unit
(** Undo one {!record_visit} — the engine rolls back the visits of a
    partially executed path when a budget stop abandons it, so the
    re-queued path re-records them cleanly after resume. *)

val visit_counts : 'a t -> (string * int) list
(** Executed branch sites with their execution counts, sorted by site
    name — the engine reports these as branch coverage. *)

(** {1 Checkpointing}

    Everything that makes [pop] deterministic is exposed so a frontier
    can be serialized and rebuilt exactly: the pending entries in
    queue order, the visit counts (which drive [Cover_new]) and the
    PRNG state (which drives [Random_path]). *)

val entries : 'a t -> (string * 'a) list
(** Pending [(site, item)] entries, oldest first — re-[push]ing them in
    this order onto a fresh frontier reproduces the queue exactly. *)

val set_visit_counts : 'a t -> (string * int) list -> unit

val merge_visit_counts : 'a t -> (string * int) list -> unit
(** Add another run's visit counts to this frontier's — the pool master
    folds the per-unit coverage deltas reported by workers into its own
    frontier so [Cover_new] scheduling and checkpoints see the global
    counts. *)

val splitmix64 : int64 -> int64 * int64
(** One step of the splitmix64 PRNG: [(next_state, output)].  Exposed
    so per-worker RNG streams (random testing under [--workers]) can be
    derived deterministically from one run seed. *)

val rng_state : 'a t -> int64
(** The splitmix64 state consumed by [Random_path] pops. *)

val set_rng_state : 'a t -> int64 -> unit
