(** Lease bookkeeping for dispatched work units.

    A lease is the master's claim ticket for one dispatched unit:
    unit id + deadline + attempt count.  The id is unique for the
    lifetime of a campaign (never reused, even when aborted units
    shrink the path count), which is what makes first-result-wins
    merging sound: a unit can be granted many times — after a worker
    death, a lease expiry, or a duplicated frame — but it {e settles}
    exactly once, and every later result for the same id is counted
    and dropped.

    Expiry is deliberately decoupled from killing: a lease that passes
    its deadline is requeued for regrant while the original holder
    keeps running.  Whichever copy finishes first settles the unit;
    the loser becomes a counted duplicate.  This turns "stalled socket
    or wedged remote worker" from a hang into a bounded wait without
    ever discarding work already in flight. *)

type entry = {
  l_id : int;                 (** unique per dispatched unit, never reused *)
  l_site : string;            (** provenance label for frontier requeues *)
  l_prefix : Decision.t array;
  mutable l_attempts : int;   (** grants so far, including the first *)
  mutable l_deadline : float; (** Unix time; [infinity] when leases are off *)
}

type t

val create : lease_ms:int option -> t
(** [lease_ms = None] disables deadlines (entries never expire);
    liveness then rests on the heartbeat watchdog alone. *)

val make_entry :
  t -> id:int -> site:string -> prefix:Decision.t array -> now:float -> entry
(** First grant: [l_attempts = 1], deadline [now + lease]. *)

val regrant : t -> entry -> now:float -> entry
(** Re-grant after expiry or holder death: bumps [l_attempts] and
    restarts the deadline. *)

val renew : t -> entry -> now:float -> unit
(** Push the deadline out.  Called on {e any} frame from the holder —
    heartbeats and results both prove liveness. *)

val expired : entry -> now:float -> bool

val requeue : t -> entry -> unit
(** Queue an orphaned grant for regrant (FIFO). *)

val take_pending : t -> entry option
val pending : t -> int
val pending_entries : t -> entry list
(** Pending entries in queue order, for checkpointing. *)

val settle : t -> int -> [ `Fresh | `Duplicate ]
(** First-result-wins: [`Fresh] exactly once per id; any pending copy
    of the id is dropped so it cannot be regranted. *)

val force_settle : t -> int -> unit
(** Settle without caring which: used when quarantining a poison unit
    so a late in-flight result cannot resurrect the dropped path. *)

val is_settled : t -> int -> bool
