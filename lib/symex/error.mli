(** Errors discovered during symbolic exploration.

    The engine looks for the same error classes as KLEE: assertion
    violations, invalid memory accesses, division by zero and unhandled
    exceptions.  Every error carries a concrete counterexample (a model
    of the path condition) that reproduces it. *)

type kind =
  | Assertion_failure   (** a [check]ed property is violable *)
  | Abort               (** a fatal assert, e.g. C [assert] in release builds *)
  | Out_of_bounds       (** invalid memory access *)
  | Division_by_zero
  | Unhandled_exception (** an OCaml exception escaped the testbench *)

type t = {
  kind : kind;
  site : string;
  (** stable identifier of the program location; errors are
      de-duplicated by [(site, kind)] *)
  message : string;
  counterexample : (string * Smt.Bv.t) list;
  (** concrete input assignment, in input-creation order *)
  path_id : int;          (** path on which the error was first found *)
  instructions : int;     (** instructions executed when first found *)
  found_after : float;    (** seconds since exploration start *)
  validated : bool;
  (** the counterexample reproduced the failure when replayed
      concretely (solver-free) through the testbench; [false] marks a
      model the solver claimed but replay could not confirm — surfaced
      as [UNVALIDATED] rather than silently trusted (the engine is a
      self-checking oracle) *)
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
val pp_counterexample : Format.formatter -> t -> unit

val kind_of_string : string -> kind option
(** Inverse of {!kind_to_string}. *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result
(** Checkpoint serialization; counterexample values round-trip as
    hex-string/width pairs. *)
