module Json = Obs.Json

type t = {
  label : string;
  strategy : string;
  frontier : (string * Decision.t array) list;
  visits : (string * int) list;
  rng : int64;
  paths : int;
  completed : int;
  errored : int;
  infeasible : int;
  unknown : int;
  instructions : int;
  wall_time : float;
  solver : Smt.Solver.Stats.t;
  errors : Error.t list;
  degraded : bool;
  stop_reason : string option;
}

type policy = {
  write : t -> unit;
  every_s : float;
}

let version = 1

let to_json t =
  Json.Obj
    [ ("version", Json.Int version);
      ("label", Json.Str t.label);
      ("strategy", Json.Str t.strategy);
      ("rng", Json.Str (Printf.sprintf "0x%Lx" t.rng));
      ("frontier",
       Json.List
         (List.map
            (fun (site, prefix) ->
               Json.Obj
                 [ ("site", Json.Str site);
                   ("prefix",
                    Json.List
                      (Array.to_list
                         (Array.map
                            (fun d -> Json.Str (Decision.to_string d))
                            prefix))) ])
            t.frontier));
      ("visits",
       Json.List
         (List.map
            (fun (site, n) ->
               Json.Obj [ ("site", Json.Str site); ("count", Json.Int n) ])
            t.visits));
      ("paths", Json.Int t.paths);
      ("completed", Json.Int t.completed);
      ("errored", Json.Int t.errored);
      ("infeasible", Json.Int t.infeasible);
      ("unknown", Json.Int t.unknown);
      ("instructions", Json.Int t.instructions);
      ("wall_time", Json.Float t.wall_time);
      ("solver", Smt.Solver.Stats.to_json t.solver);
      ("errors", Json.List (List.map Error.to_json t.errors));
      ("degraded", Json.Bool t.degraded);
      ("stop_reason",
       match t.stop_reason with None -> Json.Null | Some r -> Json.Str r) ]

(* Fold a list of decoders into a list result, keeping order and the
   first failure. *)
let map_result f l =
  List.fold_right
    (fun x acc ->
       match acc with
       | Error _ -> acc
       | Ok tl -> (match f x with Ok y -> Ok (y :: tl) | Error e -> Error e))
    l (Ok [])

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let ( let* ) = Result.bind in
  let require name = function
    | Some v -> Ok v
    | None -> Error ("checkpoint: missing " ^ name)
  in
  let* () =
    match int "version" with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "checkpoint: unsupported version %d" v)
    | None -> Error "checkpoint: missing version"
  in
  let* label = require "label" (str "label") in
  let* strategy = require "strategy" (str "strategy") in
  let* rng_s = require "rng" (str "rng") in
  let* rng =
    match Int64.of_string_opt rng_s with
    | Some v -> Ok v
    | None -> Error "checkpoint: malformed rng state"
  in
  let* frontier_l =
    require "frontier" (Option.bind (Json.member "frontier" j) Json.to_list_opt)
  in
  let* frontier =
    map_result
      (fun ej ->
         let* site =
           require "frontier site"
             (Option.bind (Json.member "site" ej) Json.to_string_opt)
         in
         let* prefix_l =
           require "frontier prefix"
             (Option.bind (Json.member "prefix" ej) Json.to_list_opt)
         in
         let* decisions =
           map_result
             (fun dj ->
                match Json.to_string_opt dj with
                | Some s -> Decision.of_string s
                | None -> Error "checkpoint: malformed decision")
             prefix_l
         in
         Ok (site, Array.of_list decisions))
      frontier_l
  in
  let* visits =
    match Option.bind (Json.member "visits" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun vj ->
           match
             ( Option.bind (Json.member "site" vj) Json.to_string_opt,
               Option.bind (Json.member "count" vj) Json.to_int_opt )
           with
           | Some site, Some n -> Ok (site, n)
           | _ -> Error "checkpoint: malformed visit entry")
        l
  in
  let* errors =
    match Option.bind (Json.member "errors" j) Json.to_list_opt with
    | None -> Ok []
    | Some l -> map_result Error.of_json l
  in
  let solver =
    match Json.member "solver" j with
    | Some sj -> Smt.Solver.Stats.of_json sj
    | None -> Smt.Solver.Stats.zero
  in
  Ok
    { label;
      strategy;
      frontier;
      visits;
      rng;
      paths = Option.value ~default:0 (int "paths");
      completed = Option.value ~default:0 (int "completed");
      errored = Option.value ~default:0 (int "errored");
      infeasible = Option.value ~default:0 (int "infeasible");
      unknown = Option.value ~default:0 (int "unknown");
      instructions = Option.value ~default:0 (int "instructions");
      wall_time =
        Option.value ~default:0.0
          (Option.bind (Json.member "wall_time" j) Json.to_float_opt);
      solver;
      errors;
      degraded =
        Option.value ~default:false
          (Option.bind (Json.member "degraded" j) Json.to_bool_opt);
      stop_reason = str "stop_reason" }

let save path t = Json.save path (to_json t)

let load path =
  match Json.load path with
  | Error e -> Error e
  | Ok j -> of_json j
