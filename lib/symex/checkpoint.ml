module Json = Obs.Json

type t = {
  label : string;
  strategy : string;
  frontier : (string * Decision.t array) list;
  leases : (string * Decision.t array * int) list;
  visits : (string * int) list;
  rng : int64;
  paths : int;
  completed : int;
  errored : int;
  infeasible : int;
  unknown : int;
  instructions : int;
  wall_time : float;
  solver : Smt.Solver.Stats.t;
  errors : Error.t list;
  degraded : bool;
  stop_reason : string option;
}

type policy = {
  write : t -> unit;
  every_s : float;
}

let version = 1

let to_json t =
  Json.Obj
    [ ("version", Json.Int version);
      ("label", Json.Str t.label);
      ("strategy", Json.Str t.strategy);
      ("rng", Json.Str (Printf.sprintf "0x%Lx" t.rng));
      ("frontier",
       Json.List
         (List.map
            (fun (site, prefix) ->
               Json.Obj
                 [ ("site", Json.Str site);
                   ("prefix",
                    Json.List
                      (Array.to_list
                         (Array.map
                            (fun d -> Json.Str (Decision.to_string d))
                            prefix))) ])
            t.frontier));
      (* In-flight and pending leases at snapshot time: work that was
         granted but not yet settled.  Kept separate from the frontier
         so a resume can restore the attempt counts (quarantine
         accounting survives the restart).  Absent in pre-lease
         checkpoints, where the writer folded in-flight units back
         into the frontier — of_json defaults to []. *)
      ("leases",
       Json.List
         (List.map
            (fun (site, prefix, attempts) ->
               Json.Obj
                 [ ("site", Json.Str site);
                   ("attempts", Json.Int attempts);
                   ("prefix",
                    Json.List
                      (Array.to_list
                         (Array.map
                            (fun d -> Json.Str (Decision.to_string d))
                            prefix))) ])
            t.leases));
      ("visits",
       Json.List
         (List.map
            (fun (site, n) ->
               Json.Obj [ ("site", Json.Str site); ("count", Json.Int n) ])
            t.visits));
      ("paths", Json.Int t.paths);
      ("completed", Json.Int t.completed);
      ("errored", Json.Int t.errored);
      ("infeasible", Json.Int t.infeasible);
      ("unknown", Json.Int t.unknown);
      ("instructions", Json.Int t.instructions);
      ("wall_time", Json.Float t.wall_time);
      ("solver", Smt.Solver.Stats.to_json t.solver);
      ("errors", Json.List (List.map Error.to_json t.errors));
      ("degraded", Json.Bool t.degraded);
      ("stop_reason",
       match t.stop_reason with None -> Json.Null | Some r -> Json.Str r) ]

(* Fold a list of decoders into a list result, keeping order and the
   first failure. *)
let map_result f l =
  List.fold_right
    (fun x acc ->
       match acc with
       | Error _ -> acc
       | Ok tl -> (match f x with Ok y -> Ok (y :: tl) | Error e -> Error e))
    l (Ok [])

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_string_opt in
  let int k = Option.bind (Json.member k j) Json.to_int_opt in
  let ( let* ) = Result.bind in
  let require name = function
    | Some v -> Ok v
    | None -> Error ("checkpoint: missing " ^ name)
  in
  let* () =
    match int "version" with
    | Some v when v = version -> Ok ()
    | Some v -> Error (Printf.sprintf "checkpoint: unsupported version %d" v)
    | None -> Error "checkpoint: missing version"
  in
  let* label = require "label" (str "label") in
  let* strategy = require "strategy" (str "strategy") in
  let* rng_s = require "rng" (str "rng") in
  let* rng =
    match Int64.of_string_opt rng_s with
    | Some v -> Ok v
    | None -> Error "checkpoint: malformed rng state"
  in
  let* frontier_l =
    require "frontier" (Option.bind (Json.member "frontier" j) Json.to_list_opt)
  in
  let* frontier =
    map_result
      (fun ej ->
         let* site =
           require "frontier site"
             (Option.bind (Json.member "site" ej) Json.to_string_opt)
         in
         let* prefix_l =
           require "frontier prefix"
             (Option.bind (Json.member "prefix" ej) Json.to_list_opt)
         in
         let* decisions =
           map_result
             (fun dj ->
                match Json.to_string_opt dj with
                | Some s -> Decision.of_string s
                | None -> Error "checkpoint: malformed decision")
             prefix_l
         in
         Ok (site, Array.of_list decisions))
      frontier_l
  in
  let* leases =
    match Option.bind (Json.member "leases" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun ej ->
           let* site =
             require "lease site"
               (Option.bind (Json.member "site" ej) Json.to_string_opt)
           in
           let* prefix_l =
             require "lease prefix"
               (Option.bind (Json.member "prefix" ej) Json.to_list_opt)
           in
           let* decisions =
             map_result
               (fun dj ->
                  match Json.to_string_opt dj with
                  | Some s -> Decision.of_string s
                  | None -> Error "checkpoint: malformed decision")
               prefix_l
           in
           let attempts =
             Option.value ~default:1
               (Option.bind (Json.member "attempts" ej) Json.to_int_opt)
           in
           Ok (site, Array.of_list decisions, attempts))
        l
  in
  let* visits =
    match Option.bind (Json.member "visits" j) Json.to_list_opt with
    | None -> Ok []
    | Some l ->
      map_result
        (fun vj ->
           match
             ( Option.bind (Json.member "site" vj) Json.to_string_opt,
               Option.bind (Json.member "count" vj) Json.to_int_opt )
           with
           | Some site, Some n -> Ok (site, n)
           | _ -> Error "checkpoint: malformed visit entry")
        l
  in
  let* errors =
    match Option.bind (Json.member "errors" j) Json.to_list_opt with
    | None -> Ok []
    | Some l -> map_result Error.of_json l
  in
  let solver =
    match Json.member "solver" j with
    | Some sj -> Smt.Solver.Stats.of_json sj
    | None -> Smt.Solver.Stats.zero
  in
  Ok
    { label;
      strategy;
      frontier;
      leases;
      visits;
      rng;
      paths = Option.value ~default:0 (int "paths");
      completed = Option.value ~default:0 (int "completed");
      errored = Option.value ~default:0 (int "errored");
      infeasible = Option.value ~default:0 (int "infeasible");
      unknown = Option.value ~default:0 (int "unknown");
      instructions = Option.value ~default:0 (int "instructions");
      wall_time =
        Option.value ~default:0.0
          (Option.bind (Json.member "wall_time" j) Json.to_float_opt);
      solver;
      errors;
      degraded =
        Option.value ~default:false
          (Option.bind (Json.member "degraded" j) Json.to_bool_opt);
      stop_reason = str "stop_reason" }

(* ------------------------------------------------------------------ *)
(* On-disk integrity                                                   *)

(* The file format is an envelope around the version-1 payload object:
   {"format":2,"crc":"0x...","payload":{...}}.  The CRC is CRC-32
   (IEEE) of the serialized payload text; the printer is deterministic
   (ints, %.17g floats and escaped strings all round-trip), so the
   loader re-serializes the parsed payload and compares.  Bare
   version-1 files (no envelope) are still accepted. *)

let format_version = 2

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
       let i =
         Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
       in
       c := Int32.logxor table.(i) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let backup_path path = path ^ ".bak"

let fallback_count = ref 0
let fallbacks () = !fallback_count

let fallback_metric =
  lazy
    (Obs.Metrics.counter
       ~help:"checkpoint loads that fell back to the .bak rotation"
       "symsysc_checkpoint_fallbacks_total")

let save path t =
  let payload = Json.to_string (to_json t) in
  let doc =
    Printf.sprintf "{\"format\":%d,\"crc\":\"0x%08lx\",\"payload\":%s}"
      format_version (crc32 payload) payload
  in
  (* The chaos point simulates a write torn by a crash or a bad disk:
     the new file is damaged, but the .bak rotation below still holds
     the previous good snapshot for [load] to fall back to. *)
  let doc =
    if Chaos.fire Chaos.Checkpoint_corrupt then
      String.sub doc 0 (String.length doc / 2)
    else doc
  in
  if Sys.file_exists path then Sys.rename path (backup_path path);
  Obs.Json.write_atomic path (doc ^ "\n")

let decode j =
  match Json.member "payload" j with
  | None -> of_json j (* bare version-1 file *)
  | Some payload ->
    let ( let* ) = Result.bind in
    let* () =
      match Option.bind (Json.member "format" j) Json.to_int_opt with
      | Some v when v = format_version -> Ok ()
      | Some v ->
        Error (Printf.sprintf "checkpoint: unsupported format %d" v)
      | None -> Error "checkpoint: missing format version"
    in
    let* crc =
      match Option.bind (Json.member "crc" j) Json.to_string_opt with
      | Some s ->
        (match Int64.of_string_opt s with
         | Some v -> Ok (Int64.to_int32 v)
         | None -> Error "checkpoint: malformed crc")
      | None -> Error "checkpoint: missing crc"
    in
    let* () =
      let actual = crc32 (Json.to_string payload) in
      if Int32.equal actual crc then Ok ()
      else
        Error
          (Printf.sprintf "checkpoint: crc mismatch (stored 0x%08lx, computed 0x%08lx)"
             crc actual)
    in
    of_json payload

let load_file path =
  match Json.load path with Error e -> Error e | Ok j -> decode j

let load path =
  match load_file path with
  | Ok t -> Ok t
  | Error primary_err ->
    (match load_file (backup_path path) with
     | Ok t ->
       incr fallback_count;
       Obs.Metrics.inc (Lazy.force fallback_metric);
       if !Obs.Sink.enabled then
         Obs.Sink.instant ~cat:"checkpoint"
           ~args:[ ("error", Obs.Event.Str primary_err) ]
           "fallback";
       Ok t
     | Error _ -> Error primary_err)
