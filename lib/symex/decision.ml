module Bv = Smt.Bv

type t =
  | Dir of bool
  | Pick of { value : Bv.t; dir : bool }

let to_string = function
  | Dir true -> "T"
  | Dir false -> "F"
  | Pick { value; dir } ->
    Printf.sprintf "%c0x%Lx:%d"
      (if dir then '+' else '-')
      (Bv.to_int64 value) (Bv.width value)

let of_string s =
  match s with
  | "T" -> Ok (Dir true)
  | "F" -> Ok (Dir false)
  | _ ->
    let fail () = Error (Printf.sprintf "malformed decision %S" s) in
    if String.length s < 2 || (s.[0] <> '+' && s.[0] <> '-') then fail ()
    else
      let dir = s.[0] = '+' in
      (match String.index_opt s ':' with
       | None -> fail ()
       | Some i ->
         let hex = String.sub s 1 (i - 1) in
         let w = String.sub s (i + 1) (String.length s - i - 1) in
         (match Int64.of_string_opt hex, int_of_string_opt w with
          | Some v, Some width when width >= 1 && width <= 64 ->
            Ok (Pick { value = Bv.make ~width v; dir })
          | _ -> fail ()))

let pp ppf d = Format.pp_print_string ppf (to_string d)
