(** Bounds-checked symbolic byte memory.

    Register backing stores are byte arrays whose cells are 8-bit
    symbolic terms.  Every access through the symbolic-offset API is
    bounds-checked by the engine, which is how the paper's F5 (a memcpy
    whose source exceeds the register boundary) and IF1 (a pending-array
    overflow) are detected: the {e detector} lives here, while the
    {e missing check} is the device's bug. *)

type t

val create : name:string -> size:int -> t
(** Zero-initialized memory of [size] bytes. *)

val name : t -> string
val size : t -> int

(** {1 Snapshots (copy-on-write)} *)

type state

val save : t -> state
(** O(1): marks the backing array shared and returns it; the first
    subsequent write copies. *)

val load : t -> state -> unit
(** Restore a previously saved state (also O(1), copy-on-write).
    Raises [Invalid_argument] on size mismatch. *)

(* Concrete-offset accessors (no checks beyond array bounds, which are
   programming errors, not modeled bugs). *)

val read_byte : t -> int -> Smt.Expr.t
val write_byte : t -> int -> Smt.Expr.t -> unit

val read32 : t -> int -> Value.t
(** Little-endian 32-bit read at a concrete byte offset. *)

val write32 : t -> int -> Value.t -> unit
(** Raises [Invalid_argument] unless the value is 32 bits wide, like
    {!write64} does for 64. *)

val read64 : t -> int -> Smt.Expr.t
(** Little-endian 64-bit read (e.g. CLINT's [mtime]). *)

val write64 : t -> int -> Smt.Expr.t -> unit

(* Symbolic-offset accessors: the engine checks bounds and reports
   {!Error.Out_of_bounds} when violable; the access then proceeds on
   the in-bounds side with the offset/length concretized (forking). *)

val read_bytes :
  ?site:string -> t -> offset:Value.t -> len:Value.t -> Smt.Expr.t array
(** [read_bytes m ~offset ~len] returns [len] bytes starting at
    [offset] (both may be symbolic).  [site] overrides the error-report
    site (several memories can share one detector site, so an error
    class is counted once). *)

val write_bytes :
  ?site:string -> t -> offset:Value.t -> len:Value.t -> Smt.Expr.t array -> unit
(** [write_bytes m ~offset ~len data] copies the first [len] bytes of
    [data] to [offset].  Reading past the end of [data] is itself
    reported as out-of-bounds (the initiator's buffer is too short). *)

val fill_zero : t -> unit
