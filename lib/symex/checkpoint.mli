(** Serializable exploration state.

    A checkpoint captures everything the engine needs to continue an
    interrupted run as if it had never stopped: the pending frontier
    (decision prefixes with their fork sites), the search state (visit
    counts and PRNG state), the accumulated counters and wall time,
    the solver activity so far, and the errors already found.  Because
    prefixes record concretization {e values} (see {!Decision}), a
    resumed run replays them without consulting the solver and reaches
    byte-identical verdicts, path totals and bug sites.

    Checkpoints are single-line JSON written atomically
    (tmp-and-rename), so a run killed mid-write never leaves a torn
    file behind. *)

type t = {
  label : string;            (** testbench name, checked on resume *)
  strategy : string;         (** {!Search.strategy_to_string} form *)
  frontier : (string * Decision.t array) list;  (** oldest first *)
  visits : (string * int) list;
  rng : int64;
  paths : int;
  completed : int;
  errored : int;
  infeasible : int;
  unknown : int;
  instructions : int;
  wall_time : float;         (** seconds of exploration so far *)
  solver : Smt.Solver.Stats.t;
  errors : Error.t list;     (** discovery order *)
  degraded : bool;
      (** some path was lost to a solver resource limit — the eventual
          run can no longer be exhaustive *)
  stop_reason : string option;
      (** why the snapshotted segment stopped; [None] for periodic
          snapshots of a still-running exploration *)
}

type policy = {
  write : t -> unit;
      (** called with a frontier snapshot; typically {!save}[ path] *)
  every_s : float;
      (** minimum seconds between periodic snapshots; a final snapshot
          is always written when the run stops or exhausts *)
}
(** How an exploration persists snapshots.  Shared by the sequential
    engine and the worker-pool master (whose snapshots also fold the
    in-flight work units back into the frontier). *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val save : string -> t -> unit
val load : string -> (t, string) result
