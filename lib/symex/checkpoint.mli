(** Serializable exploration state.

    A checkpoint captures everything the engine needs to continue an
    interrupted run as if it had never stopped: the pending frontier
    (decision prefixes with their fork sites), the search state (visit
    counts and PRNG state), the accumulated counters and wall time,
    the solver activity so far, and the errors already found.  Because
    prefixes record concretization {e values} (see {!Decision}), a
    resumed run replays them without consulting the solver and reaches
    byte-identical verdicts, path totals and bug sites.

    Checkpoints are single-line JSON written atomically
    (tmp-and-rename), so a run killed mid-write never leaves a torn
    file behind.  The on-disk form is an integrity envelope —
    [{"format":2,"crc":"0x...","payload":{...}}] — whose CRC-32 covers
    the serialized payload; {!save} rotates the previous file to
    [<path>.bak] before installing the new one, and {!load} falls back
    to the backup when the primary file is missing, torn or fails the
    CRC, so one corrupted write never strands a resumable campaign. *)

type t = {
  label : string;            (** testbench name, checked on resume *)
  strategy : string;         (** {!Search.strategy_to_string} form *)
  frontier : (string * Decision.t array) list;  (** oldest first *)
  leases : (string * Decision.t array * int) list;
      (** [(site, prefix, attempts)] for units granted but not yet
          settled when the snapshot was taken — in-flight on a worker
          or awaiting regrant.  A resume folds them back into the
          frontier with their attempt counts intact, so poison-unit
          quarantine accounting survives a restart.  Empty for
          sequential runs and absent in pre-lease checkpoints (decoded
          as [[]]). *)
  visits : (string * int) list;
  rng : int64;
  paths : int;
  completed : int;
  errored : int;
  infeasible : int;
  unknown : int;
  instructions : int;
  wall_time : float;         (** seconds of exploration so far *)
  solver : Smt.Solver.Stats.t;
  errors : Error.t list;     (** discovery order *)
  degraded : bool;
      (** some path was lost to a solver resource limit — the eventual
          run can no longer be exhaustive *)
  stop_reason : string option;
      (** why the snapshotted segment stopped; [None] for periodic
          snapshots of a still-running exploration *)
}

type policy = {
  write : t -> unit;
      (** called with a frontier snapshot; typically {!save}[ path] *)
  every_s : float;
      (** minimum seconds between periodic snapshots; a final snapshot
          is always written when the run stops or exhausts *)
}
(** How an exploration persists snapshots.  Shared by the sequential
    engine and the worker-pool master (whose snapshots record granted
    but unsettled units in [leases]). *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val save : string -> t -> unit
(** Atomic write of the integrity envelope; an existing file at [path]
    is rotated to [path ^ ".bak"] first.  With a {!Chaos} spec armed,
    the [checkpoint-corrupt] point truncates the new file (simulating
    a torn write) — the rotation keeps the previous good snapshot. *)

val load : string -> (t, string) result
(** Load and CRC-check a checkpoint; on any failure (unreadable,
    unparsable, bad CRC, bad version) the [.bak] rotation is tried
    before giving up, bumping {!fallbacks} and the
    [symsysc_checkpoint_fallbacks_total] counter.  The returned error
    is the {e primary} file's.  Bare version-1 files (pre-envelope)
    still load. *)

val fallbacks : unit -> int
(** Process-total count of loads that were answered by the backup. *)

val backup_path : string -> string
(** [path ^ ".bak"] — where {!save} rotates the previous snapshot. *)

val crc32 : string -> int32
(** The CRC-32 (IEEE 802.3, the zlib polynomial) used by the integrity
    envelope — exposed so other append-only formats (the campaign
    service's write-ahead journal) frame their records with the same
    discipline. *)
