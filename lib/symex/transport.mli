(** Framed-JSON transport: one protocol over pipes and TCP sockets.

    The pool's wire format is a length-prefixed {!Obs.Json} frame:
    the payload byte length in ASCII decimal, a ['\n'], then exactly
    that many bytes of JSON.  This module owns the framing plus the two
    physical transports that carry it — anonymous pipe pairs for forked
    local workers and TCP connections for remote ones — so the dispatch
    loop in {!Pool} never branches on transport kind.

    Every "peer went away" failure shape (EOF, [EPIPE], [ECONNRESET],
    …) is normalized to the single {!Disconnected} exception, which the
    pool maps onto its worker-death/requeue path.  Call {!init} (or
    have the pool do it) so a dead peer raises instead of delivering a
    fatal SIGPIPE. *)

(** Raised by reads and writes when the peer is gone: end-of-file, a
    closed pipe, or a reset/aborted socket.  The payload says which
    operation observed it (e.g. ["write: Broken pipe"]). *)
exception Disconnected of string

val init : unit -> unit
(** Ignore SIGPIPE process-wide so writes to a dead peer raise
    {!Disconnected} (via [EPIPE]) instead of killing the process.
    Idempotent. *)

(** {1 Connections} *)

type kind = Pipe | Tcp

val kind_to_string : kind -> string

type conn = {
  c_in : Unix.file_descr;   (** frames arriving from the peer *)
  c_out : Unix.file_descr;  (** frames going to the peer *)
  c_kind : kind;
  c_addr : string;          (** peer address, e.g. ["127.0.0.1:49152"]
                                or ["w0"] for a forked pipe worker *)
}

val pipe_conn : addr:string -> Unix.file_descr -> Unix.file_descr -> conn
(** Wrap an already-created pipe pair (read end, write end). *)

val describe : conn -> string
(** ["pipe:w0"] / ["tcp:127.0.0.1:49152"] — used in watchdog reap
    messages and [--top] worker rows. *)

val close : conn -> unit
(** Close both descriptors (once, if they are the same socket).
    Never raises. *)

(** {1 Framing}

    The [_fd] variants work on raw descriptors for call sites that own
    only half a connection (forked workers talking over inherited pipe
    ends). *)

val frame_string : Obs.Json.t -> string
(** The exact bytes a frame puts on the wire. *)

val write_frame : conn -> Obs.Json.t -> unit
val read_frame : conn -> Obs.Json.t

val write_frame_fd : Unix.file_descr -> Obs.Json.t -> unit
val read_frame_fd : Unix.file_descr -> Obs.Json.t
(** Blocking; [EINTR]-retrying.  Raise {!Disconnected} when the peer is
    gone and [Failure] on a malformed header or payload (a framing bug
    or corruption, not a liveness event). *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_all fd buf off len]: loop until all [len] bytes are written.
    Exposed for chaos injection sites that shear a frame mid-write. *)

(** {1 TCP} *)

type listener

val listen : ?backlog:int -> host:string -> port:int -> unit -> listener
(** Bind and listen on [host:port].  [port = 0] asks the kernel for an
    ephemeral port; the bound port is visible via {!listener_addr}, so
    tests and benches can listen first and tell workers where to dial. *)

val listener_addr : listener -> string * int
(** [(host, bound_port)]. *)

val listener_fd : listener -> Unix.file_descr
(** For [select] alongside worker descriptors.  Forked children must
    close this inherited descriptor. *)

val accept : listener -> conn
val close_listener : listener -> unit

val connect : host:string -> port:int -> conn
(** Single dial attempt; raises {!Disconnected} if refused or
    unreachable.  Retry cadence is the caller's job — see
    {!backoff_delay}. *)

(** {1 Reconnect backoff} *)

val backoff_delay : seed:int -> attempt:int -> float
(** Seconds to wait before reconnect [attempt] (1-based).  A pure
    function of [(seed, attempt)]: exponential from 50 ms doubling per
    attempt, capped at 5 s, with full splitmix64 jitter drawn over
    (0, cap] so distinct seeds desynchronize.  Deterministic — the
    whole schedule can be tabulated in tests. *)

val backoff_cap_s : float
(** Upper bound on any {!backoff_delay} result (5 s). *)
