module Expr = Smt.Expr
module Bv = Smt.Bv

(* Copy-on-write: [save] marks the array shared and returns it without
   copying, so snapshotting a memory is O(1); the first mutation after a
   share copies.  Cells are immutable terms, so sharing the array is the
   only aliasing concern. *)
type t = {
  mem_name : string;
  mutable data : Expr.t array;
  mutable shared : bool;
}

type state = Expr.t array

let byte_zero = lazy (Expr.int ~width:8 0)

let create ~name ~size =
  { mem_name = name;
    data = Array.make size (Lazy.force byte_zero);
    shared = false }

let name t = t.mem_name
let size t = Array.length t.data
let read_byte t i = t.data.(i)

let unshare t =
  if t.shared then begin
    t.data <- Array.copy t.data;
    t.shared <- false
  end

let write_byte t i b =
  if Expr.width b <> 8 then invalid_arg "Mem.write_byte: byte expected";
  unshare t;
  t.data.(i) <- b

let save t =
  t.shared <- true;
  t.data

let load t data =
  if Array.length data <> Array.length t.data then
    invalid_arg "Mem.load: size mismatch";
  t.shared <- true;
  t.data <- data

let read32 t off =
  let b i = Expr.zext 32 (read_byte t (off + i)) in
  let w =
    Expr.bor (b 0)
      (Expr.bor
         (Expr.shl (b 1) (Expr.int ~width:32 8))
         (Expr.bor
            (Expr.shl (b 2) (Expr.int ~width:32 16))
            (Expr.shl (b 3) (Expr.int ~width:32 24))))
  in
  assert (Expr.width w = 32);
  w

let write32 t off v =
  if Expr.width v <> 32 then invalid_arg "Mem.write32: 32-bit value expected";
  for i = 0 to 3 do
    write_byte t (off + i) (Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) v)
  done

let read64 t off =
  let rec assemble i acc =
    if i < 0 then acc
    else
      assemble (i - 1)
        (Expr.bor
           (Expr.shl (Expr.zext 64 (read_byte t (off + i)))
              (Expr.int ~width:64 (8 * i)))
           acc)
  in
  assemble 7 (Expr.int ~width:64 0)

let write64 t off v =
  if Expr.width v <> 64 then invalid_arg "Mem.write64: 64-bit value expected";
  for i = 0 to 7 do
    write_byte t (off + i) (Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) v)
  done

let fill_zero t =
  unshare t;
  Array.fill t.data 0 (Array.length t.data) (Lazy.force byte_zero)

(* offset + len <= size, computed without 32-bit wrap by extending. *)
let in_bounds t ~offset ~len =
  let off64 = Expr.zext 64 offset and len64 = Expr.zext 64 len in
  Expr.ule (Expr.add off64 len64) (Expr.int ~width:64 (size t))

let bounds_check ?site t ~offset ~len ~what =
  let site =
    match site with
    | Some s -> s
    | None -> Printf.sprintf "mem:%s:%s" t.mem_name what
  in
  Engine.check_kind Error.Out_of_bounds ~site
    ~message:
      (Printf.sprintf "%s access exceeds %s (%d bytes)" what t.mem_name (size t))
    (in_bounds t ~offset ~len)

let concretize_range ~offset ~len =
  let off = Bv.to_int (Engine.concretize offset) in
  let n = Bv.to_int (Engine.concretize len) in
  (off, n)

let read_bytes ?site t ~offset ~len =
  bounds_check ?site t ~offset ~len ~what:"read";
  let off, n = concretize_range ~offset ~len in
  Array.init n (fun i -> read_byte t (off + i))

let write_bytes ?site t ~offset ~len data =
  bounds_check ?site t ~offset ~len ~what:"write";
  let off, n = concretize_range ~offset ~len in
  if n > Array.length data then
    Engine.report_error Error.Out_of_bounds
      ~site:(Printf.sprintf "mem:%s:source" t.mem_name)
      ~message:"write source buffer shorter than length"
  else
    for i = 0 to n - 1 do
      write_byte t (off + i) data.(i)
    done
