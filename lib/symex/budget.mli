(** Unified resource budgets for exploration.

    One record carries every limit an exploration run can be given:
    the path/instruction/time bounds the engine always had, a memory
    watermark read from [Gc] statistics, and the per-query solver
    budgets (CDCL conflict limit and wall-clock timeout).  Exhausting
    any of them stops exploration {e gracefully}: the engine unwinds
    between solver queries, records which budget fired, and still
    produces a (non-exhaustive) report — and, when checkpointing is
    enabled, a resumable frontier snapshot.

    The module also owns the process-wide interrupt flag: signal
    handlers (or tests) set it, and both the engine's between-branch
    polling and the SAT solver's propagation-boundary polling observe
    it, so even a run stuck inside one hard query stays responsive to
    Ctrl-C. *)

type t = {
  max_paths : int option;         (** executions to attempt *)
  max_instructions : int option;  (** symbolic operations *)
  max_seconds : float option;     (** wall-clock deadline for the run *)
  max_solver_conflicts : int option;
      (** per-query CDCL conflict budget; an over-budget query kills
          only the current path (graceful degradation) *)
  solver_timeout_ms : int option;
      (** per-query wall-clock budget, same path-local semantics *)
  max_memory_mb : int option;
      (** OCaml heap watermark; checked between branches *)
}

val unlimited : t

(** Why a run stopped early.  [Errors] is the [stop_after_errors]
    threshold; [Interrupt] is SIGINT/SIGTERM (or a programmatic
    {!interrupt_now}).  Absence of a reason means the frontier was
    exhausted. *)
type reason =
  | Paths
  | Instructions
  | Deadline
  | Memory
  | Errors
  | Interrupt

val reason_to_string : reason -> string
(** Stable metric-safe names: ["paths"], ["instructions"],
    ["deadline"], ["memory"], ["errors"], ["interrupt"]. *)

val reason_of_string : string -> reason option

val heap_mb : unit -> float
(** Current major-heap size in MB, from [Gc.quick_stat] (no heap
    walk — cheap enough to poll at branches). *)

val interrupted : unit -> bool
val interrupt_now : unit -> unit
val clear_interrupt : unit -> unit

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to {!interrupt_now}.  The engine then
    stops at the next branch or propagation boundary, writes the final
    checkpoint when one was requested, and returns a partial report —
    callers keep their [Fun.protect] epilogues (sink flushing) because
    the process is not killed.

    Installation {e chains}: a handler some other layer installed
    first (e.g. the campaign daemon's SIGTERM drain) keeps running
    after ours sets the flag, so a daemon and a per-job session can
    both install without clobbering each other.  Re-installing over
    our own handler is idempotent (the chain is not extended). *)
