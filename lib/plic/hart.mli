(** Mock HART — the interrupt target the PLIC notifies
    ([Interrupt_target hart(dut)] in the paper's Fig. 6).

    Records when and how often [trigger_external_interrupt] fired so the
    testbenches can assert latency and notification behaviour. *)

type t = {
  hart_name : string;
  mutable was_triggered : bool;
  mutable trigger_count : int;
  mutable last_trigger_time : Pk.Sc_time.t;
  mutable was_cleared : bool;
      (** set by the testbench after verifying the claimed interrupt's
          pending bit was cleared *)
}

val create : ?name:string -> unit -> t

val trigger_external_interrupt : t -> Pk.Sc_time.t -> unit
(** Called by the PLIC with the current simulation time. *)

val reset_flags : t -> unit
(** Clear [was_triggered]/[was_cleared] before the next observation
    window (does not reset the counters). *)

type state
(** Captured observation flags and counters (pure data). *)

val save : t -> state
val load : t -> state -> unit
