(** The RISC-V Platform Level Interrupt Controller (PLIC), modelled
    after the FE310 PLIC of the open-source riscv-vp (the paper's DUV).

    Global interrupts arrive through {!trigger_interrupt}; the PLIC
    latches them in a pending array and notifies its [run] thread via
    the [e_run] event after one clock cycle.  The [run] thread scans
    for a pending, enabled interrupt whose priority exceeds the hart's
    threshold and, unless the hart already has one in flight
    ([hart_eip] suppression), raises the external interrupt line of the
    target hart.  The hart then claims through the memory-mapped
    claim/response register (highest priority first, ties broken by the
    lowest id) and completes by writing the id back, which re-triggers
    the scan for any further pending interrupts.

    The memory map follows the FE310 PLIC: priority words, pending
    bits, enable bits, threshold and claim/response (plus the S-mode
    completion port — write-only in this VP revision).

    The {!Config.variant} selects the buggy original behaviour
    (bugs F1..F6 of the paper) or the fixed one; {!Fault.t}s inject the
    additional bugs IF1..IF6 of Section 5.3. *)

(* This module is the library entry point; re-export the siblings. *)

module Config = Config
module Fault = Fault
module Hart = Hart
module Spec = Spec

type t

val create :
  ?variant:Config.variant ->
  ?faults:Fault.t list ->
  Config.t ->
  Pk.Scheduler.t ->
  t
(** Build the PLIC, register its memory map and spawn the translated
    [run] thread on the given scheduler.  Default: [Original] variant,
    no injected faults. *)

val config : t -> Config.t
val variant : t -> Config.variant
val faults : t -> Fault.t list
val scheduler : t -> Pk.Scheduler.t

val connect_hart : t -> int -> Hart.t -> unit
(** Connect the external-interrupt line of hart [i]
    ([dut.target_harts\[i\] = &hart] in the paper's Fig. 6). *)

val trigger_interrupt : t -> Symex.Value.t -> unit
(** Custom interface function: an external device raises global
    interrupt [id] (may be symbolic). *)

val transport : t -> Tlm.Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t
(** The TLM target socket (blocking transport). *)

val reset : t -> unit
(** Restore the just-constructed device state (registers, latches,
    hart flags, thread FSM); scheduler state is untouched. *)

(** The unified peripheral surface ({!Tlm.Peripheral.S}): [make] maps
    the memory map, spawns the run thread and registers the device as
    an engine component; [snapshot]/[restore] capture the pending
    latch, all register backings, eip lines, connected-hart flags and
    the run-thread FSM position. *)
module Peripheral : sig
  type config = {
    pc_variant : Config.variant;
    pc_faults : Fault.t list;
    pc_cfg : Config.t;
  }

  include Tlm.Peripheral.S with type t = t and type config := config
end

val e_run : t -> Pk.Event.t
(** The synchronization event of the [run] thread (exposed for
    scheduler-level tests). *)

val hart_eip : t -> int -> bool
(** Whether hart [i] currently has an external interrupt in flight. *)

(* Internal state probes for white-box unit tests. *)

val pending_is_set : t -> int -> Smt.Expr.t
(** Pending latch of source [id] (concrete 8-bit backing, nonzero =
    pending), as a boolean term. *)

val priority_of : t -> int -> Symex.Value.t
val threshold_of : t -> Symex.Value.t
val enabled_bit : t -> int -> Smt.Expr.t

val set_priority : t -> int -> Symex.Value.t -> unit
(** Direct register poke (bypasses TLM) for unit tests. *)

val set_enable_all : t -> unit
val set_threshold : t -> Symex.Value.t -> unit
