module Config = Config
module Fault = Fault
module Hart = Hart
module Spec = Spec
module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Sc_time = Pk.Sc_time

(* Resume labels of the translated run thread (Fig. 4). *)
type run_label = Init | Lbl1

(* Captured device state: pure data, no aliasing into the live device
   (Mem.save is copy-on-write; arrays are copied). *)
type snap = {
  sn_pending : Mem.state;
  sn_priorities : Mem.state;
  sn_pending_mmio : Mem.state;
  sn_enable : Mem.state;
  sn_threshold : Mem.state;
  sn_claim_response : Mem.state;
  sn_smode_claim : Mem.state;
  sn_eip : bool array;
  sn_harts : Hart.state option array;
  sn_fsm : run_label;
}

type t = {
  cfg : Config.t;
  plic_variant : Config.variant;
  plic_faults : Fault.t list;
  sched : Pk.Scheduler.t;
  regs : Tlm.Register.t;
  (* Internal pending latch: one byte per source, index = source id.
     Sized num_sources + 1 so valid ids 1..num_sources fit exactly —
     the array IF1's off-by-one overflows. *)
  pending : Mem.t;
  (* Memory-mapped register backings. *)
  priorities : Mem.t;
  pending_mmio : Mem.t;
  enable : Mem.t;
  threshold : Mem.t;
  claim_response : Mem.t;
  smode_claim : Mem.t;
  eip : bool array;
  harts : Hart.t option array;
  run_event : Pk.Event.t;
  run_fsm : run_label Pk.Process.Fsm.t;
  mutable reset_snap : snap option;
}

let config t = t.cfg
let variant t = t.plic_variant
let faults t = t.plic_faults
let scheduler t = t.sched
let e_run t = t.run_event
let hart_eip t h = t.eip.(h)

let fault_on t f = Fault.enabled t.plic_faults f

let enable_words cfg = (cfg.Config.num_sources + 1 + 31) / 32

(* ---- register accessors (concrete offsets) ---- *)

let priority_of t id = Mem.read32 t.priorities (4 * (id - 1))
let threshold_of t = Mem.read32 t.threshold 0

let enabled_bit t id =
  let word = Mem.read32 t.enable (4 * (id / 32)) in
  Value.bit word (id mod 32)

let pending_is_set t id = Expr.ne (Mem.read_byte t.pending id) (Expr.int ~width:8 0)

let set_priority t id v = Mem.write32 t.priorities (4 * (id - 1)) v

let set_enable_all t =
  for w = 0 to enable_words t.cfg - 1 do
    Mem.write32 t.enable (4 * w) (Value.of_int (-1))
  done

let set_threshold t v = Mem.write32 t.threshold 0 v

(* ---- interrupt delivery logic ---- *)

(* Threshold gate: the specification requires strictly greater
   ("priority 0 is reserved to mean never interrupt"), which the
   strict comparison subsumes since thresholds are non-negative.
   IF6 turns it into >=. *)
let above_threshold t prio =
  if fault_on t Fault.IF6 then Value.ge prio (threshold_of t)
  else Value.gt prio (threshold_of t)

let consider t id =
  Expr.and_ (pending_is_set t id) (enabled_bit t id)

let hart_has_pending_enabled_interrupts t =
  let n = t.cfg.Config.num_sources in
  let rec scan id =
    if id > n then false
    else if
      Value.truth ~site:"plic:scan:consider" (consider t id)
      && Value.truth ~site:"plic:scan:threshold"
           (above_threshold t (priority_of t id))
    then true
    else scan (id + 1)
  in
  scan 1

(* The run-thread scan of Fig. 3: notify each hart that does not
   already have an interrupt in flight.  IF2 drops the hart
   notification whenever interrupt 13 is among the pending-enabled
   sources. *)
let run_scan t =
  let dropped =
    fault_on t Fault.IF2
    && Value.truth ~site:"plic:if2"
         (consider t (Fault.if2_drop_id t.cfg))
  in
  if not dropped then
    for h = 0 to t.cfg.Config.num_harts - 1 do
      if not t.eip.(h) then
        if hart_has_pending_enabled_interrupts t then begin
          t.eip.(h) <- true;
          match t.harts.(h) with
          | Some hart ->
            Hart.trigger_external_interrupt hart (Pk.Scheduler.now t.sched)
          | None -> ()
        end
    done

let notify_run t ~(id : Value.t) =
  let cycle = t.cfg.Config.clock_cycle in
  let delay =
    if
      fault_on t Fault.IF4
      && Value.truth ~site:"plic:if4"
           (Value.gt id (Value.of_int (Fault.if4_bound t.cfg)))
    then Sc_time.mul_int cycle 10
    else cycle
  in
  Pk.Scheduler.notify_at t.sched t.run_event delay

let trigger_interrupt_body t id =
  let n = t.cfg.Config.num_sources in
  let bound = if fault_on t Fault.IF1 then n + 1 else n in
  let valid =
    Expr.and_ (Value.ge id Value.one) (Value.le id (Value.of_int bound))
  in
  let proceed =
    match t.plic_variant with
    | Config.Original ->
      (* F1: a bare assert guards the id — an unhandled abort on
         invalid input instead of a graceful rejection. *)
      Engine.fatal_check ~site:"plic:trigger:bounds"
        ~message:"invalid interrupt id passed to trigger_interrupt" valid;
      true
    | Config.Fixed ->
      (* Gracefully ignore out-of-range ids. *)
      Value.truth ~site:"plic:trigger:valid" valid
  in
  if proceed then begin
    (* Latch the pending bit.  The engine-checked write is where IF1's
       overflow is detected. *)
    Mem.write_bytes ~site:"plic:pending-array" t.pending ~offset:id
      ~len:Value.one [| Expr.int ~width:8 1 |];
    notify_run t ~id
  end

(* Logged like a TLM transport: the latch and scheduler notification
   land in tracked components, so no payload effect is needed. *)
let trigger_interrupt t id =
  Engine.syscall
    ~capture:(fun () -> Engine.Effect_none)
    ~apply:(fun _ -> ())
    (fun () -> trigger_interrupt_body t id)

(* ---- claim / complete ---- *)

(* Highest priority wins; ties go to the lowest id (strict comparison
   while scanning upwards). *)
let claim t =
  let n = t.cfg.Config.num_sources in
  let best = ref 0 in
  let best_prio = ref Value.zero in
  for id = 1 to n do
    if Value.truth ~site:"plic:claim:consider" (consider t id) then
      let prio = priority_of t id in
      if Value.truth ~site:"plic:claim:compare" (Value.gt prio !best_prio)
      then begin
        best := id;
        best_prio := prio
      end
  done;
  Mem.write32 t.claim_response 0 (Value.of_int !best);
  if !best <> 0 then
    if not (fault_on t Fault.IF5 && !best = Fault.if5_skip_id t.cfg) then
      (* clear the pending latch of the claimed interrupt *)
      Mem.write_byte t.pending !best (Expr.int ~width:8 0)

let complete t ~hart:h =
  (* F6: this assertion "was previously thought never to be false" —
     a completion is expected only after a notification went out, but a
     testbench (or misbehaving software) can write the claim/response
     register between trigger_interrupt and the run-thread scan. *)
  (match t.plic_variant with
   | Config.Original ->
     Engine.fatal_check ~site:"plic:claim:eip"
       ~message:"completion written while no interrupt is in flight (race)"
       (Expr.bool t.eip.(h))
   | Config.Fixed -> ());
  if t.eip.(h) then begin
    t.eip.(h) <- false;
    if not (fault_on t Fault.IF3) then
      (* Re-trigger the scan so further pending interrupts notify. *)
      if hart_has_pending_enabled_interrupts t then
        Pk.Scheduler.notify_at t.sched t.run_event t.cfg.Config.clock_cycle
  end

(* Pack the pending latch into the memory-mapped pending words (pure
   term construction, no forking). *)
let pack_pending t =
  let n = t.cfg.Config.num_sources in
  for w = 0 to enable_words t.cfg - 1 do
    let word = ref Value.zero in
    for bit = 0 to 31 do
      let id = (32 * w) + bit in
      if id >= 1 && id <= n then
        let b =
          Expr.ite (pending_is_set t id)
            (Value.of_int (1 lsl bit))
            Value.zero
        in
        word := Value.bor !word b
    done;
    Mem.write32 t.pending_mmio (4 * w) !word
  done

(* ---- whole-device state capture ---- *)

let snapshot t =
  {
    sn_pending = Mem.save t.pending;
    sn_priorities = Mem.save t.priorities;
    sn_pending_mmio = Mem.save t.pending_mmio;
    sn_enable = Mem.save t.enable;
    sn_threshold = Mem.save t.threshold;
    sn_claim_response = Mem.save t.claim_response;
    sn_smode_claim = Mem.save t.smode_claim;
    sn_eip = Array.copy t.eip;
    sn_harts = Array.map (Option.map Hart.save) t.harts;
    sn_fsm = Pk.Process.Fsm.position t.run_fsm;
  }

let restore t s =
  Mem.load t.pending s.sn_pending;
  Mem.load t.priorities s.sn_priorities;
  Mem.load t.pending_mmio s.sn_pending_mmio;
  Mem.load t.enable s.sn_enable;
  Mem.load t.threshold s.sn_threshold;
  Mem.load t.claim_response s.sn_claim_response;
  Mem.load t.smode_claim s.sn_smode_claim;
  Array.blit s.sn_eip 0 t.eip 0 (Array.length t.eip);
  Array.iteri
    (fun i hs ->
       match hs, t.harts.(i) with
       | Some hs, Some h -> Hart.load h hs
       | None, _ -> ()
       | Some _, None -> ())
    s.sn_harts;
  Pk.Process.Fsm.set t.run_fsm s.sn_fsm

(* Engine-component hook: the whole device is one tracked component,
   so a fast-forwarded path restores it without replaying transports. *)
type Engine.component_state += Plic_state of snap

(* ---- construction ---- *)

let build_memory_map t =
  let add = Tlm.Register.add_range t.regs in
  ignore
    (add ~name:"priority" ~base:Config.priority_base
       ~access:Tlm.Register.Read_write t.priorities);
  ignore
    (add ~name:"pending" ~base:Config.pending_base
       ~access:Tlm.Register.Read_only
       ~pre_read:(fun () -> pack_pending t)
       t.pending_mmio);
  ignore
    (add ~name:"enable" ~base:Config.enable_base
       ~access:Tlm.Register.Read_write t.enable);
  ignore
    (add ~name:"threshold" ~base:Config.threshold_base
       ~access:Tlm.Register.Read_write t.threshold);
  ignore
    (add ~name:"claim_response" ~base:Config.claim_base
       ~access:Tlm.Register.Read_write
       ~pre_read:(fun () -> claim t)
       ~post_write:(fun () -> complete t ~hart:0)
       t.claim_response);
  (* S-mode completion port: write-only in this VP revision; a read of
     it trips the access-type assertion (F4). *)
  ignore
    (add ~name:"smode_claim" ~base:Config.smode_claim_base
       ~access:Tlm.Register.Write_only t.smode_claim)

(* The translated run thread (Fig. 4): first activation immediately
   waits on e_run; every later activation scans and waits again. *)
let spawn_run_thread t =
  let fsm = t.run_fsm in
  let body () =
    match Pk.Process.Fsm.position fsm with
    | Init ->
      Pk.Process.Fsm.suspend fsm ~at:Lbl1 (Pk.Process.Wait_event t.run_event)
    | Lbl1 ->
      run_scan t;
      Pk.Process.Fsm.suspend fsm ~at:Lbl1 (Pk.Process.Wait_event t.run_event)
  in
  Pk.Scheduler.spawn t.sched (Pk.Process.make "plic:run" body)

let create ?(variant = Config.Original) ?(faults = []) cfg sched =
  if cfg.Config.num_harts < 1 then invalid_arg "Plic.create: need >= 1 hart";
  let n = cfg.Config.num_sources in
  let words = enable_words cfg in
  let t =
    {
      cfg;
      plic_variant = variant;
      plic_faults = faults;
      sched;
      regs = Tlm.Register.create ~policy:(match variant with
          | Config.Original -> Tlm.Register.Original
          | Config.Fixed -> Tlm.Register.Fixed)
          ~name:"plic" ();
      pending = Mem.create ~name:"plic-pending" ~size:(n + 1);
      priorities = Mem.create ~name:"plic-priority" ~size:(4 * n);
      pending_mmio = Mem.create ~name:"plic-pending-mmio" ~size:(4 * words);
      enable = Mem.create ~name:"plic-enable" ~size:(4 * words);
      threshold = Mem.create ~name:"plic-threshold" ~size:4;
      claim_response = Mem.create ~name:"plic-claim" ~size:4;
      smode_claim = Mem.create ~name:"plic-smode-claim" ~size:4;
      eip = Array.make cfg.Config.num_harts false;
      harts = Array.make cfg.Config.num_harts None;
      run_event = Pk.Event.make "plic:e_run";
      run_fsm = Pk.Process.Fsm.make ~init:Init;
      reset_snap = None;
    }
  in
  build_memory_map t;
  spawn_run_thread t;
  Engine.register_component
    ~save:(fun () -> Plic_state (snapshot t))
    ~restore:(function
      | Plic_state s -> restore t s
      | _ -> assert false);
  t.reset_snap <- Some (snapshot t);
  t

let connect_hart t i hart = t.harts.(i) <- Some hart

let transport t payload delay = Tlm.Register.transport t.regs payload delay

let reset t =
  match t.reset_snap with
  | Some s -> restore t s
  | None -> assert false

module Peripheral = struct
  type nonrec t = t

  type config = {
    pc_variant : Config.variant;
    pc_faults : Fault.t list;
    pc_cfg : Config.t;
  }

  type state = snap

  let make c sched = create ~variant:c.pc_variant ~faults:c.pc_faults c.pc_cfg sched
  let reset = reset
  let serve = transport
  let snapshot = snapshot
  let restore = restore
end
