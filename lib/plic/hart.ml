type t = {
  hart_name : string;
  mutable was_triggered : bool;
  mutable trigger_count : int;
  mutable last_trigger_time : Pk.Sc_time.t;
  mutable was_cleared : bool;
}

let create ?(name = "hart0") () =
  {
    hart_name = name;
    was_triggered = false;
    trigger_count = 0;
    last_trigger_time = Pk.Sc_time.zero;
    was_cleared = false;
  }

let trigger_external_interrupt t now =
  t.was_triggered <- true;
  t.trigger_count <- t.trigger_count + 1;
  t.last_trigger_time <- now

let reset_flags t =
  t.was_triggered <- false;
  t.was_cleared <- false

type state = {
  st_was_triggered : bool;
  st_trigger_count : int;
  st_last_trigger_time : Pk.Sc_time.t;
  st_was_cleared : bool;
}

let save t =
  {
    st_was_triggered = t.was_triggered;
    st_trigger_count = t.trigger_count;
    st_last_trigger_time = t.last_trigger_time;
    st_was_cleared = t.was_cleared;
  }

let load t s =
  t.was_triggered <- s.st_was_triggered;
  t.trigger_count <- s.st_trigger_count;
  t.last_trigger_time <- s.st_last_trigger_time;
  t.was_cleared <- s.st_was_cleared
