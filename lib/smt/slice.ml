(* Union-find over variable ids; constraints are then grouped by the
   representative of their first variable.  Everything is a single pass
   over the constraints plus near-constant-time set operations, so
   partitioning is negligible next to even one cache lookup. *)

let vars constraints =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
       List.iter
         (fun (v : Expr.var) ->
            if not (Hashtbl.mem tbl v.Expr.var_id) then
              Hashtbl.add tbl v.Expr.var_id v)
         (Expr.vars c))
    constraints;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : Expr.var) b -> Int.compare a.Expr.var_id b.Expr.var_id)

let partition constraints =
  match constraints with
  | [] -> []
  | [ _ ] -> [ constraints ]
  | _ ->
    let parent : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let rec find v =
      match Hashtbl.find_opt parent v with
      | None ->
        Hashtbl.add parent v v;
        v
      | Some p when p = v -> v
      | Some p ->
        let r = find p in
        Hashtbl.replace parent v r;  (* path compression *)
        r
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    (* [Expr.vars] walks the term DAG; compute it once per constraint. *)
    let with_vars = List.map (fun c -> (c, Expr.vars c)) constraints in
    List.iter
      (fun (_, vs) ->
         match vs with
         | [] -> ()
         | (v0 : Expr.var) :: rest ->
           List.iter
             (fun (v : Expr.var) -> union v0.Expr.var_id v.Expr.var_id)
             rest)
      with_vars;
    (* Group by final representative, preserving first-occurrence order
       of the groups and input order within each group. *)
    let groups : (int, Expr.t list ref) Hashtbl.t = Hashtbl.create 16 in
    let roots_rev = ref [] in
    let ground_rev = ref [] in
    List.iter
      (fun (c, vs) ->
         match vs with
         | [] -> ground_rev := c :: !ground_rev
         | (v0 : Expr.var) :: _ ->
           let r = find v0.Expr.var_id in
           (match Hashtbl.find_opt groups r with
            | Some slot -> slot := c :: !slot
            | None ->
              Hashtbl.add groups r (ref [ c ]);
              roots_rev := r :: !roots_rev))
      with_vars;
    let slices =
      List.rev_map (fun r -> List.rev !(Hashtbl.find groups r)) !roots_rev
    in
    match !ground_rev with
    | [] -> slices
    | ground -> slices @ [ List.rev ground ]
