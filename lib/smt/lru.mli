(** A bounded map with least-recently-used eviction.

    Backs the solver's query and counterexample caches so week-long
    campaigns cannot grow memory without limit: every [find] hit and
    every [put] marks the entry most-recently used, and a [put] that
    pushes the map past its capacity silently drops the least-recently
    used entry (counted in {!evictions}).

    Operations are O(1): a hash table maps keys to nodes of an
    intrusive doubly-linked recency list. *)

type ('k, 'v) t

val create : cap:int -> unit -> ('k, 'v) t
(** [cap <= 0] means unbounded. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit becomes the most-recently-used entry. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace; evicts the LRU entry when over capacity. *)

val length : ('k, 'v) t -> int

val capacity : ('k, 'v) t -> int

val set_capacity : ('k, 'v) t -> int -> unit
(** Shrink (evicting immediately) or grow the bound; [<= 0] unbounds. *)

val evictions : ('k, 'v) t -> int
(** Total entries evicted over the map's lifetime (monotone). *)

val clear : ('k, 'v) t -> unit
(** Drop every entry.  Does not count as eviction. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
