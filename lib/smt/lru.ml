type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* towards most-recent *)
  mutable next : ('k, 'v) node option;  (* towards least-recent *)
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most-recently used *)
  mutable tail : ('k, 'v) node option;  (* least-recently used *)
  mutable cap : int;
  mutable evicted : int;
}

let create ~cap () =
  { tbl = Hashtbl.create 256; head = None; tail = None; cap; evicted = 0 }

let length t = Hashtbl.length t.tbl
let capacity t = t.cap
let evictions t = t.evicted

let unlink t node =
  (match node.prev with
   | Some p -> p.next <- node.next
   | None -> t.head <- node.next);
  (match node.next with
   | Some nx -> nx.prev <- node.prev
   | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with
   | Some h -> h.prev <- Some node
   | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
    unlink t node;
    push_front t node

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some node ->
    touch t node;
    Some node.value

let evict_over_cap t =
  if t.cap > 0 then
    while Hashtbl.length t.tbl > t.cap do
      match t.tail with
      | None -> assert false (* length > 0 implies a tail *)
      | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        t.evicted <- t.evicted + 1
    done

let put t k v =
  (match Hashtbl.find_opt t.tbl k with
   | Some node ->
     node.value <- v;
     touch t node
   | None ->
     let node = { key = k; value = v; prev = None; next = None } in
     Hashtbl.add t.tbl k node;
     push_front t node);
  evict_over_cap t

let set_capacity t cap =
  t.cap <- cap;
  evict_over_cap t

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let iter f t = Hashtbl.iter (fun k node -> f k node.value) t.tbl
