(** Hash-consed symbolic expressions over booleans and bitvectors.

    Terms are maximally shared: structurally equal terms are physically
    equal, so [equal] is O(1) and terms can be used as hash-table keys via
    their [id].  All constructors are {e simplifying smart constructors}:
    they fold constants and apply a set of sound local rewrites, so the
    term returned may be structurally smaller than requested.

    A global instruction counter is incremented on every constructor
    call; the symbolic-execution engine reads it to report the
    "#Exec. Instr." statistic of the paper. *)

type sort = Bool | Bv of int

type binop =
  | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type t = private { id : int; sort : sort; node : node }

and node =
  | Bool_const of bool
  | Bv_const of Bv.t
  | Var of var
  | Not of t
  | Andb of t * t
  | Orb of t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Bnot of t
  | Bin of binop * t * t
  | Extract of int * int * t   (** [Extract (hi, lo, e)] *)
  | Concat of t * t            (** first operand is the high part *)
  | Zext of int * t            (** target width *)
  | Sext of int * t            (** target width *)

and var = { var_name : string; var_id : int; var_width : int }

val equal : t -> t -> bool
(** Physical equality (valid because terms are hash-consed). *)

val compare : t -> t -> int
(** Compares by [id]. *)

val hash : t -> int

val sort_of : t -> sort

val width : t -> int
(** Width of a bitvector term.  Raises [Invalid_argument] on Bool. *)

val is_bool : t -> bool

(* Instruction accounting. *)

val instruction_count : unit -> int
(** Number of smart-constructor invocations since [reset_instruction_count]. *)

val reset_instruction_count : unit -> unit
val add_instructions : int -> unit
(** Lets other layers (scheduler, TLM dispatch) account work as
    executed instructions. *)

val without_counting : (unit -> 'a) -> 'a
(** Run [f] with instruction accounting suspended.  Term construction
    performed by the solving machinery (feasibility probes, variational
    branch queries, scope mirroring) is exploration overhead, not DUV
    work — counting it would make the instruction total depend on which
    queries a particular exploration mode happens to issue. *)

(* Leaves. *)

val tru : t
val fls : t
val bool : bool -> t
val const : Bv.t -> t
val int : width:int -> int -> t
val fresh_var : string -> int -> t
(** [fresh_var name width] allocates a new symbolic variable.  Names need
    not be unique; the variable identity is the fresh [var_id]. *)

val vars : t -> var list
(** All distinct variables occurring in a term, in increasing [var_id]. *)

(* Boolean connectives. *)

val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val implies : t -> t -> t
val conj : t list -> t
val disj : t list -> t

(* Comparisons (operands must be bitvectors of equal width, except [eq]
   which also accepts two booleans). *)

val eq : t -> t -> t
val ne : t -> t -> t
val ult : t -> t -> t
val ule : t -> t -> t
val ugt : t -> t -> t
val uge : t -> t -> t
val slt : t -> t -> t
val sle : t -> t -> t
val sgt : t -> t -> t
val sge : t -> t -> t

(* Bitvector operations. *)

val ite : t -> t -> t -> t
(** [ite c a b]: [c] must be Bool, [a] and [b] must share a sort. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t
val neg : t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t
val extract : hi:int -> lo:int -> t -> t
val concat : t -> t -> t
val zext : int -> t -> t
(** [zext target_width e] zero-extends to [target_width] (which must be
    [>= width e]; equal width is the identity). *)

val sext : int -> t -> t

(* Inspection. *)

val to_bool : t -> bool option
(** [Some b] when the term is the boolean constant [b]. *)

val to_bv : t -> Bv.t option
(** [Some v] when the term is a bitvector constant. *)

val is_const : t -> bool

val eval : (var -> Bv.t) -> t -> Bv.t
(** Evaluate a bitvector term under an assignment.  Boolean terms
    evaluate to a 1-bit vector.  Raises [Not_found] (from the lookup
    function) on unassigned variables. *)

val eval_bool : (var -> Bv.t) -> t -> bool
(** Evaluate a boolean term under an assignment. *)

val size : t -> int
(** Number of distinct subterms (DAG size). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
