(** A CDCL SAT solver (conflict-driven clause learning).

    Features: two-watched-literal propagation, first-UIP conflict
    analysis with clause learning, VSIDS-style variable activities,
    phase saving, and Luby restarts.  The solver is self-contained and
    is the backend of {!Solver} after bit-blasting.

    Variables are positive integers allocated with {!new_var}.  Literals
    use the DIMACS convention: [v] for the positive literal of variable
    [v] and [-v] for its negation. *)

type t

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable; returns its index (starting at 1). *)

val num_vars : t -> int

val add_clause : t -> int list -> unit
(** Add a clause given as DIMACS literals.  Tautologies are dropped and
    duplicate literals removed.  Adding the empty clause (or a clause
    that is immediately falsified at level 0) makes the instance
    unsatisfiable.  Safe to call between incremental {!solve} calls:
    any standing decisions from a previous [Sat] answer are undone
    first. *)

type result = Sat | Unsat

val solve :
  ?assumptions:int list ->
  ?conflict_limit:int -> ?deadline:float -> ?stop:(unit -> bool) -> t -> result
(** Solve the current clause set, optionally under [assumptions] —
    DIMACS literals asserted as the first decisions (MiniSat-style).
    [Unsat] under a non-empty assumption set does {e not} poison the
    instance: a later call with different assumptions may answer [Sat].
    Only a conflict at decision level 0 (independent of any assumption)
    makes the instance permanently unsatisfiable.

    [conflict_limit] bounds the number of conflicts {e of this call}
    (default: unlimited); reaching it raises {!Resource_exhausted}.
    [deadline] is an absolute [Unix.gettimeofday] instant; the CDCL
    loop polls it at propagation boundaries and raises {!Timeout} once
    passed.  [stop] is polled at the same points and raises
    {!Interrupted} when it returns [true] (used for SIGINT-responsive
    solving).

    Learned clauses, VSIDS activities and saved phases persist across
    calls, so repeated queries over a shared clause set get cheaper —
    this is the substrate of {!Solver.Scope}. *)

exception Resource_exhausted
exception Timeout
exception Interrupted

val perturb : t -> int64 -> unit
(** Seed-derived jitter of the initial VSIDS activities and saved
    phases, so a retried query explores the search tree in a different
    order.  Used by {!Solver}'s retry-with-restart: a query that came
    back Unknown under one ordering may well resolve under another
    within the same budget.  Deterministic in the seed. *)

val value : t -> int -> bool
(** Model value of a variable after [solve] returned [Sat].  Unassigned
    variables (possible when they occur in no clause) read as [false]. *)

val stats_conflicts : t -> int
val stats_decisions : t -> int
val stats_propagations : t -> int
