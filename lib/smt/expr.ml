type sort = Bool | Bv of int

type binop =
  | Add | Sub | Mul | Udiv | Urem | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type cmpop = Eq | Ult | Ule | Slt | Sle

type t = { id : int; sort : sort; node : node }

and node =
  | Bool_const of bool
  | Bv_const of Bv.t
  | Var of var
  | Not of t
  | Andb of t * t
  | Orb of t * t
  | Cmp of cmpop * t * t
  | Ite of t * t * t
  | Bnot of t
  | Bin of binop * t * t
  | Extract of int * int * t
  | Concat of t * t
  | Zext of int * t
  | Sext of int * t

and var = { var_name : string; var_id : int; var_width : int }

let equal a b = a == b
let compare a b = Int.compare a.id b.id
let hash t = t.id
let sort_of t = t.sort

let width t =
  match t.sort with
  | Bv w -> w
  | Bool -> invalid_arg "Expr.width: boolean term"

let is_bool t = t.sort = Bool

(* Hash-consing: nodes are compared with children by physical equality,
   which is sound because children are themselves hash-consed. *)

module Node_key = struct
  type nonrec t = node

  let child_id t = t.id

  let equal a b =
    match a, b with
    | Bool_const x, Bool_const y -> x = y
    | Bv_const x, Bv_const y -> Bv.equal x y
    | Var x, Var y -> x.var_id = y.var_id
    | Not x, Not y -> x == y
    | Andb (a1, a2), Andb (b1, b2) | Orb (a1, a2), Orb (b1, b2)
    | Concat (a1, a2), Concat (b1, b2) ->
      a1 == b1 && a2 == b2
    | Cmp (o1, a1, a2), Cmp (o2, b1, b2) -> o1 = o2 && a1 == b1 && a2 == b2
    | Ite (c1, a1, a2), Ite (c2, b1, b2) -> c1 == c2 && a1 == b1 && a2 == b2
    | Bnot x, Bnot y -> x == y
    | Bin (o1, a1, a2), Bin (o2, b1, b2) -> o1 = o2 && a1 == b1 && a2 == b2
    | Extract (h1, l1, x), Extract (h2, l2, y) -> h1 = h2 && l1 = l2 && x == y
    | Zext (w1, x), Zext (w2, y) | Sext (w1, x), Sext (w2, y) ->
      w1 = w2 && x == y
    | ( Bool_const _ | Bv_const _ | Var _ | Not _ | Andb _ | Orb _ | Cmp _
      | Ite _ | Bnot _ | Bin _ | Extract _ | Concat _ | Zext _ | Sext _ ), _ ->
      false

  let hash = function
    | Bool_const b -> Hashtbl.hash (0, b)
    | Bv_const v -> Hashtbl.hash (1, Bv.hash v)
    | Var v -> Hashtbl.hash (2, v.var_id)
    | Not x -> Hashtbl.hash (3, child_id x)
    | Andb (a, b) -> Hashtbl.hash (4, child_id a, child_id b)
    | Orb (a, b) -> Hashtbl.hash (5, child_id a, child_id b)
    | Cmp (o, a, b) -> Hashtbl.hash (6, o, child_id a, child_id b)
    | Ite (c, a, b) -> Hashtbl.hash (7, child_id c, child_id a, child_id b)
    | Bnot x -> Hashtbl.hash (8, child_id x)
    | Bin (o, a, b) -> Hashtbl.hash (9, o, child_id a, child_id b)
    | Extract (hi, lo, x) -> Hashtbl.hash (10, hi, lo, child_id x)
    | Concat (a, b) -> Hashtbl.hash (11, child_id a, child_id b)
    | Zext (w, x) -> Hashtbl.hash (12, w, child_id x)
    | Sext (w, x) -> Hashtbl.hash (13, w, child_id x)
end

module Table = Hashtbl.Make (Node_key)

let table : t Table.t = Table.create 65_536
let next_id = ref 0
let instructions = ref 0

let instruction_count () = !instructions
let reset_instruction_count () = instructions := 0
let add_instructions n = instructions := !instructions + n

(* Term construction performed by the solving machinery (feasibility
   probes, negated query sides, scope mirroring) must not count as DUV
   instructions: whether those probes run depends on the exploration
   mode (live fork vs prescribed replay vs snapshot fast-forward), and
   instruction totals are required to be identical across modes. *)
let counting = ref true

let without_counting f =
  if not !counting then f ()
  else begin
    counting := false;
    Fun.protect ~finally:(fun () -> counting := true) f
  end

let mk sort node =
  match Table.find_opt table node with
  | Some t -> t
  | None ->
    let t = { id = !next_id; sort; node } in
    incr next_id;
    Table.add table node t;
    t

let tru = mk Bool (Bool_const true)
let fls = mk Bool (Bool_const false)
let bool b = if b then tru else fls
let const v = mk (Bv (Bv.width v)) (Bv_const v)
let int ~width v = const (Bv.of_int ~width v)

let next_var_id = ref 0

let fresh_var name w =
  let v = { var_name = name; var_id = !next_var_id; var_width = w } in
  incr next_var_id;
  mk (Bv w) (Var v)

let to_bool t =
  match t.node with Bool_const b -> Some b | _ -> None

let to_bv t =
  match t.node with Bv_const v -> Some v | _ -> None

let is_const t =
  match t.node with Bool_const _ | Bv_const _ -> true | _ -> false

let count () = if !counting then incr instructions

(* Canonical operand order for commutative operations: constants first,
   then by id.  Improves hash-consing hits and puts the constant in a
   predictable position for rewrites. *)
let commute a b =
  match a.node, b.node with
  | (Bv_const _ | Bool_const _), _ -> a, b
  | _, (Bv_const _ | Bool_const _) -> b, a
  | _ -> if a.id <= b.id then a, b else b, a

let rec not_ t =
  count ();
  match t.node with
  | Bool_const b -> bool (not b)
  | Not x -> x
  | Cmp (Ult, a, b) -> mk_cmp Ule b a
  | Cmp (Ule, a, b) -> mk_cmp Ult b a
  | Cmp (Slt, a, b) -> mk_cmp Sle b a
  | Cmp (Sle, a, b) -> mk_cmp Slt b a
  | Bv_const _ | Var _ | Andb _ | Orb _ | Cmp (Eq, _, _)
  | Ite _ | Bnot _ | Bin _ | Extract _ | Concat _ | Zext _ | Sext _ ->
    mk Bool (Not t)

and mk_cmp op a b =
  (* Internal: builds a comparison without instruction accounting;
     assumes operands already checked. *)
  match a.node, b.node with
  | Bv_const x, Bv_const y ->
    let r =
      match op with
      | Eq -> Bv.equal x y
      | Ult -> Bv.ult x y
      | Ule -> Bv.ule x y
      | Slt -> Bv.slt x y
      | Sle -> Bv.sle x y
    in
    bool r
  | _ ->
    if a == b then (
      match op with
      | Eq | Ule | Sle -> tru
      | Ult | Slt -> fls)
    else
      match op with
      | Eq ->
        let a, b = commute a b in
        mk Bool (Cmp (Eq, a, b))
      | Ult ->
        (* x < 0 is false; x < 1 is x = 0; ones < x is false; x < ones
           simplifications kept minimal. *)
        (match b.node with
         | Bv_const v when Bv.is_zero v -> fls
         | _ ->
           (match a.node with
            | Bv_const v when Bv.is_ones v -> fls
            | Bv_const v when Bv.is_zero v ->
              (* 0 < b  <=>  b <> 0 *)
              mk Bool (Not (mk_cmp Eq b (const (Bv.zero (width b)))))
            | _ -> mk Bool (Cmp (Ult, a, b))))
      | Ule ->
        (match a.node with
         | Bv_const v when Bv.is_zero v -> tru
         | _ ->
           (match b.node with
            | Bv_const v when Bv.is_ones v -> tru
            | Bv_const v when Bv.is_zero v ->
              mk_cmp Eq a (const (Bv.zero (width a)))
            | _ -> mk Bool (Cmp (Ule, a, b))))
      | Slt -> mk Bool (Cmp (Slt, a, b))
      | Sle -> mk Bool (Cmp (Sle, a, b))

let check_same_width name a b =
  match a.sort, b.sort with
  | Bv wa, Bv wb when wa = wb -> ()
  | _ -> invalid_arg ("Expr." ^ name ^ ": operand sorts differ")

let and_ a b =
  count ();
  match a.node, b.node with
  | Bool_const true, _ -> b
  | _, Bool_const true -> a
  | Bool_const false, _ | _, Bool_const false -> fls
  | _ ->
    if a == b then a
    else if (match a.node with Not x -> x == b | _ -> false) then fls
    else if (match b.node with Not x -> x == a | _ -> false) then fls
    else
      let a, b = commute a b in
      mk Bool (Andb (a, b))

let or_ a b =
  count ();
  match a.node, b.node with
  | Bool_const false, _ -> b
  | _, Bool_const false -> a
  | Bool_const true, _ | _, Bool_const true -> tru
  | _ ->
    if a == b then a
    else if (match a.node with Not x -> x == b | _ -> false) then tru
    else if (match b.node with Not x -> x == a | _ -> false) then tru
    else
      let a, b = commute a b in
      mk Bool (Orb (a, b))

let implies a b = or_ (not_ a) b
let conj l = List.fold_left and_ tru l
let disj l = List.fold_left or_ fls l

let eq a b =
  count ();
  (match a.sort, b.sort with
   | Bool, Bool -> ()
   | Bv wa, Bv wb when wa = wb -> ()
   | _ -> invalid_arg "Expr.eq: operand sorts differ");
  match a.node, b.node with
  | Bool_const x, Bool_const y -> bool (x = y)
  | Bool_const true, _ -> b
  | _, Bool_const true -> a
  | Bool_const false, _ -> not_ b
  | _, Bool_const false -> not_ a
  | _ -> mk_cmp Eq a b

let ne a b = not_ (eq a b)
let ult a b = count (); check_same_width "ult" a b; mk_cmp Ult a b
let ule a b = count (); check_same_width "ule" a b; mk_cmp Ule a b
let ugt a b = ult b a
let uge a b = ule b a
let slt a b = count (); check_same_width "slt" a b; mk_cmp Slt a b
let sle a b = count (); check_same_width "sle" a b; mk_cmp Sle a b
let sgt a b = slt b a
let sge a b = sle b a

let ite c a b =
  count ();
  if c.sort <> Bool then invalid_arg "Expr.ite: condition must be Bool";
  if a.sort <> b.sort then invalid_arg "Expr.ite: branch sorts differ";
  match c.node with
  | Bool_const true -> a
  | Bool_const false -> b
  | _ ->
    if a == b then a
    else
      match a.node, b.node with
      | Bool_const true, Bool_const false -> c
      | Bool_const false, Bool_const true -> not_ c
      | _ -> mk a.sort (Ite (c, a, b))

let bin_fold op x y =
  match op with
  | Add -> Bv.add x y
  | Sub -> Bv.sub x y
  | Mul -> Bv.mul x y
  | Udiv -> Bv.udiv x y
  | Urem -> Bv.urem x y
  | Sdiv -> Bv.sdiv x y
  | Srem -> Bv.srem x y
  | And -> Bv.logand x y
  | Or -> Bv.logor x y
  | Xor -> Bv.logxor x y
  | Shl -> Bv.shl x y
  | Lshr -> Bv.lshr x y
  | Ashr -> Bv.ashr x y

let mk_bin op a b = mk a.sort (Bin (op, a, b))

let add a b =
  count ();
  check_same_width "add" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.add x y)
  | Bv_const x, _ when Bv.is_zero x -> b
  | _, Bv_const y when Bv.is_zero y -> a
  | Bv_const x, Bin (Add, { node = Bv_const y; _ }, z) ->
    (* c1 + (c2 + z) --> (c1+c2) + z *)
    let c = const (Bv.add x y) in
    if Bv.is_zero (Bv.add x y) then z else mk_bin Add c z
  | _ ->
    let a, b = commute a b in
    mk_bin Add a b

let sub a b =
  count ();
  check_same_width "sub" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.sub x y)
  | _, Bv_const y when Bv.is_zero y -> a
  | _ ->
    if a == b then const (Bv.zero (width a)) else mk_bin Sub a b

let mul a b =
  count ();
  check_same_width "mul" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.mul x y)
  | Bv_const x, _ when Bv.is_zero x -> a
  | _, Bv_const y when Bv.is_zero y -> b
  | Bv_const x, _ when Bv.equal x (Bv.one (Bv.width x)) -> b
  | _, Bv_const y when Bv.equal y (Bv.one (Bv.width y)) -> a
  | _ ->
    let a, b = commute a b in
    mk_bin Mul a b

let div_like name op a b =
  count ();
  check_same_width name a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (bin_fold op x y)
  | _, Bv_const y when Bv.equal y (Bv.one (Bv.width y)) && (op = Udiv || op = Sdiv) -> a
  | _ -> mk_bin op a b

let udiv a b = div_like "udiv" Udiv a b
let urem a b = div_like "urem" Urem a b
let sdiv a b = div_like "sdiv" Sdiv a b
let srem a b = div_like "srem" Srem a b

let neg a =
  count ();
  match a.node with
  | Bv_const x -> const (Bv.neg x)
  | _ -> mk_bin Sub (const (Bv.zero (width a))) a

let band a b =
  count ();
  check_same_width "band" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.logand x y)
  | Bv_const x, _ when Bv.is_zero x -> a
  | _, Bv_const y when Bv.is_zero y -> b
  | Bv_const x, _ when Bv.is_ones x -> b
  | _, Bv_const y when Bv.is_ones y -> a
  | _ ->
    if a == b then a
    else
      let a, b = commute a b in
      mk_bin And a b

let bor a b =
  count ();
  check_same_width "bor" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.logor x y)
  | Bv_const x, _ when Bv.is_zero x -> b
  | _, Bv_const y when Bv.is_zero y -> a
  | Bv_const x, _ when Bv.is_ones x -> a
  | _, Bv_const y when Bv.is_ones y -> b
  | _ ->
    if a == b then a
    else
      let a, b = commute a b in
      mk_bin Or a b

let bxor a b =
  count ();
  check_same_width "bxor" a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.logxor x y)
  | Bv_const x, _ when Bv.is_zero x -> b
  | _, Bv_const y when Bv.is_zero y -> a
  | _ ->
    if a == b then const (Bv.zero (width a))
    else
      let a, b = commute a b in
      mk_bin Xor a b

let bnot a =
  count ();
  match a.node with
  | Bv_const x -> const (Bv.lognot x)
  | Bnot x -> x
  | _ -> mk a.sort (Bnot a)

let shift name op a b =
  count ();
  check_same_width name a b;
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (bin_fold op x y)
  | _, Bv_const y when Bv.is_zero y -> a
  | _, Bv_const y
    when (op = Shl || op = Lshr)
         && Int64.unsigned_compare (Bv.to_int64 y) (Int64.of_int (width a)) >= 0 ->
    const (Bv.zero (width a))
  | _ -> mk_bin op a b

let shl a b = shift "shl" Shl a b
let lshr a b = shift "lshr" Lshr a b
let ashr a b = shift "ashr" Ashr a b

let rec extract ~hi ~lo t =
  count ();
  let w = width t in
  if lo < 0 || hi < lo || hi >= w then invalid_arg "Expr.extract: bad range";
  if lo = 0 && hi = w - 1 then t
  else
    match t.node with
    | Bv_const v -> const (Bv.extract ~hi ~lo v)
    | Extract (_, lo', x) -> extract ~hi:(hi + lo') ~lo:(lo + lo') x
    | Zext (_, x) when hi < width x -> extract ~hi ~lo x
    | Zext (_, x) when lo >= width x ->
      const (Bv.zero (hi - lo + 1))
    | Concat (_, l) when hi < width l -> extract ~hi ~lo l
    | Concat (h, l) when lo >= width l ->
      extract ~hi:(hi - width l) ~lo:(lo - width l) h
    | _ -> mk (Bv (hi - lo + 1)) (Extract (hi, lo, t))

let concat a b =
  count ();
  let wa = width a and wb = width b in
  if wa + wb > 64 then invalid_arg "Expr.concat: combined width exceeds 64";
  match a.node, b.node with
  | Bv_const x, Bv_const y -> const (Bv.concat x y)
  | Bv_const x, _ when Bv.is_zero x -> mk (Bv (wa + wb)) (Zext (wa + wb, b))
  | _ -> mk (Bv (wa + wb)) (Concat (a, b))

let zext target t =
  count ();
  let w = width t in
  if target < w then invalid_arg "Expr.zext: target narrower than term";
  if target = w then t
  else
    match t.node with
    | Bv_const v -> const (Bv.zext (target - w) v)
    | Zext (_, x) -> mk (Bv target) (Zext (target, x))
    | _ -> mk (Bv target) (Zext (target, t))

let sext target t =
  count ();
  let w = width t in
  if target < w then invalid_arg "Expr.sext: target narrower than term";
  if target = w then t
  else
    match t.node with
    | Bv_const v -> const (Bv.sext (target - w) v)
    | _ -> mk (Bv target) (Sext (target, t))

let vars t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.node with
      | Var v -> acc := v :: !acc
      | Bool_const _ | Bv_const _ -> ()
      | Not x | Bnot x | Extract (_, _, x) | Zext (_, x) | Sext (_, x) -> go x
      | Andb (a, b) | Orb (a, b) | Cmp (_, a, b) | Bin (_, a, b)
      | Concat (a, b) ->
        go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go t;
  List.sort (fun a b -> Int.compare a.var_id b.var_id) !acc

let eval_memo lookup t =
  let memo : (int, Bv.t) Hashtbl.t = Hashtbl.create 64 in
  let bv_of_bool b = Bv.of_bool b in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some v -> v
    | None ->
      let v =
        match t.node with
        | Bool_const b -> bv_of_bool b
        | Bv_const v -> v
        | Var v -> lookup v
        | Not x -> bv_of_bool (Bv.is_zero (go x))
        | Andb (a, b) -> bv_of_bool (not (Bv.is_zero (go a)) && not (Bv.is_zero (go b)))
        | Orb (a, b) -> bv_of_bool (not (Bv.is_zero (go a)) || not (Bv.is_zero (go b)))
        | Cmp (op, a, b) ->
          let x = go a and y = go b in
          bv_of_bool
            (match op with
             | Eq -> Bv.equal x y
             | Ult -> Bv.ult x y
             | Ule -> Bv.ule x y
             | Slt -> Bv.slt x y
             | Sle -> Bv.sle x y)
        | Ite (c, a, b) -> if Bv.is_zero (go c) then go b else go a
        | Bnot x -> Bv.lognot (go x)
        | Bin (op, a, b) -> bin_fold op (go a) (go b)
        | Extract (hi, lo, x) -> Bv.extract ~hi ~lo (go x)
        | Concat (a, b) -> Bv.concat (go a) (go b)
        | Zext (w, x) -> let v = go x in Bv.zext (w - Bv.width v) v
        | Sext (w, x) -> let v = go x in Bv.sext (w - Bv.width v) v
      in
      Hashtbl.add memo t.id v;
      v
  in
  go t

let eval lookup t = eval_memo lookup t
let eval_bool lookup t = not (Bv.is_zero (eval_memo lookup t))

let size t =
  let seen = Hashtbl.create 64 in
  let n = ref 0 in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      incr n;
      match t.node with
      | Bool_const _ | Bv_const _ | Var _ -> ()
      | Not x | Bnot x | Extract (_, _, x) | Zext (_, x) | Sext (_, x) -> go x
      | Andb (a, b) | Orb (a, b) | Cmp (_, a, b) | Bin (_, a, b)
      | Concat (a, b) ->
        go a; go b
      | Ite (c, a, b) -> go c; go a; go b
    end
  in
  go t;
  !n

let binop_name = function
  | Add -> "bvadd" | Sub -> "bvsub" | Mul -> "bvmul"
  | Udiv -> "bvudiv" | Urem -> "bvurem" | Sdiv -> "bvsdiv" | Srem -> "bvsrem"
  | And -> "bvand" | Or -> "bvor" | Xor -> "bvxor"
  | Shl -> "bvshl" | Lshr -> "bvlshr" | Ashr -> "bvashr"

let cmpop_name = function
  | Eq -> "=" | Ult -> "bvult" | Ule -> "bvule" | Slt -> "bvslt" | Sle -> "bvsle"

let rec pp ppf t =
  match t.node with
  | Bool_const b -> Format.pp_print_bool ppf b
  | Bv_const v -> Bv.pp ppf v
  | Var v -> Format.fprintf ppf "%s!%d" v.var_name v.var_id
  | Not x -> Format.fprintf ppf "@[<hov 1>(not@ %a)@]" pp x
  | Andb (a, b) -> Format.fprintf ppf "@[<hov 1>(and@ %a@ %a)@]" pp a pp b
  | Orb (a, b) -> Format.fprintf ppf "@[<hov 1>(or@ %a@ %a)@]" pp a pp b
  | Cmp (op, a, b) ->
    Format.fprintf ppf "@[<hov 1>(%s@ %a@ %a)@]" (cmpop_name op) pp a pp b
  | Ite (c, a, b) ->
    Format.fprintf ppf "@[<hov 1>(ite@ %a@ %a@ %a)@]" pp c pp a pp b
  | Bnot x -> Format.fprintf ppf "@[<hov 1>(bvnot@ %a)@]" pp x
  | Bin (op, a, b) ->
    Format.fprintf ppf "@[<hov 1>(%s@ %a@ %a)@]" (binop_name op) pp a pp b
  | Extract (hi, lo, x) ->
    Format.fprintf ppf "@[<hov 1>((extract %d %d)@ %a)@]" hi lo pp x
  | Concat (a, b) -> Format.fprintf ppf "@[<hov 1>(concat@ %a@ %a)@]" pp a pp b
  | Zext (w, x) ->
    Format.fprintf ppf "@[<hov 1>((zext %d)@ %a)@]" (w - width x) pp x
  | Sext (w, x) ->
    Format.fprintf ppf "@[<hov 1>((sext %d)@ %a)@]" (w - width x) pp x

let to_string t = Format.asprintf "%a" pp t
