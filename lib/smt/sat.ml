(* Literal encoding: variable v (>= 1) maps to internal literals
   2*v (positive) and 2*v+1 (negative).  Internal arrays are indexed by
   variable or by internal literal. *)

exception Resource_exhausted
exception Timeout
exception Interrupted

type result = Sat | Unsat

(* Growable int-array vector used for watch lists. *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 4 0; len = 0 }

  let push t x =
    if t.len = Array.length t.data then begin
      let data = Array.make (2 * t.len) 0 in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1

  let clear t = t.len <- 0
end

type t = {
  mutable nvars : int;
  mutable clauses : int array array;   (* arena; index = clause id *)
  mutable nclauses : int;
  mutable watches : Ivec.t array;      (* per internal literal *)
  mutable assign : int array;          (* per var: -1 unassigned / 0 / 1 *)
  mutable level : int array;           (* per var *)
  mutable reason : int array;          (* per var: clause id or -1 *)
  mutable activity : float array;      (* per var *)
  mutable phase : bool array;          (* per var: saved polarity *)
  mutable trail : int array;           (* internal literals *)
  mutable trail_len : int;
  mutable trail_lim : int array;       (* decision-level boundaries *)
  mutable trail_lim_len : int;
  mutable qhead : int;
  mutable unsat : bool;
  mutable var_inc : float;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable seen : bool array;           (* scratch for conflict analysis *)
}

let create () =
  {
    nvars = 0;
    clauses = Array.make 64 [||];
    nclauses = 0;
    watches = Array.init 64 (fun _ -> Ivec.create ());
    assign = Array.make 16 (-1);
    level = Array.make 16 0;
    reason = Array.make 16 (-1);
    activity = Array.make 16 0.0;
    phase = Array.make 16 false;
    trail = Array.make 16 0;
    trail_len = 0;
    trail_lim = Array.make 16 0;
    trail_lim_len = 0;
    qhead = 0;
    unsat = false;
    var_inc = 1.0;
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    seen = Array.make 16 false;
  }

let grow_int_array a n default =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) default in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_float_array a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) 0.0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let grow_bool_array a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max n (2 * Array.length a)) false in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let new_var t =
  t.nvars <- t.nvars + 1;
  let v = t.nvars in
  let n = v + 1 in
  t.assign <- grow_int_array t.assign n (-1);
  t.level <- grow_int_array t.level n 0;
  t.reason <- grow_int_array t.reason n (-1);
  t.activity <- grow_float_array t.activity n;
  t.phase <- grow_bool_array t.phase n;
  t.trail <- grow_int_array t.trail n 0;
  t.trail_lim <- grow_int_array t.trail_lim n 0;
  t.seen <- grow_bool_array t.seen n;
  t.assign.(v) <- -1;
  t.reason.(v) <- -1;
  let nlits = 2 * n + 2 in
  if Array.length t.watches < nlits then begin
    let w = Array.make (max nlits (2 * Array.length t.watches)) (Ivec.create ()) in
    Array.blit t.watches 0 w 0 (Array.length t.watches);
    for i = Array.length t.watches to Array.length w - 1 do
      w.(i) <- Ivec.create ()
    done;
    t.watches <- w
  end;
  v

let num_vars t = t.nvars

(* Internal literal helpers. *)
let ilit_of_dimacs l = if l > 0 then 2 * l else 2 * (-l) + 1
let ilit_var l = l lsr 1
let ilit_sign l = l land 1 = 1 (* true = negated *)
let ilit_neg l = l lxor 1

(* Value of an internal literal: -1 unassigned, 0 false, 1 true. *)
let lit_value t l =
  let a = t.assign.(ilit_var l) in
  if a = -1 then -1 else if ilit_sign l then 1 - a else a

let decision_level t = t.trail_lim_len

let enqueue t l reason =
  let v = ilit_var l in
  t.assign.(v) <- (if ilit_sign l then 0 else 1);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.phase.(v) <- not (ilit_sign l);
  t.trail.(t.trail_len) <- l;
  t.trail_len <- t.trail_len + 1

let add_clause_internal t lits =
  let id = t.nclauses in
  if id = Array.length t.clauses then begin
    let c = Array.make (2 * id) [||] in
    Array.blit t.clauses 0 c 0 id;
    t.clauses <- c
  end;
  t.clauses.(id) <- lits;
  t.nclauses <- id + 1;
  if Array.length lits >= 2 then begin
    Ivec.push t.watches.(lits.(0)) id;
    Ivec.push t.watches.(lits.(1)) id
  end;
  id

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = t.trail_lim.(lvl) in
    for i = t.trail_len - 1 downto bound do
      let v = ilit_var t.trail.(i) in
      t.assign.(v) <- -1;
      t.reason.(v) <- -1
    done;
    t.trail_len <- bound;
    t.qhead <- bound;
    t.trail_lim_len <- lvl
  end

let add_clause t dimacs_lits =
  if not t.unsat then begin
    (* Incremental use leaves the trail populated after a [Sat] answer;
       the level-0 simplification below is only sound against the
       level-0 prefix, so drop any standing decisions first. *)
    if decision_level t > 0 then cancel_until t 0;
    (* Dedupe and detect tautologies. *)
    let lits = List.sort_uniq Int.compare (List.map ilit_of_dimacs dimacs_lits) in
    let taut = List.exists (fun l -> List.mem (ilit_neg l) lits) lits in
    if not taut then begin
      (* Drop literals already false at level 0; if any literal is true
         at level 0 the clause is satisfied. *)
      let satisfied =
        List.exists (fun l -> lit_value t l = 1 && t.level.(ilit_var l) = 0) lits
      in
      if not satisfied then begin
        let lits =
          List.filter
            (fun l -> not (lit_value t l = 0 && t.level.(ilit_var l) = 0))
            lits
        in
        match lits with
        | [] -> t.unsat <- true
        | [ l ] ->
          (match lit_value t l with
           | 1 -> ()
           | 0 -> t.unsat <- true
           | _ -> enqueue t l (-1))
        | _ -> ignore (add_clause_internal t (Array.of_list lits))
      end
    end
  end

(* Propagation with two watched literals; returns conflicting clause id
   or -1. *)
let propagate t =
  let conflict = ref (-1) in
  while !conflict = -1 && t.qhead < t.trail_len do
    let l = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let false_lit = ilit_neg l in
    (* Clauses watching false_lit must find a new watch. *)
    let ws = t.watches.(false_lit) in
    let old = Array.sub ws.Ivec.data 0 ws.Ivec.len in
    Ivec.clear ws;
    let n = Array.length old in
    let i = ref 0 in
    while !i < n do
      let cid = old.(!i) in
      incr i;
      if !conflict <> -1 then Ivec.push ws cid
      else begin
        let c = t.clauses.(cid) in
        (* Ensure c.(1) is the false literal. *)
        if c.(0) = false_lit then begin
          c.(0) <- c.(1);
          c.(1) <- false_lit
        end;
        if lit_value t c.(0) = 1 then Ivec.push ws cid
        else begin
          (* Search for a non-false literal to watch. *)
          let len = Array.length c in
          let found = ref false in
          let k = ref 2 in
          while (not !found) && !k < len do
            if lit_value t c.(!k) <> 0 then begin
              let tmp = c.(1) in
              c.(1) <- c.(!k);
              c.(!k) <- tmp;
              Ivec.push t.watches.(c.(1)) cid;
              found := true
            end;
            incr k
          done;
          if not !found then begin
            (* Unit or conflicting. *)
            Ivec.push ws cid;
            if lit_value t c.(0) = 0 then conflict := cid
            else if lit_value t c.(0) = -1 then enqueue t c.(0) cid
          end
        end
      end
    done
  done;
  !conflict

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 1 to t.nvars do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end

(* First-UIP conflict analysis.  Returns (learned clause, backjump
   level); learned.(0) is the asserting literal. *)
let analyze t conflict =
  let learned = ref [] in
  let counter = ref 0 in
  let p = ref (-1) in
  let cid = ref conflict in
  let idx = ref (t.trail_len - 1) in
  let btlevel = ref 0 in
  let continue = ref true in
  while !continue do
    let c = t.clauses.(!cid) in
    let start = if !p = -1 then 0 else 1 in
    for j = start to Array.length c - 1 do
      let q = c.(j) in
      let v = ilit_var q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        var_bump t v;
        if t.level.(v) = decision_level t then incr counter
        else begin
          learned := q :: !learned;
          if t.level.(v) > !btlevel then btlevel := t.level.(v)
        end
      end
    done;
    (* Select next literal from the trail at the current level. *)
    let continue_inner = ref true in
    while !continue_inner do
      let l = t.trail.(!idx) in
      decr idx;
      if t.seen.(ilit_var l) then begin
        p := l;
        continue_inner := false
      end
    done;
    t.seen.(ilit_var !p) <- false;
    decr counter;
    if !counter = 0 then continue := false
    else cid := t.reason.(ilit_var !p)
  done;
  let learned = Array.of_list (ilit_neg !p :: !learned) in
  (* Clear seen flags. *)
  Array.iter (fun l -> t.seen.(ilit_var l) <- false) learned;
  (* Keep the watched-literal invariant: position 1 must hold the
     literal assigned at the backjump level (the last to be undone). *)
  if Array.length learned > 2 then begin
    let best = ref 1 in
    for j = 2 to Array.length learned - 1 do
      if t.level.(ilit_var learned.(j)) > t.level.(ilit_var learned.(!best))
      then best := j
    done;
    let tmp = learned.(1) in
    learned.(1) <- learned.(!best);
    learned.(!best) <- tmp
  end;
  learned, !btlevel

let pick_branch_var t =
  let best = ref 0 and best_act = ref neg_infinity in
  for v = 1 to t.nvars do
    if t.assign.(v) = -1 && t.activity.(v) > !best_act then begin
      best := v;
      best_act := t.activity.(v)
    end
  done;
  !best

(* Luby restart sequence. *)
let rec luby i =
  (* Find k with 2^(k-1) <= i+1 < 2^k. *)
  let k = ref 1 in
  while (1 lsl !k) - 1 < i + 1 do incr k done;
  if (1 lsl !k) - 1 = i + 1 then 1 lsl (!k - 1)
  else luby (i + 1 - (1 lsl (!k - 1)))

let solve ?(assumptions = []) ?(conflict_limit = max_int) ?deadline ?stop t =
  if t.unsat then Unsat
  else begin
    (* Incremental discipline: every call starts from a clean trail
       (learned clauses, activities and phases persist across calls). *)
    cancel_until t 0;
    let assumps = Array.of_list (List.map ilit_of_dimacs assumptions) in
    let nassumps = Array.length assumps in
    (* [t.conflicts] is cumulative across calls; the limit bounds this
       call only. *)
    let conflicts0 = t.conflicts in
    let restart_base = 100 in
    let restart_num = ref 0 in
    let result = ref None in
    (* Deadline and external-stop polling happen at propagation
       boundaries (after each [propagate] fixpoint): once at the first
       boundary — so even a query that resolves in a handful of steps
       observes an already-expired deadline — then subsampled every 64
       steps so the clock read does not show up in the profile. *)
    let steps = ref 0 in
    let poll () =
      incr steps;
      if !steps land 63 = 1 then begin
        (match deadline with
         | Some d when Unix.gettimeofday () > d -> raise Timeout
         | Some _ | None -> ());
        match stop with
        | Some f when f () -> raise Interrupted
        | Some _ | None -> ()
      end
    in
    while !result = None do
      let budget = restart_base * luby !restart_num in
      incr restart_num;
      let local_conflicts = ref 0 in
      let restart = ref false in
      while !result = None && not !restart do
        let conflict = propagate t in
        poll ();
        if conflict <> -1 then begin
          t.conflicts <- t.conflicts + 1;
          incr local_conflicts;
          if t.conflicts - conflicts0 > conflict_limit then
            raise Resource_exhausted;
          if decision_level t = 0 then begin
            t.unsat <- true;
            result := Some Unsat
          end
          else if decision_level t <= nassumps then
            (* Every decision so far is an assumption, so the conflict
               is forced by the assumption set: unsat {e under
               assumptions}.  The instance itself stays usable — do NOT
               latch [t.unsat]. *)
            result := Some Unsat
          else begin
            let learned, btlevel = analyze t conflict in
            cancel_until t btlevel;
            if Array.length learned = 1 then enqueue t learned.(0) (-1)
            else begin
              let cid = add_clause_internal t learned in
              enqueue t learned.(0) cid
            end;
            t.var_inc <- t.var_inc /. 0.95;
            if !local_conflicts >= budget then restart := true
          end
        end
        else if decision_level t < nassumps then begin
          (* Assert the next assumption as a decision (MiniSat-style
             solving under assumptions).  An already-implied assumption
             still opens an (empty) decision level so level indices stay
             aligned with assumption indices; a falsified one means
             unsat under assumptions, again without latching
             [t.unsat]. *)
          let a = assumps.(decision_level t) in
          match lit_value t a with
          | 1 ->
            t.trail_lim.(t.trail_lim_len) <- t.trail_len;
            t.trail_lim_len <- t.trail_lim_len + 1
          | 0 -> result := Some Unsat
          | _ ->
            t.decisions <- t.decisions + 1;
            t.trail_lim.(t.trail_lim_len) <- t.trail_len;
            t.trail_lim_len <- t.trail_lim_len + 1;
            enqueue t a (-1)
        end
        else begin
          let v = pick_branch_var t in
          if v = 0 then result := Some Sat
          else begin
            t.decisions <- t.decisions + 1;
            t.trail_lim.(t.trail_lim_len) <- t.trail_len;
            t.trail_lim_len <- t.trail_lim_len + 1;
            let l = if t.phase.(v) then 2 * v else 2 * v + 1 in
            enqueue t l (-1)
          end
        end
      done;
      if !restart then cancel_until t 0
    done;
    (* On Unsat leave a clean trail for the next incremental call; on
       Sat keep the assignment so [value] can read the model. *)
    (match !result with Some Unsat -> cancel_until t 0 | _ -> ());
    match !result with Some r -> r | None -> assert false
  end

(* Seeded search perturbation for retry-with-restart: jitter the
   initial VSIDS activities and saved phases so a retried query walks a
   different part of the search tree.  Deterministic in [seed]; a
   no-op on variables already assigned at level 0. *)
let perturb t seed =
  let st = ref seed in
  let next () =
    let s = Int64.add !st 0x9E3779B97F4A7C15L in
    st := s;
    let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30))
              0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  for v = 1 to t.nvars do
    let r = next () in
    t.activity.(v) <-
      Int64.to_float (Int64.shift_right_logical r 11) /. 9007199254740992.0;
    t.phase.(v) <- Int64.logand r 1L = 1L
  done

let value t v =
  if v >= 1 && v <= t.nvars && t.assign.(v) = 1 then true else false

let stats_conflicts t = t.conflicts
let stats_decisions t = t.decisions
let stats_propagations t = t.propagations
