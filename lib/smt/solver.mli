(** Satisfiability checking for conjunctions of boolean terms.

    The solving pipeline mirrors KLEE + STP:
    + constant folding (terms are already simplified at construction);
    + independence slicing ({!Slice.partition}) — the constraint set is
      split into slices over disjoint variables and each slice is
      solved separately (KLEE's IndependentSolver); per-slice models
      are merged into the answer;
    + per-slice query cache — identical slices answer instantly, so an
      unchanged path-condition prefix stays cached when exploration
      appends constraints over other variables;
    + per-slice counterexample cache — recently found models, indexed
      by the variables they bind, are re-evaluated on the new slice,
      often yielding a model with no solving;
    + unsigned-interval propagation — proves simple range conflicts
      unsatisfiable and proposes candidate assignments;
    + eager bit-blasting to CNF + CDCL SAT solving (the STP approach).

    Wall-clock time spent in [check] is accumulated in {!Stats} — both
    the total and a per-stage breakdown (interval prescreen,
    bit-blasting, SAT search) — so the engine can report the
    solver-time fraction of Table 1 and where inside the solver it
    goes.  When the {!Obs.Sink} is enabled, every query emits a
    [solver/query] span, every slice a [solver/slice] span, plus
    per-stage spans. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string  (** resource limit reached *)

(** {1 Incremental solving scopes} *)

module Scope : sig
  type t
  (** A stack of assumption frames mirroring the engine's decision
      tree, backed by retained CDCL instances — one per variable family
      (keyed on the smallest [var_id] of each independence slice) —
      whose learned clauses, VSIDS activities, watch lists and variable
      numbering survive across pops.

      Constraints are never asserted directly: each one is encoded once
      behind a fresh {e guard} variable ([(-g \/ c)]) and a query
      enables its constraint set by solving under the assumption set of
      the guards.  Popping a frame just stops assuming its guards, so
      pops are free and learned clauses stay sound forever.  [assume]
      only records the constraint; encoding happens lazily at query
      time, so replaying a decision prefix (pool workers do this
      constantly) and cache-hit queries never touch the SAT solver. *)

  val create : unit -> t
  (** A fresh scope with no frames and no retained instances.  Each
      exploration context (the sequential engine, every forked pool
      worker) owns exactly one. *)

  val push : t -> unit
  (** Open a frame; counted in {!Stats.scope_pushes}. *)

  val assume : t -> Expr.t -> unit
  (** Record a constraint in the top frame (opens a root frame if none
      exists). *)

  val pop : t -> unit
  (** Discard the top frame; a no-op at the root.  Counted in
      {!Stats.scope_pops}. *)

  val pop_to_root : t -> unit
  (** Discard every frame — the engine's per-path reset point. *)

  val depth : t -> int
  (** Number of open frames. *)
end

val check :
  ?scope:Scope.t -> ?conflict_limit:int -> ?timeout_ms:int ->
  Expr.t list -> outcome
(** Satisfiability of the conjunction of the given boolean terms.
    On [Sat], the returned model satisfies every constraint (this is
    verified internally by evaluation).  [Unknown] is returned when any
    slice hits [conflict_limit], exceeds the per-query [timeout_ms]
    deadline (shared by all slices of the conjunction, polled during
    bit-blasting as well as at CDCL propagation boundaries), or is cut
    short by the {!set_interrupt_check} hook; an [Unsat] slice still
    settles the query as [Unsat] even if another slice was cut short.

    A SAT attempt that would answer Unknown is first retried up to
    {!set_retries} times with {!Sat.perturb}ed search order.  Every
    retry draws from the query's single [timeout_ms] deadline — the
    budget is a true per-query ceiling, not per-attempt — and a retry
    requested after the deadline passed is counted in
    {!Stats.sat_retries} but returns the Unknown immediately.
    Interrupts never retry.  With a {!Chaos} spec armed, the
    [solver-unknown] / [solver-stall] points inject Unknowns/timeouts
    at the same place, healed by the same retry loop.

    With [scope] (and incremental mode enabled, the default), slices
    that reach the SAT stage are solved on the scope's retained
    instances under guard assumptions instead of a scratch
    [Sat.create]; verdicts are identical either way — the caches and
    the interval prescreen run identically in both modes. *)

val check_pair :
  ?scope:Scope.t -> ?conflict_limit:int -> ?timeout_ms:int ->
  cond:Expr.t -> Expr.t list -> outcome * outcome
(** [check_pair ~cond pc] decides both children of a branch —
    [(pc /\ cond, pc /\ not cond)] — as one variational query: prefix
    slices disjoint from [cond]'s variables are solved once and their
    verdict shared, and only the variational remainder is solved per
    child (through the same per-slice caches as standalone checks, so
    either form hits the other's entries).  Each child is its own query
    unit: counted separately in {!Stats.queries}, and the false child
    gets a fresh [timeout_ms] budget rather than the true child's
    leftovers. *)

val set_retries : int -> unit
(** Bound the retry-with-restart loop (default 0: a first Unknown is
    final, the pre-retry behaviour).  Retries are counted in
    {!Stats.sat_retries}. *)

val is_sat : ?conflict_limit:int -> Expr.t list -> bool
(** [true] on [Sat]; [false] on [Unsat].  Raises [Failure] on
    [Unknown]. *)

val get_model : Expr.t list -> Model.t option
(** [Some model] on [Sat], [None] on [Unsat].  Raises on [Unknown]. *)

val clear_caches : unit -> unit
(** Drop the query and counterexample caches (useful for benchmarks).
    Does not count as eviction. *)

val set_cache_capacity : ?query:int -> ?cex:int -> unit -> unit
(** Bound the query cache (entries) and the counterexample index
    (variables tracked); [<= 0] unbounds.  Shrinking evicts
    immediately.  Defaults: 65536 query entries, 4096 cex variables.
    Caveat: with decision-prefix replay, a query-cache eviction inside
    one run can in principle change which model a re-issued [Sat] query
    returns; the default capacity is far above the working set of the
    bundled testbenches, and checkpoints record concretization values
    explicitly, so replay stays deterministic. *)

val cache_sizes : unit -> int * int
(** Current (query cache, cex index) entry counts. *)

val set_interrupt_check : (unit -> bool) -> unit
(** Install the hook polled by the CDCL loop at propagation boundaries;
    when it returns [true] the in-flight query unwinds and [check]
    returns [Unknown "interrupted"].  Used to make SIGINT responsive
    even during a long SAT call. *)

val set_caching : bool -> unit
(** Enable or disable both caches (enabled by default); used by the
    cache-ablation benchmark. *)

val set_independence : bool -> unit
(** Enable or disable independence slicing (enabled by default).  When
    disabled the whole constraint set is solved as a single slice, as
    before; results are identical either way, only cost differs.  Used
    by [--no-independence] and the independence-ablation benchmark. *)

val set_incremental : bool -> unit
(** Enable or disable incremental scope solving (enabled by default).
    When disabled, [check] with a [scope] falls back to the scratch
    bit-blast + fresh-[Sat.create] path; results are identical either
    way, only cost differs.  Used by [--no-incremental] and the
    incremental-ablation benchmark. *)

val incremental_enabled : unit -> bool
(** Current incremental-mode setting. *)

val outcome_to_string : outcome -> string
(** ["sat"], ["unsat"] or ["unknown"]. *)

module Stats : sig
  type t = {
    queries : int;            (** calls to [check] *)
    slices : int;             (** independent slices examined *)
    slice_hits : int;         (** slices answered by either cache *)
    cache_hits : int;         (** slices answered by the query cache *)
    cex_hits : int;           (** slices answered by the cex cache *)
    query_evictions : int;    (** LRU evictions from the query cache *)
    cex_evictions : int;      (** LRU evictions from the cex index *)
    interval_unsat : int;     (** proved unsat by interval propagation *)
    interval_sat : int;       (** model found from interval candidates *)
    sat_calls : int;          (** slices that reached the SAT solver *)
    sat_conflicts : int;      (** CDCL conflicts, summed over queries *)
    sat_decisions : int;      (** CDCL decisions, summed over queries *)
    sat_propagations : int;   (** unit propagations, summed over queries *)
    sat_timeouts : int;       (** SAT calls cut short by [timeout_ms] *)
    sat_retries : int;        (** Unknown answers retried with a
                                  perturbed search order (including
                                  retries denied for an exhausted
                                  deadline) *)
    scope_pushes : int;       (** scope frames opened *)
    scope_pops : int;         (** scope frames discarded *)
    scope_reused : int;       (** constraints whose encoding was reused
                                  from a retained instance *)
    scope_rebuilds : int;     (** retained instances dropped for
                                  outgrowing the guard cap *)
    time : float;             (** total seconds spent inside [check] *)
    interval_time : float;    (** seconds in the interval prescreen *)
    bitblast_time : float;    (** seconds bit-blasting to CNF *)
    sat_time : float;         (** seconds in the CDCL search *)
  }

  val zero : t
  val get : unit -> t
  val reset : unit -> unit

  val sub : t -> t -> t
  (** Component-wise difference — [sub after before] is the activity of
      one exploration run. *)

  val add : t -> t -> t
  (** Component-wise sum — folds a checkpointed segment's activity into
      the resumed run's. *)

  val cache_hit_rate : t -> float
  (** Fraction of slices answered by either cache, in [0, 1]. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs.Json.t
  val of_json : Obs.Json.t -> t
  (** Missing fields read as zero, so checkpoints stay loadable across
      counter additions. *)
end
