(** Satisfiability checking for conjunctions of boolean terms.

    The solving pipeline mirrors KLEE + STP:
    + constant folding (terms are already simplified at construction);
    + independence slicing ({!Slice.partition}) — the constraint set is
      split into slices over disjoint variables and each slice is
      solved separately (KLEE's IndependentSolver); per-slice models
      are merged into the answer;
    + per-slice query cache — identical slices answer instantly, so an
      unchanged path-condition prefix stays cached when exploration
      appends constraints over other variables;
    + per-slice counterexample cache — recently found models, indexed
      by the variables they bind, are re-evaluated on the new slice,
      often yielding a model with no solving;
    + unsigned-interval propagation — proves simple range conflicts
      unsatisfiable and proposes candidate assignments;
    + eager bit-blasting to CNF + CDCL SAT solving (the STP approach).

    Wall-clock time spent in [check] is accumulated in {!Stats} — both
    the total and a per-stage breakdown (interval prescreen,
    bit-blasting, SAT search) — so the engine can report the
    solver-time fraction of Table 1 and where inside the solver it
    goes.  When the {!Obs.Sink} is enabled, every query emits a
    [solver/query] span, every slice a [solver/slice] span, plus
    per-stage spans. *)

type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string  (** resource limit reached *)

val check : ?conflict_limit:int -> ?timeout_ms:int -> Expr.t list -> outcome
(** Satisfiability of the conjunction of the given boolean terms.
    On [Sat], the returned model satisfies every constraint (this is
    verified internally by evaluation).  [Unknown] is returned when any
    slice hits [conflict_limit], exceeds the per-query [timeout_ms]
    deadline (shared by all slices of the conjunction, polled during
    bit-blasting as well as at CDCL propagation boundaries), or is cut
    short by the {!set_interrupt_check} hook; an [Unsat] slice still
    settles the query as [Unsat] even if another slice was cut short.

    A SAT attempt that would answer Unknown is first retried up to
    {!set_retries} times with {!Sat.perturb}ed search order and — for
    timeouts — a fresh per-attempt deadline, so the worst case per
    query is [(retries + 1) * timeout_ms].  Interrupts never retry.
    With a {!Chaos} spec armed, the [solver-unknown] / [solver-stall]
    points inject Unknowns/timeouts at the same place, healed by the
    same retry loop. *)

val set_retries : int -> unit
(** Bound the retry-with-restart loop (default 0: a first Unknown is
    final, the pre-retry behaviour).  Retries are counted in
    {!Stats.sat_retries}. *)

val is_sat : ?conflict_limit:int -> Expr.t list -> bool
(** [true] on [Sat]; [false] on [Unsat].  Raises [Failure] on
    [Unknown]. *)

val get_model : Expr.t list -> Model.t option
(** [Some model] on [Sat], [None] on [Unsat].  Raises on [Unknown]. *)

val clear_caches : unit -> unit
(** Drop the query and counterexample caches (useful for benchmarks).
    Does not count as eviction. *)

val set_cache_capacity : ?query:int -> ?cex:int -> unit -> unit
(** Bound the query cache (entries) and the counterexample index
    (variables tracked); [<= 0] unbounds.  Shrinking evicts
    immediately.  Defaults: 65536 query entries, 4096 cex variables.
    Caveat: with decision-prefix replay, a query-cache eviction inside
    one run can in principle change which model a re-issued [Sat] query
    returns; the default capacity is far above the working set of the
    bundled testbenches, and checkpoints record concretization values
    explicitly, so replay stays deterministic. *)

val cache_sizes : unit -> int * int
(** Current (query cache, cex index) entry counts. *)

val set_interrupt_check : (unit -> bool) -> unit
(** Install the hook polled by the CDCL loop at propagation boundaries;
    when it returns [true] the in-flight query unwinds and [check]
    returns [Unknown "interrupted"].  Used to make SIGINT responsive
    even during a long SAT call. *)

val set_caching : bool -> unit
(** Enable or disable both caches (enabled by default); used by the
    cache-ablation benchmark. *)

val set_independence : bool -> unit
(** Enable or disable independence slicing (enabled by default).  When
    disabled the whole constraint set is solved as a single slice, as
    before; results are identical either way, only cost differs.  Used
    by [--no-independence] and the independence-ablation benchmark. *)

val outcome_to_string : outcome -> string
(** ["sat"], ["unsat"] or ["unknown"]. *)

module Stats : sig
  type t = {
    queries : int;            (** calls to [check] *)
    slices : int;             (** independent slices examined *)
    slice_hits : int;         (** slices answered by either cache *)
    cache_hits : int;         (** slices answered by the query cache *)
    cex_hits : int;           (** slices answered by the cex cache *)
    query_evictions : int;    (** LRU evictions from the query cache *)
    cex_evictions : int;      (** LRU evictions from the cex index *)
    interval_unsat : int;     (** proved unsat by interval propagation *)
    interval_sat : int;       (** model found from interval candidates *)
    sat_calls : int;          (** slices that reached the SAT solver *)
    sat_conflicts : int;      (** CDCL conflicts, summed over queries *)
    sat_decisions : int;      (** CDCL decisions, summed over queries *)
    sat_propagations : int;   (** unit propagations, summed over queries *)
    sat_timeouts : int;       (** SAT calls cut short by [timeout_ms] *)
    sat_retries : int;        (** Unknown answers retried with a
                                  perturbed search order *)
    time : float;             (** total seconds spent inside [check] *)
    interval_time : float;    (** seconds in the interval prescreen *)
    bitblast_time : float;    (** seconds bit-blasting to CNF *)
    sat_time : float;         (** seconds in the CDCL search *)
  }

  val zero : t
  val get : unit -> t
  val reset : unit -> unit

  val sub : t -> t -> t
  (** Component-wise difference — [sub after before] is the activity of
      one exploration run. *)

  val add : t -> t -> t
  (** Component-wise sum — folds a checkpointed segment's activity into
      the resumed run's. *)

  val cache_hit_rate : t -> float
  (** Fraction of slices answered by either cache, in [0, 1]. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs.Json.t
  val of_json : Obs.Json.t -> t
  (** Missing fields read as zero, so checkpoints stay loadable across
      counter additions. *)
end
