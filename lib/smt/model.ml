module Int_map = Map.Make (Int)

type t = (Expr.var * Bv.t) Int_map.t

let empty = Int_map.empty
let add (v : Expr.var) bv t = Int_map.add v.Expr.var_id (v, bv) t

let find t (v : Expr.var) =
  match Int_map.find_opt v.Expr.var_id t with
  | Some (_, bv) -> bv
  | None -> Bv.zero v.Expr.var_width

let find_opt t (v : Expr.var) =
  Option.map snd (Int_map.find_opt v.Expr.var_id t)

let bindings t = List.map snd (Int_map.bindings t)

let of_fun vars f =
  List.fold_left (fun m v -> add v (f v) m) empty vars

let union a b = Int_map.union (fun _ binding _ -> Some binding) a b

let eval t e = Expr.eval (find t) e
let eval_bool t e = Expr.eval_bool (find t) e
let satisfies t constraints = List.for_all (eval_bool t) constraints

let pp ppf t =
  let pp_binding ppf ((v : Expr.var), bv) =
    Format.fprintf ppf "%s!%d = %a" v.Expr.var_name v.Expr.var_id Bv.pp bv
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_binding)
    (bindings t)

let to_string t = Format.asprintf "%a" pp t
