(** Constraint-independence partitioning (KLEE's IndependentSolver).

    A constraint set rarely needs to be solved as a whole: constraints
    over disjoint variable sets cannot influence each other, so the set
    splits into {e independent slices} — the connected components of
    the graph whose nodes are constraints and whose edges are shared
    variables.  {!Solver.check} solves each slice separately, keys its
    caches per slice, and merges the per-slice models; an unchanged
    path-condition prefix then stays cached when exploration appends a
    constraint over fresh variables, which is the common case. *)

val partition : Expr.t list -> Expr.t list list
(** Partition a constraint list into independent slices.  Two
    constraints land in the same slice iff they transitively share a
    variable.  The result is deterministic: constraints keep their
    input order within a slice, and slices are ordered by the position
    of their first constraint.  Variable-free constraints (which only
    arise for callers that bypass the simplifier's constant folding)
    are grouped into one trailing slice of their own.

    The union of the slices is exactly the input, so solving every
    slice is equisatisfiable with solving the input, and — because the
    variable sets are pairwise disjoint — the union of per-slice models
    satisfies the whole set. *)

val vars : Expr.t list -> Expr.var list
(** All distinct variables of a constraint list, in increasing
    [var_id] order. *)
