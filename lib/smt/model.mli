(** Satisfying assignments (counterexamples).

    A model maps symbolic variables to concrete bitvector values.
    Variables absent from the model are unconstrained and read as zero,
    matching KLEE's convention for counterexample replay. *)

type t

val empty : t
val add : Expr.var -> Bv.t -> t -> t
val find : t -> Expr.var -> Bv.t
(** Value of a variable; zero of the variable's width when unbound. *)

val find_opt : t -> Expr.var -> Bv.t option
val bindings : t -> (Expr.var * Bv.t) list
(** In increasing [var_id] order. *)

val of_fun : Expr.var list -> (Expr.var -> Bv.t) -> t

val union : t -> t -> t
(** [union a b] merges two models; on a variable bound by both, [a]
    wins.  Used by {!Solver} to combine the models of independent
    constraint slices (whose variable sets are disjoint, so the choice
    of winner never matters there). *)

val eval : t -> Expr.t -> Bv.t
(** Evaluate a bitvector term under the model. *)

val eval_bool : t -> Expr.t -> bool
(** Evaluate a boolean term under the model. *)

val satisfies : t -> Expr.t list -> bool
(** Whether the model satisfies every constraint in the list. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
