(** Eager bit-blasting of bitvector terms to CNF (Tseitin encoding).

    Every bitvector term is translated to a vector of SAT literals
    (LSB first); boolean terms translate to a single literal.
    Translation is memoized per context, so shared subterms are encoded
    once — the natural consequence of hash-consed input terms. *)

type ctx

val create : ?deadline:float -> ?stop:(unit -> bool) -> Sat.t -> ctx
(** [deadline] (absolute [Unix.gettimeofday] instant) and [stop] are
    polled during translation — subsampled at term-node boundaries — and
    raise {!Sat.Timeout} / {!Sat.Interrupted} respectively, so encoding
    a huge term respects the same per-query budget as the CDCL search
    that follows it. *)

val set_deadline : ctx -> float option -> unit
(** Replace the deadline polled during translation.  A context kept
    alive across queries ({!Solver.Scope}) gets a fresh per-query
    budget each time. *)

val set_stop : ctx -> (unit -> bool) option -> unit
(** Replace the external-stop predicate polled during translation. *)

val assert_true : ctx -> Expr.t -> unit
(** Assert a boolean term as a top-level constraint. *)

val literal : ctx -> Expr.t -> int
(** The (memoized) Tseitin literal of a boolean term {e without}
    asserting it.  {!Solver.Scope} guards each path constraint with a
    clause [(-guard \/ literal)] and enables it per-query by assuming
    [guard], so popped constraints cost nothing and learned clauses
    stay sound forever. *)

val var_bits : ctx -> Expr.var -> int array option
(** SAT literals allocated for a symbolic variable, if it was
    encountered during translation.  Used for model extraction. *)

val extract_model : ctx -> Expr.var list -> Model.t
(** Read back a model after the SAT solver answered Sat.  Variables
    never translated are unconstrained and read as zero. *)
