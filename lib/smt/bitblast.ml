(* Literals are DIMACS-style ints (v / -v); [neg] is unary minus. *)

type repr = Lit of int | Bits of int array

type ctx = {
  sat : Sat.t;
  memo : (int, repr) Hashtbl.t;        (* Expr.id -> repr *)
  vars : (int, int array) Hashtbl.t;   (* var_id -> bit literals *)
  mutable true_lit : int;              (* literal asserted true, 0 if none *)
  mutable deadline : float option;     (* per-query; mutable for reuse *)
  mutable stop : (unit -> bool) option;
  mutable steps : int;                 (* poll subsampling counter *)
}

let create ?deadline ?stop sat =
  { sat; memo = Hashtbl.create 1024; vars = Hashtbl.create 64; true_lit = 0;
    deadline; stop; steps = 0 }

(* A context retained across queries (Solver.Scope) carries a different
   budget each time. *)
let set_deadline ctx d = ctx.deadline <- d
let set_stop ctx f = ctx.stop <- f

(* Encoding a huge term must not blow far past the per-query deadline
   before the CDCL loop ever gets to poll it, so translation polls the
   same deadline/stop pair at node boundaries (subsampled: a node may
   expand to hundreds of gates, so every node would be too often and
   every translate call of a deep term too rare). *)
let poll ctx =
  match ctx.deadline, ctx.stop with
  | None, None -> ()
  | deadline, stop ->
    ctx.steps <- ctx.steps + 1;
    if ctx.steps land 63 = 1 then begin
      (match deadline with
       | Some d when Unix.gettimeofday () > d -> raise Sat.Timeout
       | Some _ | None -> ());
      match stop with
      | Some f when f () -> raise Sat.Interrupted
      | Some _ | None -> ()
    end

let fresh ctx = Sat.new_var ctx.sat

let lit_true ctx =
  if ctx.true_lit = 0 then begin
    let v = fresh ctx in
    Sat.add_clause ctx.sat [ v ];
    ctx.true_lit <- v
  end;
  ctx.true_lit

let lit_false ctx = -lit_true ctx

let lit_of_bool ctx b = if b then lit_true ctx else lit_false ctx

(* Tseitin gates.  Each returns a literal equivalent to the gate. *)

let gate_and ctx a b =
  if a = b then a
  else if a = -b then lit_false ctx
  else begin
    let g = fresh ctx in
    Sat.add_clause ctx.sat [ -g; a ];
    Sat.add_clause ctx.sat [ -g; b ];
    Sat.add_clause ctx.sat [ -a; -b; g ];
    g
  end

let gate_or ctx a b = -gate_and ctx (-a) (-b)

let gate_xor ctx a b =
  if a = b then lit_false ctx
  else if a = -b then lit_true ctx
  else begin
    let g = fresh ctx in
    Sat.add_clause ctx.sat [ -g; a; b ];
    Sat.add_clause ctx.sat [ -g; -a; -b ];
    Sat.add_clause ctx.sat [ g; -a; b ];
    Sat.add_clause ctx.sat [ g; a; -b ];
    g
  end

let gate_iff ctx a b = -gate_xor ctx a b

(* g = if c then a else b *)
let gate_ite ctx c a b =
  if a = b then a
  else begin
    let g = fresh ctx in
    Sat.add_clause ctx.sat [ -c; -a; g ];
    Sat.add_clause ctx.sat [ -c; a; -g ];
    Sat.add_clause ctx.sat [ c; -b; g ];
    Sat.add_clause ctx.sat [ c; b; -g ];
    g
  end

(* Majority (carry-out of a full adder). *)
let gate_maj ctx a b c =
  gate_or ctx (gate_and ctx a b) (gate_or ctx (gate_and ctx a c) (gate_and ctx b c))

let full_adder ctx a b cin =
  let s = gate_xor ctx (gate_xor ctx a b) cin in
  let cout = gate_maj ctx a b cin in
  s, cout

let adder ctx ?(cin : int option) a b =
  let w = Array.length a in
  let s = Array.make w 0 in
  let carry = ref (match cin with Some c -> c | None -> lit_false ctx) in
  for i = 0 to w - 1 do
    let si, c = full_adder ctx a.(i) b.(i) !carry in
    s.(i) <- si;
    carry := c
  done;
  s, !carry

let negate_bits ctx a =
  (* two's complement: ~a + 1 *)
  let w = Array.length a in
  let nota = Array.map (fun l -> -l) a in
  let one = Array.init w (fun i -> lit_of_bool ctx (i = 0)) in
  fst (adder ctx nota one)

let subtract ctx a b =
  (* a - b = a + ~b + 1; borrow-out complement of carry *)
  let notb = Array.map (fun l -> -l) b in
  let s, carry = adder ctx ~cin:(lit_true ctx) a notb in
  s, carry (* carry = 1 means no borrow, i.e. a >= b (unsigned) *)

(* a < b (unsigned): borrow of a - b. *)
let ult_lit ctx a b =
  let _, carry = subtract ctx a b in
  -carry

let eq_lit ctx a b =
  let w = Array.length a in
  let acc = ref (lit_true ctx) in
  for i = 0 to w - 1 do
    acc := gate_and ctx !acc (gate_iff ctx a.(i) b.(i))
  done;
  !acc

let slt_lit ctx a b =
  (* Flip the sign bits, then compare unsigned. *)
  let w = Array.length a in
  let a' = Array.copy a and b' = Array.copy b in
  a'.(w - 1) <- -a.(w - 1);
  b'.(w - 1) <- -b.(w - 1);
  ult_lit ctx a' b'

let mux_bits ctx c a b = Array.init (Array.length a) (fun i -> gate_ite ctx c a.(i) b.(i))

(* Barrel shifter.  [shifted dir fill bits k] shifts by 2^k. *)
let shifted dir fill bits k =
  let w = Array.length bits in
  let n = 1 lsl k in
  Array.init w (fun i ->
      match dir with
      | `Left -> if i < n then fill else bits.(i - n)
      | `Right -> if i + n >= w then fill else bits.(i + n))

let barrel_shift ctx dir a amount ~fill =
  let w = Array.length a in
  let stages = ref a in
  let log2w =
    let rec go k = if 1 lsl k >= w then k else go (k + 1) in
    go 0
  in
  for k = 0 to log2w - 1 do
    let moved = shifted dir fill !stages k in
    stages := mux_bits ctx amount.(k) moved !stages
  done;
  (* If any amount bit >= log2w is set the result saturates to fill. *)
  let big = ref (lit_false ctx) in
  for i = log2w to Array.length amount - 1 do
    big := gate_or ctx !big amount.(i)
  done;
  (* Shift amounts between w and 2^log2w - 1 (when w is not a power of
     two) also saturate; check amount >= w explicitly. *)
  let exceeds =
    if 1 lsl log2w = w then !big
    else begin
      let wconst = Array.init (Array.length amount)
          (fun i -> lit_of_bool ctx ((w lsr i) land 1 = 1))
      in
      let ge_w = -(ult_lit ctx amount wconst) in
      gate_or ctx !big ge_w
    end
  in
  let fills = Array.make w fill in
  mux_bits ctx exceeds fills !stages

let multiply ctx a b =
  let w = Array.length a in
  let acc = ref (Array.make w (lit_false ctx)) in
  for i = 0 to w - 1 do
    (* partial = (a << i) AND b_i, added into acc *)
    let partial =
      Array.init w (fun j ->
          if j < i then lit_false ctx else gate_and ctx a.(j - i) b.(i))
    in
    acc := fst (adder ctx !acc partial)
  done;
  !acc

(* Restoring division: returns (quotient, remainder) with the SMT-LIB
   division-by-zero convention applied by the caller. *)
let divide ctx a b =
  let w = Array.length a in
  let q = Array.make w 0 in
  (* Remainder register, w+1 bits to absorb the shift. *)
  let r = ref (Array.make (w + 1) (lit_false ctx)) in
  let b_ext = Array.init (w + 1) (fun i -> if i < w then b.(i) else lit_false ctx) in
  for i = w - 1 downto 0 do
    (* r = (r << 1) | a_i *)
    let shifted = Array.init (w + 1) (fun j -> if j = 0 then a.(i) else !r.(j - 1)) in
    let diff, no_borrow = subtract ctx shifted b_ext in
    q.(i) <- no_borrow;
    r := mux_bits ctx no_borrow diff shifted
  done;
  let rem = Array.sub !r 0 w in
  q, rem

let rec translate ctx (e : Expr.t) : repr =
  match Hashtbl.find_opt ctx.memo e.Expr.id with
  | Some r -> r
  | None ->
    poll ctx;
    let r = translate_uncached ctx e in
    Hashtbl.add ctx.memo e.Expr.id r;
    r

and bool_lit ctx e =
  match translate ctx e with
  | Lit l -> l
  | Bits _ -> invalid_arg "Bitblast: expected boolean term"

and bv_bits ctx e =
  match translate ctx e with
  | Bits b -> b
  | Lit _ -> invalid_arg "Bitblast: expected bitvector term"

and translate_uncached ctx (e : Expr.t) : repr =
  match e.Expr.node with
  | Expr.Bool_const b -> Lit (lit_of_bool ctx b)
  | Expr.Bv_const v ->
    let w = Bv.width v in
    Bits (Array.init w (fun i -> lit_of_bool ctx (Bv.bit v i)))
  | Expr.Var v ->
    let bits =
      match Hashtbl.find_opt ctx.vars v.Expr.var_id with
      | Some bits -> bits
      | None ->
        let bits = Array.init v.Expr.var_width (fun _ -> fresh ctx) in
        Hashtbl.add ctx.vars v.Expr.var_id bits;
        bits
    in
    Bits bits
  | Expr.Not x -> Lit (-bool_lit ctx x)
  | Expr.Andb (a, b) -> Lit (gate_and ctx (bool_lit ctx a) (bool_lit ctx b))
  | Expr.Orb (a, b) -> Lit (gate_or ctx (bool_lit ctx a) (bool_lit ctx b))
  | Expr.Cmp (op, a, b) ->
    (match a.Expr.sort with
     | Expr.Bool ->
       (* Only Eq is constructed on booleans. *)
       Lit (gate_iff ctx (bool_lit ctx a) (bool_lit ctx b))
     | Expr.Bv _ ->
       let ba = bv_bits ctx a and bb = bv_bits ctx b in
       let l =
         match op with
         | Expr.Eq -> eq_lit ctx ba bb
         | Expr.Ult -> ult_lit ctx ba bb
         | Expr.Ule -> -ult_lit ctx bb ba
         | Expr.Slt -> slt_lit ctx ba bb
         | Expr.Sle -> -slt_lit ctx bb ba
       in
       Lit l)
  | Expr.Ite (c, a, b) ->
    let lc = bool_lit ctx c in
    (match a.Expr.sort with
     | Expr.Bool -> Lit (gate_ite ctx lc (bool_lit ctx a) (bool_lit ctx b))
     | Expr.Bv _ -> Bits (mux_bits ctx lc (bv_bits ctx a) (bv_bits ctx b)))
  | Expr.Bnot x -> Bits (Array.map (fun l -> -l) (bv_bits ctx x))
  | Expr.Bin (op, a, b) ->
    let ba = bv_bits ctx a and bb = bv_bits ctx b in
    let bits =
      match op with
      | Expr.Add -> fst (adder ctx ba bb)
      | Expr.Sub -> fst (subtract ctx ba bb)
      | Expr.Mul -> multiply ctx ba bb
      | Expr.And -> Array.init (Array.length ba) (fun i -> gate_and ctx ba.(i) bb.(i))
      | Expr.Or -> Array.init (Array.length ba) (fun i -> gate_or ctx ba.(i) bb.(i))
      | Expr.Xor -> Array.init (Array.length ba) (fun i -> gate_xor ctx ba.(i) bb.(i))
      | Expr.Shl -> barrel_shift ctx `Left ba bb ~fill:(lit_false ctx)
      | Expr.Lshr -> barrel_shift ctx `Right ba bb ~fill:(lit_false ctx)
      | Expr.Ashr ->
        let w = Array.length ba in
        barrel_shift ctx `Right ba bb ~fill:ba.(w - 1)
      | Expr.Udiv | Expr.Urem ->
        let q, r = divide ctx ba bb in
        let bzero =
          eq_lit ctx bb (Array.make (Array.length bb) (lit_false ctx))
        in
        (match op with
         | Expr.Udiv ->
           let ones = Array.make (Array.length ba) (lit_true ctx) in
           mux_bits ctx bzero ones q
         | Expr.Urem -> mux_bits ctx bzero ba r
         | _ -> assert false)
      | Expr.Sdiv | Expr.Srem ->
        let w = Array.length ba in
        let sa = ba.(w - 1) and sb = bb.(w - 1) in
        let ma = mux_bits ctx sa (negate_bits ctx ba) ba in
        let mb = mux_bits ctx sb (negate_bits ctx bb) bb in
        let q, r = divide ctx ma mb in
        let bzero = eq_lit ctx bb (Array.make w (lit_false ctx)) in
        (match op with
         | Expr.Sdiv ->
           let qsign = gate_xor ctx sa sb in
           let q' = mux_bits ctx qsign (negate_bits ctx q) q in
           (* Division by zero: 1 when dividend negative, ones otherwise. *)
           let ones = Array.make w (lit_true ctx) in
           let one = Array.init w (fun i -> lit_of_bool ctx (i = 0)) in
           let dz = mux_bits ctx sa one ones in
           mux_bits ctx bzero dz q'
         | Expr.Srem ->
           let r' = mux_bits ctx sa (negate_bits ctx r) r in
           mux_bits ctx bzero ba r'
         | _ -> assert false)
    in
    Bits bits
  | Expr.Extract (hi, lo, x) ->
    let bx = bv_bits ctx x in
    Bits (Array.sub bx lo (hi - lo + 1))
  | Expr.Concat (a, b) ->
    let ba = bv_bits ctx a and bb = bv_bits ctx b in
    Bits (Array.append bb ba)
  | Expr.Zext (w, x) ->
    let bx = bv_bits ctx x in
    Bits (Array.init w (fun i -> if i < Array.length bx then bx.(i) else lit_false ctx))
  | Expr.Sext (w, x) ->
    let bx = bv_bits ctx x in
    let n = Array.length bx in
    Bits (Array.init w (fun i -> if i < n then bx.(i) else bx.(n - 1)))

let assert_true ctx e = Sat.add_clause ctx.sat [ bool_lit ctx e ]

(* The Tseitin literal of a boolean term, without asserting it — used by
   Solver.Scope to tie a constraint to a guard variable so it can be
   enabled per-query via assumptions. *)
let literal ctx e = bool_lit ctx e

let var_bits ctx (v : Expr.var) = Hashtbl.find_opt ctx.vars v.Expr.var_id

let extract_model ctx vars =
  List.fold_left
    (fun m (v : Expr.var) ->
       match var_bits ctx v with
       | None -> Model.add v (Bv.zero v.Expr.var_width) m
       | Some bits ->
         let value = ref 0L in
         Array.iteri
           (fun i l ->
              if l <> 0 && Sat.value ctx.sat (abs l) = (l > 0) then
                value := Int64.logor !value (Int64.shift_left 1L i))
           bits;
         Model.add v (Bv.make ~width:v.Expr.var_width !value) m)
    Model.empty vars
