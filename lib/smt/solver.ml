type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

module Stats = struct
  type t = {
    queries : int;
    slices : int;
    slice_hits : int;
    cache_hits : int;
    cex_hits : int;
    query_evictions : int;
    cex_evictions : int;
    interval_unsat : int;
    interval_sat : int;
    sat_calls : int;
    sat_conflicts : int;
    sat_decisions : int;
    sat_propagations : int;
    sat_timeouts : int;
    sat_retries : int;
    scope_pushes : int;
    scope_pops : int;
    scope_reused : int;
    scope_rebuilds : int;
    time : float;
    interval_time : float;
    bitblast_time : float;
    sat_time : float;
  }

  let zero =
    { queries = 0; slices = 0; slice_hits = 0; cache_hits = 0; cex_hits = 0;
      query_evictions = 0; cex_evictions = 0;
      interval_unsat = 0; interval_sat = 0; sat_calls = 0; sat_conflicts = 0;
      sat_decisions = 0; sat_propagations = 0; sat_timeouts = 0;
      sat_retries = 0;
      scope_pushes = 0; scope_pops = 0; scope_reused = 0; scope_rebuilds = 0;
      time = 0.0;
      interval_time = 0.0; bitblast_time = 0.0; sat_time = 0.0 }

  let current = ref zero
  let get () = !current
  let reset () = current := zero

  let sub a b =
    {
      queries = a.queries - b.queries;
      slices = a.slices - b.slices;
      slice_hits = a.slice_hits - b.slice_hits;
      cache_hits = a.cache_hits - b.cache_hits;
      cex_hits = a.cex_hits - b.cex_hits;
      query_evictions = a.query_evictions - b.query_evictions;
      cex_evictions = a.cex_evictions - b.cex_evictions;
      interval_unsat = a.interval_unsat - b.interval_unsat;
      interval_sat = a.interval_sat - b.interval_sat;
      sat_calls = a.sat_calls - b.sat_calls;
      sat_conflicts = a.sat_conflicts - b.sat_conflicts;
      sat_decisions = a.sat_decisions - b.sat_decisions;
      sat_propagations = a.sat_propagations - b.sat_propagations;
      sat_timeouts = a.sat_timeouts - b.sat_timeouts;
      sat_retries = a.sat_retries - b.sat_retries;
      scope_pushes = a.scope_pushes - b.scope_pushes;
      scope_pops = a.scope_pops - b.scope_pops;
      scope_reused = a.scope_reused - b.scope_reused;
      scope_rebuilds = a.scope_rebuilds - b.scope_rebuilds;
      time = a.time -. b.time;
      interval_time = a.interval_time -. b.interval_time;
      bitblast_time = a.bitblast_time -. b.bitblast_time;
      sat_time = a.sat_time -. b.sat_time;
    }

  let add a b =
    {
      queries = a.queries + b.queries;
      slices = a.slices + b.slices;
      slice_hits = a.slice_hits + b.slice_hits;
      cache_hits = a.cache_hits + b.cache_hits;
      cex_hits = a.cex_hits + b.cex_hits;
      query_evictions = a.query_evictions + b.query_evictions;
      cex_evictions = a.cex_evictions + b.cex_evictions;
      interval_unsat = a.interval_unsat + b.interval_unsat;
      interval_sat = a.interval_sat + b.interval_sat;
      sat_calls = a.sat_calls + b.sat_calls;
      sat_conflicts = a.sat_conflicts + b.sat_conflicts;
      sat_decisions = a.sat_decisions + b.sat_decisions;
      sat_propagations = a.sat_propagations + b.sat_propagations;
      sat_timeouts = a.sat_timeouts + b.sat_timeouts;
      sat_retries = a.sat_retries + b.sat_retries;
      scope_pushes = a.scope_pushes + b.scope_pushes;
      scope_pops = a.scope_pops + b.scope_pops;
      scope_reused = a.scope_reused + b.scope_reused;
      scope_rebuilds = a.scope_rebuilds + b.scope_rebuilds;
      time = a.time +. b.time;
      interval_time = a.interval_time +. b.interval_time;
      bitblast_time = a.bitblast_time +. b.bitblast_time;
      sat_time = a.sat_time +. b.sat_time;
    }

  let cache_hit_rate t =
    if t.slices > 0 then float_of_int t.slice_hits /. float_of_int t.slices
    else if t.queries > 0 then
      float_of_int (t.cache_hits + t.cex_hits) /. float_of_int t.queries
    else 0.0

  let pp ppf t =
    Format.fprintf ppf
      "queries=%d slices=%d slice-hits=%d cache=%d cex=%d evict=%d/%d \
       itv-unsat=%d itv-sat=%d sat-calls=%d conflicts=%d decisions=%d \
       propagations=%d timeouts=%d retries=%d scope=%d/%d reuse=%d \
       rebuilds=%d time=%.3fs (itv=%.3fs blast=%.3fs sat=%.3fs)"
      t.queries t.slices t.slice_hits t.cache_hits t.cex_hits
      t.query_evictions t.cex_evictions t.interval_unsat
      t.interval_sat t.sat_calls t.sat_conflicts t.sat_decisions
      t.sat_propagations t.sat_timeouts t.sat_retries
      t.scope_pushes t.scope_pops t.scope_reused t.scope_rebuilds t.time
      t.interval_time t.bitblast_time t.sat_time

  let to_json t =
    Obs.Json.Obj
      [ ("queries", Obs.Json.Int t.queries);
        ("slices", Obs.Json.Int t.slices);
        ("slice_hits", Obs.Json.Int t.slice_hits);
        ("cache_hits", Obs.Json.Int t.cache_hits);
        ("cex_hits", Obs.Json.Int t.cex_hits);
        ("query_evictions", Obs.Json.Int t.query_evictions);
        ("cex_evictions", Obs.Json.Int t.cex_evictions);
        ("interval_unsat", Obs.Json.Int t.interval_unsat);
        ("interval_sat", Obs.Json.Int t.interval_sat);
        ("sat_calls", Obs.Json.Int t.sat_calls);
        ("sat_conflicts", Obs.Json.Int t.sat_conflicts);
        ("sat_decisions", Obs.Json.Int t.sat_decisions);
        ("sat_propagations", Obs.Json.Int t.sat_propagations);
        ("sat_timeouts", Obs.Json.Int t.sat_timeouts);
        ("sat_retries", Obs.Json.Int t.sat_retries);
        ("scope_pushes", Obs.Json.Int t.scope_pushes);
        ("scope_pops", Obs.Json.Int t.scope_pops);
        ("scope_reused", Obs.Json.Int t.scope_reused);
        ("scope_rebuilds", Obs.Json.Int t.scope_rebuilds);
        ("time", Obs.Json.Float t.time);
        ("interval_time", Obs.Json.Float t.interval_time);
        ("bitblast_time", Obs.Json.Float t.bitblast_time);
        ("sat_time", Obs.Json.Float t.sat_time) ]

  let of_json j =
    let int k =
      Option.value ~default:0 Obs.Json.(Option.bind (member k j) to_int_opt)
    in
    let flt k =
      Option.value ~default:0.0
        Obs.Json.(Option.bind (member k j) to_float_opt)
    in
    { queries = int "queries";
      slices = int "slices";
      slice_hits = int "slice_hits";
      cache_hits = int "cache_hits";
      cex_hits = int "cex_hits";
      query_evictions = int "query_evictions";
      cex_evictions = int "cex_evictions";
      interval_unsat = int "interval_unsat";
      interval_sat = int "interval_sat";
      sat_calls = int "sat_calls";
      sat_conflicts = int "sat_conflicts";
      sat_decisions = int "sat_decisions";
      sat_propagations = int "sat_propagations";
      sat_timeouts = int "sat_timeouts";
      sat_retries = int "sat_retries";
      scope_pushes = int "scope_pushes";
      scope_pops = int "scope_pops";
      scope_reused = int "scope_reused";
      scope_rebuilds = int "scope_rebuilds";
      time = flt "time";
      interval_time = flt "interval_time";
      bitblast_time = flt "bitblast_time";
      sat_time = flt "sat_time" }
end

let caching = ref true
let set_caching b = caching := b

let independence = ref true
let set_independence b = independence := b

let incremental = ref true
let set_incremental b = incremental := b
let incremental_enabled () = !incremental

(* An incremental solving scope: retained CDCL instances (learned
   clauses, VSIDS activities, watch lists, variable numbering) plus a
   frame stack mirroring the engine's decision tree.

   Each path constraint is encoded once per retained instance and tied
   to a fresh {e guard} variable [g] by the clause [(-g \/ tseitin c)];
   a query enables exactly its constraints by solving under the
   assumption set of their guards.  Pops therefore cost nothing — a
   popped constraint's guard simply stops being assumed — and every
   learned clause remains sound forever (it was derived from guarded
   clauses only).  Guards' saved phase starts [false], so the CDCL
   search decides un-assumed guards negative and never explores the
   circuits of disabled constraints.

   Instances are kept {e per variable family}, keyed on the smallest
   [var_id] of the slice being solved (0 for ground slices): one global
   instance would make every solve assign the whole accumulated
   universe.  An instance whose guard table outgrows
   [scope_rebuild_cap] is dropped and rebuilt on next use. *)
module Scope = struct
  type instance = {
    i_sat : Sat.t;
    i_ctx : Bitblast.ctx;
    i_guards : (int, int) Hashtbl.t; (* Expr.id -> guard variable *)
  }

  type t = {
    mutable frames : Expr.t list list; (* top first, one per decision *)
    instances : (int, instance) Hashtbl.t; (* family key -> instance *)
  }

  let create () = { frames = []; instances = Hashtbl.create 8 }

  let push t =
    t.frames <- [] :: t.frames;
    Stats.(
      current := { !current with scope_pushes = !current.scope_pushes + 1 })

  (* Recording only: encoding is deferred to query time, so assuming
     along a replayed decision prefix stays solver-free and a query
     answered from the caches never encodes at all. *)
  let assume t c =
    match t.frames with
    | [] -> t.frames <- [ [ c ] ]
    | f :: rest -> t.frames <- (c :: f) :: rest

  let pop t =
    match t.frames with
    | [] -> ()
    | _ :: rest ->
      t.frames <- rest;
      Stats.(
        current := { !current with scope_pops = !current.scope_pops + 1 })

  let pop_to_root t =
    let n = List.length t.frames in
    if n > 0 then begin
      t.frames <- [];
      Stats.(
        current := { !current with scope_pops = !current.scope_pops + n })
    end

  let depth t = List.length t.frames
end

let scope_rebuild_cap = 1024

let scope_instance (scope : Scope.t) vars =
  let key =
    match vars with [] -> 0 | (v : Expr.var) :: _ -> v.Expr.var_id
  in
  let fresh () =
    let sat = Sat.create () in
    let inst =
      { Scope.i_sat = sat;
        i_ctx = Bitblast.create sat;
        i_guards = Hashtbl.create 64 }
    in
    Hashtbl.replace scope.Scope.instances key inst;
    inst
  in
  match Hashtbl.find_opt scope.Scope.instances key with
  | Some inst when Hashtbl.length inst.Scope.i_guards < scope_rebuild_cap ->
    inst
  | Some _ ->
    Stats.(
      current :=
        { !current with scope_rebuilds = !current.scope_rebuilds + 1 });
    fresh ()
  | None -> fresh ()

(* Per-slice query cache: the canonical key is the sorted list of term
   ids of one independent slice (terms are hash-consed, so equal
   constraint sets share a key).  With independence disabled the whole
   constraint set is one slice, recovering the old whole-query cache.
   Bounded by LRU eviction so unbounded campaigns cannot exhaust
   memory; the default capacity is large enough that decision-prefix
   replay within a run stays deterministic in practice (see
   [set_cache_capacity]). *)
let default_query_cache_cap = 65536
let default_cex_index_cap = 4096

let query_cache : (int list, outcome) Lru.t =
  Lru.create ~cap:default_query_cache_cap ()

(* Variable-indexed counterexample cache.  A model satisfying a
   superset query also satisfies this query, so re-evaluating recent
   models is cheap and hits often — but only models that actually bind
   a slice's variables can satisfy it non-trivially, so models are
   indexed by the variables they bind and lookups evaluate only models
   that cover the slice. *)
let cex_per_var = 8
let cex_index : (int, Model.t list) Lru.t =
  Lru.create ~cap:default_cex_index_cap ()

(* Eviction totals live in the LRU maps; fold the deltas into the
   [Stats] counters so [Stats.reset]/[Stats.sub] keep working. *)
let last_query_evictions = ref 0
let last_cex_evictions = ref 0

let note_evictions () =
  let qe = Lru.evictions query_cache in
  let ce = Lru.evictions cex_index in
  if qe <> !last_query_evictions || ce <> !last_cex_evictions then begin
    Stats.(
      current :=
        { !current with
          query_evictions =
            !current.query_evictions + (qe - !last_query_evictions);
          cex_evictions = !current.cex_evictions + (ce - !last_cex_evictions) });
    last_query_evictions := qe;
    last_cex_evictions := ce
  end

let set_cache_capacity ?query ?cex () =
  Option.iter (Lru.set_capacity query_cache) query;
  Option.iter (Lru.set_capacity cex_index) cex;
  note_evictions ()

let cache_sizes () = (Lru.length query_cache, Lru.length cex_index)

let remember_model m =
  if !caching then begin
    List.iter
      (fun ((v : Expr.var), _) ->
         let prev =
           match Lru.find cex_index v.Expr.var_id with
           | Some models -> models
           | None -> []
         in
         Lru.put cex_index v.Expr.var_id
           (m :: List.filteri (fun i _ -> i < cex_per_var - 1) prev))
      (Model.bindings m);
    note_evictions ()
  end

(* Candidate models are those indexed under the slice's first variable
   and binding every other slice variable; only those are evaluated.
   A hit is projected onto the slice's own variables: the cached model
   may come from a larger query and bind variables of other slices,
   and those extra bindings must not leak into the merged answer. *)
let cex_lookup vars constraints =
  if not !caching then None
  else
    match vars with
    | [] -> None
    | (v0 : Expr.var) :: rest ->
      (match Lru.find cex_index v0.Expr.var_id with
       | None -> None
       | Some models ->
         Option.map
           (fun m -> Model.of_fun vars (Model.find m))
           (List.find_opt
              (fun m ->
                 List.for_all
                   (fun (v : Expr.var) -> Model.find_opt m v <> None)
                   rest
                 && Model.satisfies m constraints)
              models))

let clear_caches () =
  Lru.clear query_cache;
  Lru.clear cex_index

(* Hook polled by the CDCL loop so a SIGINT can unwind even a long SAT
   call.  Installed by the engine; defaults to never stopping. *)
let interrupt_check = ref (fun () -> false)
let set_interrupt_check f = interrupt_check := f

let outcome_to_string = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

(* Per-stage wall time is accumulated unconditionally (two clock reads
   per stage, dwarfed by the stage itself) so the solver breakdown is
   available in every report, not only under tracing. *)
let stage name timef record f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Stats.(current := timef !current dt);
  Obs.Profile.record ~stage:name dt;
  if !Obs.Sink.enabled then
    Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
      ~args:(record r) name;
  r

(* Bounded retry-with-restart around the SAT backend: a query that
   comes back Unknown (conflict limit, timeout, injected fault) is
   retried up to [retries] times, each attempt re-encoded from scratch
   with {!Sat.perturb}ed VSIDS activities and phases — a different
   search order often resolves within the same budget — and, for
   timeouts, a fresh per-attempt deadline.  Interrupts never retry. *)
let retries = ref 0
let set_retries n = retries := max 0 n

let solve_with_sat ?conflict_limit ?deadline ~attempt constraints vars =
  let sat = Sat.create () in
  let stop () = !interrupt_check () in
  let blast =
    stage "bitblast"
      (fun s dt -> { s with Stats.bitblast_time = s.Stats.bitblast_time +. dt })
      (fun _ -> [ ("vars", Obs.Event.Int (Sat.num_vars sat)) ])
      (fun () ->
         match
           let ctx = Bitblast.create ?deadline ~stop sat in
           List.iter (Bitblast.assert_true ctx) constraints;
           ctx
         with
         | ctx -> Ok ctx
         | exception Sat.Timeout ->
           Stats.(
             current :=
               { !current with sat_timeouts = !current.sat_timeouts + 1 });
           Error "solver timeout"
         | exception Sat.Interrupted -> Error "interrupted")
  in
  match blast with
  | Error msg -> Unknown msg
  | Ok ctx ->
    if attempt > 0 then Sat.perturb sat (Int64.of_int attempt);
    let result =
      stage "sat"
        (fun s dt -> { s with Stats.sat_time = s.Stats.sat_time +. dt })
        (fun r ->
           [ ("result",
              Obs.Event.Str
                (match r with
                 | Ok Sat.Sat -> "sat"
                 | Ok Sat.Unsat -> "unsat"
                 | Error msg -> msg));
             ("conflicts", Obs.Event.Int (Sat.stats_conflicts sat)) ])
        (fun () ->
           match Sat.solve ?conflict_limit ?deadline ~stop sat with
           | r -> Ok r
           | exception Sat.Resource_exhausted -> Error "conflict limit reached"
           | exception Sat.Timeout ->
             Stats.(
               current :=
                 { !current with sat_timeouts = !current.sat_timeouts + 1 });
             Error "solver timeout"
           | exception Sat.Interrupted -> Error "interrupted")
    in
    Stats.(
      current :=
        { !current with
          sat_conflicts = !current.sat_conflicts + Sat.stats_conflicts sat;
          sat_decisions = !current.sat_decisions + Sat.stats_decisions sat;
          sat_propagations =
            !current.sat_propagations + Sat.stats_propagations sat });
    (match result with
     | Error msg -> Unknown msg
     | Ok Sat.Unsat -> Unsat
     | Ok Sat.Sat ->
       let model = Bitblast.extract_model ctx vars in
       (* Safety net: a model must satisfy the query by evaluation. *)
       if not (Model.satisfies model constraints) then
         failwith "Solver: internal error, SAT model fails evaluation";
       Sat model)

(* The incremental variant of [solve_with_sat]: reuse the family's
   retained instance, encode only constraints it has never seen (each
   behind a fresh guard variable), and solve under the assumption set
   of this slice's guards.  Stage accounting matches the scratch path,
   so the "bitblast" profile bucket directly shows encoding skipped by
   reuse. *)
let scope_solve scope ?conflict_limit ?deadline ~attempt constraints vars =
  let inst = scope_instance scope vars in
  let sat = inst.Scope.i_sat and ctx = inst.Scope.i_ctx in
  let stop () = !interrupt_check () in
  Bitblast.set_deadline ctx deadline;
  Bitblast.set_stop ctx (Some stop);
  let blast =
    stage "bitblast"
      (fun s dt -> { s with Stats.bitblast_time = s.Stats.bitblast_time +. dt })
      (fun _ -> [ ("vars", Obs.Event.Int (Sat.num_vars sat)) ])
      (fun () ->
         match
           List.map
             (fun (c : Expr.t) ->
                match Hashtbl.find_opt inst.Scope.i_guards c.Expr.id with
                | Some g ->
                  Stats.(
                    current :=
                      { !current with
                        scope_reused = !current.scope_reused + 1 });
                  g
                | None ->
                  let l = Bitblast.literal ctx c in
                  let g = Sat.new_var sat in
                  Sat.add_clause sat [ -g; l ];
                  Hashtbl.add inst.Scope.i_guards c.Expr.id g;
                  g)
             constraints
         with
         | gs -> Ok gs
         | exception Sat.Timeout ->
           Stats.(
             current :=
               { !current with sat_timeouts = !current.sat_timeouts + 1 });
           Error "solver timeout"
         | exception Sat.Interrupted -> Error "interrupted")
  in
  match blast with
  | Error msg -> Unknown msg
  | Ok assumptions ->
    if attempt > 0 then Sat.perturb sat (Int64.of_int attempt);
    (* The instance's counters are cumulative across queries; fold only
       this call's delta into the global stats. *)
    let c0 = Sat.stats_conflicts sat
    and d0 = Sat.stats_decisions sat
    and p0 = Sat.stats_propagations sat in
    let result =
      stage "sat"
        (fun s dt -> { s with Stats.sat_time = s.Stats.sat_time +. dt })
        (fun r ->
           [ ("result",
              Obs.Event.Str
                (match r with
                 | Ok Sat.Sat -> "sat"
                 | Ok Sat.Unsat -> "unsat"
                 | Error msg -> msg));
             ("conflicts", Obs.Event.Int (Sat.stats_conflicts sat - c0)) ])
        (fun () ->
           match Sat.solve ~assumptions ?conflict_limit ?deadline ~stop sat with
           | r -> Ok r
           | exception Sat.Resource_exhausted -> Error "conflict limit reached"
           | exception Sat.Timeout ->
             Stats.(
               current :=
                 { !current with sat_timeouts = !current.sat_timeouts + 1 });
             Error "solver timeout"
           | exception Sat.Interrupted -> Error "interrupted")
    in
    Stats.(
      current :=
        { !current with
          sat_conflicts = !current.sat_conflicts + Sat.stats_conflicts sat - c0;
          sat_decisions = !current.sat_decisions + Sat.stats_decisions sat - d0;
          sat_propagations =
            !current.sat_propagations + Sat.stats_propagations sat - p0 });
    (match result with
     | Error msg -> Unknown msg
     | Ok Sat.Unsat -> Unsat
     | Ok Sat.Sat ->
       let model = Bitblast.extract_model ctx vars in
       (* Safety net: a model must satisfy the query by evaluation. *)
       if not (Model.satisfies model constraints) then
         failwith "Solver: internal error, SAT model fails evaluation";
       Sat model)

(* One SAT attempt, chaos points included: [Solver_unknown] replaces
   the backend's answer, [Solver_stall] burns (a bounded slice of) the
   query budget and reports a timeout — both are then healed or
   surfaced by the retry loop exactly like organic Unknowns. *)
let sat_attempt ?scope ?conflict_limit ?deadline ~attempt constraints vars =
  if Chaos.fire Chaos.Solver_unknown then Unknown "chaos: injected unknown"
  else if Chaos.fire Chaos.Solver_stall then begin
    let now = Unix.gettimeofday () in
    let dt =
      match deadline with
      | Some d -> Float.min (Float.max (d -. now) 0.0) 0.05
      | None -> 0.05
    in
    if dt > 0.0 then Unix.sleepf dt;
    Stats.(
      current := { !current with sat_timeouts = !current.sat_timeouts + 1 });
    Unknown "solver timeout (chaos stall)"
  end
  else
    match scope with
    | Some sc when !incremental ->
      scope_solve sc ?conflict_limit ?deadline ~attempt constraints vars
    | Some _ | None ->
      solve_with_sat ?conflict_limit ?deadline ~attempt constraints vars

let sat_with_retries ?scope ?conflict_limit ?deadline constraints vars =
  let rec go attempt =
    let r =
      sat_attempt ?scope ?conflict_limit ?deadline ~attempt constraints vars
    in
    match r with
    | Unknown msg
      when attempt < !retries && msg <> "interrupted"
           && not (!interrupt_check ()) ->
      Stats.(
        current := { !current with sat_retries = !current.sat_retries + 1 });
      if !Obs.Sink.enabled then
        Obs.Sink.instant ~cat:"solver"
          ~args:[ ("reason", Obs.Event.Str msg) ]
          "retry";
      (* Every retry draws from the query's one shared deadline, so
         [--solver-timeout-ms] is a true per-query ceiling.  A retry
         whose budget is already exhausted is still counted above (it
         was requested and denied) but returns the Unknown at once. *)
      (match deadline with
       | Some d when Unix.gettimeofday () >= d -> r
       | Some _ | None -> go (attempt + 1))
    | r -> r
  in
  go 0

(* The uncached tail of the per-slice pipeline: interval prescreen
   (range propagation plus candidate probing), then bit-blast + SAT.
   Returns the outcome plus a cacheability flag: a [Sat] answer from a
   scope's retained instance is history-dependent (learned clauses and
   saved phases steer the model search), so it must stay out of the
   query and counterexample caches — otherwise a model-consuming query
   (concretization, error witnesses) could observe a model that a
   worker replaying the same decision prefix would never compute, and
   sequential/parallel equivalence would break.  Verdicts and interval
   models are pure functions of the slice and cache fine. *)
let solve_slice ?scope ?conflict_limit ?deadline constraints vars =
  let prescreen =
    stage "interval"
      (fun s dt ->
         { s with Stats.interval_time = s.Stats.interval_time +. dt })
      (fun r ->
         [ ("result",
            Obs.Event.Str
              (match r with
               | `Unsat -> "unsat"
               | `Model _ -> "model"
               | `Inconclusive -> "inconclusive")) ])
      (fun () ->
         let env = Interval.make_env () in
         match Interval.propagate env constraints with
         | Interval.Definitely_unsat -> `Unsat
         | Interval.Unknown ->
           (match
              List.find_map
                (fun f ->
                   let m = Model.of_fun vars f in
                   if Model.satisfies m constraints then Some m else None)
                (Interval.candidates env vars)
            with
            | Some m -> `Model m
            | None -> `Inconclusive))
  in
  match prescreen with
  | `Unsat ->
    Stats.(current := { !current with interval_unsat = !current.interval_unsat + 1 });
    (Unsat, true)
  | `Model m ->
    Stats.(current := { !current with interval_sat = !current.interval_sat + 1 });
    remember_model m;
    (Sat m, true)
  | `Inconclusive ->
    Stats.(current := { !current with sat_calls = !current.sat_calls + 1 });
    let r =
      sat_with_retries ?scope ?conflict_limit ?deadline constraints vars
    in
    let scoped = match scope with Some _ -> !incremental | None -> false in
    (match r with
     | Sat m when not scoped -> remember_model m
     | Sat _ | Unsat | Unknown _ -> ());
    (r, (match r with Sat _ -> not scoped | Unsat | Unknown _ -> true))

(* One independent slice: per-slice query cache, then the variable-
   indexed counterexample cache, then the solving pipeline.  Emits a
   [solver/slice] span per slice when the sink is enabled. *)
let check_slice ?scope ?conflict_limit ?deadline constraints =
  let t0 = Unix.gettimeofday () in
  Stats.(current := { !current with slices = !current.slices + 1 });
  let finish ~via r =
    let dt = Unix.gettimeofday () -. t0 in
    (* Cache shortcuts bypass the timed pipeline stages; attribute their
       (small) wall time explicitly so the profile still sums to the
       solver total.  Pipeline slices are covered by the inner stage
       records plus the query-level "other" remainder. *)
    (match via with
     | "cache" -> Obs.Profile.record ~stage:"slice:cache" dt
     | "cex" -> Obs.Profile.record ~stage:"slice:cex" dt
     | _ -> ());
    if !Obs.Sink.enabled then
      Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
        ~args:
          [ ("outcome", Obs.Event.Str (outcome_to_string r));
            ("via", Obs.Event.Str via);
            ("constraints", Obs.Event.Int (List.length constraints)) ]
        "slice";
    r
  in
  let key =
    List.sort_uniq Int.compare
      (List.map (fun (c : Expr.t) -> c.Expr.id) constraints)
  in
  match if !caching then Lru.find query_cache key else None with
  | Some r ->
    Stats.(
      current :=
        { !current with
          cache_hits = !current.cache_hits + 1;
          slice_hits = !current.slice_hits + 1 });
    finish ~via:"cache" r
  | None ->
    let vars = Slice.vars constraints in
    (match cex_lookup vars constraints with
     | Some m ->
       Stats.(
         current :=
           { !current with
             cex_hits = !current.cex_hits + 1;
             slice_hits = !current.slice_hits + 1 });
       (* Promote the hit into the query cache: the engine replays paths
          by decision prefix and re-issues the same queries, and the
          branch conditions it rebuilds embed model values — so a slice,
          once answered, must keep answering with the same model even as
          the counterexample index churns. *)
       if !caching then begin
         Lru.put query_cache key (Sat m);
         note_evictions ()
       end;
       finish ~via:"cex" (Sat m)
     | None ->
       let r, cacheable =
         solve_slice ?scope ?conflict_limit ?deadline constraints vars
       in
       (match r with
        | Unknown _ -> ()
        | Sat _ | Unsat ->
          if !caching && cacheable then begin
            Lru.put query_cache key r;
            note_evictions ()
          end);
       finish ~via:"pipeline" r)

(* Slicing plus the per-slice pipeline over an already constant-filtered
   constraint set.  An unsat slice settles the conjunction immediately;
   a slice at its resource limit is remembered but the remaining slices
   are still examined, since any of them may still prove Unsat. *)
let solve_sliced ?scope ?conflict_limit ?deadline constraints =
  let slices =
    if !independence then Slice.partition constraints else [ constraints ]
  in
  let rec solve_all model unknown = function
    | [] ->
      (match unknown with
       | Some msg -> Unknown msg
       | None ->
         (* Safety net: the merged model must satisfy the whole set
            by evaluation (slices bind disjoint variables, so this
            can only fail if the partition itself is wrong). *)
         if not (Model.satisfies model constraints) then
           failwith "Solver: internal error, merged model fails evaluation";
         Sat model)
    | s :: rest ->
      (match check_slice ?scope ?conflict_limit ?deadline s with
       | Unsat -> Unsat
       | Unknown msg ->
         solve_all model (Some (match unknown with Some m -> m | None -> msg)) rest
       | Sat m -> solve_all (Model.union model m) unknown rest)
  in
  let via = match slices with [ _ ] -> "pipeline" | _ -> "slices" in
  (solve_all Model.empty None slices, via)

let check ?scope ?conflict_limit ?timeout_ms constraints =
  let t0 = Unix.gettimeofday () in
  (* The per-query timeout becomes an absolute deadline shared by every
     slice of the conjunction — and by every retry attempt: a query is
     one budget unit, full stop. *)
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) timeout_ms
  in
  Stats.(current := { !current with queries = !current.queries + 1 });
  let clock0 = Obs.Profile.stage_clock () in
  let finish ~via r =
    let dt = Unix.gettimeofday () -. t0 in
    Stats.(current := { !current with time = !current.time +. dt });
    (* Attribute query wall time not covered by any inner stage record
       (encoding overhead, slicing, constant short-circuits) to "other",
       so per-origin bucket totals sum to the Stats.time delta. *)
    Obs.Profile.record ~stage:"other"
      (dt -. (Obs.Profile.stage_clock () -. clock0));
    if !Obs.Sink.enabled then
      Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
        ~args:
          [ ("outcome", Obs.Event.Str (outcome_to_string r));
            ("via", Obs.Event.Str via) ]
        "query";
    r
  in
  (* Constant short-circuit. *)
  let constraints = List.filter (fun c -> Expr.to_bool c <> Some true) constraints in
  if List.exists (fun c -> Expr.to_bool c = Some false) constraints then
    finish ~via:"const" Unsat
  else if constraints = [] then finish ~via:"const" (Sat Model.empty)
  else begin
    let r, via = solve_sliced ?scope ?conflict_limit ?deadline constraints in
    finish ~via r
  end

(* Both children of a branch — [pc /\ cond] and [pc /\ not cond] — as
   one variational query.  The prefix [pc] is partitioned once; slices
   sharing no variable with [cond] are {e common} and are solved a
   single time, with the verdict applied to both children.  Only the
   variational remainder — [cond] (resp. its negation) plus the prefix
   slices touching its variables, which is exactly one slice of the
   child's own partition — is solved per child, and it is routed
   through {!check_slice} so its cache entry is shared with standalone
   checks of the same child.  Counted as two queries. *)
let check_pair ?scope ?conflict_limit ?timeout_ms ~cond pc =
  let t0 = Unix.gettimeofday () in
  let deadline =
    Option.map (fun ms -> t0 +. (float_of_int ms /. 1000.0)) timeout_ms
  in
  Stats.(current := { !current with queries = !current.queries + 2 });
  let clock0 = Obs.Profile.stage_clock () in
  (* Each child is its own query unit, so the sink sees two [query]
     spans (tagged via=pair) — the same contract as two standalone
     [check] calls, which keeps trace consumers and the metrics bridge
     oblivious to the batching. *)
  let t_split = ref None in
  let finish (rt, rf) =
    let t1 = Unix.gettimeofday () in
    let dt = t1 -. t0 in
    Stats.(current := { !current with time = !current.time +. dt });
    Obs.Profile.record ~stage:"other"
      (dt -. (Obs.Profile.stage_clock () -. clock0));
    if !Obs.Sink.enabled then begin
      let tm = match !t_split with Some t -> t | None -> t1 in
      let emit dur r which =
        Obs.Sink.complete ~cat:"solver" ~dur_us:(dur *. 1e6)
          ~args:
            [ ("outcome", Obs.Event.Str (outcome_to_string r));
              ("via", Obs.Event.Str "pair");
              ("child", Obs.Event.Str which) ]
          "query"
      in
      emit (tm -. t0) rt "true";
      emit (t1 -. tm) rf "false"
    end;
    (rt, rf)
  in
  let pc = List.filter (fun c -> Expr.to_bool c <> Some true) pc in
  if List.exists (fun c -> Expr.to_bool c = Some false) pc then
    finish (Unsat, Unsat)
  else
    match Expr.to_bool cond with
    | Some true ->
      let r =
        if pc = [] then Sat Model.empty
        else fst (solve_sliced ?scope ?conflict_limit ?deadline pc)
      in
      finish (r, Unsat)
    | Some false ->
      let r =
        if pc = [] then Sat Model.empty
        else fst (solve_sliced ?scope ?conflict_limit ?deadline pc)
      in
      finish (Unsat, r)
    | None ->
      let cond_vars = Slice.vars [ cond ] in
      let touches s =
        let vs = Slice.vars s in
        List.exists
          (fun (v : Expr.var) ->
             List.exists
               (fun (v' : Expr.var) -> v.Expr.var_id = v'.Expr.var_id)
               cond_vars)
          vs
      in
      let slices =
        if !independence then Slice.partition pc else [ pc ]
      in
      let touching, common = List.partition touches slices in
      (* Common prefix slices: solved once, verdict shared. *)
      let rec go model unknown = function
        | [] -> `Common (model, unknown)
        | s :: rest ->
          (match check_slice ?scope ?conflict_limit ?deadline s with
           | Unsat -> `Unsat
           | Unknown msg ->
             go model (Some (match unknown with Some m -> m | None -> msg)) rest
           | Sat m -> go (Model.union model m) unknown rest)
      in
      (match go Model.empty None common with
       | `Unsat -> finish (Unsat, Unsat)
       | `Common (model, unknown) ->
         let child lit deadline =
           let cs = lit :: List.concat touching in
           match check_slice ?scope ?conflict_limit ?deadline cs with
           | Unsat -> Unsat (* Unsat dominates a common Unknown *)
           | Unknown msg ->
             Unknown (match unknown with Some m -> m | None -> msg)
           | Sat m ->
             (match unknown with
              | Some msg -> Unknown msg
              | None ->
                let full = Model.union model m in
                if not (Model.satisfies full (lit :: pc)) then
                  failwith
                    "Solver: internal error, merged model fails evaluation";
                Sat full)
         in
         let rt = child cond deadline in
         (* The false child is its own query unit: a fresh deadline, not
            the true child's leftovers. *)
         let t_mid = Unix.gettimeofday () in
         t_split := Some t_mid;
         let deadline' =
           Option.map (fun ms -> t_mid +. (float_of_int ms /. 1000.0))
             timeout_ms
         in
         let rf = child (Expr.not_ cond) deadline' in
         finish (rt, rf))

let is_sat ?conflict_limit constraints =
  match check ?conflict_limit constraints with
  | Sat _ -> true
  | Unsat -> false
  | Unknown msg -> failwith ("Solver.is_sat: unknown: " ^ msg)

let get_model constraints =
  match check constraints with
  | Sat m -> Some m
  | Unsat -> None
  | Unknown msg -> failwith ("Solver.get_model: unknown: " ^ msg)
