type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

module Stats = struct
  type t = {
    queries : int;
    slices : int;
    slice_hits : int;
    cache_hits : int;
    cex_hits : int;
    interval_unsat : int;
    interval_sat : int;
    sat_calls : int;
    sat_conflicts : int;
    sat_decisions : int;
    sat_propagations : int;
    time : float;
    interval_time : float;
    bitblast_time : float;
    sat_time : float;
  }

  let zero =
    { queries = 0; slices = 0; slice_hits = 0; cache_hits = 0; cex_hits = 0;
      interval_unsat = 0; interval_sat = 0; sat_calls = 0; sat_conflicts = 0;
      sat_decisions = 0; sat_propagations = 0; time = 0.0; interval_time = 0.0;
      bitblast_time = 0.0; sat_time = 0.0 }

  let current = ref zero
  let get () = !current
  let reset () = current := zero

  let sub a b =
    {
      queries = a.queries - b.queries;
      slices = a.slices - b.slices;
      slice_hits = a.slice_hits - b.slice_hits;
      cache_hits = a.cache_hits - b.cache_hits;
      cex_hits = a.cex_hits - b.cex_hits;
      interval_unsat = a.interval_unsat - b.interval_unsat;
      interval_sat = a.interval_sat - b.interval_sat;
      sat_calls = a.sat_calls - b.sat_calls;
      sat_conflicts = a.sat_conflicts - b.sat_conflicts;
      sat_decisions = a.sat_decisions - b.sat_decisions;
      sat_propagations = a.sat_propagations - b.sat_propagations;
      time = a.time -. b.time;
      interval_time = a.interval_time -. b.interval_time;
      bitblast_time = a.bitblast_time -. b.bitblast_time;
      sat_time = a.sat_time -. b.sat_time;
    }

  let cache_hit_rate t =
    if t.slices > 0 then float_of_int t.slice_hits /. float_of_int t.slices
    else if t.queries > 0 then
      float_of_int (t.cache_hits + t.cex_hits) /. float_of_int t.queries
    else 0.0

  let pp ppf t =
    Format.fprintf ppf
      "queries=%d slices=%d slice-hits=%d cache=%d cex=%d itv-unsat=%d \
       itv-sat=%d sat-calls=%d conflicts=%d decisions=%d propagations=%d \
       time=%.3fs (itv=%.3fs blast=%.3fs sat=%.3fs)"
      t.queries t.slices t.slice_hits t.cache_hits t.cex_hits t.interval_unsat
      t.interval_sat t.sat_calls t.sat_conflicts t.sat_decisions
      t.sat_propagations t.time t.interval_time t.bitblast_time t.sat_time
end

let caching = ref true
let set_caching b = caching := b

let independence = ref true
let set_independence b = independence := b

(* Per-slice query cache: the canonical key is the sorted list of term
   ids of one independent slice (terms are hash-consed, so equal
   constraint sets share a key).  With independence disabled the whole
   constraint set is one slice, recovering the old whole-query cache. *)
let query_cache : (int list, outcome) Hashtbl.t = Hashtbl.create 4096

(* Variable-indexed counterexample cache.  A model satisfying a
   superset query also satisfies this query, so re-evaluating recent
   models is cheap and hits often — but only models that actually bind
   a slice's variables can satisfy it non-trivially, so models are
   indexed by the variables they bind and lookups evaluate only models
   that cover the slice. *)
let cex_per_var = 8
let cex_index : (int, Model.t list ref) Hashtbl.t = Hashtbl.create 512

let remember_model m =
  if !caching then
    List.iter
      (fun ((v : Expr.var), _) ->
         let slot =
           match Hashtbl.find_opt cex_index v.Expr.var_id with
           | Some slot -> slot
           | None ->
             let slot = ref [] in
             Hashtbl.add cex_index v.Expr.var_id slot;
             slot
         in
         slot := m :: List.filteri (fun i _ -> i < cex_per_var - 1) !slot)
      (Model.bindings m)

(* Candidate models are those indexed under the slice's first variable
   and binding every other slice variable; only those are evaluated.
   A hit is projected onto the slice's own variables: the cached model
   may come from a larger query and bind variables of other slices,
   and those extra bindings must not leak into the merged answer. *)
let cex_lookup vars constraints =
  if not !caching then None
  else
    match vars with
    | [] -> None
    | (v0 : Expr.var) :: rest ->
      (match Hashtbl.find_opt cex_index v0.Expr.var_id with
       | None -> None
       | Some slot ->
         Option.map
           (fun m -> Model.of_fun vars (Model.find m))
           (List.find_opt
              (fun m ->
                 List.for_all
                   (fun (v : Expr.var) -> Model.find_opt m v <> None)
                   rest
                 && Model.satisfies m constraints)
              !slot))

let clear_caches () =
  Hashtbl.reset query_cache;
  Hashtbl.reset cex_index

let outcome_to_string = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

(* Per-stage wall time is accumulated unconditionally (two clock reads
   per stage, dwarfed by the stage itself) so the solver breakdown is
   available in every report, not only under tracing. *)
let stage name timef record f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Stats.(current := timef !current dt);
  if !Obs.Sink.enabled then
    Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
      ~args:(record r) name;
  r

let solve_with_sat ?conflict_limit constraints vars =
  let sat = Sat.create () in
  let ctx =
    stage "bitblast"
      (fun s dt -> { s with Stats.bitblast_time = s.Stats.bitblast_time +. dt })
      (fun _ -> [ ("vars", Obs.Event.Int (Sat.num_vars sat)) ])
      (fun () ->
         let ctx = Bitblast.create sat in
         List.iter (Bitblast.assert_true ctx) constraints;
         ctx)
  in
  let result =
    stage "sat"
      (fun s dt -> { s with Stats.sat_time = s.Stats.sat_time +. dt })
      (fun r ->
         [ ("result",
            Obs.Event.Str
              (match r with
               | Ok Sat.Sat -> "sat"
               | Ok Sat.Unsat -> "unsat"
               | Error () -> "resource-exhausted"));
           ("conflicts", Obs.Event.Int (Sat.stats_conflicts sat)) ])
      (fun () ->
         match Sat.solve ?conflict_limit sat with
         | r -> Ok r
         | exception Sat.Resource_exhausted -> Error ())
  in
  Stats.(
    current :=
      { !current with
        sat_conflicts = !current.sat_conflicts + Sat.stats_conflicts sat;
        sat_decisions = !current.sat_decisions + Sat.stats_decisions sat;
        sat_propagations =
          !current.sat_propagations + Sat.stats_propagations sat });
  match result with
  | Error () -> Unknown "conflict limit reached"
  | Ok Sat.Unsat -> Unsat
  | Ok Sat.Sat ->
    let model = Bitblast.extract_model ctx vars in
    (* Safety net: a model must satisfy the query by evaluation. *)
    if not (Model.satisfies model constraints) then
      failwith "Solver: internal error, SAT model fails evaluation";
    Sat model

(* The uncached tail of the per-slice pipeline: interval prescreen
   (range propagation plus candidate probing), then bit-blast + SAT. *)
let solve_slice ?conflict_limit constraints vars =
  let prescreen =
    stage "interval"
      (fun s dt ->
         { s with Stats.interval_time = s.Stats.interval_time +. dt })
      (fun r ->
         [ ("result",
            Obs.Event.Str
              (match r with
               | `Unsat -> "unsat"
               | `Model _ -> "model"
               | `Inconclusive -> "inconclusive")) ])
      (fun () ->
         let env = Interval.make_env () in
         match Interval.propagate env constraints with
         | Interval.Definitely_unsat -> `Unsat
         | Interval.Unknown ->
           (match
              List.find_map
                (fun f ->
                   let m = Model.of_fun vars f in
                   if Model.satisfies m constraints then Some m else None)
                (Interval.candidates env vars)
            with
            | Some m -> `Model m
            | None -> `Inconclusive))
  in
  match prescreen with
  | `Unsat ->
    Stats.(current := { !current with interval_unsat = !current.interval_unsat + 1 });
    Unsat
  | `Model m ->
    Stats.(current := { !current with interval_sat = !current.interval_sat + 1 });
    remember_model m;
    Sat m
  | `Inconclusive ->
    Stats.(current := { !current with sat_calls = !current.sat_calls + 1 });
    let r = solve_with_sat ?conflict_limit constraints vars in
    (match r with Sat m -> remember_model m | Unsat | Unknown _ -> ());
    r

(* One independent slice: per-slice query cache, then the variable-
   indexed counterexample cache, then the solving pipeline.  Emits a
   [solver/slice] span per slice when the sink is enabled. *)
let check_slice ?conflict_limit constraints =
  let t0 = if !Obs.Sink.enabled then Unix.gettimeofday () else 0.0 in
  Stats.(current := { !current with slices = !current.slices + 1 });
  let finish ~via r =
    if !Obs.Sink.enabled then
      Obs.Sink.complete ~cat:"solver"
        ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6)
        ~args:
          [ ("outcome", Obs.Event.Str (outcome_to_string r));
            ("via", Obs.Event.Str via);
            ("constraints", Obs.Event.Int (List.length constraints)) ]
        "slice";
    r
  in
  let key =
    List.sort_uniq Int.compare
      (List.map (fun (c : Expr.t) -> c.Expr.id) constraints)
  in
  match if !caching then Hashtbl.find_opt query_cache key else None with
  | Some r ->
    Stats.(
      current :=
        { !current with
          cache_hits = !current.cache_hits + 1;
          slice_hits = !current.slice_hits + 1 });
    finish ~via:"cache" r
  | None ->
    let vars = Slice.vars constraints in
    (match cex_lookup vars constraints with
     | Some m ->
       Stats.(
         current :=
           { !current with
             cex_hits = !current.cex_hits + 1;
             slice_hits = !current.slice_hits + 1 });
       (* Promote the hit into the query cache: the engine replays paths
          by decision prefix and re-issues the same queries, and the
          branch conditions it rebuilds embed model values — so a slice,
          once answered, must keep answering with the same model even as
          the counterexample index churns. *)
       if !caching then Hashtbl.replace query_cache key (Sat m);
       finish ~via:"cex" (Sat m)
     | None ->
       let r = solve_slice ?conflict_limit constraints vars in
       (match r with
        | Unknown _ -> ()
        | Sat _ | Unsat -> if !caching then Hashtbl.replace query_cache key r);
       finish ~via:"pipeline" r)

let check ?conflict_limit constraints =
  let t0 = Unix.gettimeofday () in
  Stats.(current := { !current with queries = !current.queries + 1 });
  let finish ~via r =
    let dt = Unix.gettimeofday () -. t0 in
    Stats.(current := { !current with time = !current.time +. dt });
    if !Obs.Sink.enabled then
      Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
        ~args:
          [ ("outcome", Obs.Event.Str (outcome_to_string r));
            ("via", Obs.Event.Str via) ]
        "query";
    r
  in
  (* Constant short-circuit. *)
  let constraints = List.filter (fun c -> Expr.to_bool c <> Some true) constraints in
  if List.exists (fun c -> Expr.to_bool c = Some false) constraints then
    finish ~via:"const" Unsat
  else if constraints = [] then finish ~via:"const" (Sat Model.empty)
  else begin
    let slices =
      if !independence then Slice.partition constraints else [ constraints ]
    in
    (* An unsat slice settles the conjunction immediately; a slice at
       its resource limit is remembered but the remaining slices are
       still examined, since any of them may still prove Unsat. *)
    let rec solve_all model unknown = function
      | [] ->
        (match unknown with
         | Some msg -> Unknown msg
         | None ->
           (* Safety net: the merged model must satisfy the whole set
              by evaluation (slices bind disjoint variables, so this
              can only fail if the partition itself is wrong). *)
           if not (Model.satisfies model constraints) then
             failwith "Solver: internal error, merged model fails evaluation";
           Sat model)
      | s :: rest ->
        (match check_slice ?conflict_limit s with
         | Unsat -> Unsat
         | Unknown msg ->
           solve_all model (Some (match unknown with Some m -> m | None -> msg)) rest
         | Sat m -> solve_all (Model.union model m) unknown rest)
    in
    let via = match slices with [ _ ] -> "pipeline" | _ -> "slices" in
    finish ~via (solve_all Model.empty None slices)
  end

let is_sat ?conflict_limit constraints =
  match check ?conflict_limit constraints with
  | Sat _ -> true
  | Unsat -> false
  | Unknown msg -> failwith ("Solver.is_sat: unknown: " ^ msg)

let get_model constraints =
  match check constraints with
  | Sat m -> Some m
  | Unsat -> None
  | Unknown msg -> failwith ("Solver.get_model: unknown: " ^ msg)
