type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

module Stats = struct
  type t = {
    queries : int;
    cache_hits : int;
    cex_hits : int;
    interval_unsat : int;
    interval_sat : int;
    sat_calls : int;
    sat_conflicts : int;
    sat_decisions : int;
    sat_propagations : int;
    time : float;
    interval_time : float;
    bitblast_time : float;
    sat_time : float;
  }

  let zero =
    { queries = 0; cache_hits = 0; cex_hits = 0; interval_unsat = 0;
      interval_sat = 0; sat_calls = 0; sat_conflicts = 0; sat_decisions = 0;
      sat_propagations = 0; time = 0.0; interval_time = 0.0;
      bitblast_time = 0.0; sat_time = 0.0 }

  let current = ref zero
  let get () = !current
  let reset () = current := zero

  let sub a b =
    {
      queries = a.queries - b.queries;
      cache_hits = a.cache_hits - b.cache_hits;
      cex_hits = a.cex_hits - b.cex_hits;
      interval_unsat = a.interval_unsat - b.interval_unsat;
      interval_sat = a.interval_sat - b.interval_sat;
      sat_calls = a.sat_calls - b.sat_calls;
      sat_conflicts = a.sat_conflicts - b.sat_conflicts;
      sat_decisions = a.sat_decisions - b.sat_decisions;
      sat_propagations = a.sat_propagations - b.sat_propagations;
      time = a.time -. b.time;
      interval_time = a.interval_time -. b.interval_time;
      bitblast_time = a.bitblast_time -. b.bitblast_time;
      sat_time = a.sat_time -. b.sat_time;
    }

  let cache_hit_rate t =
    if t.queries = 0 then 0.0
    else float_of_int (t.cache_hits + t.cex_hits) /. float_of_int t.queries

  let pp ppf t =
    Format.fprintf ppf
      "queries=%d cache=%d cex=%d itv-unsat=%d itv-sat=%d sat-calls=%d \
       conflicts=%d decisions=%d propagations=%d time=%.3fs \
       (itv=%.3fs blast=%.3fs sat=%.3fs)"
      t.queries t.cache_hits t.cex_hits t.interval_unsat t.interval_sat
      t.sat_calls t.sat_conflicts t.sat_decisions t.sat_propagations t.time
      t.interval_time t.bitblast_time t.sat_time
end

let caching = ref true
let set_caching b = caching := b

(* Query cache: canonical key is the sorted list of term ids (terms are
   hash-consed, so equal sets of constraints share a key). *)
let query_cache : (int list, outcome) Hashtbl.t = Hashtbl.create 4096

(* Counterexample cache: a bounded list of recently discovered models.
   A model satisfying a superset query also satisfies this query, so
   re-evaluating recent models is cheap and hits often. *)
let recent_models : Model.t list ref = ref []
let max_recent = 12

let remember_model m =
  if !caching then begin
    recent_models := m :: !recent_models;
    match List.nth_opt !recent_models max_recent with
    | Some _ ->
      recent_models :=
        List.filteri (fun i _ -> i < max_recent) !recent_models
    | None -> ()
  end

let clear_caches () =
  Hashtbl.reset query_cache;
  recent_models := []

let all_vars constraints =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
       List.iter
         (fun (v : Expr.var) ->
            if not (Hashtbl.mem tbl v.Expr.var_id) then
              Hashtbl.add tbl v.Expr.var_id v)
         (Expr.vars c))
    constraints;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : Expr.var) b -> Int.compare a.Expr.var_id b.Expr.var_id)

let outcome_to_string = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

(* Per-stage wall time is accumulated unconditionally (two clock reads
   per stage, dwarfed by the stage itself) so the solver breakdown is
   available in every report, not only under tracing. *)
let stage name timef record f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  Stats.(current := timef !current dt);
  if !Obs.Sink.enabled then
    Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
      ~args:(record r) name;
  r

let solve_with_sat ?conflict_limit constraints vars =
  let sat = Sat.create () in
  let ctx =
    stage "bitblast"
      (fun s dt -> { s with Stats.bitblast_time = s.Stats.bitblast_time +. dt })
      (fun _ -> [ ("vars", Obs.Event.Int (Sat.num_vars sat)) ])
      (fun () ->
         let ctx = Bitblast.create sat in
         List.iter (Bitblast.assert_true ctx) constraints;
         ctx)
  in
  let result =
    stage "sat"
      (fun s dt -> { s with Stats.sat_time = s.Stats.sat_time +. dt })
      (fun r ->
         [ ("result",
            Obs.Event.Str
              (match r with
               | Ok Sat.Sat -> "sat"
               | Ok Sat.Unsat -> "unsat"
               | Error () -> "resource-exhausted"));
           ("conflicts", Obs.Event.Int (Sat.stats_conflicts sat)) ])
      (fun () ->
         match Sat.solve ?conflict_limit sat with
         | r -> Ok r
         | exception Sat.Resource_exhausted -> Error ())
  in
  Stats.(
    current :=
      { !current with
        sat_conflicts = !current.sat_conflicts + Sat.stats_conflicts sat;
        sat_decisions = !current.sat_decisions + Sat.stats_decisions sat;
        sat_propagations =
          !current.sat_propagations + Sat.stats_propagations sat });
  match result with
  | Error () -> Unknown "conflict limit reached"
  | Ok Sat.Unsat -> Unsat
  | Ok Sat.Sat ->
    let model = Bitblast.extract_model ctx vars in
    (* Safety net: a model must satisfy the query by evaluation. *)
    if not (Model.satisfies model constraints) then
      failwith "Solver: internal error, SAT model fails evaluation";
    Sat model

let check_uncached ?conflict_limit constraints =
  let vars = all_vars constraints in
  (* Counterexample cache. *)
  let cex = List.find_opt (fun m -> Model.satisfies m constraints) !recent_models in
  match cex with
  | Some m ->
    Stats.(current := { !current with cex_hits = !current.cex_hits + 1 });
    if !Obs.Sink.enabled then Obs.Sink.instant ~cat:"solver" "cex-hit";
    Sat m
  | None ->
    (* Interval prescreen (range propagation plus candidate probing). *)
    let prescreen =
      stage "interval"
        (fun s dt ->
           { s with Stats.interval_time = s.Stats.interval_time +. dt })
        (fun r ->
           [ ("result",
              Obs.Event.Str
                (match r with
                 | `Unsat -> "unsat"
                 | `Model _ -> "model"
                 | `Inconclusive -> "inconclusive")) ])
        (fun () ->
           let env = Interval.make_env () in
           match Interval.propagate env constraints with
           | Interval.Definitely_unsat -> `Unsat
           | Interval.Unknown ->
             (match
                List.find_map
                  (fun f ->
                     let m = Model.of_fun vars f in
                     if Model.satisfies m constraints then Some m else None)
                  (Interval.candidates env vars)
              with
              | Some m -> `Model m
              | None -> `Inconclusive))
    in
    (match prescreen with
     | `Unsat ->
       Stats.(current := { !current with interval_unsat = !current.interval_unsat + 1 });
       Unsat
     | `Model m ->
       Stats.(current := { !current with interval_sat = !current.interval_sat + 1 });
       remember_model m;
       Sat m
     | `Inconclusive ->
       Stats.(current := { !current with sat_calls = !current.sat_calls + 1 });
       let r = solve_with_sat ?conflict_limit constraints vars in
       (match r with Sat m -> remember_model m | Unsat | Unknown _ -> ());
       r)

let check ?conflict_limit constraints =
  let t0 = Unix.gettimeofday () in
  Stats.(current := { !current with queries = !current.queries + 1 });
  let finish ~via r =
    let dt = Unix.gettimeofday () -. t0 in
    Stats.(current := { !current with time = !current.time +. dt });
    if !Obs.Sink.enabled then
      Obs.Sink.complete ~cat:"solver" ~dur_us:(dt *. 1e6)
        ~args:
          [ ("outcome", Obs.Event.Str (outcome_to_string r));
            ("via", Obs.Event.Str via) ]
        "query";
    r
  in
  (* Constant short-circuit. *)
  let constraints = List.filter (fun c -> Expr.to_bool c <> Some true) constraints in
  if List.exists (fun c -> Expr.to_bool c = Some false) constraints then
    finish ~via:"const" Unsat
  else if constraints = [] then finish ~via:"const" (Sat Model.empty)
  else begin
    let key =
      List.sort_uniq Int.compare (List.map (fun (c : Expr.t) -> c.Expr.id) constraints)
    in
    match if !caching then Hashtbl.find_opt query_cache key else None with
    | Some r ->
      Stats.(current := { !current with cache_hits = !current.cache_hits + 1 });
      finish ~via:"cache" r
    | None ->
      let r = check_uncached ?conflict_limit constraints in
      (match r with
       | Unknown _ -> ()
       | Sat _ | Unsat -> if !caching then Hashtbl.replace query_cache key r);
      finish ~via:"pipeline" r
  end

let is_sat ?conflict_limit constraints =
  match check ?conflict_limit constraints with
  | Sat _ -> true
  | Unsat -> false
  | Unknown msg -> failwith ("Solver.is_sat: unknown: " ^ msg)

let get_model constraints =
  match check constraints with
  | Sat m -> Some m
  | Unsat -> None
  | Unknown msg -> failwith ("Solver.get_model: unknown: " ^ msg)
