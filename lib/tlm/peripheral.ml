module Engine = Symex.Engine

module type S = sig
  type t
  type config
  type state

  val make : config -> Pk.Scheduler.t -> t
  val reset : t -> unit
  val serve : t -> Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t
  val snapshot : t -> state
  val restore : t -> state -> unit
end

(* ---- scheduler tracking ---- *)

type Engine.component_state += Sched_state of Pk.Scheduler.state

let track_scheduler sched =
  Engine.register_component
    ~save:(fun () -> Sched_state (Pk.Scheduler.snapshot sched))
    ~restore:(function
      | Sched_state s -> Pk.Scheduler.restore sched s
      | _ -> assert false)

(* ---- logged scheduler entry points ----

   [step]/[run_ready] are the engine-visible scheduler calls of every
   testbench; wrapping them here means peripheral threads (which fork
   on symbolic state) are fast-forwarded on snapshot-restored paths.
   The scheduler itself must be tracked ([track_scheduler]) so the
   consumed entry's component restore re-establishes queues and
   simulation time. *)

type Engine.effect_data +=
  | Step_effect of { advanced : bool }
  | Unit_effect

let step sched =
  let advanced = ref false in
  Engine.syscall
    ~capture:(fun () -> Step_effect { advanced = !advanced })
    ~apply:(function
      | Step_effect { advanced = a } -> advanced := a
      | _ -> ())
    (fun () -> advanced := Pk.Scheduler.step sched);
  !advanced

let run_ready sched =
  Engine.syscall
    ~capture:(fun () -> Unit_effect)
    ~apply:(fun _ -> ())
    (fun () -> Pk.Scheduler.run_ready sched)
