module Expr = Smt.Expr
module Value = Symex.Value

type transport_fn = Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t

type target = { tg_name : string; base : int; size : int; fn : transport_fn }

type t = {
  rt_name : string;
  latency : Pk.Sc_time.t;
  mutable rev_targets : target list;
}

let create ?(latency = Pk.Sc_time.ns 5) ~name () =
  { rt_name = name; latency; rev_targets = [] }

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let add_target t ~name ~base ~size fn =
  let target = { tg_name = name; base; size; fn } in
  (match List.find_opt (overlaps target) t.rev_targets with
   | Some other ->
     invalid_arg
       (Printf.sprintf "Router.add_target: %s overlaps %s (router %s)" name
          other.tg_name t.rt_name)
   | None -> ());
  t.rev_targets <- target :: t.rev_targets

let targets t =
  List.rev_map (fun tg -> (tg.tg_name, tg.base, tg.size)) t.rev_targets

let hits tg addr =
  let addr64 = Expr.zext 64 addr in
  Expr.and_
    (Expr.ule (Expr.int ~width:64 tg.base) addr64)
    (Expr.ult addr64 (Expr.int ~width:64 (tg.base + tg.size)))

let transport t (p : Payload.t) delay =
  let delay = Pk.Sc_time.add delay t.latency in
  let matched = ref "<unmapped>" in
  let rec route = function
    | [] ->
      p.Payload.response <- Payload.Address_error;
      delay
    | tg :: rest ->
      if Value.truth ~site:("router:" ^ tg.tg_name) (hits tg p.Payload.addr)
      then begin
        matched := tg.tg_name;
        let local =
          {
            p with
            Payload.addr = Value.sub p.Payload.addr (Value.of_int tg.base);
          }
        in
        let delay = tg.fn local delay in
        p.Payload.data <- local.Payload.data;
        p.Payload.response <- local.Payload.response;
        delay
      end
      else route rest
  in
  if not !Obs.Sink.enabled then route (List.rev t.rev_targets)
  else begin
    Obs.Sink.span_begin ~cat:"tlm" "txn"
      ~args:
        [ ("router", Obs.Event.Str t.rt_name);
          ("cmd", Obs.Event.Str (Payload.command_to_string p.Payload.cmd)) ];
    (* The span is closed even when routing forks a path and the engine
       unwinds this frame with an exception. *)
    Fun.protect
      ~finally:(fun () ->
          Obs.Sink.span_end ~cat:"tlm" "txn"
            ~args:
              [ ("target", Obs.Event.Str !matched);
                ("response",
                 Obs.Event.Str
                   (Payload.response_to_string p.Payload.response)) ])
      (fun () -> route (List.rev t.rev_targets))
  end
