module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem

type policy = Original | Fixed

type access = Read_only | Write_only | Read_write

type range = {
  rg_name : string;
  base : int;
  rg_size : int;
  access : access;
  backing : Mem.t;
  pre_read : (unit -> unit) option;
  post_write : (unit -> unit) option;
}

type t = {
  rf_name : string;
  rf_policy : policy;
  mutable rev_ranges : range list;
}

let create ?(policy = Original) ~name () =
  { rf_name = name; rf_policy = policy; rev_ranges = [] }

let policy t = t.rf_policy
let name t = t.rf_name
let ranges t = List.rev t.rev_ranges

let overlaps a b =
  a.base < b.base + b.rg_size && b.base < a.base + a.rg_size

(* Snapshot plumbing: every mapped backing store is tracked as an
   engine component, so a fast-forwarded path restores register-file
   contents without re-executing the transports that produced them. *)
type Engine.component_state += Mem_state of Mem.state

let add_range t ~name ~base ~access ?pre_read ?post_write backing =
  let range =
    {
      rg_name = name;
      base;
      rg_size = Mem.size backing;
      access;
      backing;
      pre_read;
      post_write;
    }
  in
  (match List.find_opt (overlaps range) t.rev_ranges with
   | Some other ->
     invalid_arg
       (Printf.sprintf "Register.add_range: %s overlaps %s" name other.rg_name)
   | None -> ());
  t.rev_ranges <- range :: t.rev_ranges;
  Engine.register_component
    ~save:(fun () -> Mem_state (Mem.save backing))
    ~restore:(function
      | Mem_state s -> Mem.load backing s
      | _ -> assert false);
  if Engine.exploring () then
    Obs.Coverage.declare ~peripheral:t.rf_name ~register:name
      ~size:range.rg_size;
  range

let find_range t name =
  match List.find_opt (fun r -> r.rg_name = name) t.rev_ranges with
  | Some r -> r
  | None -> raise Not_found

let access_latency = Pk.Sc_time.ns 10

exception Done

(* Range-match predicate.  The original implementation matches on the
   start address only — the root cause of F5; the fixed one requires the
   whole [addr, addr+len) window to fit.  Computed in 64 bits to avoid
   32-bit wrap-around on [addr + len]. *)
let range_match policy r ~addr ~len =
  let addr64 = Expr.zext 64 addr in
  let base64 = Expr.int ~width:64 r.base in
  let end64 = Expr.int ~width:64 (r.base + r.rg_size) in
  let starts_inside =
    Expr.and_ (Expr.ule base64 addr64) (Expr.ult addr64 end64)
  in
  match policy with
  | Original -> starts_inside
  | Fixed ->
    let upper = Expr.add addr64 (Expr.zext 64 len) in
    Expr.and_ (Expr.ule base64 addr64) (Expr.ule upper end64)

let allowed cmd access =
  match cmd, access with
  | Payload.Read, (Read_only | Read_write) -> true
  | Payload.Write, (Write_only | Read_write) -> true
  | Payload.Read, Write_only | Payload.Write, Read_only -> false

let serve t (p : Payload.t) r =
  (* F4: access-type check. *)
  (match t.rf_policy with
   | Original ->
     Engine.fatal_check ~site:"reg:access"
       ~message:
         (Printf.sprintf "%s of %s not registered for this access type"
            (Payload.command_to_string p.Payload.cmd) r.rg_name)
       (Expr.bool (allowed p.Payload.cmd r.access))
   | Fixed ->
     if not (allowed p.Payload.cmd r.access) then begin
       p.Payload.response <- Payload.Command_error;
       raise Done
     end);
  let offset = Value.sub p.Payload.addr (Value.of_int r.base) in
  (* Coverage: concrete (or constant-folded) accesses mark their exact
     byte window; accesses still symbolic here mark the whole register.
     Constant folding is deterministic across re-executions, so the
     recorded windows are identical for identical paths. *)
  if Engine.exploring () then begin
    let concrete v = Option.map Bv.to_int (Expr.to_bv v) in
    let off = concrete offset and len = concrete p.Payload.len in
    let record =
      match p.Payload.cmd with
      | Payload.Read -> Obs.Coverage.record_read
      | Payload.Write -> Obs.Coverage.record_write
    in
    record ~peripheral:t.rf_name ~register:r.rg_name ~size:r.rg_size ?off
      ?len ()
  end;
  match p.Payload.cmd with
  | Payload.Read ->
    Option.iter (fun f -> f ()) r.pre_read;
    (* F5 detection point: under the Original policy the length was
       never checked against the range, so this copy can run out of
       bounds — the engine's checked memory reports it. *)
    let bytes =
      Mem.read_bytes ~site:"reg:memcpy:read" r.backing ~offset
        ~len:p.Payload.len
    in
    p.Payload.data <- bytes;
    p.Payload.response <- Payload.Ok_response
  | Payload.Write ->
    Mem.write_bytes ~site:"reg:memcpy:write" r.backing ~offset
      ~len:p.Payload.len p.Payload.data;
    Option.iter (fun f -> f ()) r.post_write;
    p.Payload.response <- Payload.Ok_response

let transport_body t (p : Payload.t) =
  (try
     (* F2: alignment.  The original read path asserts word alignment;
        the write path stores byte lanes and never checks (which is why
        the paper's write test does not encounter F2). *)
     let aligned =
       Expr.eq (Value.band p.Payload.addr (Value.of_int 3)) Value.zero
     in
     (match p.Payload.cmd, t.rf_policy with
      | Payload.Read, Original ->
        Engine.fatal_check ~site:"reg:align"
          ~message:"unaligned register read" aligned
      | Payload.Read, Fixed ->
        if Value.truth ~site:"reg:align-check" (Expr.not_ aligned) then begin
          p.Payload.response <- Payload.Address_error;
          raise Done
        end
      | Payload.Write, (Original | Fixed) -> ());
     (* Range lookup, forking over which register the (symbolic)
        address hits. *)
     let rec dispatch = function
       | [] ->
         (* F3: no register mapping handles the address. *)
         (match t.rf_policy with
          | Original ->
            Engine.fatal_check ~site:"reg:mapping"
              ~message:"no register mapping for address" Expr.fls;
            (* fatal_check on a violated constant kills the path; keep
               the type checker happy *)
            raise Done
          | Fixed ->
            p.Payload.response <- Payload.Address_error;
            raise Done)
       | r :: rest ->
         let matches = range_match t.rf_policy r ~addr:p.Payload.addr ~len:p.Payload.len in
         if Value.truth ~site:("reg:match:" ^ r.rg_name) matches then serve t p r
         else begin
           (* Under the fixed policy, distinguish a boundary crossing
              (burst error) from a plain unmapped address. *)
           (match t.rf_policy with
            | Fixed ->
              let starts_inside =
                range_match Original r ~addr:p.Payload.addr ~len:p.Payload.len
              in
              if Value.truth ~site:("reg:burst:" ^ r.rg_name) starts_inside
              then begin
                p.Payload.response <- Payload.Burst_error;
                raise Done
              end
            | Original -> ());
           dispatch rest
         end
     in
     dispatch (ranges t)
   with Done -> ())

(* The payload's observable effect.  Both capture and apply copy the
   data array: several forked children can consume the same physically
   shared log entry, and caller glue is free to mutate [p.data] in
   place afterwards. *)
type Engine.effect_data +=
  | Transport_effect of { t_data : Expr.t array; t_response : Payload.response }

let transport t (p : Payload.t) delay =
  Engine.syscall
    ~capture:(fun () ->
      Transport_effect
        { t_data = Array.copy p.Payload.data; t_response = p.Payload.response })
    ~apply:(function
      | Transport_effect { t_data; t_response } ->
        p.Payload.data <- Array.copy t_data;
        p.Payload.response <- t_response
      | _ -> ())
    (fun () -> transport_body t p);
  Pk.Sc_time.add delay access_latency
