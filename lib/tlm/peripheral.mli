(** The unified peripheral surface.

    Every TLM peripheral of this repository ({!Plic}, {!Clint},
    {!Uart}) exposes a submodule conforming to {!S}: construction
    ([make]), return-to-power-on ([reset]), the blocking-transport
    socket ([serve]) and whole-device state capture
    ([snapshot]/[restore]).  The [state] value is pure data — arrays
    and scalars, no aliasing into the live device — so restoring it
    onto the device it came from reproduces the exact pre-snapshot
    observable behaviour.

    Conforming peripherals also register themselves as engine
    components at [make] time, which is what lets the engine's
    snapshot-forking fast-forward restore them without re-executing
    transports (see {!Symex.Engine.syscall}).

    {1 State ownership rules}

    - A peripheral owns everything behind its register file: backing
      stores, internal latches, FIFOs, thread FSM positions, and the
      flags of connected hart/port objects.  All of it is captured by
      [snapshot].
    - The scheduler is shared between peripherals and is therefore
      {e not} part of any peripheral's [state]; testbenches track it
      once via {!track_scheduler}.
    - Symbolic path-condition bookkeeping belongs to the engine and is
      restored by the engine itself during fast-forward. *)

module type S = sig
  type t

  type config
  (** Per-peripheral construction parameters (variant, faults, register
      policy, clocking...). *)

  type state
  (** Captured device state: pure data, no aliasing into [t]. *)

  val make : config -> Pk.Scheduler.t -> t
  (** Build the device, map its registers, spawn its threads on the
      scheduler, and register it as an engine component. *)

  val reset : t -> unit
  (** Restore the just-constructed state captured by [make].  Scheduler
      state (pending notifications, thread wait sets) is not touched. *)

  val serve : t -> Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t
  (** The TLM blocking-transport target socket. *)

  val snapshot : t -> state

  val restore : t -> state -> unit
  (** [restore t s] only makes sense for an [s] snapshotted from [t]
      (or from a structurally identical device built by the same
      deterministic construction glue). *)
end

val track_scheduler : Pk.Scheduler.t -> unit
(** Register the scheduler as an engine component so snapshot-forking
    restores queues, wait sets and simulation time.  Call once per
    scheduler, from construction glue inside the testbench thunk. *)

val step : Pk.Scheduler.t -> bool
(** {!Pk.Scheduler.step} wrapped in the engine's syscall log: on a
    fast-forwarded path the logged scheduler activity is restored
    instead of re-executed. *)

val run_ready : Pk.Scheduler.t -> unit
(** {!Pk.Scheduler.run_ready}, logged like {!step}. *)
