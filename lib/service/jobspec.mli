(** Campaign job descriptions.

    A job is one (peripheral, testbench, strategy, budget) cell of the
    verification matrix the campaign service works through: the five
    PLIC paper tests, the CLINT timer property and the UART loopback
    property, each runnable either symbolically (an {!Symex.Engine.Session}
    under any search strategy) or as a seeded random-testing campaign.
    Specs round-trip through JSON — they ride in [submit] frames and in
    the journal's [submit] records, so a recovered daemon re-creates
    exactly the jobs it was asked to run. *)

type mode = Symbolic | Random

val mode_to_string : mode -> string
(** ["symbolic"] / ["random"]. *)

val mode_of_string : string -> mode option

type t = {
  peripheral : string;     (** ["plic"], ["clint"] or ["uart"] *)
  test : string;           (** ["T1"].."[T5"] / ["timer"] / ["loopback"] *)
  mode : mode;
  strategy : string option;
      (** {!Symex.Search} strategy name (symbolic mode); [None] = engine
          default *)
  seed : int option;       (** random-strategy / random-campaign seed *)
  trials : int;            (** random-mode trial budget *)
  max_paths : int option;
  max_seconds : float option;
  max_memory_mb : int option;
  workers : int;           (** engine workers for this job (>= 1) *)
  num_sources : int;       (** PLIC scale *)
  t5_len : int;            (** T5 symbolic write length bound *)
}

val default : t
(** A symbolic [plic]/[T1] job at the smoke scale (4 sources, T5 len 8),
    one worker, no budgets, 256 random trials. *)

val validate : t -> (unit, string) result
(** Reject unknown peripherals, tests, strategies, nonpositive worker
    or trial counts — before the job is accepted into the queue. *)

val describe : t -> string
(** One-line human form, e.g. ["plic/T4 symbolic dfs"]. *)

val label : t -> string
(** The run label used for checkpoints and reports
    (["T1"], ["clint-timer"], ["uart-loopback"]). *)

val to_json : t -> Obs.Json.t
val of_json : Obs.Json.t -> (t, string) result

val thunk : t -> (unit -> unit, string) result
(** The testbench this job explores — built fresh per execution so
    re-runs start clean.  [Error] on an unknown (peripheral, test)
    pair. *)
