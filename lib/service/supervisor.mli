(** The campaign supervisor: a journal-backed job table.

    Pure bookkeeping — process management (forking, killing, reaping)
    stays in {!Daemon}; this module owns the job state machine and
    writes every transition to the {!Wal} {e before} mutating the
    in-memory table, so the durable log always leads the volatile
    state.

    {1 State machine}

    {v
      submit            start              finish
    ----------> Queued -------> Running ----------> Finished
                  ^  ^            |  |
                  |  |   fail     |  | fail (attempt > retries)
                  |  +------------+  +-------------> Quarantined
                  |  (backoff gate)
                  |      shed / drain (checkpointed)
                  +---------------+
      cancel: Queued | Running -> Cancelled
    v}

    A [fail] re-queues with a seeded {!Symex.Transport.backoff_delay}
    gate (the job may not start again before the gate) until the
    configured retry budget is spent, after which the job is
    quarantined — surfaced in [status] and the journal, never silently
    dropped (the circuit breaker).  A [shed] re-queues the job with a
    halved budget scale.  Replaying a journal whose job has a [Start]
    but no terminal record leaves the job {e Queued} again — that is
    exactly the crash-recovery path, and the job resumes from its
    recorded [Checkpoint_ref] artifact if any. *)

type state = Queued | Running | Finished | Quarantined | Cancelled

val state_to_string : state -> string

type job = {
  id : int;
  spec : Jobspec.t;
  mutable state : state;
  mutable attempts : int;       (** failed attempts so far *)
  mutable sheds : int;          (** times shed under memory pressure *)
  mutable budget_scale : float; (** halved per shed; 1.0 initially *)
  mutable checkpoint : string option;  (** resume artifact, if recorded *)
  mutable verdict : string option;
  mutable report : string option;
  mutable fail_reason : string option;
  mutable not_before : float;   (** retry backoff gate (absolute time) *)
}

type t

val create :
  wal:Wal.t -> job_retries:int -> backoff_seed:int -> Wal.record list -> t
(** Build the table by replaying recovered records (no journal writes
    during replay).  [job_retries] failed attempts quarantine a job. *)

val submit : t -> Jobspec.t -> job
(** Journal (fsync) then enqueue — the returned job is durable, so the
    caller may ack. *)

val cancel : t -> int -> job option
(** Journal + mark Cancelled.  Returns the job if it was cancellable
    (Queued or Running — a Running job's process must still be killed
    by the caller). *)

val job : t -> int -> job option
val jobs : t -> job list
(** All jobs, id order. *)

val next_runnable : t -> now:float -> job option
(** Oldest Queued job whose backoff gate has passed. *)

val note_start : t -> job -> unit
val note_checkpoint : t -> job -> string -> unit
val note_finish : t -> job -> verdict:string -> report:string -> unit

val note_fail : t -> job -> reason:string -> unit
(** Bump attempts; re-queue behind the backoff gate, or quarantine when
    the retry budget is spent. *)

val note_interrupted : job -> unit
(** A drained (checkpointed, exit-3) job goes back to Queued with no
    journal write — a Start without a terminal record already replays
    as Queued, so memory just mirrors what the journal will say. *)

val note_shed : t -> job -> unit
(** Memory-pressure shed: re-queue immediately with budget scale
    halved. *)

val counts : t -> (string * int) list
(** [("queued", _); ("running", _); ("finished", _); ("quarantined", _);
    ("cancelled", _); ("retried", _); ("shed", _)] — the state counts
    plus cumulative retry/shed totals. *)

val all_terminal : t -> bool
(** No job is Queued or Running (vacuously true when empty). *)

val snapshot : t -> Obs.Json.t
(** Compaction state for {!Wal.rotate}: the whole table, re-loadable by
    {!create} (it arrives wrapped in a [Snapshot] record on replay). *)
