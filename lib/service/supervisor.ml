(* Journal-backed job table; see supervisor.mli. *)

module Json = Obs.Json

type state = Queued | Running | Finished | Quarantined | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Finished -> "finished"
  | Quarantined -> "quarantined"
  | Cancelled -> "cancelled"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "finished" -> Some Finished
  | "quarantined" -> Some Quarantined
  | "cancelled" -> Some Cancelled
  | _ -> None

type job = {
  id : int;
  spec : Jobspec.t;
  mutable state : state;
  mutable attempts : int;
  mutable sheds : int;
  mutable budget_scale : float;
  mutable checkpoint : string option;
  mutable verdict : string option;
  mutable report : string option;
  mutable fail_reason : string option;
  mutable not_before : float;
}

type t = {
  wal : Wal.t;
  job_retries : int;
  backoff_seed : int;
  table : (int, job) Hashtbl.t;
  mutable next_id : int;
  mutable retried : int;
  mutable shed_total : int;
}

(* ---- snapshot (compaction) codec ---- *)

let opt_str = function Some s -> Json.Str s | None -> Json.Null

let job_to_json j =
  Json.Obj
    [
      ("id", Json.Int j.id);
      ("spec", Jobspec.to_json j.spec);
      ("state", Json.Str (state_to_string j.state));
      ("attempts", Json.Int j.attempts);
      ("sheds", Json.Int j.sheds);
      ("budget_scale", Json.Float j.budget_scale);
      ("checkpoint", opt_str j.checkpoint);
      ("verdict", opt_str j.verdict);
      ("report", opt_str j.report);
      ("fail_reason", opt_str j.fail_reason);
    ]

let job_of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let flt key = Option.bind (Json.member key j) Json.to_float_opt in
  match
    ( int "id",
      Option.map Jobspec.of_json (Json.member "spec" j),
      Option.bind (str "state") state_of_string )
  with
  | Some id, Some (Ok spec), Some state ->
    Some
      {
        id;
        spec;
        state;
        attempts = Option.value ~default:0 (int "attempts");
        sheds = Option.value ~default:0 (int "sheds");
        budget_scale = Option.value ~default:1.0 (flt "budget_scale");
        checkpoint = str "checkpoint";
        verdict = str "verdict";
        report = str "report";
        fail_reason = str "fail_reason";
        not_before = 0.0;
      }
  | _ -> None

let snapshot t =
  let jobs =
    Hashtbl.fold (fun _ j acc -> j :: acc) t.table []
    |> List.sort (fun a b -> compare a.id b.id)
  in
  Json.Obj
    [
      ("next_id", Json.Int t.next_id);
      ("retried", Json.Int t.retried);
      ("shed", Json.Int t.shed_total);
      ("jobs", Json.List (List.map job_to_json jobs));
    ]

let load_snapshot t state =
  Hashtbl.reset t.table;
  (match Option.bind (Json.member "next_id" state) Json.to_int_opt with
   | Some n -> t.next_id <- n
   | None -> ());
  (match Option.bind (Json.member "retried" state) Json.to_int_opt with
   | Some n -> t.retried <- n
   | None -> ());
  (match Option.bind (Json.member "shed" state) Json.to_int_opt with
   | Some n -> t.shed_total <- n
   | None -> ());
  match Option.bind (Json.member "jobs" state) Json.to_list_opt with
  | Some jobs ->
    List.iter
      (fun jj ->
         match job_of_json jj with
         | Some job -> Hashtbl.replace t.table job.id job
         | None -> ())
      jobs
  | None -> ()

(* ---- replay ---- *)

let apply_record t r =
  let with_job id f =
    match Hashtbl.find_opt t.table id with Some j -> f j | None -> ()
  in
  match r with
  | Wal.Snapshot state -> load_snapshot t state
  | Wal.Submit (id, spec_json) ->
    (match Jobspec.of_json spec_json with
     | Ok spec ->
       Hashtbl.replace t.table id
         {
           id;
           spec;
           state = Queued;
           attempts = 0;
           sheds = 0;
           budget_scale = 1.0;
           checkpoint = None;
           verdict = None;
           report = None;
           fail_reason = None;
           not_before = 0.0;
         };
       if id >= t.next_id then t.next_id <- id + 1
     | Error _ -> ())
  | Wal.Start (id, attempt) ->
    with_job id (fun j ->
        j.state <- Running;
        ignore attempt)
  | Wal.Checkpoint_ref (id, path) ->
    with_job id (fun j -> j.checkpoint <- Some path)
  | Wal.Finish (id, verdict, report) ->
    with_job id (fun j ->
        j.state <- Finished;
        j.verdict <- Some verdict;
        j.report <- Some report)
  | Wal.Fail (id, attempt, reason) ->
    with_job id (fun j ->
        j.state <- Queued;
        j.attempts <- max j.attempts attempt;
        j.fail_reason <- Some reason;
        t.retried <- t.retried + 1)
  | Wal.Shed (id, scale) ->
    with_job id (fun j ->
        j.state <- Queued;
        j.sheds <- j.sheds + 1;
        j.budget_scale <- scale;
        t.shed_total <- t.shed_total + 1)
  | Wal.Cancel id -> with_job id (fun j -> j.state <- Cancelled)
  | Wal.Quarantine (id, attempts) ->
    with_job id (fun j ->
        j.state <- Quarantined;
        j.attempts <- max j.attempts attempts)

let create ~wal ~job_retries ~backoff_seed records =
  let t =
    {
      wal;
      job_retries;
      backoff_seed;
      table = Hashtbl.create 64;
      next_id = 1;
      retried = 0;
      shed_total = 0;
    }
  in
  List.iter (apply_record t) records;
  (* Jobs that were Running when the daemon died have a Start with no
     terminal record: they are in flight nowhere now — re-queue them.
     Their Checkpoint_ref artifact (if recorded) makes the re-run a
     resume, not a restart. *)
  Hashtbl.iter
    (fun _ j -> if j.state = Running then j.state <- Queued)
    t.table;
  t

(* ---- transitions (journal leads memory) ---- *)

let submit t spec =
  let id = t.next_id in
  t.next_id <- id + 1;
  Wal.append t.wal (Wal.Submit (id, Jobspec.to_json spec));
  let job =
    {
      id;
      spec;
      state = Queued;
      attempts = 0;
      sheds = 0;
      budget_scale = 1.0;
      checkpoint = None;
      verdict = None;
      report = None;
      fail_reason = None;
      not_before = 0.0;
    }
  in
  Hashtbl.replace t.table id job;
  job

let job t id = Hashtbl.find_opt t.table id

let jobs t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.table []
  |> List.sort (fun a b -> compare a.id b.id)

let cancel t id =
  match Hashtbl.find_opt t.table id with
  | Some j when j.state = Queued || j.state = Running ->
    Wal.append t.wal (Wal.Cancel id);
    j.state <- Cancelled;
    Some j
  | _ -> None

let next_runnable t ~now =
  jobs t
  |> List.find_opt (fun j -> j.state = Queued && j.not_before <= now)

let note_start t j =
  Wal.append t.wal (Wal.Start (j.id, j.attempts + 1));
  j.state <- Running

let note_checkpoint t j path =
  if j.checkpoint <> Some path then begin
    Wal.append t.wal (Wal.Checkpoint_ref (j.id, path));
    j.checkpoint <- Some path
  end

let note_finish t j ~verdict ~report =
  Wal.append t.wal (Wal.Finish (j.id, verdict, report));
  j.state <- Finished;
  j.verdict <- Some verdict;
  j.report <- Some report

let note_fail t j ~reason =
  let attempt = j.attempts + 1 in
  if attempt > t.job_retries then begin
    (* Circuit breaker: the job is poison (or the environment is) —
       stop burning attempts, surface it, keep the campaign moving. *)
    Wal.append t.wal (Wal.Quarantine (j.id, attempt));
    j.state <- Quarantined;
    j.attempts <- attempt;
    j.fail_reason <- Some reason
  end
  else begin
    Wal.append t.wal (Wal.Fail (j.id, attempt, reason));
    j.state <- Queued;
    j.attempts <- attempt;
    j.fail_reason <- Some reason;
    t.retried <- t.retried + 1;
    j.not_before <-
      Unix.gettimeofday ()
      +. Symex.Transport.backoff_delay
           ~seed:(t.backoff_seed lxor (j.id * 0x9e3779b9))
           ~attempt
  end

let note_interrupted j =
  (* A drained job needs no journal record: its Start has no terminal
     record, which is exactly what replay turns back into Queued.  The
     in-memory table just has to agree. *)
  j.state <- Queued

let note_shed t j =
  let scale = j.budget_scale /. 2.0 in
  Wal.append t.wal (Wal.Shed (j.id, scale));
  j.state <- Queued;
  j.sheds <- j.sheds + 1;
  j.budget_scale <- scale;
  t.shed_total <- t.shed_total + 1

let counts t =
  let count s = List.length (List.filter (fun j -> j.state = s) (jobs t)) in
  [
    ("queued", count Queued);
    ("running", count Running);
    ("finished", count Finished);
    ("quarantined", count Quarantined);
    ("cancelled", count Cancelled);
    ("retried", t.retried);
    ("shed", t.shed_total);
  ]

let all_terminal t =
  List.for_all
    (fun j -> match j.state with Queued | Running -> false | _ -> true)
    (jobs t)
