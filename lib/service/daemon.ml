(* The campaign daemon loop; see daemon.mli. *)

module Json = Obs.Json
module Transport = Symex.Transport

type opts = {
  journal_dir : string;
  max_jobs : int;
  job_retries : int;
  job_timeout_s : float option;
  mem_watermark_mb : float option;
  segment_bytes : int;
  backoff_seed : int;
  checkpoint_every_s : float;
  poll_s : float;
  exit_when_idle : bool;
}

let default_opts ~journal_dir =
  {
    journal_dir;
    max_jobs = 2;
    job_retries = 2;
    job_timeout_s = None;
    mem_watermark_mb = None;
    segment_bytes = 1 lsl 20;
    backoff_seed = 1;
    checkpoint_every_s = 0.5;
    poll_s = 0.05;
    exit_when_idle = false;
  }

(* One forked job process the daemon is waiting on.  [kill] remembers
   why we signalled it, so the reap can tell a timeout SIGKILL from a
   crash and a shed SIGTERM from a drain. *)
type running = {
  pid : int;
  rjob : Supervisor.job;
  started : float;
  mutable kill : string option;
}

let logf fmt =
  Printf.ksprintf
    (fun s ->
       Printf.eprintf "[serve] %s\n" s;
       flush stderr)
    fmt

let safe_kill pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

(* ---- service gauges ---- *)

let g_queue = Obs.Metrics.gauge ~help:"jobs waiting" "service_queue_depth"
let g_running = Obs.Metrics.gauge ~help:"job processes running" "service_jobs_running"
let g_retried = Obs.Metrics.gauge ~help:"failed attempts retried" "service_jobs_retried"
let g_quarantined =
  Obs.Metrics.gauge ~help:"jobs quarantined by the circuit breaker"
    "service_jobs_quarantined"
let g_shed = Obs.Metrics.gauge ~help:"jobs shed under memory pressure" "service_jobs_shed"
let g_journal = Obs.Metrics.gauge ~help:"active journal segment bytes" "service_journal_bytes"
let g_uptime = Obs.Metrics.gauge ~help:"daemon uptime (s)" "service_uptime_seconds"

let job_summary (j : Supervisor.job) =
  let opt = function Some s -> Json.Str s | None -> Json.Null in
  Json.Obj
    [
      ("id", Json.Int j.Supervisor.id);
      ("job", Json.Str (Jobspec.describe j.Supervisor.spec));
      ("state", Json.Str (Supervisor.state_to_string j.Supervisor.state));
      ("attempts", Json.Int j.Supervisor.attempts);
      ("sheds", Json.Int j.Supervisor.sheds);
      ("verdict", opt j.Supervisor.verdict);
      ("report", opt j.Supervisor.report);
      ("checkpoint", opt j.Supervisor.checkpoint);
      ("fail_reason", opt j.Supervisor.fail_reason);
    ]

let run ?pressure_mb ~listener opts =
  Transport.init ();
  let pressure = Option.value ~default:Symex.Budget.heap_mb pressure_mb in
  let started_at = Unix.gettimeofday () in
  let wal, records, dropped =
    Wal.open_dir ~segment_bytes:opts.segment_bytes opts.journal_dir
  in
  if dropped > 0 then
    logf "journal recovery dropped %d torn byte(s) at a segment tail" dropped;
  let sup =
    Supervisor.create ~wal ~job_retries:opts.job_retries
      ~backoff_seed:opts.backoff_seed records
  in
  if Supervisor.jobs sup <> [] then
    logf "recovered %d job(s) from %s"
      (List.length (Supervisor.jobs sup))
      opts.journal_dir;
  let drain = ref false in
  List.iter
    (fun s -> Sys.set_signal s (Sys.Signal_handle (fun _ -> drain := true)))
    [ Sys.sigterm; Sys.sigint ];
  let running : running list ref = ref [] in
  let submitted_any = ref (Supervisor.jobs sup <> []) in
  let result = ref None in

  let find_running id = List.find_opt (fun r -> r.rjob.Supervisor.id = id) !running in

  (* ---- client protocol ---- *)
  let dispatch req =
    let cmd =
      Option.bind (Json.member "cmd" req) Json.to_string_opt
      |> Option.value ~default:""
    in
    match cmd with
    | "ping" ->
      Json.Obj [ ("ok", Json.Bool true); ("pid", Json.Int (Unix.getpid ())) ]
    | "submit" ->
      (match Option.to_result ~none:"missing spec" (Json.member "spec" req) with
       | Error msg -> Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
       | Ok spec_json ->
         (match Jobspec.of_json spec_json with
          | Error msg ->
            Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]
          | Ok spec ->
            (* submit journals + fsyncs before returning: the ack below
               is durable. *)
            let job = Supervisor.submit sup spec in
            submitted_any := true;
            Json.Obj [ ("ok", Json.Bool true); ("id", Json.Int job.Supervisor.id) ]))
    | "status" ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("pid", Json.Int (Unix.getpid ()));
          ("uptime", Json.Float (Unix.gettimeofday () -. started_at));
          ( "counts",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Int v)) (Supervisor.counts sup)) );
          ( "journal",
            Json.Obj
              [
                ("dir", Json.Str opts.journal_dir);
                ("segment", Json.Int (Wal.segment_index wal));
                ("bytes", Json.Int (Wal.bytes wal));
              ] );
          ("jobs", Json.List (List.map job_summary (Supervisor.jobs sup)));
        ]
    | "cancel" ->
      (match Option.bind (Json.member "id" req) Json.to_int_opt with
       | None ->
         Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str "missing id") ]
       | Some id ->
         (match Supervisor.cancel sup id with
          | None ->
            Json.Obj
              [ ("ok", Json.Bool false);
                ("error", Json.Str "no such cancellable job") ]
          | Some job ->
            (match find_running job.Supervisor.id with
             | Some r ->
               r.kill <- Some "cancel";
               safe_kill r.pid Sys.sigkill
             | None -> ());
            Json.Obj [ ("ok", Json.Bool true); ("id", Json.Int id) ]))
    | "drain" ->
      drain := true;
      Json.Obj [ ("ok", Json.Bool true) ]
    | other ->
      Json.Obj
        [ ("ok", Json.Bool false);
          ("error", Json.Str (Printf.sprintf "unknown cmd %S" other)) ]
  in
  let serve_one_client () =
    match Transport.accept listener with
    | exception Unix.Unix_error _ -> ()
    | conn ->
      Fun.protect
        ~finally:(fun () -> Transport.close conn)
        (fun () ->
           (* A stalled client must not stall the campaign. *)
           (try Unix.setsockopt_float conn.Transport.c_in Unix.SO_RCVTIMEO 2.0
            with Unix.Unix_error _ | Invalid_argument _ -> ());
           match Transport.read_frame conn with
           | exception (Transport.Disconnected _ | Unix.Unix_error _) -> ()
           | req ->
             (try Transport.write_frame conn (dispatch req)
              with Transport.Disconnected _ | Unix.Unix_error _ -> ()))
  in

  (* ---- job processes ---- *)
  let start_job (job : Supervisor.job) =
    Supervisor.note_start sup job;
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      let code =
        try
          (try Transport.close_listener listener with _ -> ());
          Wal.close wal;
          Runner.exec ~journal_dir:opts.journal_dir
            ~checkpoint_every_s:opts.checkpoint_every_s ~id:job.Supervisor.id
            ~attempt:(job.Supervisor.attempts + 1)
            ~budget_scale:job.Supervisor.budget_scale job.Supervisor.spec
        with exn ->
          prerr_endline ("job process: " ^ Printexc.to_string exn);
          1
      in
      (* _exit: the child must not run the parent's at_exit handlers
         (alcotest reporters, metric dumps) it inherited by fork. *)
      Unix._exit code
    | pid ->
      running :=
        { pid; rjob = job; started = Unix.gettimeofday (); kill = None }
        :: !running
  in
  let on_exit r status =
    let j = r.rjob in
    let ck = Runner.checkpoint_path ~journal_dir:opts.journal_dir j.Supervisor.id in
    if Sys.file_exists ck then Supervisor.note_checkpoint sup j ck;
    if j.Supervisor.state = Supervisor.Cancelled then ()
    else
      match status with
      | Unix.WEXITED 0 ->
        let rpt = Runner.report_path ~journal_dir:opts.journal_dir j.Supervisor.id in
        let verdict =
          match Json.load rpt with
          | Ok doc ->
            Option.bind (Json.member "verdict" doc) Json.to_string_opt
            |> Option.value ~default:"unknown"
          | Error _ -> "unknown"
        in
        Supervisor.note_finish sup j ~verdict ~report:rpt;
        logf "job %d %s: %s" j.Supervisor.id (Jobspec.describe j.Supervisor.spec) verdict
      | Unix.WEXITED 3 when r.kill = Some "shed" ->
        Supervisor.note_shed sup j;
        logf "job %d shed (budget scale now %g)" j.Supervisor.id
          j.Supervisor.budget_scale
      | Unix.WEXITED 3 ->
        (* Drained (or externally interrupted): checkpointed, back in
           the queue for the next admission or the next daemon. *)
        Supervisor.note_interrupted j
      | Unix.WEXITED n ->
        Supervisor.note_fail sup j ~reason:(Printf.sprintf "exit %d" n)
      | Unix.WSIGNALED s when r.kill = Some "timeout" ->
        ignore s;
        Supervisor.note_fail sup j ~reason:"timeout"
      | Unix.WSIGNALED s ->
        Supervisor.note_fail sup j ~reason:(Printf.sprintf "signal %d" s)
      | Unix.WSTOPPED _ -> ()
  in
  let reap () =
    running :=
      List.filter
        (fun r ->
           match Unix.waitpid [ Unix.WNOHANG ] r.pid with
           | 0, _ -> true
           | _, status ->
             on_exit r status;
             false
           | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
             on_exit r (Unix.WEXITED 1);
             false)
        !running
  in

  (* ---- main loop ---- *)
  while !result = None do
    if Chaos.fire Chaos.Service_kill then
      Unix.kill (Unix.getpid ()) Sys.sigkill;
    (match
       Unix.select [ Transport.listener_fd listener ] [] [] opts.poll_s
     with
     | [], _, _ -> ()
     | _ :: _, _, _ -> serve_one_client ()
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    reap ();
    let now = Unix.gettimeofday () in
    (* Per-job wall-clock timeout: SIGKILL, counted as a failed attempt. *)
    (match opts.job_timeout_s with
     | None -> ()
     | Some t ->
       List.iter
         (fun r ->
            if r.kill = None && now -. r.started > t then begin
              r.kill <- Some "timeout";
              safe_kill r.pid Sys.sigkill
            end)
         !running);
    (* Degradation ladder: pressure pauses admission; sustained pressure
       sheds the newest job (never the last one — the campaign must
       keep moving). *)
    let over =
      match opts.mem_watermark_mb with
      | Some wm -> pressure () > wm
      | None -> false
    in
    if over && List.length !running > 1
       && not (List.exists (fun r -> r.kill = Some "shed") !running)
    then begin
      match
        List.filter (fun r -> r.kill = None) !running
        |> List.sort (fun a b -> compare b.started a.started)
      with
      | newest :: _ ->
        newest.kill <- Some "shed";
        safe_kill newest.pid Sys.sigterm
      | [] -> ()
    end;
    if (not !drain) && not over then begin
      let continue = ref true in
      while !continue && List.length !running < opts.max_jobs do
        match Supervisor.next_runnable sup ~now:(Unix.gettimeofday ()) with
        | Some job -> start_job job
        | None -> continue := false
      done
    end;
    if Wal.needs_rotation wal then
      Wal.rotate wal ~snapshot:(Supervisor.snapshot sup);
    if !drain then begin
      List.iter
        (fun r ->
           if r.kill = None then begin
             r.kill <- Some "drain";
             safe_kill r.pid Sys.sigterm
           end)
        !running;
      if !running = [] then result := Some 0
    end
    else if opts.exit_when_idle && !submitted_any && !running = []
            && Supervisor.all_terminal sup
    then result := Some 0;
    (* service gauges *)
    let counts = Supervisor.counts sup in
    let c k = float_of_int (List.assoc k counts) in
    Obs.Metrics.set g_queue (c "queued");
    Obs.Metrics.set g_running (float_of_int (List.length !running));
    Obs.Metrics.set g_retried (c "retried");
    Obs.Metrics.set g_quarantined (c "quarantined");
    Obs.Metrics.set g_shed (c "shed");
    Obs.Metrics.set g_journal (float_of_int (Wal.bytes wal));
    Obs.Metrics.set g_uptime (Unix.gettimeofday () -. started_at)
  done;
  Wal.close wal;
  if !drain then logf "drained; journal flushed at %s" opts.journal_dir;
  Option.value ~default:0 !result
