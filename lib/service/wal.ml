(* Write-ahead journal for the campaign job queue; see wal.mli. *)

module Json = Obs.Json

type record =
  | Submit of int * Json.t
  | Start of int * int
  | Checkpoint_ref of int * string
  | Finish of int * string * string
  | Fail of int * int * string
  | Shed of int * float
  | Cancel of int
  | Quarantine of int * int
  | Snapshot of Json.t

let record_to_json = function
  | Submit (id, spec) ->
    Json.Obj [ ("kind", Json.Str "submit"); ("id", Json.Int id);
               ("spec", spec) ]
  | Start (id, attempt) ->
    Json.Obj [ ("kind", Json.Str "start"); ("id", Json.Int id);
               ("attempt", Json.Int attempt) ]
  | Checkpoint_ref (id, path) ->
    Json.Obj [ ("kind", Json.Str "checkpoint-ref"); ("id", Json.Int id);
               ("path", Json.Str path) ]
  | Finish (id, verdict, report) ->
    Json.Obj [ ("kind", Json.Str "finish"); ("id", Json.Int id);
               ("verdict", Json.Str verdict); ("report", Json.Str report) ]
  | Fail (id, attempt, reason) ->
    Json.Obj [ ("kind", Json.Str "fail"); ("id", Json.Int id);
               ("attempt", Json.Int attempt); ("reason", Json.Str reason) ]
  | Shed (id, scale) ->
    Json.Obj [ ("kind", Json.Str "shed"); ("id", Json.Int id);
               ("scale", Json.Float scale) ]
  | Cancel id -> Json.Obj [ ("kind", Json.Str "cancel"); ("id", Json.Int id) ]
  | Quarantine (id, attempts) ->
    Json.Obj [ ("kind", Json.Str "quarantine"); ("id", Json.Int id);
               ("attempts", Json.Int attempts) ]
  | Snapshot state ->
    Json.Obj [ ("kind", Json.Str "snapshot"); ("state", state) ]

let record_of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let flt key = Option.bind (Json.member key j) Json.to_float_opt in
  match str "kind" with
  | Some "submit" ->
    (match (int "id", Json.member "spec" j) with
     | Some id, Some spec -> Ok (Submit (id, spec))
     | _ -> Error "journal: bad submit record")
  | Some "start" ->
    (match (int "id", int "attempt") with
     | Some id, Some a -> Ok (Start (id, a))
     | _ -> Error "journal: bad start record")
  | Some "checkpoint-ref" ->
    (match (int "id", str "path") with
     | Some id, Some p -> Ok (Checkpoint_ref (id, p))
     | _ -> Error "journal: bad checkpoint-ref record")
  | Some "finish" ->
    (match (int "id", str "verdict", str "report") with
     | Some id, Some v, Some r -> Ok (Finish (id, v, r))
     | _ -> Error "journal: bad finish record")
  | Some "fail" ->
    (match (int "id", int "attempt", str "reason") with
     | Some id, Some a, Some r -> Ok (Fail (id, a, r))
     | _ -> Error "journal: bad fail record")
  | Some "shed" ->
    (match (int "id", flt "scale") with
     | Some id, Some s -> Ok (Shed (id, s))
     | _ -> Error "journal: bad shed record")
  | Some "cancel" ->
    (match int "id" with
     | Some id -> Ok (Cancel id)
     | None -> Error "journal: bad cancel record")
  | Some "quarantine" ->
    (match (int "id", int "attempts") with
     | Some id, Some a -> Ok (Quarantine (id, a))
     | _ -> Error "journal: bad quarantine record")
  | Some "snapshot" ->
    (match Json.member "state" j with
     | Some state -> Ok (Snapshot state)
     | None -> Error "journal: bad snapshot record")
  | Some k -> Error (Printf.sprintf "journal: unknown record kind %S" k)
  | None -> Error "journal: record without kind"

let frame r =
  let payload = Json.to_string (record_to_json r) in
  Printf.sprintf "{\"crc\":\"0x%08lx\",\"rec\":%s}\n"
    (Symex.Checkpoint.crc32 payload) payload

(* ---- segments ---- *)

let segment_name n = Printf.sprintf "wal-%06d.log" n

let segment_of_name name =
  if String.length name = 14
     && String.sub name 0 4 = "wal-"
     && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 6)
  else None

type t = {
  dir : string;
  segment_bytes : int;
  mutable seg : int;          (* active segment index *)
  mutable fd : Unix.file_descr;
  mutable seg_bytes : int;    (* bytes in the active segment *)
}

let bytes t = t.seg_bytes
let segment_index t = t.seg
let needs_rotation t = t.seg_bytes > t.segment_bytes

let write_all fd s =
  let buf = Bytes.of_string s in
  let n = Bytes.length buf in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd buf !written (n - !written)
  done

(* One line of a segment -> record.  Returns None on any damage: the
   caller stops replaying the segment there. *)
let decode_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j ->
    (match
       ( Option.bind (Json.member "crc" j) Json.to_string_opt,
         Json.member "rec" j )
     with
     | Some crc, Some rec_ ->
       let expect =
         Printf.sprintf "0x%08lx" (Symex.Checkpoint.crc32 (Json.to_string rec_))
       in
       if String.lowercase_ascii crc = expect then
         match record_of_json rec_ with Ok r -> Some r | Error _ -> None
       else None
     | _ -> None)

(* Replay one segment: records until the first damaged line, plus the
   count of bytes dropped after it (the damaged line and everything
   following — once framing is broken nothing later can be trusted). *)
let replay_segment path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic len)
  in
  let records = ref [] in
  let pos = ref 0 in
  let n = String.length contents in
  let damaged = ref false in
  while (not !damaged) && !pos < n do
    match String.index_from_opt contents !pos '\n' with
    | None -> damaged := true (* torn tail: no newline *)
    | Some nl ->
      let line = String.sub contents !pos (nl - !pos) in
      (match decode_line line with
       | Some r ->
         records := r :: !records;
         pos := nl + 1
       | None -> damaged := true)
  done;
  (List.rev !records, n - !pos)

let list_segments dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun name ->
      match segment_of_name name with
      | Some n -> Some (n, Filename.concat dir name)
      | None -> None)
  |> List.sort compare

(* A Snapshot record supersedes everything before it. *)
let compact records =
  let rec go acc = function
    | [] -> List.rev acc
    | (Snapshot _ as s) :: tl -> go [ s ] tl
    | r :: tl -> go (r :: acc) tl
  in
  go [] records

let open_dir ?(segment_bytes = 1 lsl 20) dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  (* Interrupted-rotation leftovers are not part of the journal. *)
  Array.iter
    (fun name ->
       if Filename.check_suffix name ".tmp" then
         try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir);
  let segments = list_segments dir in
  let records, dropped =
    List.fold_left
      (fun (acc, dropped) (_, path) ->
         let rs, d = replay_segment path in
         (acc @ rs, dropped + d))
      ([], 0) segments
  in
  let records = compact records in
  let seg =
    match List.rev segments with (n, _) :: _ -> n | [] -> 0
  in
  let path = Filename.concat dir (segment_name seg) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let seg_bytes = (Unix.fstat fd).Unix.st_size in
  ({ dir; segment_bytes; seg; fd; seg_bytes }, records, dropped)

let append t r =
  let line = frame r in
  if Chaos.fire Chaos.Journal_truncate then begin
    (* A crash mid-append: half the frame reaches the disk and the
       writing process is gone.  Recovery must drop the torn tail. *)
    write_all t.fd (String.sub line 0 (String.length line / 2));
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Unix.kill (Unix.getpid ()) Sys.sigkill
  end;
  write_all t.fd line;
  Unix.fsync t.fd;
  t.seg_bytes <- t.seg_bytes + String.length line

let rotate t ~snapshot =
  let next = t.seg + 1 in
  let path = Filename.concat t.dir (segment_name next) in
  (* The new segment (snapshot included) becomes visible atomically and
     durably before any old segment is removed. *)
  Json.write_atomic path (frame (Snapshot snapshot));
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
  let old = list_segments t.dir in
  List.iter
    (fun (n, p) -> if n < next then try Sys.remove p with Sys_error _ -> ())
    old;
  t.seg <- next;
  t.fd <- fd;
  t.seg_bytes <- (Unix.fstat fd).Unix.st_size

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
