(** Thin client for the campaign daemon's frame protocol.

    One TCP connection per request: connect, send one
    {!Symex.Transport} JSON frame, read one reply, close.  Every
    helper returns [Error msg] instead of raising — connection
    refused, a dead daemon mid-reply, or an ["ok": false] reply all
    surface as the error string. *)

val request :
  host:string -> port:int -> Obs.Json.t -> (Obs.Json.t, string) result
(** Send a raw frame and return the raw reply (network errors as
    [Error]; the reply's ["ok"] field is {e not} interpreted). *)

val submit : host:string -> port:int -> Jobspec.t -> (int, string) result
(** Returns the job id.  The daemon fsyncs the journal before
    replying, so an [Ok id] is durable. *)

val status : host:string -> port:int -> (Obs.Json.t, string) result
(** The full status document (uptime, counts, journal, per-job rows). *)

val cancel : host:string -> port:int -> int -> (unit, string) result

val drain : host:string -> port:int -> (unit, string) result
(** Ask the daemon to drain: checkpoint running jobs, flush, exit 0. *)

val ping : host:string -> port:int -> (int, string) result
(** Returns the daemon's pid. *)
