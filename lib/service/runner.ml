(* Forked job-process body; see runner.mli for the exit-code contract. *)

module Json = Obs.Json
module Engine = Symex.Engine
module Budget = Symex.Budget
module Checkpoint = Symex.Checkpoint

let report_path ~journal_dir id =
  Filename.concat journal_dir (Printf.sprintf "job-%d-report.json" id)

let checkpoint_path ~journal_dir id =
  Filename.concat journal_dir (Printf.sprintf "job-%d.ck" id)

let sigkill_self () = Unix.kill (Unix.getpid ()) Sys.sigkill

let scaled_limits (spec : Jobspec.t) ~budget_scale =
  let scale_int v =
    Option.map
      (fun n -> max 1 (int_of_float (Float.round (float_of_int n *. budget_scale))))
      v
  in
  {
    Budget.unlimited with
    Budget.max_paths = scale_int spec.Jobspec.max_paths;
    max_seconds =
      Option.map (fun s -> Float.max 0.05 (s *. budget_scale))
        spec.Jobspec.max_seconds;
    max_memory_mb = scale_int spec.Jobspec.max_memory_mb;
  }

let run_random ~rpt_path ~label (spec : Jobspec.t) thunk =
  let seed = Option.value ~default:42 spec.Jobspec.seed in
  let rr =
    Engine.random_test ~seed ~max_trials:spec.Jobspec.trials
      ?max_seconds:spec.Jobspec.max_seconds ~workers:spec.Jobspec.workers thunk
  in
  (* Only deterministic fields go in the artifact: kill-and-resume
     equivalence is checked by diffing these files. *)
  let failure =
    match rr.Engine.failure with
    | None -> Json.Null
    | Some (e, trial) ->
      Json.Obj
        [
          ("site", Json.Str e.Symex.Error.site);
          ("kind", Json.Str (Symex.Error.kind_to_string e.Symex.Error.kind));
          ("trial", Json.Int trial);
        ]
  in
  let verdict = match rr.Engine.failure with None -> "Pass" | Some _ -> "Fail (1)" in
  Json.save rpt_path
    (Json.Obj
       [
         ("test", Json.Str label);
         ("mode", Json.Str "random");
         ("seed", Json.Int rr.Engine.seed);
         ("trials", Json.Int rr.Engine.trials);
         ("rejected", Json.Int rr.Engine.rejected);
         ("failure", failure);
         ("verdict", Json.Str verdict);
       ]);
  0

let run_symbolic ~rpt_path ~ck_path ~checkpoint_every_s ~label
    (spec : Jobspec.t) ~budget_scale thunk =
  let resume =
    if Sys.file_exists ck_path then
      match Checkpoint.load ck_path with Ok ck -> Some ck | Error _ -> None
    else None
  in
  let policy =
    { Checkpoint.write = Checkpoint.save ck_path; every_s = checkpoint_every_s }
  in
  let session =
    Engine.Session.make
      ?strategy:(Option.bind spec.Jobspec.strategy Symex.Search.strategy_of_string)
      ~limits:(scaled_limits spec ~budget_scale)
      ~checkpoint:policy ?resume ?seed:spec.Jobspec.seed
      ~workers:spec.Jobspec.workers ()
  in
  let engine_report = Engine.Session.run ~label session thunk in
  match engine_report.Engine.stop_reason with
  | Some Budget.Interrupt ->
    (* Drained: the policy wrote a final checkpoint when the run
       stopped; the next attempt resumes from it. *)
    3
  | _ ->
    Symsysc.Report.save_json rpt_path
      (Symsysc.Report.make label engine_report);
    (try if Sys.file_exists ck_path then Sys.remove ck_path
     with Sys_error _ -> ());
    0

let exec ~journal_dir ~checkpoint_every_s ~id ~attempt ~budget_scale spec =
  if Chaos.active () then Chaos.reseed ((id * 1000) + attempt);
  if Chaos.fire Chaos.Job_crash then sigkill_self ();
  Engine.add_path_start_hook (fun () ->
      if Chaos.fire Chaos.Job_crash then sigkill_self ());
  Budget.clear_interrupt ();
  Budget.install_signal_handlers ();
  let rpt_path = report_path ~journal_dir id in
  let ck_path = checkpoint_path ~journal_dir id in
  let label = Jobspec.label spec in
  match Jobspec.thunk spec with
  | Error msg ->
    prerr_endline ("job spec error: " ^ msg);
    1
  | Ok thunk ->
    (try
       match spec.Jobspec.mode with
       | Jobspec.Random -> run_random ~rpt_path ~label spec thunk
       | Jobspec.Symbolic ->
         run_symbolic ~rpt_path ~ck_path ~checkpoint_every_s ~label spec
           ~budget_scale thunk
     with exn ->
       prerr_endline ("job failed: " ^ Printexc.to_string exn);
       1)
