(** The campaign daemon: accept jobs, run them, survive everything.

    One [run] call owns a journal directory and a listening socket and
    loops: accept client frames (submit / status / cancel / drain /
    ping), fork one {!Runner} process per runnable job, reap exits into
    {!Supervisor} transitions, and keep the {!Wal} ahead of every state
    change.  Durability is the journal's job; this module's job is the
    process tree and the degradation ladder:

    + {b admission cap} — at most [max_jobs] job processes run at once;
      the rest wait Queued.
    + {b memory pressure} — while [pressure_mb () > mem_watermark_mb],
      admission pauses, and if more than one job is running the newest
      is shed: SIGTERM, checkpoint, re-queued with its budget halved
      ([Shed] journaled, surfaced in status counts).  Shedding never
      reduces the pool below one job, so the campaign always makes
      progress.
    + {b drain} — SIGTERM/SIGINT (or a client [drain] frame) stops
      admission, SIGTERMs every running job (each checkpoints and exits
      3), records their checkpoint refs, and returns 0 with the journal
      fully flushed.  A restart on the same journal resumes every
      unfinished job from its checkpoint.

    Per-job failures go through the supervisor's retry/backoff circuit
    breaker; a job that exceeds [job_timeout_s] is SIGKILLed and
    counted as a failed attempt.

    Chaos: the [service-kill] point (drawn once per loop tick) SIGKILLs
    the daemon itself — recovery is the next [run] on the same journal.

    {1 Client protocol}

    One length-prefixed {!Symex.Transport} JSON frame per connection,
    one frame back:

    {v
      {"cmd":"submit","spec":{...}}  -> {"ok":true,"id":N}   (fsynced first)
      {"cmd":"status"}               -> {"ok":true,"uptime":...,"counts":{...},
                                         "journal":{...},"jobs":[...]}
      {"cmd":"cancel","id":N}        -> {"ok":true|false,...}
      {"cmd":"drain"}                -> {"ok":true}
      {"cmd":"ping"}                 -> {"ok":true,"pid":N}
    v} *)

type opts = {
  journal_dir : string;
  max_jobs : int;              (** concurrent job processes (>= 1) *)
  job_retries : int;           (** failed attempts before quarantine *)
  job_timeout_s : float option;      (** per-job wall clock; None = none *)
  mem_watermark_mb : float option;   (** pressure threshold; None = off *)
  segment_bytes : int;         (** journal rotation threshold *)
  backoff_seed : int;          (** retry-backoff jitter seed *)
  checkpoint_every_s : float;  (** job checkpoint period *)
  poll_s : float;              (** loop tick / accept timeout *)
  exit_when_idle : bool;
      (** return 0 once at least one job was ever submitted and all
          jobs are terminal — for batch campaigns and CI *)
}

val default_opts : journal_dir:string -> opts
(** max_jobs 2, job_retries 2, no timeout, no watermark, 1 MiB
    segments, backoff seed 1, checkpoint every 0.5 s, 50 ms poll,
    [exit_when_idle] false. *)

val run :
  ?pressure_mb:(unit -> float) -> listener:Symex.Transport.listener -> opts -> int
(** Run until drained (or idle, with [exit_when_idle]); returns the
    process exit code (0 on a clean drain).  The caller owns the
    listener.  [pressure_mb] defaults to {!Symex.Budget.heap_mb} (the
    daemon's own heap) and exists so tests can inject pressure. *)
