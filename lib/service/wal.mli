(** Write-ahead journal for the campaign job queue.

    The journal is the daemon's only durable state: every queue
    transition is appended as one CRC-32-framed record and [fsync]ed
    {e before} the transition is acknowledged (to a client) or acted on
    (a job started).  A daemon killed at any instant — including
    mid-append — recovers by replaying the journal: the job table is
    rebuilt, jobs whose [Start] has no matching terminal record are
    re-queued (resuming from their [Checkpoint_ref] artifact when one
    was recorded), and a torn tail record is dropped rather than
    trusted.

    {1 On-disk format}

    A journal directory holds numbered segments [wal-NNNNNN.log].  Each
    record is one line:

    {v {"crc":"0xXXXXXXXX","rec":{"kind":...,...}} v}

    where the CRC-32 ({!Symex.Checkpoint.crc32} — the same polynomial
    as the checkpoint envelope) covers the serialized [rec] value.
    Replay verifies every line; the first bad line of a segment (torn
    tail, corrupt CRC, garbage) stops that segment's replay and the
    remaining bytes are counted in [dropped] — never silently
    interpreted.

    {1 Rotation}

    [rotate] compacts: the live state is serialized as one [Snapshot]
    record into a {e new} segment written atomically
    ({!Obs.Json.write_atomic}: fsync file and directory before and
    after the rename), and only then are older segments unlinked.  A
    crash at any point leaves either the old segments (rotation not yet
    visible) or the new one (snapshot durable) — replay handles both,
    because a [Snapshot] record supersedes everything before it. *)

type record =
  | Submit of int * Obs.Json.t          (** job id, {!Jobspec} JSON *)
  | Start of int * int                  (** job id, 1-based attempt *)
  | Checkpoint_ref of int * string      (** job id, checkpoint artifact *)
  | Finish of int * string * string     (** job id, verdict, report path *)
  | Fail of int * int * string          (** job id, attempt, reason *)
  | Shed of int * float                 (** job id, new budget scale *)
  | Cancel of int                       (** job id *)
  | Quarantine of int * int             (** job id, failed attempts *)
  | Snapshot of Obs.Json.t              (** compaction state *)

val record_to_json : record -> Obs.Json.t
val record_of_json : Obs.Json.t -> (record, string) result

val frame : record -> string
(** The exact bytes {!append} puts in the segment (one line, newline
    included) — exposed for tests that corrupt journals surgically. *)

type t

val open_dir : ?segment_bytes:int -> string -> t * record list * int
(** Open (creating the directory if needed) and recover: returns the
    journal ready for appending, the replayed records (oldest first,
    already compacted — records before the last [Snapshot] are
    dropped), and the count of bytes that failed CRC/framing and were
    discarded.  Leftover [.tmp] files from an interrupted rotation are
    removed.  [segment_bytes] (default 1 MiB) is the rotation
    threshold reported by {!needs_rotation}. *)

val append : t -> record -> unit
(** Frame, write and [fsync] one record — durable when the call
    returns, which is what lets callers ack.  With a {!Chaos} spec
    armed, the [journal-truncate] point writes half the frame and
    kills the process (SIGKILL semantics), simulating a crash
    mid-append; recovery drops the torn tail. *)

val bytes : t -> int
(** Bytes in the active segment. *)

val segment_index : t -> int

val needs_rotation : t -> bool

val rotate : t -> snapshot:Obs.Json.t -> unit
(** Start a fresh segment whose first record is [Snapshot snapshot],
    then unlink the older segments.  Atomic as described above. *)

val close : t -> unit
