(* Campaign-daemon client; see client.mli. *)

module Json = Obs.Json
module Transport = Symex.Transport

let request ~host ~port req =
  Transport.init ();
  match Transport.connect ~host ~port with
  | exception (Transport.Disconnected msg) -> Error msg
  | exception (Unix.Unix_error (e, _, _)) -> Error (Unix.error_message e)
  | conn ->
    Fun.protect
      ~finally:(fun () -> Transport.close conn)
      (fun () ->
         match
           Transport.write_frame conn req;
           Transport.read_frame conn
         with
         | reply -> Ok reply
         | exception (Transport.Disconnected msg) -> Error msg
         | exception (Unix.Unix_error (e, _, _)) ->
           Error (Unix.error_message e))

(* Unwrap {"ok":bool,...}: an ok:false reply's "error" is the error. *)
let checked ~host ~port req =
  match request ~host ~port req with
  | Error _ as e -> e
  | Ok reply ->
    (match Option.bind (Json.member "ok" reply) Json.to_bool_opt with
     | Some true -> Ok reply
     | _ ->
       Error
         (Option.bind (Json.member "error" reply) Json.to_string_opt
          |> Option.value ~default:"daemon refused the request"))

let submit ~host ~port spec =
  match
    checked ~host ~port
      (Json.Obj [ ("cmd", Json.Str "submit"); ("spec", Jobspec.to_json spec) ])
  with
  | Error _ as e -> e
  | Ok reply ->
    (match Option.bind (Json.member "id" reply) Json.to_int_opt with
     | Some id -> Ok id
     | None -> Error "daemon reply without a job id")

let status ~host ~port =
  checked ~host ~port (Json.Obj [ ("cmd", Json.Str "status") ])

let cancel ~host ~port id =
  Result.map ignore
    (checked ~host ~port
       (Json.Obj [ ("cmd", Json.Str "cancel"); ("id", Json.Int id) ]))

let drain ~host ~port =
  Result.map ignore (checked ~host ~port (Json.Obj [ ("cmd", Json.Str "drain") ]))

let ping ~host ~port =
  match checked ~host ~port (Json.Obj [ ("cmd", Json.Str "ping") ]) with
  | Error _ as e -> e
  | Ok reply ->
    (match Option.bind (Json.member "pid" reply) Json.to_int_opt with
     | Some pid -> Ok pid
     | None -> Error "daemon reply without a pid")
