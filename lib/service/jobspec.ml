(* Campaign job descriptions; see jobspec.mli. *)

module Json = Obs.Json
module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

type mode = Symbolic | Random

let mode_to_string = function Symbolic -> "symbolic" | Random -> "random"

let mode_of_string = function
  | "symbolic" -> Some Symbolic
  | "random" -> Some Random
  | _ -> None

type t = {
  peripheral : string;
  test : string;
  mode : mode;
  strategy : string option;
  seed : int option;
  trials : int;
  max_paths : int option;
  max_seconds : float option;
  max_memory_mb : int option;
  workers : int;
  num_sources : int;
  t5_len : int;
}

let default =
  {
    peripheral = "plic";
    test = "T1";
    mode = Symbolic;
    strategy = None;
    seed = None;
    trials = 256;
    max_paths = None;
    max_seconds = None;
    max_memory_mb = None;
    workers = 1;
    num_sources = 4;
    t5_len = 8;
  }

let known_tests = function
  | "plic" -> List.map fst Symsysc.Tests.all
  | "clint" -> [ "timer" ]
  | "uart" -> [ "loopback" ]
  | _ -> []

let validate t =
  let ( let* ) = Result.bind in
  let* () =
    match known_tests t.peripheral with
    | [] -> Error (Printf.sprintf "unknown peripheral %S" t.peripheral)
    | tests ->
      if List.mem t.test tests then Ok ()
      else
        Error
          (Printf.sprintf "unknown test %S for %s (have: %s)" t.test
             t.peripheral (String.concat ", " tests))
  in
  let* () =
    match t.strategy with
    | None -> Ok ()
    | Some s ->
      (match Symex.Search.strategy_of_string s with
       | Some _ -> Ok ()
       | None -> Error (Printf.sprintf "unknown strategy %S" s))
  in
  let* () = if t.workers >= 1 then Ok () else Error "workers must be >= 1" in
  let* () = if t.trials >= 1 then Ok () else Error "trials must be >= 1" in
  let* () =
    if t.num_sources >= 1 then Ok () else Error "num_sources must be >= 1"
  in
  if t.t5_len >= 1 then Ok () else Error "t5_len must be >= 1"

let describe t =
  Printf.sprintf "%s/%s %s%s" t.peripheral t.test (mode_to_string t.mode)
    (match t.strategy with Some s -> " " ^ s | None -> "")

let label t =
  match t.peripheral with
  | "plic" -> t.test
  | p -> p ^ "-" ^ t.test

(* ---- JSON ---- *)

let opt_int = function Some n -> Json.Int n | None -> Json.Null
let opt_float = function Some f -> Json.Float f | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let to_json t =
  Json.Obj
    [
      ("peripheral", Json.Str t.peripheral);
      ("test", Json.Str t.test);
      ("mode", Json.Str (mode_to_string t.mode));
      ("strategy", opt_str t.strategy);
      ("seed", opt_int t.seed);
      ("trials", Json.Int t.trials);
      ("max_paths", opt_int t.max_paths);
      ("max_seconds", opt_float t.max_seconds);
      ("max_memory_mb", opt_int t.max_memory_mb);
      ("workers", Json.Int t.workers);
      ("num_sources", Json.Int t.num_sources);
      ("t5_len", Json.Int t.t5_len);
    ]

let of_json j =
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  let flt key = Option.bind (Json.member key j) Json.to_float_opt in
  match (str "peripheral", str "test", Option.bind (str "mode") mode_of_string)
  with
  | Some peripheral, Some test, Some mode ->
    let t =
      {
        peripheral;
        test;
        mode;
        strategy = str "strategy";
        seed = int "seed";
        trials = Option.value ~default:default.trials (int "trials");
        max_paths = int "max_paths";
        max_seconds = flt "max_seconds";
        max_memory_mb = int "max_memory_mb";
        workers = Option.value ~default:1 (int "workers");
        num_sources =
          Option.value ~default:default.num_sources (int "num_sources");
        t5_len = Option.value ~default:default.t5_len (int "t5_len");
      }
    in
    (match validate t with Ok () -> Ok t | Error msg -> Error msg)
  | _ -> Error "job spec: missing peripheral/test/mode"

(* ---- testbenches ---- *)

(* The CLINT timer property (the clint_timer example at unit-test
   scale): for every comparator in 1..5 the interrupt asserts exactly
   at the comparator instant, never earlier. *)
let clint_timer () =
  let tick = Clint.Config.fe310.Clint.Config.tick in
  let sched = Pk.Scheduler.create () in
  let clint = Clint.create Clint.Config.fe310 sched in
  let port = Clint.Port.create () in
  Clint.connect clint port;
  Pk.Scheduler.run_ready sched;
  let cmp = Engine.fresh "mtimecmp" 64 in
  Engine.assume
    (Expr.and_
       (Expr.uge cmp (Expr.int ~width:64 1))
       (Expr.ule cmp (Expr.int ~width:64 5)));
  let data =
    Array.init 8 (fun i -> Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) cmp)
  in
  let p =
    Payload.make_write
      ~addr:(Value.of_int Clint.mtimecmp_base)
      ~len:(Value.of_int 8) ~data
  in
  ignore (Clint.transport clint p Sc_time.zero);
  Engine.check ~site:"clint:not-early" ~message:"timer fired early"
    (Expr.bool (not port.Clint.Port.timer_pending));
  Pk.Scheduler.run_until sched (Sc_time.mul_int tick 10);
  Engine.check ~site:"clint:fired" ~message:"timer never fired"
    (Expr.bool port.Clint.Port.timer_pending);
  let fired_tick =
    Int64.div
      (Sc_time.to_ps port.Clint.Port.last_timer_time)
      (Sc_time.to_ps tick)
  in
  Engine.check ~site:"clint:exact" ~message:"timer fired at a wrong tick"
    (Expr.eq (Expr.const (Bv.make ~width:64 fired_tick)) cmp)

(* The UART loopback property: any received byte reads back intact. *)
let uart_loopback () =
  let sched = Pk.Scheduler.create () in
  let uart = Uart.create sched in
  Pk.Scheduler.run_ready sched;
  let data = Engine.fresh "rx_byte" 32 in
  Engine.assume (Value.le data (Value.of_int 0xFF));
  Uart.receive_byte uart data;
  let p =
    Payload.make_read ~addr:(Value.of_int Uart.rxdata_base)
      ~len:(Value.of_int 4)
  in
  ignore (Uart.transport uart p Sc_time.zero);
  Engine.check ~site:"uart:loopback" ~message:"byte corrupted"
    (Value.eq (Payload.data32 p) data)

let thunk t =
  match (t.peripheral, t.test) with
  | "plic", name ->
    (match Symsysc.Tests.by_name name with
     | Some test ->
       let params =
         Symsysc.Tests.scaled_params ~num_sources:t.num_sources
           ~t5_max_len:t.t5_len
       in
       Ok (test params)
     | None -> Error (Printf.sprintf "unknown PLIC test %S" name))
  | "clint", "timer" -> Ok clint_timer
  | "uart", "loopback" -> Ok uart_loopback
  | p, n -> Error (Printf.sprintf "unknown job %s/%s" p n)
