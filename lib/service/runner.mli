(** The body of a forked job process.

    The daemon forks one process per job attempt and the child calls
    {!exec}, whose return value becomes the process exit code.  The
    contract with the parent:

    - {b 0} — the job finished: its report is durably written to
      {!report_path} (atomic replace) and the checkpoint artifact, if
      any, has been removed.
    - {b 3} — the job was drained: a SIGTERM (or SIGINT) interrupted
      the exploration, a final checkpoint is durable at
      {!checkpoint_path}, and no report was written.  The parent
      re-queues the job; the next attempt resumes from the checkpoint.
    - anything else (including death by signal) — a crash.  The parent
      retries with backoff and eventually quarantines.

    Chaos: when a spec is armed the child re-seeds deterministically
    from [(id, attempt)] so retried attempts draw fresh fault
    schedules, and the [job-crash] point (drawn at start and at every
    path start) kills the process with SIGKILL — the crash the
    supervisor must absorb. *)

val report_path : journal_dir:string -> int -> string
(** [<journal_dir>/job-<id>-report.json] *)

val checkpoint_path : journal_dir:string -> int -> string
(** [<journal_dir>/job-<id>.ck] *)

val exec :
  journal_dir:string ->
  checkpoint_every_s:float ->
  id:int ->
  attempt:int ->
  budget_scale:float ->
  Jobspec.t ->
  int
(** Run the job to an exit code (see above).  [budget_scale] shrinks
    the spec's path/time/memory budgets (memory-pressure sheds halve
    it); the scaled budgets floor at 1 path / 0.05 s / 1 MB so a
    much-shed job still makes progress. *)
