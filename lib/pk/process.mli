(** Thread-to-function translated SystemC processes.

    A SystemC thread is non-preemptive: it runs until it yields via
    [wait(...)] or terminates.  The paper's pre-processing step (Fig. 3
    and Fig. 4) rewrites each thread into a plain function that is
    called once per activation; the function keeps its progress in a
    static position variable and {e returns} at every context switch
    after recording what it is waiting for.

    This module is the OCaml contract of that translation: a process
    body is a function [unit -> wait] executed once per activation.
    State that must survive across activations lives in the enclosing
    module's mutable fields (the analogue of the C++ static locals), and
    the returned {!wait} value is the recorded context switch. *)

type wait =
  | Wait_event of Event.t       (** [wait(e)] — dynamic sensitivity *)
  | Wait_any of Event.t list    (** [wait(e1 | e2 | ...)] *)
  | Wait_time of Sc_time.t      (** [wait(t)] — timed suspension *)
  | Wait_delta                  (** [wait(SC_ZERO_TIME)] — next delta *)
  | Terminate                   (** the thread returned *)

type status = Ready | Waiting | Terminated

type t = {
  proc_name : string;
  proc_id : int;
  body : unit -> wait;
  mutable status : status;
}

val make : string -> (unit -> wait) -> t
(** Allocate a process with a unique id.  The process must still be
    registered with a scheduler ({!Scheduler.spawn}). *)

val reset_ids : unit -> unit
(** Reset the id counter; the symbolic engine calls this at every path
    start so re-executed testbenches allocate deterministic ids. *)

val pp : Format.formatter -> t -> unit

(** Helper for writing translated bodies with an explicit label, exactly
    mirroring the [enum class Label] + [switch] header of Fig. 4. *)
module Fsm : sig
  type 'label t

  val make : init:'label -> 'label t

  val position : 'label t -> 'label
  (** Current resume label (the static [position] variable). *)

  val set : 'label t -> 'label -> unit
  (** Overwrite the resume label (used when restoring a snapshot). *)

  val suspend : 'label t -> at:'label -> wait -> wait
  (** Record the resume label and yield — the translated [wait()]. *)
end
