type pending =
  | Not_notified
  | Delta
  | At of Sc_time.t

type t = {
  ev_name : string;
  ev_id : int;
  mutable waiters : (int * int) list;
  mutable pending : pending;
}

let next_id = ref 0

(* Registry of live events by id, so scheduler snapshots can store bare
   ids and resolve them against the current run's objects on restore.
   The symbolic engine resets it at every path start (ids are then
   deterministic per path); outside the engine it simply accumulates. *)
let registry : (int, t) Hashtbl.t = Hashtbl.create 64

let make ev_name =
  let ev_id = !next_id in
  incr next_id;
  let t = { ev_name; ev_id; waiters = []; pending = Not_notified } in
  Hashtbl.replace registry ev_id t;
  t

let reset_ids () =
  next_id := 0;
  Hashtbl.reset registry

let find id = Hashtbl.find_opt registry id

let fold f acc =
  Hashtbl.fold (fun _ ev acc -> f ev acc) registry acc

let name t = t.ev_name

let pp ppf t =
  let pp_pending ppf = function
    | Not_notified -> Format.pp_print_string ppf "idle"
    | Delta -> Format.pp_print_string ppf "delta"
    | At time -> Sc_time.pp ppf time
  in
  Format.fprintf ppf "%s#%d[%a, %d waiting]" t.ev_name t.ev_id pp_pending
    t.pending (List.length t.waiters)
