(** The Peripheral Kernel scheduler (Fig. 5 of the paper).

    The scheduler keeps track of waiting processes, scheduled events and
    the simulation time.  Waiting processes and pending notifications
    are managed in a sorted wakelist (a binary min-heap keyed by time
    and insertion order).  Every simulation step advances the global
    time by the maximum amount possible without skipping a waiting
    event, then calls all threads that are scheduled for that time —
    this is the [pkernel_step()] the testbenches of the paper call.

    Within one timestamp, processes run in deterministic
    registration/notification order.  The SystemC LRM leaves the order
    of same-time processes unspecified, so any fixed order is a valid
    refinement (the paper makes the same argument for its PK). *)

type t

val create : unit -> t

val now : t -> Sc_time.t

val spawn : t -> Process.t -> unit
(** Register a process.  Its body runs for the first time during the
    initialization delta cycle of the next [step]/[run_ready] call, as
    SystemC threads do at simulation start. *)

val notify : t -> Event.t -> unit
(** Immediate notification: waiters become runnable in the current
    evaluation phase. *)

val notify_delta : t -> Event.t -> unit
(** Notification for the next delta cycle. *)

val notify_at : t -> Event.t -> Sc_time.t -> unit
(** Timed notification [delay] after the current time.  Per the SystemC
    LRM, a pending notification is only overridden by an earlier one. *)

val cancel : t -> Event.t -> unit
(** Remove any pending notification of the event. *)

val run_ready : t -> unit
(** Run evaluation and delta cycles until no process is runnable at the
    current time.  Does not advance time. *)

val step : t -> bool
(** [pkernel_step]: finish the current time (as [run_ready]), then
    advance to the next scheduled wakeup, fire it, and again run to
    quiescence.  Returns [false] when nothing is scheduled (simulation
    starved). *)

val run_until : t -> Sc_time.t -> unit
(** Repeatedly [step] while the next wakeup is no later than the given
    absolute time. *)

val next_wake_time : t -> Sc_time.t option
(** Earliest pending wakeup, if any. *)

val pending_count : t -> int
(** Number of live entries in the wakelist (stale entries excluded). *)

(** Cumulative counters for benchmarks. *)
type stats = {
  activations : int;   (** process body calls *)
  delta_cycles : int;
  events_fired : int;
  time_advances : int;
}

val stats : t -> stats

exception Activation_limit_exceeded
(** Raised when a single [run_ready] performs more than a million
    activations — a runaway zero-delay loop in the model. *)

(** {1 Structural snapshots}

    A [state] captures the scheduler's complete dynamic state —
    simulation time, process statuses and wait epochs, ready/delta
    queues, the wakelist, and every registered event's waiters and
    pending notification — with processes and events referenced by id.
    Restoring resolves those ids against the {e current} run's objects
    (via the {!Event} registry and the process table), so a snapshot
    taken in one re-execution can be restored into another as long as
    both created the same processes/events in the same order (the
    symbolic engine guarantees this by resetting id counters at path
    start).  The batch hook is not part of the state. *)

type state

val snapshot : t -> state

val restore : t -> state -> unit
(** Raises [Invalid_argument] when the state references a process or
    event id the current run has not created. *)

val set_batch_hook : t -> (int list -> int list) option -> unit
(** Install a reordering hook over each evaluation batch (the process
    ids runnable at one instant).  The SystemC LRM leaves this order
    unspecified; the symbolic engine can install a forking permutation
    here to explore every legal schedule (see
    [Symsysc.Order.explore_schedules]).  The hook must return a
    permutation of its input. *)
