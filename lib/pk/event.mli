(** SystemC-style events ([sc_event]).

    An event carries the set of processes dynamically waiting on it and
    at most one pending notification (as in the SystemC LRM: a new
    notification only overrides a pending one when it is earlier).
    Events are plain data; scheduling is performed by {!Scheduler}. *)

type pending =
  | Not_notified
  | Delta          (** fires in the next delta cycle *)
  | At of Sc_time.t  (** fires at an absolute simulation time *)

type t = {
  ev_name : string;
  ev_id : int;
  mutable waiters : (int * int) list;
  (** waiting processes as [(process id, wait epoch)]; the epoch lets the
      scheduler lazily discard entries that were satisfied by another
      event of the same multi-event wait *)
  mutable pending : pending;
}

val make : string -> t
(** Allocate a fresh event with a unique id and register it in the
    global id registry (see {!reset_ids}). *)

val reset_ids : unit -> unit
(** Reset the id counter and clear the id registry.  The symbolic
    engine calls this at every path start so that events created by a
    re-executed testbench get identical, deterministic ids. *)

val find : int -> t option
(** Look up a live event by id in the registry. *)

val fold : (t -> 'a -> 'a) -> 'a -> 'a
(** Fold over all registered events (unspecified order). *)

val name : t -> string
val pp : Format.formatter -> t -> unit
