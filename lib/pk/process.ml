type wait =
  | Wait_event of Event.t
  | Wait_any of Event.t list
  | Wait_time of Sc_time.t
  | Wait_delta
  | Terminate

type status = Ready | Waiting | Terminated

type t = {
  proc_name : string;
  proc_id : int;
  body : unit -> wait;
  mutable status : status;
}

let next_id = ref 0

let reset_ids () = next_id := 0

let make proc_name body =
  let proc_id = !next_id in
  incr next_id;
  { proc_name; proc_id; body; status = Ready }

let pp ppf t =
  let status = function
    | Ready -> "ready"
    | Waiting -> "waiting"
    | Terminated -> "terminated"
  in
  Format.fprintf ppf "%s#%d[%s]" t.proc_name t.proc_id (status t.status)

module Fsm = struct
  type 'label t = { mutable pos : 'label }

  let make ~init = { pos = init }
  let position t = t.pos
  let set t pos = t.pos <- pos

  let suspend t ~at wait =
    t.pos <- at;
    wait
end
