exception Activation_limit_exceeded

type wake = Wake_event of Event.t | Wake_process of int

type entry = { at : Sc_time.t; seq : int; wake : wake }

type stats = {
  activations : int;
  delta_cycles : int;
  events_fired : int;
  time_advances : int;
}

type t = {
  mutable time : Sc_time.t;
  procs : (int, Process.t) Hashtbl.t;
  epochs : (int, int) Hashtbl.t;     (* process id -> current wait epoch *)
  mutable ready : int list;          (* reversed FIFO *)
  mutable delta_events : Event.t list;
  mutable delta_procs : int list;
  wakelist : entry Heap.t;
  mutable seq : int;
  mutable activations : int;
  mutable delta_cycles : int;
  mutable events_fired : int;
  mutable time_advances : int;
  mutable batch_hook : (int list -> int list) option;
}

let entry_cmp a b =
  let c = Sc_time.compare a.at b.at in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    time = Sc_time.zero;
    procs = Hashtbl.create 16;
    epochs = Hashtbl.create 16;
    ready = [];
    delta_events = [];
    delta_procs = [];
    wakelist = Heap.create ~cmp:entry_cmp;
    seq = 0;
    activations = 0;
    delta_cycles = 0;
    events_fired = 0;
    time_advances = 0;
    batch_hook = None;
  }

let now t = t.time

let stats t =
  {
    activations = t.activations;
    delta_cycles = t.delta_cycles;
    events_fired = t.events_fired;
    time_advances = t.time_advances;
  }

let epoch t pid =
  match Hashtbl.find_opt t.epochs pid with Some e -> e | None -> 0

let bump_epoch t pid = Hashtbl.replace t.epochs pid (epoch t pid + 1)

let push_wake t at wake =
  let seq = t.seq in
  t.seq <- seq + 1;
  Heap.push t.wakelist { at; seq; wake }

let enqueue_ready t pid = t.ready <- pid :: t.ready

(* Wake every process currently waiting on the event; stale entries
   (whose epoch moved on) are dropped. *)
let fire_event t (ev : Event.t) =
  t.events_fired <- t.events_fired + 1;
  if !Obs.Sink.enabled then
    Obs.Sink.instant ~cat:"kernel" "event:fired"
      ~args:
        [ ("event", Obs.Event.Str ev.Event.ev_name);
          ("waiters", Obs.Event.Int (List.length ev.Event.waiters));
          ("sim_ps", Obs.Event.Int (Int64.to_int (Sc_time.to_ps t.time))) ];
  ev.Event.pending <- Event.Not_notified;
  let waiters = List.rev ev.Event.waiters in
  ev.Event.waiters <- [];
  List.iter
    (fun (pid, ep) ->
       if epoch t pid = ep then begin
         bump_epoch t pid;
         (match Hashtbl.find_opt t.procs pid with
          | Some p when p.Process.status = Process.Waiting ->
            p.Process.status <- Process.Ready;
            enqueue_ready t pid
          | Some _ | None -> ())
       end)
    waiters

let register_wait t (p : Process.t) (w : Process.wait) =
  match w with
  | Process.Terminate -> p.Process.status <- Process.Terminated
  | Process.Wait_event ev ->
    p.Process.status <- Process.Waiting;
    ev.Event.waiters <- (p.Process.proc_id, epoch t p.Process.proc_id) :: ev.Event.waiters
  | Process.Wait_any evs ->
    p.Process.status <- Process.Waiting;
    let ep = epoch t p.Process.proc_id in
    List.iter
      (fun (ev : Event.t) ->
         ev.Event.waiters <- (p.Process.proc_id, ep) :: ev.Event.waiters)
      evs
  | Process.Wait_time d ->
    p.Process.status <- Process.Waiting;
    bump_epoch t p.Process.proc_id;
    (* the epoch bump above invalidates stale event waits; the timed
       wake below carries no epoch and always fires *)
    push_wake t (Sc_time.add t.time d) (Wake_process p.Process.proc_id)
  | Process.Wait_delta ->
    p.Process.status <- Process.Waiting;
    t.delta_procs <- p.Process.proc_id :: t.delta_procs

let spawn t (p : Process.t) =
  Hashtbl.replace t.procs p.Process.proc_id p;
  enqueue_ready t p.Process.proc_id

let notify t ev = fire_event t ev

let notify_delta t (ev : Event.t) =
  match ev.Event.pending with
  | Event.Delta -> ()
  | Event.Not_notified | Event.At _ ->
    (* delta is the earliest possible notification, so it overrides *)
    ev.Event.pending <- Event.Delta;
    if not (List.memq ev t.delta_events) then
      t.delta_events <- ev :: t.delta_events

let notify_at t (ev : Event.t) delay =
  let at = Sc_time.add t.time delay in
  if Sc_time.is_zero delay then notify_delta t ev
  else
    match ev.Event.pending with
    | Event.Delta -> ()
    | Event.At old when Sc_time.(old <= at) -> ()
    | Event.At _ | Event.Not_notified ->
      ev.Event.pending <- Event.At at;
      push_wake t at (Wake_event ev)

let cancel _t (ev : Event.t) = ev.Event.pending <- Event.Not_notified

let set_batch_hook t hook = t.batch_hook <- hook

let apply_batch_hook t batch =
  match t.batch_hook with
  | Some hook when List.length batch > 1 ->
    let permuted = hook batch in
    if List.sort Int.compare permuted <> List.sort Int.compare batch then
      invalid_arg "Scheduler: batch hook must return a permutation";
    permuted
  | Some _ | None -> batch

let run_evaluation t guard =
  while t.ready <> [] do
    let batch = apply_batch_hook t (List.rev t.ready) in
    t.ready <- [];
    List.iter
      (fun pid ->
         match Hashtbl.find_opt t.procs pid with
         | Some p when p.Process.status <> Process.Terminated ->
           incr guard;
           t.activations <- t.activations + 1;
           if !guard > 1_000_000 then raise Activation_limit_exceeded;
           if !Obs.Sink.enabled then
             Obs.Sink.instant ~cat:"kernel" "resume"
               ~args:
                 [ ("process", Obs.Event.Str p.Process.proc_name);
                   ("pid", Obs.Event.Int pid);
                   ("sim_ps",
                    Obs.Event.Int (Int64.to_int (Sc_time.to_ps t.time))) ];
           p.Process.status <- Process.Ready;
           let w = p.Process.body () in
           register_wait t p w
         | Some _ | None -> ())
      batch
  done

let run_delta t =
  (* Returns true when a delta cycle actually ran. *)
  if t.delta_events = [] && t.delta_procs = [] then false
  else begin
    t.delta_cycles <- t.delta_cycles + 1;
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"kernel" "delta-cycle"
        ~args:
          [ ("cycle", Obs.Event.Int t.delta_cycles);
            ("events", Obs.Event.Int (List.length t.delta_events));
            ("processes", Obs.Event.Int (List.length t.delta_procs));
            ("sim_ps", Obs.Event.Int (Int64.to_int (Sc_time.to_ps t.time))) ];
    let evs = List.rev t.delta_events in
    t.delta_events <- [];
    let procs = List.rev t.delta_procs in
    t.delta_procs <- [];
    List.iter
      (fun (ev : Event.t) ->
         if ev.Event.pending = Event.Delta then fire_event t ev)
      evs;
    List.iter
      (fun pid ->
         match Hashtbl.find_opt t.procs pid with
         | Some p when p.Process.status = Process.Waiting ->
           bump_epoch t pid;
           p.Process.status <- Process.Ready;
           enqueue_ready t pid
         | Some _ | None -> ())
      procs;
    true
  end

let run_ready t =
  (* The activation guard spans the delta loop, so a zero-delay
     self-notification cycle cannot spin forever. *)
  let guard = ref 0 in
  run_evaluation t guard;
  while run_delta t do
    run_evaluation t guard
  done

let live_entry _t (e : entry) =
  match e.wake with
  | Wake_process _ -> true
  | Wake_event ev ->
    (match ev.Event.pending with
     | Event.At at -> Sc_time.equal at e.at
     | Event.Not_notified | Event.Delta -> false)

let rec next_live t =
  match Heap.peek t.wakelist with
  | None -> None
  | Some e ->
    if live_entry t e then Some e
    else begin
      ignore (Heap.pop t.wakelist);
      next_live t
    end

let next_wake_time t = Option.map (fun e -> e.at) (next_live t)

let pending_count t =
  List.length (List.filter (live_entry t) (Heap.to_list t.wakelist))

let step t =
  run_ready t;
  match next_live t with
  | None -> false
  | Some first ->
    t.time <- first.at;
    t.time_advances <- t.time_advances + 1;
    if !Obs.Sink.enabled then
      Obs.Sink.instant ~cat:"kernel" "time-advance"
        ~args:
          [ ("sim_ps", Obs.Event.Int (Int64.to_int (Sc_time.to_ps t.time))) ];
    (* Fire every live entry scheduled for this timestamp. *)
    let continue = ref true in
    while !continue do
      match next_live t with
      | Some e when Sc_time.equal e.at t.time ->
        ignore (Heap.pop t.wakelist);
        (match e.wake with
         | Wake_event ev -> fire_event t ev
         | Wake_process pid ->
           (match Hashtbl.find_opt t.procs pid with
            | Some p when p.Process.status = Process.Waiting ->
              bump_epoch t pid;
              p.Process.status <- Process.Ready;
              enqueue_ready t pid
            | Some _ | None -> ()))
      | Some _ | None -> continue := false
    done;
    run_ready t;
    true

(* Structural snapshots.  Events and processes are referenced by id so
   the state can be restored into a different run's freshly constructed
   objects (the symbolic engine resets the id counters at path start, so
   ids line up across re-executions of the same testbench prefix).  The
   batch hook is deliberately not captured: it is installed by the
   engine, not simulation state. *)

type wake_state = W_event of int | W_process of int

type entry_state = { en_at : Sc_time.t; en_seq : int; en_wake : wake_state }

type event_state = {
  es_id : int;
  es_waiters : (int * int) list;
  es_pending : Event.pending;
}

type state = {
  s_time : Sc_time.t;
  s_seq : int;
  s_statuses : (int * Process.status) list;
  s_epochs : (int * int) list;
  s_ready : int list;
  s_delta_events : int list;
  s_delta_procs : int list;
  s_wakelist : entry_state list;
  s_events : event_state list;
  s_activations : int;
  s_delta_cycles : int;
  s_events_fired : int;
  s_time_advances : int;
}

let snapshot t =
  let by_fst (a, _) (b, _) = Int.compare a b in
  let statuses =
    Hashtbl.fold
      (fun pid (p : Process.t) acc -> (pid, p.Process.status) :: acc)
      t.procs []
    |> List.sort by_fst
  in
  let epochs =
    Hashtbl.fold (fun pid e acc -> (pid, e) :: acc) t.epochs []
    |> List.sort by_fst
  in
  let wakelist =
    List.map
      (fun e ->
         { en_at = e.at;
           en_seq = e.seq;
           en_wake =
             (match e.wake with
              | Wake_event ev -> W_event ev.Event.ev_id
              | Wake_process pid -> W_process pid) })
      (Heap.to_list t.wakelist)
  in
  let events =
    Event.fold
      (fun (ev : Event.t) acc ->
         { es_id = ev.Event.ev_id;
           es_waiters = ev.Event.waiters;
           es_pending = ev.Event.pending }
         :: acc)
      []
    |> List.sort (fun a b -> Int.compare a.es_id b.es_id)
  in
  {
    s_time = t.time;
    s_seq = t.seq;
    s_statuses = statuses;
    s_epochs = epochs;
    s_ready = t.ready;
    s_delta_events =
      List.map (fun (ev : Event.t) -> ev.Event.ev_id) t.delta_events;
    s_delta_procs = t.delta_procs;
    s_wakelist = wakelist;
    s_events = events;
    s_activations = t.activations;
    s_delta_cycles = t.delta_cycles;
    s_events_fired = t.events_fired;
    s_time_advances = t.time_advances;
  }

let restore t s =
  let event ~what id =
    match Event.find id with
    | Some ev -> ev
    | None ->
      invalid_arg
        (Printf.sprintf "Scheduler.restore: unknown event #%d in %s" id what)
  in
  t.time <- s.s_time;
  t.seq <- s.s_seq;
  List.iter
    (fun (pid, status) ->
       match Hashtbl.find_opt t.procs pid with
       | Some p -> p.Process.status <- status
       | None ->
         invalid_arg
           (Printf.sprintf "Scheduler.restore: unknown process #%d" pid))
    s.s_statuses;
  Hashtbl.reset t.epochs;
  List.iter (fun (pid, e) -> Hashtbl.replace t.epochs pid e) s.s_epochs;
  t.ready <- s.s_ready;
  t.delta_procs <- s.s_delta_procs;
  t.delta_events <- List.map (event ~what:"delta queue") s.s_delta_events;
  List.iter
    (fun es ->
       let ev = event ~what:"event table" es.es_id in
       ev.Event.waiters <- es.es_waiters;
       ev.Event.pending <- es.es_pending)
    s.s_events;
  Heap.clear t.wakelist;
  (* [entry_cmp] is a total order on (at, seq), so pop order does not
     depend on the heap's internal layout after the rebuild. *)
  List.iter
    (fun en ->
       let wake =
         match en.en_wake with
         | W_event id -> Wake_event (event ~what:"wakelist" id)
         | W_process pid -> Wake_process pid
       in
       Heap.push t.wakelist { at = en.en_at; seq = en.en_seq; wake })
    s.s_wakelist;
  t.activations <- s.s_activations;
  t.delta_cycles <- s.s_delta_cycles;
  t.events_fired <- s.s_events_fired;
  t.time_advances <- s.s_time_advances

let run_until t limit =
  run_ready t;
  let continue = ref true in
  while !continue do
    match next_wake_time t with
    | Some at when Sc_time.(at <= limit) -> ignore (step t)
    | Some _ | None -> continue := false
  done
