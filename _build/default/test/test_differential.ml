(* Model-based differential testing: random operation scripts are
   applied to both the TLM PLIC (fixed variant) and the independent
   golden specification (Plic.Spec); every observable must agree.

   A divergence here means either the TLM model or the specification
   misreads the RISC-V PLIC document — the methodology that catches
   bugs like IF6 (>= vs >) without hand-written expectations, which the
   fault-seeding tests confirm. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Config = Plic.Config
module Spec = Plic.Spec
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

let num_sources = 6
let max_priority = 7
let cfg = { (Config.scaled ~num_sources) with Config.max_priority }

exception Divergence of string

let diverge fmt = Format.kasprintf (fun m -> raise (Divergence m)) fmt

type op =
  | Set_priority of int * int
  | Set_enabled of int * bool
  | Set_threshold of int
  | Raise of int
  | Claim_complete
  | Settle

let op_to_string = function
  | Set_priority (id, p) -> Printf.sprintf "prio[%d]=%d" id p
  | Set_enabled (id, b) -> Printf.sprintf "en[%d]=%b" id b
  | Set_threshold th -> Printf.sprintf "th=%d" th
  | Raise id -> Printf.sprintf "raise %d" id
  | Claim_complete -> "claim/complete"
  | Settle -> "settle"

let gen_op st =
  match Random.State.int st 6 with
  | 0 -> Set_priority (1 + Random.State.int st num_sources,
                       Random.State.int st (max_priority + 1))
  | 1 -> Set_enabled (1 + Random.State.int st num_sources,
                      Random.State.bool st)
  | 2 -> Set_threshold (Random.State.int st (max_priority + 1))
  | 3 -> Raise (1 + Random.State.int st num_sources)
  | 4 -> Claim_complete
  | _ -> Settle

(* ---- the TLM side ---- *)

type rig = {
  sched : Pk.Scheduler.t;
  dut : Plic.t;
  hart : Plic.Hart.t;
  mutable enabled_bits : int;
}

let make_rig () =
  let sched = Pk.Scheduler.create () in
  let dut = Plic.create ~variant:Config.Fixed cfg sched in
  let hart = Plic.Hart.create () in
  Plic.connect_hart dut 0 hart;
  Pk.Scheduler.run_ready sched;
  { sched; dut; hart; enabled_bits = 0 }

let write32 rig offset value =
  let p =
    Payload.make_write32 ~addr:(Value.of_int offset) ~value:(Value.of_int value)
  in
  ignore (Plic.transport rig.dut p Sc_time.zero)

let read32 rig offset =
  let p =
    Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 4)
  in
  ignore (Plic.transport rig.dut p Sc_time.zero);
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Int64.to_int (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete read"

let settle rig =
  (* run the kernel until no wakeups remain *)
  let rec go n = if n > 0 && Pk.Scheduler.step rig.sched then go (n - 1) in
  go 100

(* Apply one operation to both models; [Settle] lets the TLM thread run
   and performs the spec's scan. *)
let apply (rig, spec) op =
  match op with
  | Set_priority (id, p) ->
    write32 rig (Config.priority_base + (4 * (id - 1))) p;
    (rig, Spec.set_priority spec ~id p)
  | Set_enabled (id, b) ->
    rig.enabled_bits <-
      (if b then rig.enabled_bits lor (1 lsl id)
       else rig.enabled_bits land lnot (1 lsl id));
    write32 rig Config.enable_base rig.enabled_bits;
    (rig, Spec.set_enabled spec ~id b)
  | Set_threshold th ->
    write32 rig Config.threshold_base th;
    (rig, Spec.set_threshold spec th)
  | Raise id ->
    Plic.trigger_interrupt rig.dut (Value.of_int id);
    (rig, Spec.raise_interrupt spec id)
  | Settle ->
    settle rig;
    (rig, Spec.scan spec)
  | Claim_complete ->
    settle rig;
    let spec = Spec.scan spec in
    let claimed_tlm = read32 rig Config.claim_base in
    let spec, claimed_spec = Spec.claim spec in
    if claimed_tlm <> claimed_spec then
      diverge "claim diverged: tlm=%d spec=%d" claimed_tlm claimed_spec;
    write32 rig Config.claim_base claimed_tlm;
    let spec = Spec.complete spec claimed_tlm in
    (rig, spec)

let compare_observables script (rig, spec) =
  let context () =
    String.concat "; " (List.map op_to_string script)
  in
  (* notification line *)
  if Plic.hart_eip rig.dut 0 <> Spec.raised spec then
    diverge "eip diverged after [%s]: tlm=%b spec=%b" (context ())
      (Plic.hart_eip rig.dut 0) (Spec.raised spec);
  (* pending bits through the memory-mapped register *)
  let word = read32 rig Config.pending_base in
  for id = 1 to num_sources do
    let tlm_bit = word land (1 lsl id) <> 0 in
    if tlm_bit <> Spec.pending spec id then
      diverge "pending[%d] diverged after [%s]: tlm=%b spec=%b" id
        (context ()) tlm_bit (Spec.pending spec id)
  done

let execute_script rig spec script =
  let final =
    List.fold_left
      (fun state op ->
         let state = apply state op in
         (* compare after every settling point *)
         (match op with
          | Settle | Claim_complete -> compare_observables script state
          | Set_priority _ | Set_enabled _ | Set_threshold _ | Raise _ -> ());
         state)
      (rig, spec) script
  in
  let final = apply final Settle in
  compare_observables script final

let run_script script =
  let rig = make_rig () in
  let spec = Spec.create ~num_sources ~max_priority in
  try execute_script rig spec script
  with Divergence msg -> Alcotest.fail msg

let test_random_scripts () =
  let st = Random.State.make [| 2026 |] in
  for _ = 1 to 300 do
    let len = 3 + Random.State.int st 12 in
    let script = List.init len (fun _ -> gen_op st) in
    run_script script
  done

let test_directed_scripts () =
  List.iter run_script
    [
      (* the classic claim sequence *)
      [ Set_enabled (1, true); Set_priority (1, 3); Raise 1; Settle;
        Claim_complete ];
      (* masking boundary: priority equal to threshold *)
      [ Set_enabled (2, true); Set_priority (2, 4); Set_threshold 4; Raise 2;
        Settle ];
      (* two pending, priority order with tie *)
      [ Set_enabled (3, true); Set_enabled (4, true); Set_priority (3, 5);
        Set_priority (4, 5); Raise 4; Raise 3; Settle; Claim_complete;
        Claim_complete ];
      (* re-raise while in flight *)
      [ Set_enabled (1, true); Set_priority (1, 1); Raise 1; Settle; Raise 1;
        Settle; Claim_complete ];
      (* disabled interrupts never notify *)
      [ Set_priority (5, 7); Raise 5; Settle ];
    ]

(* Sanity: seeding a fault into the TLM model must make the
   differential test scream — proving the oracle has teeth. *)
let test_fault_seeding_detected () =
  let detected fault script =
    let rig =
      let sched = Pk.Scheduler.create () in
      let dut = Plic.create ~variant:Config.Fixed ~faults:[ fault ] cfg sched in
      let hart = Plic.Hart.create () in
      Plic.connect_hart dut 0 hart;
      Pk.Scheduler.run_ready sched;
      { sched; dut; hart; enabled_bits = 0 }
    in
    let spec = Spec.create ~num_sources ~max_priority in
    try
      execute_script rig spec script;
      false
    with Divergence _ -> true
  in
  (* IF6 fires at the prio = threshold boundary. *)
  let if6_script =
    [ Set_enabled (2, true); Set_priority (2, 4); Set_threshold 4; Raise 2;
      Settle ]
  in
  Alcotest.(check bool) "IF6 caught by the oracle" true
    (detected Plic.Fault.IF6 if6_script);
  (* IF5 leaves the pending bit set after a claim. *)
  let if5_script =
    [ Set_enabled (Plic.Fault.if5_skip_id cfg, true);
      Set_priority (Plic.Fault.if5_skip_id cfg, 3);
      Raise (Plic.Fault.if5_skip_id cfg); Settle; Claim_complete ]
  in
  Alcotest.(check bool) "IF5 caught by the oracle" true
    (detected Plic.Fault.IF5 if5_script)

let suite =
  [
    ("random scripts agree with the spec", `Quick, test_random_scripts);
    ("directed scripts agree with the spec", `Quick, test_directed_scripts);
    ("seeded faults diverge from the spec", `Quick, test_fault_seeding_detected);
  ]
