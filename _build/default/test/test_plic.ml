(* Concrete (non-symbolic) behavioural tests of the PLIC model: the
   interrupt delivery protocol, claim/complete, masking, the hart_eip
   suppression, the memory map, and the concrete effect of every
   injected fault. *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Config = Plic.Config
module Fault = Plic.Fault
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

let cfg = Config.scaled ~num_sources:16

type rig = {
  sched : Pk.Scheduler.t;
  dut : Plic.t;
  hart : Plic.Hart.t;
}

let make_rig ?(variant = Config.Fixed) ?(faults = []) () =
  let sched = Pk.Scheduler.create () in
  let dut = Plic.create ~variant ~faults cfg sched in
  let hart = Plic.Hart.create () in
  Plic.connect_hart dut 0 hart;
  Pk.Scheduler.run_ready sched;
  { sched; dut; hart }

let trigger rig id = Plic.trigger_interrupt rig.dut (Value.of_int id)
let step rig = ignore (Pk.Scheduler.step rig.sched)

let read32 rig offset =
  let p =
    Payload.make_read ~addr:(Value.of_int offset) ~len:(Value.of_int 4)
  in
  ignore (Plic.transport rig.dut p Sc_time.zero);
  match Expr.to_bv (Payload.data32 p) with
  | Some v -> Int64.to_int (Bv.to_int64 v)
  | None -> Alcotest.fail "expected concrete read"

let write32 rig offset value =
  let p =
    Payload.make_write32 ~addr:(Value.of_int offset) ~value:(Value.of_int value)
  in
  ignore (Plic.transport rig.dut p Sc_time.zero)

let enable_words = (cfg.Config.num_sources + 1 + 31) / 32

let enable_all rig =
  for w = 0 to enable_words - 1 do
    write32 rig (Config.enable_base + (4 * w)) (-1)
  done

let set_priority rig id p =
  write32 rig (Config.priority_base + (4 * (id - 1))) p

let claim rig = read32 rig Config.claim_base
let complete rig id = write32 rig Config.claim_base id

let setup_basic ?variant ?faults () =
  let rig = make_rig ?variant ?faults () in
  enable_all rig;
  for id = 1 to cfg.Config.num_sources do
    set_priority rig id 1
  done;
  write32 rig Config.threshold_base 0;
  rig

(* ------------------------------------------------------------------ *)
(* Delivery protocol                                                   *)

let test_trigger_notifies_after_cycle () =
  let rig = setup_basic () in
  trigger rig 5;
  Alcotest.(check bool) "not yet" false rig.hart.Plic.Hart.was_triggered;
  step rig;
  Alcotest.(check bool) "triggered" true rig.hart.Plic.Hart.was_triggered;
  Alcotest.(check int64) "after one clock cycle"
    (Sc_time.to_ps cfg.Config.clock_cycle)
    (Sc_time.to_ps rig.hart.Plic.Hart.last_trigger_time)

let test_pending_bit_visible () =
  let rig = setup_basic () in
  trigger rig 5;
  step rig;
  let word = read32 rig Config.pending_base in
  Alcotest.(check int) "bit 5 set" (1 lsl 5) (word land (1 lsl 5));
  ignore (claim rig);
  let word = read32 rig Config.pending_base in
  Alcotest.(check int) "cleared after claim" 0 (word land (1 lsl 5))

let test_claim_complete_cycle () =
  let rig = setup_basic () in
  trigger rig 9;
  step rig;
  Alcotest.(check int) "claim returns source" 9 (claim rig);
  Alcotest.(check bool) "eip while in flight" true (Plic.hart_eip rig.dut 0);
  complete rig 9;
  Alcotest.(check bool) "eip released" false (Plic.hart_eip rig.dut 0);
  Alcotest.(check int) "nothing left to claim" 0 (claim rig)

let test_eip_suppresses_retrigger () =
  let rig = setup_basic () in
  trigger rig 3;
  step rig;
  Alcotest.(check int) "one notification" 1 rig.hart.Plic.Hart.trigger_count;
  (* a second interrupt while the first is in flight must not re-raise
     the external interrupt line *)
  trigger rig 4;
  step rig;
  Alcotest.(check int) "suppressed" 1 rig.hart.Plic.Hart.trigger_count

let test_completion_retriggers_remaining () =
  let rig = setup_basic () in
  trigger rig 3;
  trigger rig 4;
  step rig;
  Alcotest.(check int) "first claim" 3 (claim rig);
  complete rig 3;
  step rig;
  Alcotest.(check int) "second notification" 2 rig.hart.Plic.Hart.trigger_count;
  Alcotest.(check int) "second claim" 4 (claim rig)

let test_priority_order_and_ties () =
  let rig = setup_basic () in
  set_priority rig 3 1;
  set_priority rig 11 7;
  set_priority rig 12 7;
  trigger rig 3;
  trigger rig 11;
  trigger rig 12;
  step rig;
  Alcotest.(check int) "highest priority first, tie to lowest id" 11 (claim rig);
  complete rig 11;
  step rig;
  Alcotest.(check int) "then the tie loser" 12 (claim rig);
  complete rig 12;
  step rig;
  Alcotest.(check int) "lowest priority last" 3 (claim rig)

let test_threshold_masks () =
  let rig = setup_basic () in
  set_priority rig 4 2;
  write32 rig Config.threshold_base 2;
  trigger rig 4;
  step rig;
  Alcotest.(check bool) "prio == threshold masked" false
    rig.hart.Plic.Hart.was_triggered;
  write32 rig Config.threshold_base 1;
  trigger rig 4;
  step rig;
  Alcotest.(check bool) "prio > threshold fires" true
    rig.hart.Plic.Hart.was_triggered

let test_priority_zero_never_fires () =
  let rig = setup_basic () in
  set_priority rig 6 0;
  trigger rig 6;
  step rig;
  Alcotest.(check bool) "disabled by priority 0" false
    rig.hart.Plic.Hart.was_triggered

let test_disabled_source_not_delivered () =
  let rig = setup_basic () in
  for w = 0 to enable_words - 1 do
    write32 rig (Config.enable_base + (4 * w)) 0
  done;
  trigger rig 6;
  step rig;
  Alcotest.(check bool) "not enabled, not delivered" false
    rig.hart.Plic.Hart.was_triggered

let test_fixed_ignores_invalid_id () =
  let rig = setup_basic () in
  Plic.trigger_interrupt rig.dut (Value.of_int 0);
  Plic.trigger_interrupt rig.dut (Value.of_int 9999);
  step rig;
  Alcotest.(check bool) "no delivery" false rig.hart.Plic.Hart.was_triggered

let test_original_aborts_on_invalid_id () =
  let rig = setup_basic ~variant:Config.Original () in
  Alcotest.check_raises "F1 abort"
    (Engine.Check_failed "plic:trigger:bounds") (fun () ->
        Plic.trigger_interrupt rig.dut (Value.of_int 9999))

(* ------------------------------------------------------------------ *)
(* Memory map                                                          *)

let test_memory_map_smode_write_only () =
  let rig = setup_basic () in
  let p =
    Payload.make_read ~addr:(Value.of_int Config.smode_claim_base)
      ~len:(Value.of_int 4)
  in
  ignore (Plic.transport rig.dut p Sc_time.zero);
  Alcotest.(check bool) "read rejected" true
    (p.Payload.response = Payload.Command_error)

let test_memory_map_priority_persistence () =
  let rig = setup_basic () in
  set_priority rig 2 17;
  Alcotest.(check int) "read back" 17
    (read32 rig (Config.priority_base + 4))

let test_memory_map_hole_is_unmapped () =
  let rig = setup_basic () in
  (* offset 0 (priority of reserved source 0) is a hole *)
  let p = Payload.make_read ~addr:Value.zero ~len:(Value.of_int 4) in
  ignore (Plic.transport rig.dut p Sc_time.zero);
  Alcotest.(check bool) "address error" true
    (p.Payload.response = Payload.Address_error)

(* ------------------------------------------------------------------ *)
(* Concrete effect of each injected fault                              *)

let test_if1_overflow () =
  let rig = setup_basic ~faults:[ Fault.IF1 ] () in
  let bad = cfg.Config.num_sources + 1 in
  (* In concrete mode the checked memory raises on the overflow. *)
  Alcotest.check_raises "pending array overflow"
    (Engine.Check_failed "plic:pending-array") (fun () ->
        Plic.trigger_interrupt rig.dut (Value.of_int bad))

let test_if2_drops_13 () =
  let rig = setup_basic ~faults:[ Fault.IF2 ] () in
  trigger rig (Fault.if2_drop_id cfg);
  step rig;
  Alcotest.(check bool) "dropped" false rig.hart.Plic.Hart.was_triggered;
  (* other ids still work while 13 is not pending (fresh instance) *)
  let rig = setup_basic ~faults:[ Fault.IF2 ] () in
  trigger rig 2;
  step rig;
  Alcotest.(check bool) "others fine" true rig.hart.Plic.Hart.was_triggered

let test_if3_skips_retrigger () =
  let rig = setup_basic ~faults:[ Fault.IF3 ] () in
  trigger rig 3;
  trigger rig 4;
  step rig;
  Alcotest.(check int) "first claim" 3 (claim rig);
  complete rig 3;
  step rig;
  Alcotest.(check int) "second never notified" 1
    rig.hart.Plic.Hart.trigger_count

let test_if4_inflates_delay () =
  let rig = setup_basic ~faults:[ Fault.IF4 ] () in
  let late_id = Fault.if4_bound cfg + 1 in
  trigger rig late_id;
  step rig;
  Alcotest.(check bool) "still delivered" true rig.hart.Plic.Hart.was_triggered;
  Alcotest.(check int64) "ten times the cycle"
    (Sc_time.to_ps (Sc_time.mul_int cfg.Config.clock_cycle 10))
    (Sc_time.to_ps rig.hart.Plic.Hart.last_trigger_time)

let test_if5_skips_clear () =
  let rig = setup_basic ~faults:[ Fault.IF5 ] () in
  let sticky = Fault.if5_skip_id cfg in
  trigger rig sticky;
  step rig;
  Alcotest.(check int) "claimed" sticky (claim rig);
  let word = read32 rig Config.pending_base in
  Alcotest.(check bool) "pending bit survived the claim" true
    (word land (1 lsl sticky) <> 0)

let test_if6_threshold_off_by_one () =
  let rig = setup_basic ~faults:[ Fault.IF6 ] () in
  set_priority rig 4 2;
  write32 rig Config.threshold_base 2;
  trigger rig 4;
  step rig;
  Alcotest.(check bool) "prio == threshold wrongly fires" true
    rig.hart.Plic.Hart.was_triggered

(* ------------------------------------------------------------------ *)
(* White-box probes                                                    *)

let test_probes () =
  let rig = setup_basic () in
  Plic.set_priority rig.dut 3 (Value.of_int 9);
  (match Expr.to_bv (Plic.priority_of rig.dut 3) with
   | Some v -> Alcotest.(check int64) "priority poke" 9L (Bv.to_int64 v)
   | None -> Alcotest.fail "expected concrete");
  Plic.set_threshold rig.dut (Value.of_int 4);
  (match Expr.to_bv (Plic.threshold_of rig.dut) with
   | Some v -> Alcotest.(check int64) "threshold poke" 4L (Bv.to_int64 v)
   | None -> Alcotest.fail "expected concrete");
  Plic.set_enable_all rig.dut;
  Alcotest.(check bool) "enable bit" true
    (Expr.to_bool (Plic.enabled_bit rig.dut 7) = Some true);
  Alcotest.(check bool) "pending clear" true
    (Expr.to_bool (Plic.pending_is_set rig.dut 7) = Some false)

let suite =
  [
    ("delivery: notify after one cycle", `Quick, test_trigger_notifies_after_cycle);
    ("delivery: pending bit over TLM", `Quick, test_pending_bit_visible);
    ("delivery: claim/complete cycle", `Quick, test_claim_complete_cycle);
    ("delivery: eip suppression", `Quick, test_eip_suppresses_retrigger);
    ("delivery: completion re-triggers", `Quick,
     test_completion_retriggers_remaining);
    ("delivery: priority order and ties", `Quick, test_priority_order_and_ties);
    ("masking: threshold strict", `Quick, test_threshold_masks);
    ("masking: priority zero", `Quick, test_priority_zero_never_fires);
    ("masking: disabled source", `Quick, test_disabled_source_not_delivered);
    ("trigger: fixed ignores invalid id", `Quick, test_fixed_ignores_invalid_id);
    ("trigger: original aborts on invalid id", `Quick,
     test_original_aborts_on_invalid_id);
    ("map: S-mode port is write-only", `Quick, test_memory_map_smode_write_only);
    ("map: priority persistence", `Quick, test_memory_map_priority_persistence);
    ("map: reserved hole unmapped", `Quick, test_memory_map_hole_is_unmapped);
    ("fault IF1: pending array overflow", `Quick, test_if1_overflow);
    ("fault IF2: drops id 13", `Quick, test_if2_drops_13);
    ("fault IF3: skips re-trigger", `Quick, test_if3_skips_retrigger);
    ("fault IF4: inflated delay", `Quick, test_if4_inflates_delay);
    ("fault IF5: skips pending clear", `Quick, test_if5_skips_clear);
    ("fault IF6: threshold off-by-one", `Quick, test_if6_threshold_off_by_one);
    ("white-box probes", `Quick, test_probes);
  ]
