test/test_tlm.ml: Alcotest Array List Pk Smt Symex Tlm
