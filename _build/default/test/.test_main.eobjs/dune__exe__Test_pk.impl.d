test/test_pk.ml: Alcotest Int List Pk QCheck QCheck_alcotest String
