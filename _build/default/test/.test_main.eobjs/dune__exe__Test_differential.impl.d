test/test_differential.ml: Alcotest Format Int64 List Pk Plic Printf Random Smt String Symex Tlm
