test/test_clint.ml: Alcotest Array Clint Int64 List Option Pk Smt Symex Tlm
