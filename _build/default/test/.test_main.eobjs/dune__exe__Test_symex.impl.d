test/test_symex.ml: Alcotest Int64 List Smt Symex
