test/test_plic.ml: Alcotest Int64 Pk Plic Smt Symex Tlm
