test/test_smt.ml: Alcotest Array Format Int64 List Printf QCheck QCheck_alcotest Random Smt String
