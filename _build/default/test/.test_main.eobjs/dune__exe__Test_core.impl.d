test/test_core.ml: Alcotest Format Lazy List Pk Plic Printf Smt String Symex Symsysc Tlm
