test/test_uart.ml: Alcotest Int64 List Pk Smt Symex Tlm Uart
