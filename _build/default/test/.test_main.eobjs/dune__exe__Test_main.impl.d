test/test_main.ml: Alcotest Test_clint Test_core Test_differential Test_pk Test_plic Test_smt Test_symex Test_tlm Test_uart
