(* Tests for the Peripheral Kernel: time, heap, events, scheduler
   semantics and the thread-to-function translation contract. *)

module Sc_time = Pk.Sc_time
module Heap = Pk.Heap
module Event = Pk.Event
module Process = Pk.Process
module Scheduler = Pk.Scheduler

(* ------------------------------------------------------------------ *)
(* Sc_time                                                             *)

let test_time_units () =
  Alcotest.(check int64) "ns" 1_000L (Sc_time.to_ps (Sc_time.ns 1));
  Alcotest.(check int64) "us" 1_000_000L (Sc_time.to_ps (Sc_time.us 1));
  Alcotest.(check int64) "ms" 1_000_000_000L (Sc_time.to_ps (Sc_time.ms 1));
  Alcotest.(check int64) "sec" 1_000_000_000_000L (Sc_time.to_ps (Sc_time.sec 1))

let test_time_arith () =
  let a = Sc_time.ns 10 and b = Sc_time.ns 3 in
  Alcotest.(check int64) "add" 13_000L (Sc_time.to_ps (Sc_time.add a b));
  Alcotest.(check int64) "sub" 7_000L (Sc_time.to_ps (Sc_time.sub a b));
  Alcotest.(check int64) "sub saturates" 0L (Sc_time.to_ps (Sc_time.sub b a));
  Alcotest.(check int64) "mul" 30_000L (Sc_time.to_ps (Sc_time.mul_int a 3));
  Alcotest.(check bool) "lt" true Sc_time.(b < a);
  Alcotest.(check bool) "is_zero" true (Sc_time.is_zero Sc_time.zero)

let test_time_pp () =
  Alcotest.(check string) "ns" "10ns" (Sc_time.to_string (Sc_time.ns 10));
  Alcotest.(check string) "zero" "0s" (Sc_time.to_string Sc_time.zero);
  Alcotest.(check string) "mixed stays ps" "1001ps"
    (Sc_time.to_string (Sc_time.of_ps 1001L))

let test_time_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Sc_time: negative time")
    (fun () -> ignore (Sc_time.ns (-1)))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let test_heap_sorted_drain () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 9; 1; 7; 3; 0 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  Alcotest.(check (list int)) "sorted" [ 0; 1; 3; 3; 5; 7; 9 ] (drain [])

let heap_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"heap drains sorted"
       QCheck.(list small_int)
       (fun xs ->
          let h = Heap.create ~cmp:Int.compare in
          List.iter (Heap.push h) xs;
          let rec drain acc =
            match Heap.pop h with
            | None -> List.rev acc
            | Some x -> drain (x :: acc)
          in
          drain [] = List.sort Int.compare xs))

let test_heap_peek () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  Alcotest.(check int) "size" 2 (Heap.size h)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

(* A process that appends to a log at each activation and waits. *)
let logger log name wait =
  Process.make name (fun () ->
      log := name :: !log;
      wait ())

let test_spawn_runs_at_init () =
  let s = Scheduler.create () in
  let log = ref [] in
  Scheduler.spawn s (logger log "a" (fun () -> Process.Terminate));
  Scheduler.spawn s (logger log "b" (fun () -> Process.Terminate));
  Scheduler.run_ready s;
  Alcotest.(check (list string)) "both ran in order" [ "a"; "b" ] (List.rev !log)

let test_wait_event_and_notify () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let log = ref [] in
  let p =
    Process.make "w" (fun () ->
        log := "woke" :: !log;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  (* initial activation, then waiting *)
  Alcotest.(check int) "one activation" 1 (List.length !log);
  Scheduler.notify s ev;
  Scheduler.run_ready s;
  Alcotest.(check int) "woken once" 2 (List.length !log);
  (* no further wakeups without notify *)
  Scheduler.run_ready s;
  Alcotest.(check int) "stable" 2 (List.length !log)

let test_timed_notify_and_step () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let times = ref [] in
  let p =
    Process.make "w" (fun () ->
        times := Scheduler.now s :: !times;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  Scheduler.notify_at s ev (Sc_time.ns 10);
  Alcotest.(check bool) "step advances" true (Scheduler.step s);
  Alcotest.(check int64) "now = 10ns" 10_000L (Sc_time.to_ps (Scheduler.now s));
  (* times: init at 0, wake at 10ns *)
  Alcotest.(check int) "two activations" 2 (List.length !times);
  Alcotest.(check bool) "starved" false (Scheduler.step s)

let test_notify_override_rules () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let count = ref 0 in
  let p =
    Process.make "w" (fun () ->
        incr count;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  count := 0;
  (* A later notification cannot override an earlier pending one. *)
  Scheduler.notify_at s ev (Sc_time.ns 5);
  Scheduler.notify_at s ev (Sc_time.ns 50);
  ignore (Scheduler.step s);
  Alcotest.(check int64) "fired at earlier time" 5_000L
    (Sc_time.to_ps (Scheduler.now s));
  Alcotest.(check int) "woken once" 1 !count;
  (* the 50ns entry is stale now: nothing left *)
  Alcotest.(check bool) "no residual event" false (Scheduler.step s);
  (* An earlier notification overrides a later pending one. *)
  count := 0;
  Scheduler.notify_at s ev (Sc_time.ns 50);
  Scheduler.notify_at s ev (Sc_time.ns 5);
  ignore (Scheduler.step s);
  Alcotest.(check int64) "overridden to earlier" 10_000L
    (Sc_time.to_ps (Scheduler.now s));
  Alcotest.(check int) "woken exactly once" 1 !count

let test_cancel () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let count = ref 0 in
  let p =
    Process.make "w" (fun () ->
        incr count;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  count := 0;
  Scheduler.notify_at s ev (Sc_time.ns 5);
  Scheduler.cancel s ev;
  Alcotest.(check bool) "nothing fires" false (Scheduler.step s);
  Alcotest.(check int) "not woken" 0 !count

let test_delta_notification () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let count = ref 0 in
  let p =
    Process.make "w" (fun () ->
        incr count;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  count := 0;
  Scheduler.notify_delta s ev;
  Scheduler.run_ready s;
  Alcotest.(check int) "woken in delta cycle" 1 !count;
  Alcotest.(check int64) "time unchanged" 0L (Sc_time.to_ps (Scheduler.now s))

let test_wait_time () =
  let s = Scheduler.create () in
  let log = ref [] in
  let n = ref 0 in
  let p =
    Process.make "t" (fun () ->
        log := Scheduler.now s :: !log;
        incr n;
        if !n > 3 then Process.Terminate else Process.Wait_time (Sc_time.ns 7))
  in
  Scheduler.spawn s p;
  Scheduler.run_until s (Sc_time.us 1);
  let times = List.rev_map Sc_time.to_ps !log in
  Alcotest.(check (list int64)) "7ns cadence"
    [ 0L; 7_000L; 14_000L; 21_000L ] times

let test_wait_any () =
  let s = Scheduler.create () in
  let e1 = Event.make "e1" and e2 = Event.make "e2" in
  let count = ref 0 in
  let p =
    Process.make "w" (fun () ->
        incr count;
        Process.Wait_any [ e1; e2 ])
  in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  count := 0;
  Scheduler.notify s e2;
  Scheduler.run_ready s;
  Alcotest.(check int) "woken by e2" 1 !count;
  (* The stale e1 registration must not wake it again. *)
  Scheduler.notify s e1;
  Scheduler.run_ready s;
  Alcotest.(check int) "woken by e1 after re-registration" 2 !count;
  (* Fire both before running: the first immediate notification wakes
     the process (and invalidates its multi-event wait); the second
     finds nobody waiting — exactly one activation. *)
  count := 0;
  Scheduler.notify s e1;
  Scheduler.notify s e2;
  Scheduler.run_ready s;
  Alcotest.(check int) "one wake per wait" 1 !count

let test_same_time_order_deterministic () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let log = ref [] in
  let mk name =
    Process.make name (fun () ->
        log := name :: !log;
        Process.Wait_event ev)
  in
  Scheduler.spawn s (mk "p1");
  Scheduler.spawn s (mk "p2");
  Scheduler.spawn s (mk "p3");
  Scheduler.run_ready s;
  log := [];
  Scheduler.notify s ev;
  Scheduler.run_ready s;
  Alcotest.(check (list string)) "wake order = wait order" [ "p1"; "p2"; "p3" ]
    (List.rev !log)

let test_stats () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let p = Process.make "w" (fun () -> Process.Wait_event ev) in
  Scheduler.spawn s p;
  Scheduler.run_ready s;
  Scheduler.notify_at s ev (Sc_time.ns 1);
  ignore (Scheduler.step s);
  let st = Scheduler.stats s in
  Alcotest.(check int) "activations" 2 st.Scheduler.activations;
  Alcotest.(check int) "time advances" 1 st.Scheduler.time_advances;
  Alcotest.(check bool) "events fired" true (st.Scheduler.events_fired >= 1)

let test_activation_limit () =
  let s = Scheduler.create () in
  let ev = Event.make "e" in
  let p =
    Process.make "spin" (fun () ->
        (* immediate self-notification: a runaway zero-delay loop *)
        Scheduler.notify_delta s ev;
        Process.Wait_event ev)
  in
  Scheduler.spawn s p;
  Alcotest.check_raises "limit" Scheduler.Activation_limit_exceeded (fun () ->
      Scheduler.run_ready s)

(* ------------------------------------------------------------------ *)
(* Thread-to-function translation (Fig. 4 contract)                    *)

type label = Init | Lbl1

let test_fsm_translation () =
  (* The translated PLIC-style run thread: first activation waits, every
     further activation performs the scan and waits again. *)
  let s = Scheduler.create () in
  let e_run = Event.make "e_run" in
  let scans = ref 0 in
  let fsm = Process.Fsm.make ~init:Init in
  let body () =
    match Process.Fsm.position fsm with
    | Init -> Process.Fsm.suspend fsm ~at:Lbl1 (Process.Wait_event e_run)
    | Lbl1 ->
      incr scans;
      Process.Fsm.suspend fsm ~at:Lbl1 (Process.Wait_event e_run)
  in
  Scheduler.spawn s (Process.make "run" body);
  Scheduler.run_ready s;
  Alcotest.(check int) "no scan at init" 0 !scans;
  Scheduler.notify_at s e_run (Sc_time.ns 10);
  ignore (Scheduler.step s);
  Alcotest.(check int) "scan per wake" 1 !scans;
  Scheduler.notify_at s e_run (Sc_time.ns 10);
  ignore (Scheduler.step s);
  Alcotest.(check int) "second wake" 2 !scans

(* ------------------------------------------------------------------ *)
(* Sc_compat veneer                                                    *)

let test_sc_compat () =
  let s = Scheduler.create () in
  Pk.Sc_compat.sc_set_context s;
  let ev = Pk.Sc_compat.sc_event "e" in
  let count = ref 0 in
  ignore
    (Pk.Sc_compat.sc_spawn "p" (fun () ->
         incr count;
         Process.Wait_event ev));
  Scheduler.run_ready s;
  Pk.Sc_compat.notify ~delay:(Sc_time.ns 3) ev;
  Alcotest.(check bool) "step" true (Pk.Sc_compat.pkernel_step ());
  Alcotest.(check int) "woken" 2 !count;
  Alcotest.(check int64) "time stamp" 3_000L
    (Sc_time.to_ps (Pk.Sc_compat.sc_time_stamp ()))

(* ------------------------------------------------------------------ *)
(* Heavy kernel functional equivalence                                 *)

let test_heavy_kernel_equivalent () =
  (* Same periodic workload on both kernels must produce the same
     number of activations. *)
  let hk = Pk.Heavy_kernel.create ~context_bytes:1024 () in
  let ev = Pk.Heavy_kernel.new_event hk in
  let n = ref 0 in
  Pk.Heavy_kernel.spawn hk "w" (fun () ->
      incr n;
      Pk.Heavy_kernel.Wait_event ev);
  for _ = 1 to 5 do
    Pk.Heavy_kernel.notify_after hk ev 1e-9;
    ignore (Pk.Heavy_kernel.step hk)
  done;
  Alcotest.(check int) "activations" 6 !n;
  Alcotest.(check bool) "time advanced" true (Pk.Heavy_kernel.now hk > 0.0)

(* ------------------------------------------------------------------ *)
(* VCD tracing                                                         *)

let test_trace_vcd_structure () =
  let tr = Pk.Trace.create ~name:"plic" () in
  let irq = Pk.Trace.signal tr "irq" in
  let claim = Pk.Trace.signal tr ~width:8 "claim" in
  Pk.Trace.change_bool tr irq Sc_time.zero false;
  Pk.Trace.change_bool tr irq (Sc_time.ns 10) true;
  Pk.Trace.change tr claim (Sc_time.ns 10) 5L;
  Pk.Trace.change_bool tr irq (Sc_time.ns 20) false;
  let vcd = Pk.Trace.to_vcd tr in
  let has s =
    let n = String.length s and m = String.length vcd in
    let rec go i = i + n <= m && (String.sub vcd i n = s || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "timescale" true (has "$timescale 1ps $end");
  Alcotest.(check bool) "scalar var" true (has "$var wire 1 ! irq $end");
  Alcotest.(check bool) "vector var" true (has "$var wire 8 \" claim $end");
  Alcotest.(check bool) "time marker" true (has "#10000");
  Alcotest.(check bool) "scalar change" true (has "1!");
  Alcotest.(check bool) "vector change" true (has "b00000101 \"")

let test_trace_collapses_duplicates () =
  let tr = Pk.Trace.create ~name:"t" () in
  let s = Pk.Trace.signal tr "s" in
  Pk.Trace.change tr s Sc_time.zero 1L;
  Pk.Trace.change tr s (Sc_time.ns 5) 1L;
  Pk.Trace.change tr s (Sc_time.ns 9) 0L;
  let vcd = Pk.Trace.to_vcd tr in
  (* only two dumps: the initial 1 and the final 0 *)
  let count_lines prefix =
    String.split_on_char '\n' vcd
    |> List.filter (fun l -> l = prefix)
    |> List.length
  in
  Alcotest.(check int) "one rising dump" 1 (count_lines "1!");
  Alcotest.(check int) "one falling dump" 1 (count_lines "0!")

let test_trace_rejects_time_reversal () =
  let tr = Pk.Trace.create ~name:"t" () in
  let s = Pk.Trace.signal tr "s" in
  Pk.Trace.change tr s (Sc_time.ns 10) 1L;
  Alcotest.check_raises "backwards"
    (Invalid_argument "Trace.change: time going backwards") (fun () ->
        Pk.Trace.change tr s (Sc_time.ns 5) 0L)

let suite =
  [
    ("time: units", `Quick, test_time_units);
    ("time: arithmetic", `Quick, test_time_arith);
    ("time: printing", `Quick, test_time_pp);
    ("time: negative rejected", `Quick, test_time_negative);
    ("heap: sorted drain", `Quick, test_heap_sorted_drain);
    ("heap: peek/size", `Quick, test_heap_peek);
    ("scheduler: init activation", `Quick, test_spawn_runs_at_init);
    ("scheduler: wait/notify", `Quick, test_wait_event_and_notify);
    ("scheduler: timed notify + step", `Quick, test_timed_notify_and_step);
    ("scheduler: notification override rules", `Quick, test_notify_override_rules);
    ("scheduler: cancel", `Quick, test_cancel);
    ("scheduler: delta notification", `Quick, test_delta_notification);
    ("scheduler: timed wait cadence", `Quick, test_wait_time);
    ("scheduler: wait on several events", `Quick, test_wait_any);
    ("scheduler: deterministic same-time order", `Quick,
     test_same_time_order_deterministic);
    ("scheduler: stats", `Quick, test_stats);
    ("scheduler: runaway loop guard", `Quick, test_activation_limit);
    ("translation: Fig. 4 contract", `Quick, test_fsm_translation);
    ("trace: VCD structure", `Quick, test_trace_vcd_structure);
    ("trace: duplicate values collapsed", `Quick, test_trace_collapses_duplicates);
    ("trace: time reversal rejected", `Quick, test_trace_rejects_time_reversal);
    ("sc_compat: veneer", `Quick, test_sc_compat);
    ("heavy kernel: functional equivalence", `Quick, test_heavy_kernel_equivalent);
  ]
  @ [ heap_prop ]
