(* The thread-to-function translation of Section 4.2 (Fig. 3 / Fig. 4),
   demonstrated side by side.

   A SystemC thread is a non-preemptive coroutine:

     void run() {                         // Fig. 3
       while (true) {
         wait(e_run);
         scan();
       }
     }

   The pre-processing step turns it into a plain function that is
   called once per activation: the progress lives in a static position
   label, and every [wait] becomes "record label, return".  The PK can
   then drive the model without any user-space context switching — the
   property that makes it digestible for a symbolic executor.

   This example runs the translated form against a hand-written
   reference trace.

   Run with:  dune exec examples/translation.exe *)

module Process = Pk.Process
module Scheduler = Pk.Scheduler
module Sc_time = Pk.Sc_time

type label = Init | Lbl1

let () =
  Format.printf "== thread-to-function translation (Fig. 4) ==@.@.";
  let sched = Scheduler.create () in
  let e_run = Pk.Event.make "e_run" in
  let trace = ref [] in
  let record what = trace := (what, Scheduler.now sched) :: !trace in

  (* The translated run process: header = the position dispatch; body =
     the original loop with the wait turned into suspend/resume. *)
  let position = Process.Fsm.make ~init:Init in
  let translated_run () =
    match Process.Fsm.position position with
    | Init ->
      (* first activation: enter the loop and stop at the wait *)
      Process.Fsm.suspend position ~at:Lbl1 (Process.Wait_event e_run)
    | Lbl1 ->
      (* resumed after e_run: the loop body, then back to the wait *)
      record "scan";
      Process.Fsm.suspend position ~at:Lbl1 (Process.Wait_event e_run)
  in
  Scheduler.spawn sched (Process.make "run" translated_run);
  Scheduler.run_ready sched;

  (* Drive it like an interrupt source would. *)
  for i = 1 to 3 do
    Scheduler.notify_at sched e_run (Sc_time.ns (10 * i));
    ignore (Scheduler.step sched)
  done;

  let got = List.rev !trace in
  List.iter
    (fun (what, time) ->
       Format.printf "%8s @ %s@." what (Sc_time.to_string time))
    got;

  (* The reference semantics of the original thread: one scan per
     notification, at the notification times. *)
  let expected =
    [ ("scan", Sc_time.ns 10); ("scan", Sc_time.ns 30); ("scan", Sc_time.ns 60) ]
  in
  assert (got = expected);
  Format.printf
    "@.translated process behaves exactly like the SystemC thread: OK@."
