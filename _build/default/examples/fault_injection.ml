(* Fault-injection evaluation (Section 5.3): plant each of IF1..IF6
   into the fixed PLIC, run the five symbolic tests, and print the
   time-to-detection matrix — the workflow behind Table 2.

   Run with:  dune exec examples/fault_injection.exe -- [num_sources] *)

let () =
  let num_sources =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  Format.printf
    "== fault injection on the PLIC (%d interrupt sources) ==@.@."
    num_sources;
  List.iter
    (fun f ->
       Format.printf "%s: %s@." (Plic.Fault.to_string f)
         (Plic.Fault.description f))
    Plic.Fault.all;
  Format.printf "@.";
  let scenario =
    Symsysc.Verify.scenario ~num_sources ~t5_max_len:16 ~max_paths:20_000 ()
  in
  let tests = [ "T1"; "T2"; "T3"; "T4"; "T5" ] in
  let detections = Symsysc.Verify.table2 ~tests scenario in
  Symsysc.Tables.print_table2 Format.std_formatter ~tests detections;
  Format.printf
    "@.(rows: tests, columns: bugs; cells: time until first detection)@."
