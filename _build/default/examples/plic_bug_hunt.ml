(* Bug hunt on the original riscv-vp PLIC: run the five symbolic tests
   of the paper (Section 5.1) and report what they find — the workflow
   behind Table 1.

   Run with:  dune exec examples/plic_bug_hunt.exe -- [num_sources]
   (default 8 sources; the paper's FE310 has 51 — use 51 for the full
   configuration, at a multi-minute cost). *)

module Engine = Symex.Engine
module Error = Symex.Error

let () =
  let num_sources =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  Format.printf
    "== hunting bugs in the original PLIC (%d interrupt sources) ==@.@."
    num_sources;
  let scenario =
    Symsysc.Verify.scenario ~num_sources ~t5_max_len:16 ~max_paths:20_000 ()
  in
  let reports = Symsysc.Verify.table1 scenario in
  Symsysc.Tables.print_table1 Format.std_formatter reports;
  Format.printf "@.";
  List.iter
    (fun (r : Symsysc.Report.t) ->
       match r.Symsysc.Report.engine.Engine.errors with
       | [] -> ()
       | errors ->
         Format.printf "--- %s found: ---@." r.Symsysc.Report.test_name;
         List.iter (fun e -> Format.printf "%a@.@." Error.pp e) errors)
    reports;
  (* Show the paper's counterexample replay flow on F1. *)
  match
    List.concat_map
      (fun (r : Symsysc.Report.t) -> r.Symsysc.Report.engine.Engine.errors)
      reports
  with
  | [] -> ()
  | err :: _ ->
    Format.printf "replaying %s's counterexample concretely...@." err.Error.site;
    let params =
      Symsysc.Tests.with_variant Plic.Config.Original scenario.Symsysc.Verify.params
    in
    (match Engine.replay err.Error.counterexample (Symsysc.Tests.t1 params) with
     | Some (Ok e) -> Format.printf "reproduced: %s@." e.Error.site
     | Some (Error msg) -> Format.printf "replay diverged: %s@." msg
     | None -> Format.printf "replay completed cleanly@.")
