module Engine = Symex.Engine

type verdict = Pass | Fail of int

type t = {
  test_name : string;
  verdict : verdict;
  engine : Engine.report;
}

let make test_name (engine : Engine.report) =
  let verdict =
    match List.length engine.Engine.errors with
    | 0 -> Pass
    | n -> Fail n
  in
  { test_name; verdict; engine }

let solver_fraction t =
  if t.engine.Engine.wall_time <= 0.0 then 0.0
  else t.engine.Engine.solver_time /. t.engine.Engine.wall_time

let verdict_to_string = function
  | Pass -> "Pass"
  | Fail n -> Printf.sprintf "Fail (%d)" n

let pp ppf t =
  Format.fprintf ppf
    "%s: %s — %d instr, %.2fs, %d paths, %.2f%% solver%s"
    t.test_name
    (verdict_to_string t.verdict)
    t.engine.Engine.instructions t.engine.Engine.wall_time
    t.engine.Engine.paths
    (100.0 *. solver_fraction t)
    (if t.engine.Engine.exhausted then "" else " (limits hit)")

let pp_errors ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Symex.Error.pp)
    t.engine.Engine.errors
