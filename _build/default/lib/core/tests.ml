module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Config = Plic.Config
module Sc_time = Pk.Sc_time
open Testbench

type params = {
  cfg : Config.t;
  variant : Config.variant;
  faults : Plic.Fault.t list;
  t4_max_len : int;
  t5_max_len : int;
  latency_budget : Sc_time.t;
}

let default_params =
  {
    cfg = Config.fe310;
    variant = Config.Original;
    faults = [];
    t4_max_len = 4;
    t5_max_len = 1000;
    latency_budget = Sc_time.mul_int Config.fe310.Config.clock_cycle 2;
  }

let scaled_params ~num_sources ~t5_max_len =
  { default_params with cfg = Config.scaled ~num_sources; t5_max_len }

let with_variant variant p = { p with variant }
let with_faults faults p = { p with faults }

let setup_duv p = setup ~variant:p.variant ~faults:p.faults p.cfg

let in_range ~n id =
  Expr.and_ (Value.ge id Value.one) (Value.le id (Value.of_int n))

(* Fired-within-latency observation shared by T1. *)
let fired_in_time duv ~budget ~since =
  duv.hart.Plic.Hart.was_triggered
  && Sc_time.(
       duv.hart.Plic.Hart.last_trigger_time <= Sc_time.add since budget)

(* T1 — basic interaction test.  The interrupt id is left unconstrained
   when calling the custom interface function, which is how F1 (the
   missing graceful handling of invalid ids) is found. *)
let t1 p () =
  let duv = setup_duv p in
  let n = p.cfg.Config.num_sources in
  enable_all_interrupts duv;
  set_all_priorities duv Value.one;
  write32 duv Config.threshold_base Value.zero;
  let i = klee_int "interrupt" in
  let t0 = Pk.Scheduler.now duv.sched in
  Plic.trigger_interrupt duv.dut i;
  (* Only valid ids are meaningful for the behavioural checks. *)
  klee_assume (in_range ~n i);
  ignore (pkernel_step duv);
  klee_assert ~site:"t1:fired-in-time"
    ~message:"interrupt not delivered within the latency budget"
    (Expr.bool (fired_in_time duv ~budget:p.latency_budget ~since:t0));
  (* Pending bit set and claimable through the TLM interface. *)
  let ic = Value.to_concrete ~site:"t1:id" i in
  let word = read32 duv (Config.pending_base + (4 * (ic / 32))) in
  klee_assert ~site:"t1:pending-set"
    ~message:"pending bit not set after trigger"
    (Value.bit word (ic mod 32));
  let claimed = claim_interrupt duv in
  klee_assert ~site:"t1:claim-id" ~message:"claimed a different interrupt"
    (Value.eq claimed i);
  klee_assert ~site:"t1:cleared"
    ~message:"interrupt was not cleared after claim"
    (Expr.bool duv.hart.Plic.Hart.was_cleared)

(* T2 — interrupt sequence test (Fig. 6). *)
let t2 p () =
  let duv = setup_duv p in
  let n = p.cfg.Config.num_sources in
  enable_all_interrupts duv;
  write32 duv Config.threshold_base Value.zero;
  (* Two valid, different symbolic interrupt lines. *)
  let i = klee_int "i_interrupt" and j = klee_int "j_interrupt" in
  klee_assume (in_range ~n i);
  klee_assume (in_range ~n j);
  klee_assume (Value.ne i j);
  (* Symbolic, active priorities. *)
  let prio_i = klee_int "prio_i" and prio_j = klee_int "prio_j" in
  let maxp = Value.of_int p.cfg.Config.max_priority in
  klee_assume (Expr.and_ (Value.ge prio_i Value.one) (Value.le prio_i maxp));
  klee_assume (Expr.and_ (Value.ge prio_j Value.one) (Value.le prio_j maxp));
  let ic = Value.to_concrete ~site:"t2:i" i in
  let jc = Value.to_concrete ~site:"t2:j" j in
  write32 duv (Config.priority_base + (4 * (ic - 1))) prio_i;
  write32 duv (Config.priority_base + (4 * (jc - 1))) prio_j;
  (* Trigger both simultaneously in zero simulation time. *)
  Plic.trigger_interrupt duv.dut i;
  Plic.trigger_interrupt duv.dut j;
  ignore (pkernel_step duv);
  (* PLIC should have triggered an external interrupt. *)
  klee_assert ~site:"t2:triggered"
    ~message:"no notification after simultaneous triggers"
    (Expr.bool duv.hart.Plic.Hart.was_triggered);
  let first = claim_interrupt duv in
  (* Highest priority first; ties break to the lowest id. *)
  let lower_id = Value.select (Value.lt i j) i j in
  let expected_first =
    Value.select (Value.gt prio_i prio_j) i
      (Value.select (Value.gt prio_j prio_i) j lower_id)
  in
  klee_assert ~site:"t2:first-priority"
    ~message:"interrupt with the highest priority was not chosen first"
    (Value.eq first expected_first);
  klee_assert ~site:"t2:first-cleared"
    ~message:"interrupt was not cleared after claim"
    (Expr.bool duv.hart.Plic.Hart.was_cleared);
  (* The second, lower-prioritized interrupt must follow. *)
  Plic.Hart.reset_flags duv.hart;
  ignore (pkernel_step duv);
  klee_assert ~site:"t2:second-triggered"
    ~message:"second pending interrupt was never notified"
    (Expr.bool duv.hart.Plic.Hart.was_triggered);
  let second = claim_interrupt duv in
  let expected_second = Value.select (Value.eq first i) j i in
  klee_assert ~site:"t2:second-id"
    ~message:"second claim returned the wrong interrupt"
    (Value.eq second expected_second);
  klee_assert ~site:"t2:second-cleared"
    ~message:"second interrupt was not cleared after claim"
    (Expr.bool duv.hart.Plic.Hart.was_cleared)

(* T3 — interrupt masking test. *)
let t3 p () =
  let duv = setup_duv p in
  let n = p.cfg.Config.num_sources in
  enable_all_interrupts duv;
  let id = klee_int "interrupt" in
  klee_assume (in_range ~n id);
  let ic = Value.to_concrete ~site:"t3:id" id in
  let prio = klee_int "priority" in
  klee_assume (Value.le prio (Value.of_int p.cfg.Config.max_priority));
  write32 duv (Config.priority_base + (4 * (ic - 1))) prio;
  let threshold = klee_int "consider_threshold" in
  klee_assume (Value.le threshold (Value.of_int p.cfg.Config.max_priority));
  write32 duv Config.threshold_base threshold;
  Plic.trigger_interrupt duv.dut id;
  ignore (pkernel_step duv);
  (* Fired only if the priority is nonzero and above the threshold. *)
  if duv.hart.Plic.Hart.was_triggered then
    klee_assert ~site:"t3:masking"
      ~message:"interrupt fired although masked by priority/threshold"
      (Expr.and_ (Value.ne prio Value.zero) (Value.gt prio threshold))

(* T4 — TLM read interface test. *)
let t4 p () =
  let duv = setup_duv p in
  enable_all_interrupts duv;
  set_all_priorities duv Value.one;
  Plic.trigger_interrupt duv.dut Value.one;
  let addr = klee_int "addr" in
  klee_assume (Value.le addr (Value.of_int Config.addr_window));
  let len = klee_int "len" in
  klee_assume (Expr.and_ (Value.ge len Value.one)
                 (Value.le len (Value.of_int p.t4_max_len)));
  let payload = Tlm.Payload.make_read ~addr ~len in
  ignore (transport duv payload);
  (* The peripheral must answer every well-formed read with a definite
     response status rather than crashing. *)
  klee_assert ~site:"t4:responded" ~message:"transaction left incomplete"
    (Expr.bool (payload.Tlm.Payload.response <> Tlm.Payload.Incomplete))

(* T5 — TLM write interface test. *)
let t5 p () =
  let duv = setup_duv p in
  enable_all_interrupts duv;
  set_all_priorities duv Value.one;
  Plic.trigger_interrupt duv.dut Value.one;
  let addr = klee_int "addr" in
  klee_assume (Value.le addr (Value.of_int Config.addr_window));
  let len = klee_int "len" in
  klee_assume (Expr.and_ (Value.ge len Value.one)
                 (Value.le len (Value.of_int p.t5_max_len)));
  let data =
    Array.init p.t5_max_len (fun _ -> Engine.fresh "data" 8)
  in
  let payload = Tlm.Payload.make_write ~addr ~len ~data in
  ignore (transport duv payload);
  klee_assert ~site:"t5:responded" ~message:"transaction left incomplete"
    (Expr.bool (payload.Tlm.Payload.response <> Tlm.Payload.Incomplete))

(* Fuzzer-style masking test: like T3 but with inputs reduced into
   range instead of assumed, so random testing explores the same space
   without rejection sampling. *)
let masking_harness p () =
  let duv = setup_duv p in
  let n = p.cfg.Config.num_sources in
  enable_all_interrupts duv;
  let reduce raw bound = Value.urem ~site:"harness" raw (Value.of_int bound) in
  let id = Value.add Value.one (reduce (klee_int "raw_id") n) in
  let prio = reduce (klee_int "raw_prio") (p.cfg.Config.max_priority + 1) in
  let threshold =
    reduce (klee_int "raw_threshold") (p.cfg.Config.max_priority + 1)
  in
  let ic = Value.to_concrete ~site:"harness:id" id in
  write32 duv (Config.priority_base + (4 * (ic - 1))) prio;
  write32 duv Config.threshold_base threshold;
  Plic.trigger_interrupt duv.dut id;
  ignore (pkernel_step duv);
  if duv.hart.Plic.Hart.was_triggered then
    klee_assert ~site:"masking"
      ~message:"interrupt fired although masked by priority/threshold"
      (Expr.and_ (Value.ne prio Value.zero) (Value.gt prio threshold))

let all = [ ("T1", t1); ("T2", t2); ("T3", t3); ("T4", t4); ("T5", t5) ]

let by_name name =
  Option.map snd
    (List.find_opt (fun (n, _) -> String.uppercase_ascii name = n) all)
