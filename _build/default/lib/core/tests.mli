(** The five symbolic unit tests of Section 5.1.

    Each test is a function of {!params} returning the testbench thunk
    the engine explores.  The parameters select the PLIC variant
    (original / fixed), the injected faults, the configuration scale and
    the transaction-length bounds of the interface tests. *)

type params = {
  cfg : Plic.Config.t;
  variant : Plic.Config.variant;
  faults : Plic.Fault.t list;
  t4_max_len : int;
      (** upper bound of T4's symbolic read length (default 4) *)
  t5_max_len : int;
      (** upper bound of T5's symbolic write length (paper: 1000) *)
  latency_budget : Pk.Sc_time.t;
      (** T1's notification deadline (default: 2 clock cycles) *)
}

val default_params : params
(** FE310, original variant, no faults, [t4_max_len = 4],
    [t5_max_len = 1000]. *)

val scaled_params : num_sources:int -> t5_max_len:int -> params
(** Reduced configuration for tractable benchmark runs. *)

val with_variant : Plic.Config.variant -> params -> params
val with_faults : Plic.Fault.t list -> params -> params

val t1 : params -> unit -> unit
(** Basic interaction test: symbolic interrupt; fired within the
    latency budget, pending bit set, claimable, cleaned up. *)

val t2 : params -> unit -> unit
(** Interrupt sequence test (Fig. 6): two different symbolic lines with
    symbolic priorities triggered simultaneously; higher priority fires
    first, ties to the lower id; second interrupt follows. *)

val t3 : params -> unit -> unit
(** Interrupt masking test: fired only if priority is nonzero and above
    the symbolic threshold. *)

val t4 : params -> unit -> unit
(** TLM read interface test: symbolic address and length. *)

val t5 : params -> unit -> unit
(** TLM write interface test: symbolic address, length and up to
    [t5_max_len] bytes of symbolic data. *)

val masking_harness : params -> unit -> unit
(** A fuzzer-style variant of {!t3}: raw inputs are reduced into their
    valid ranges instead of [assume]d, so the same testbench runs under
    both the symbolic engine and {!Symex.Engine.random_test} without
    rejection sampling — used by the symbolic-vs-random baseline
    comparison. *)

val all : (string * (params -> unit -> unit)) list
(** [("T1", t1); ...] in order. *)

val by_name : string -> (params -> unit -> unit) option
