lib/core/verify.ml: Float List Plic Report String Symex Tests
