lib/core/report.mli: Format Symex
