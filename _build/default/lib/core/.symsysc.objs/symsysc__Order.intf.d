lib/core/order.mli: Pk
