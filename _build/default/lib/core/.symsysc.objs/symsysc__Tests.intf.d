lib/core/tests.mli: Pk Plic
