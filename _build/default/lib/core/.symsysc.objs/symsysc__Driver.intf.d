lib/core/driver.mli: Format Pk Smt Symex Tlm
