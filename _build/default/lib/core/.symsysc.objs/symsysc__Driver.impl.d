lib/core/driver.ml: Format List Pk Printf Smt Symex Tlm
