lib/core/explain.ml: Format List Plic Symex Verify
