lib/core/verify.mli: Plic Report Symex Tests
