lib/core/tables.ml: Float Format List Printf Report Symex Verify
