lib/core/order.ml: List Pk Smt Symex
