lib/core/explain.mli: Format Symex Verify
