lib/core/tables.mli: Format Report Verify
