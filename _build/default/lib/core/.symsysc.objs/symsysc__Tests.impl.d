lib/core/tests.ml: Array List Option Pk Plic Smt String Symex Testbench Tlm
