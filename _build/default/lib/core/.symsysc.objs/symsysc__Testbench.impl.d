lib/core/testbench.ml: Pk Plic Smt Symex Tlm
