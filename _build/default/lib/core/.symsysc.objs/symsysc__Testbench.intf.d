lib/core/testbench.mli: Pk Plic Smt Symex Tlm
