(** Testbench toolkit: the KLEE-style intrinsics plus the TLM and
    interrupt-line conveniences the paper's symbolic unit tests use
    (Fig. 6).

    A {!duv} bundles the device under verification with its kernel and
    mock hart; [setup] builds a fresh instance — testbenches must build
    the whole system inside the explored thunk so that re-executions
    start from a clean state. *)

type duv = {
  sched : Pk.Scheduler.t;
  dut : Plic.t;
  hart : Plic.Hart.t;
}

val setup :
  ?variant:Plic.Config.variant ->
  ?faults:Plic.Fault.t list ->
  Plic.Config.t ->
  duv
(** Create scheduler + PLIC + connected mock hart, install the
    simulation context, and run the initialization delta cycle. *)

(* KLEE-style intrinsics (thin aliases over the engine). *)

val klee_int : string -> Symex.Value.t
(** A fresh symbolic 32-bit input. *)

val klee_assume : Smt.Expr.t -> unit
val klee_assert : site:string -> ?message:string -> Smt.Expr.t -> unit
val pkernel_step : duv -> bool
(** Advance time to the next event (Fig. 6, line 69). *)

(* TLM conveniences. *)

val transport : duv -> Tlm.Payload.t -> Tlm.Payload.t
(** Send a payload through the DUV's target socket (zero base delay);
    returns the same payload with response and data filled in. *)

val read32 : duv -> int -> Symex.Value.t
(** 4-byte read at a concrete device offset; returns the data word. *)

val write32 : duv -> int -> Symex.Value.t -> unit
(** 4-byte write at a concrete device offset. *)

val enable_all_interrupts : duv -> unit
(** Write all-ones to the enable words through TLM. *)

val set_all_priorities : duv -> Symex.Value.t -> unit
(** Write the same priority to every source through TLM. *)

val claim_interrupt : duv -> Symex.Value.t
(** The mock hart's claim helper of Fig. 6: read the claim/response
    register, verify the claimed source's pending bit was cleared
    (recording the outcome in [hart.was_cleared]), then write the id
    back to complete the interrupt.  Returns the claimed id word. *)
