(** Exploration of scheduler nondeterminism.

    The SystemC LRM leaves the execution order of processes runnable at
    the same instant unspecified, and the paper's PK argues any fixed
    order is a valid refinement.  This module provides the stronger
    option: let the symbolic engine {e fork over every legal order}, so
    a testbench can verify that a property holds under all schedules —
    the concern the related work (SDSS, SISSI) addresses with partial
    order reduction.

    Usage, inside a testbench executed by {!Symex.Engine.run}:

    {[
      let sched = Pk.Scheduler.create () in
      Order.explore_schedules sched;
      ...
    ]}

    Every evaluation batch with more than one runnable process then
    forks into one path per permutation (n! paths for a batch of n —
    use on small models). *)

val explore_schedules : Pk.Scheduler.t -> unit
(** Install the forking permutation hook (engine context required when
    a multi-process batch is actually reached). *)

val forking_permutation : int list -> int list
(** The hook itself: chooses a permutation of the given process ids,
    forking across all alternatives.  Exposed for tests. *)
