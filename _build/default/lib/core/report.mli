(** Per-test verification reports (one row of the paper's Table 1). *)

type verdict = Pass | Fail of int

type t = {
  test_name : string;
  verdict : verdict;
  engine : Symex.Engine.report;
}

val make : string -> Symex.Engine.report -> t
(** Derive the verdict from the engine report (Fail with the number of
    distinct detected failures, as in Table 1). *)

val solver_fraction : t -> float
(** Fraction of wall-clock time spent in the solver (Table 1's last
    column). *)

val verdict_to_string : verdict -> string

val pp : Format.formatter -> t -> unit
(** One-line summary. *)

val pp_errors : Format.formatter -> t -> unit
(** Detailed error list with counterexamples. *)
