(** Explanations for known error sites — the bug discussion of the
    paper's Section 5.2 as a queryable knowledge base, used by the CLI
    to annotate findings. *)

type t = {
  bug : Verify.bug option;   (** the paper's bug id, when it is one *)
  summary : string;          (** what went wrong *)
  fix : string;              (** the paper's recommended fix *)
}

val lookup : Symex.Error.t -> t option
(** Explanation for an error, keyed on its detector site. *)

val pp : Format.formatter -> t -> unit
