module Expr = Smt.Expr
module Engine = Symex.Engine

(* Selection with a forking choice at every position: a fresh symbolic
   index constrained below the batch size enumerates all candidates via
   concretization. *)
let rec forking_permutation = function
  | ([] | [ _ ]) as batch -> batch
  | batch ->
    let n = List.length batch in
    let choice = Engine.fresh "sched_choice" 8 in
    Engine.assume (Expr.ult choice (Expr.int ~width:8 n));
    let k = Smt.Bv.to_int (Engine.concretize ~site:"sched:order" choice) in
    let picked = List.nth batch k in
    let rest = List.filteri (fun i _ -> i <> k) batch in
    picked :: forking_permutation rest

let explore_schedules sched =
  Pk.Scheduler.set_batch_hook sched (Some forking_permutation)
