type t = { w : int; v : int64 }

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let width t = t.w
let to_int64 t = t.v

let to_signed_int64 t =
  if t.w >= 64 then t.v
  else if Int64.logand t.v (Int64.shift_left 1L (t.w - 1)) <> 0L then
    Int64.logor t.v (Int64.lognot (mask t.w))
  else t.v

let to_int t =
  if t.v >= 0L && t.v <= Int64.of_int max_int then Int64.to_int t.v
  else invalid_arg "Bv.to_int: value does not fit in int"

let check_width w =
  if w < 1 || w > 64 then invalid_arg "Bv: width must be in 1..64"

let make ~width v =
  check_width width;
  { w = width; v = Int64.logand v (mask width) }

let of_int ~width v = make ~width (Int64.of_int v)
let of_bool b = { w = 1; v = (if b then 1L else 0L) }
let zero w = check_width w; { w; v = 0L }
let one w = make ~width:w 1L
let ones w = check_width w; { w; v = mask w }
let is_zero t = t.v = 0L
let is_ones t = t.v = mask t.w

let equal a b = a.w = b.w && a.v = b.v

let compare a b =
  let c = Int.compare a.w b.w in
  if c <> 0 then c else Int64.unsigned_compare a.v b.v

let hash t = Hashtbl.hash (t.w, t.v)

let same_width a b op =
  if a.w <> b.w then
    invalid_arg (Printf.sprintf "Bv.%s: width mismatch (%d vs %d)" op a.w b.w)

let add a b = same_width a b "add"; make ~width:a.w (Int64.add a.v b.v)
let sub a b = same_width a b "sub"; make ~width:a.w (Int64.sub a.v b.v)
let mul a b = same_width a b "mul"; make ~width:a.w (Int64.mul a.v b.v)
let neg a = make ~width:a.w (Int64.neg a.v)

let udiv a b =
  same_width a b "udiv";
  if b.v = 0L then ones a.w
  else make ~width:a.w (Int64.unsigned_div a.v b.v)

let urem a b =
  same_width a b "urem";
  if b.v = 0L then a
  else make ~width:a.w (Int64.unsigned_rem a.v b.v)

(* SMT-LIB bvsdiv/bvsrem: truncating signed division; division by zero
   yields 1 or -1 for sdiv depending on the dividend sign, and the
   dividend for srem. *)
let sdiv a b =
  same_width a b "sdiv";
  let sa = to_signed_int64 a and sb = to_signed_int64 b in
  if sb = 0L then (if sa >= 0L then ones a.w else one a.w)
  else if sa = Int64.min_int && sb = -1L then make ~width:a.w Int64.min_int
  else make ~width:a.w (Int64.div sa sb)

let srem a b =
  same_width a b "srem";
  let sa = to_signed_int64 a and sb = to_signed_int64 b in
  if sb = 0L then a
  else if sa = Int64.min_int && sb = -1L then zero a.w
  else make ~width:a.w (Int64.rem sa sb)

let logand a b = same_width a b "logand"; { w = a.w; v = Int64.logand a.v b.v }
let logor a b = same_width a b "logor"; { w = a.w; v = Int64.logor a.v b.v }
let logxor a b = same_width a b "logxor"; { w = a.w; v = Int64.logxor a.v b.v }
let lognot a = make ~width:a.w (Int64.lognot a.v)

let shift_amount b =
  if Int64.unsigned_compare b.v 64L >= 0 then 64 else Int64.to_int b.v

let shl a b =
  same_width a b "shl";
  let n = shift_amount b in
  if n >= a.w then zero a.w else make ~width:a.w (Int64.shift_left a.v n)

let lshr a b =
  same_width a b "lshr";
  let n = shift_amount b in
  if n >= a.w then zero a.w
  else make ~width:a.w (Int64.shift_right_logical a.v n)

let ashr a b =
  same_width a b "ashr";
  let n = shift_amount b in
  let s = to_signed_int64 a in
  if n >= a.w then (if s < 0L then ones a.w else zero a.w)
  else make ~width:a.w (Int64.shift_right s n)

let ult a b = same_width a b "ult"; Int64.unsigned_compare a.v b.v < 0
let ule a b = same_width a b "ule"; Int64.unsigned_compare a.v b.v <= 0
let slt a b = same_width a b "slt"; to_signed_int64 a < to_signed_int64 b
let sle a b = same_width a b "sle"; to_signed_int64 a <= to_signed_int64 b

let extract ~hi ~lo t =
  if lo < 0 || hi < lo || hi >= t.w then invalid_arg "Bv.extract: bad range";
  make ~width:(hi - lo + 1) (Int64.shift_right_logical t.v lo)

let concat hi lo =
  let w = hi.w + lo.w in
  if w > 64 then invalid_arg "Bv.concat: combined width exceeds 64";
  { w; v = Int64.logor (Int64.shift_left hi.v lo.w) lo.v }

let zext extra t =
  if extra < 0 then invalid_arg "Bv.zext: negative extension";
  check_width (t.w + extra);
  { w = t.w + extra; v = t.v }

let sext extra t =
  if extra < 0 then invalid_arg "Bv.sext: negative extension";
  check_width (t.w + extra);
  make ~width:(t.w + extra) (to_signed_int64 t)

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bv.bit: index out of range";
  Int64.logand (Int64.shift_right_logical t.v i) 1L = 1L

let pp ppf t = Format.fprintf ppf "0x%Lx:%d" t.v t.w
let to_string t = Format.asprintf "%a" pp t
