(** Fixed-width bitvector values.

    A bitvector is a pair of a width [1..64] and a value stored in an
    [int64] whose bits above the width are always zero.  All operations
    follow SMT-LIB QF_BV semantics: arithmetic wraps modulo [2^width],
    shifts whose amount is [>= width] yield the SMT-LIB result, and
    division by zero follows the SMT-LIB convention ([udiv x 0] is the
    all-ones vector, [urem x 0] is [x]). *)

type t

val width : t -> int
(** Width in bits, between 1 and 64. *)

val to_int64 : t -> int64
(** Unsigned value; bits above [width] are zero. *)

val to_signed_int64 : t -> int64
(** Value sign-extended from bit [width - 1]. *)

val to_int : t -> int
(** Unsigned value as an OCaml [int].  Raises [Invalid_argument] when the
    value does not fit (only possible for widths [>= 63]). *)

val make : width:int -> int64 -> t
(** [make ~width v] truncates [v] to [width] bits.
    Raises [Invalid_argument] if [width] is outside [1..64]. *)

val of_int : width:int -> int -> t
(** [of_int ~width v] is [make ~width (Int64.of_int v)]. *)

val of_bool : bool -> t
(** 1-bit vector: [true] is 1, [false] is 0. *)

val zero : int -> t
(** [zero w] is the all-zero vector of width [w]. *)

val one : int -> t
(** [one w] is the vector of width [w] with value 1. *)

val ones : int -> t
(** [ones w] is the all-ones vector of width [w]. *)

val is_zero : t -> bool
val is_ones : t -> bool

val equal : t -> t -> bool
(** Structural equality (same width and same value). *)

val compare : t -> t -> int
(** Total order: by width, then by unsigned value. *)

val hash : t -> int

(* Arithmetic (wrapping, both operands must share a width, otherwise
   [Invalid_argument] is raised). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val udiv : t -> t -> t
val urem : t -> t -> t
val sdiv : t -> t -> t
val srem : t -> t -> t

(* Bitwise. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

(* Shifts; the shift amount is the unsigned value of the second operand. *)

val shl : t -> t -> t
val lshr : t -> t -> t
val ashr : t -> t -> t

(* Comparisons. *)

val ult : t -> t -> bool
val ule : t -> t -> bool
val slt : t -> t -> bool
val sle : t -> t -> bool

(* Structure. *)

val extract : hi:int -> lo:int -> t -> t
(** [extract ~hi ~lo v] is bits [lo..hi] inclusive, width [hi - lo + 1].
    Raises [Invalid_argument] unless [0 <= lo <= hi < width v]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] in the upper bits.  The combined width must
    not exceed 64. *)

val zext : int -> t -> t
(** [zext extra v] widens [v] by [extra] zero bits. *)

val sext : int -> t -> t
(** [sext extra v] widens [v] by [extra] copies of the sign bit. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (LSB is bit 0). *)

val pp : Format.formatter -> t -> unit
(** Prints as [0xHH:w]. *)

val to_string : t -> string
