let var_name (v : Expr.var) =
  Printf.sprintf "|%s!%d|" v.Expr.var_name v.Expr.var_id

let bv_literal v =
  Printf.sprintf "(_ bv%Lu %d)" (Bv.to_int64 v) (Bv.width v)

let binop_name = function
  | Expr.Add -> "bvadd" | Expr.Sub -> "bvsub" | Expr.Mul -> "bvmul"
  | Expr.Udiv -> "bvudiv" | Expr.Urem -> "bvurem"
  | Expr.Sdiv -> "bvsdiv" | Expr.Srem -> "bvsrem"
  | Expr.And -> "bvand" | Expr.Or -> "bvor" | Expr.Xor -> "bvxor"
  | Expr.Shl -> "bvshl" | Expr.Lshr -> "bvlshr" | Expr.Ashr -> "bvashr"

let cmpop_name = function
  | Expr.Eq -> "=" | Expr.Ult -> "bvult" | Expr.Ule -> "bvule"
  | Expr.Slt -> "bvslt" | Expr.Sle -> "bvsle"

let term e =
  let buf = Buffer.create 256 in
  let rec go (e : Expr.t) =
    match e.Expr.node with
    | Expr.Bool_const b -> Buffer.add_string buf (if b then "true" else "false")
    | Expr.Bv_const v -> Buffer.add_string buf (bv_literal v)
    | Expr.Var v -> Buffer.add_string buf (var_name v)
    | Expr.Not x -> app "not" [ x ]
    | Expr.Andb (a, b) -> app "and" [ a; b ]
    | Expr.Orb (a, b) -> app "or" [ a; b ]
    | Expr.Cmp (op, a, b) -> app (cmpop_name op) [ a; b ]
    | Expr.Ite (c, a, b) -> app "ite" [ c; a; b ]
    | Expr.Bnot x -> app "bvnot" [ x ]
    | Expr.Bin (op, a, b) -> app (binop_name op) [ a; b ]
    | Expr.Extract (hi, lo, x) ->
      app (Printf.sprintf "(_ extract %d %d)" hi lo) [ x ]
    | Expr.Concat (a, b) -> app "concat" [ a; b ]
    | Expr.Zext (w, x) ->
      app (Printf.sprintf "(_ zero_extend %d)" (w - Expr.width x)) [ x ]
    | Expr.Sext (w, x) ->
      app (Printf.sprintf "(_ sign_extend %d)" (w - Expr.width x)) [ x ]
  and app name args =
    Buffer.add_char buf '(';
    Buffer.add_string buf name;
    List.iter (fun a -> Buffer.add_char buf ' '; go a) args;
    Buffer.add_char buf ')'
  in
  go e;
  Buffer.contents buf

let all_vars constraints =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
       List.iter
         (fun (v : Expr.var) ->
            if not (Hashtbl.mem tbl v.Expr.var_id) then
              Hashtbl.add tbl v.Expr.var_id v)
         (Expr.vars c))
    constraints;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : Expr.var) b -> Int.compare a.Expr.var_id b.Expr.var_id)

let declarations constraints =
  List.map
    (fun (v : Expr.var) ->
       Printf.sprintf "(declare-const %s (_ BitVec %d))" (var_name v)
         v.Expr.var_width)
    (all_vars constraints)

let query ?(logic = "QF_BV") constraints =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "(set-logic %s)\n" logic);
  List.iter
    (fun d -> Buffer.add_string buf d; Buffer.add_char buf '\n')
    (declarations constraints);
  List.iter
    (fun c ->
       Buffer.add_string buf (Printf.sprintf "(assert %s)\n" (term c)))
    constraints;
  Buffer.add_string buf "(check-sat)\n(get-model)\n";
  Buffer.contents buf

let model_values model =
  List.map
    (fun ((v : Expr.var), value) ->
       Printf.sprintf "(define-fun %s () (_ BitVec %d) %s)" (var_name v)
         v.Expr.var_width (bv_literal value))
    (Model.bindings model)
