lib/smt/sat.mli:
