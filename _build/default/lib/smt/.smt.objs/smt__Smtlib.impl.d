lib/smt/smtlib.ml: Buffer Bv Expr Hashtbl Int List Model Printf
