lib/smt/solver.ml: Bitblast Expr Format Hashtbl Int Interval List Model Sat Unix
