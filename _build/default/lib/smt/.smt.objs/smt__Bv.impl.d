lib/smt/bv.ml: Format Hashtbl Int Int64 Printf
