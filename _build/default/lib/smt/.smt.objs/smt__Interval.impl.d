lib/smt/interval.ml: Bv Expr Format Hashtbl Int64 List
