lib/smt/bitblast.ml: Array Bv Expr Hashtbl Int64 List Model Sat
