lib/smt/model.mli: Bv Expr Format
