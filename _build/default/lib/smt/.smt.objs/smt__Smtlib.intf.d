lib/smt/smtlib.mli: Expr Model
