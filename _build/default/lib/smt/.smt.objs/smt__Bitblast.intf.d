lib/smt/bitblast.mli: Expr Model Sat
