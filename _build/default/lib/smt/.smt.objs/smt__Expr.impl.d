lib/smt/expr.ml: Bv Format Hashtbl Int Int64 List
