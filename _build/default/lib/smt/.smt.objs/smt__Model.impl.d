lib/smt/model.ml: Bv Expr Format Int List Map Option
