lib/smt/interval.mli: Bv Expr Format
