lib/smt/sat.ml: Array Int List
