lib/smt/expr.mli: Bv Format
