(** SMT-LIB 2 export of queries.

    Renders constraint sets in the [QF_BV] dialect, so any query the
    engine produces can be dumped and cross-checked against an external
    solver (Z3, STP, Boolector, ...) or archived with a bug report. *)

val term : Expr.t -> string
(** A single term as an SMT-LIB s-expression. *)

val declarations : Expr.t list -> string list
(** [declare-const] lines for every variable in the constraint set, in
    [var_id] order. *)

val query : ?logic:string -> Expr.t list -> string
(** The complete document: [set-logic] (default [QF_BV]),
    declarations, one [assert] per constraint, [check-sat],
    [get-model]. *)

val model_values : Model.t -> string list
(** The bindings of a model as [(define-fun ...)] lines — the shape
    [get-model] answers have. *)
