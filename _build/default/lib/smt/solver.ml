type outcome =
  | Sat of Model.t
  | Unsat
  | Unknown of string

module Stats = struct
  type t = {
    queries : int;
    cache_hits : int;
    cex_hits : int;
    interval_unsat : int;
    interval_sat : int;
    sat_calls : int;
    time : float;
  }

  let zero =
    { queries = 0; cache_hits = 0; cex_hits = 0; interval_unsat = 0;
      interval_sat = 0; sat_calls = 0; time = 0.0 }

  let current = ref zero
  let get () = !current
  let reset () = current := zero

  let pp ppf t =
    Format.fprintf ppf
      "queries=%d cache=%d cex=%d itv-unsat=%d itv-sat=%d sat-calls=%d time=%.3fs"
      t.queries t.cache_hits t.cex_hits t.interval_unsat t.interval_sat
      t.sat_calls t.time
end

let caching = ref true
let set_caching b = caching := b

(* Query cache: canonical key is the sorted list of term ids (terms are
   hash-consed, so equal sets of constraints share a key). *)
let query_cache : (int list, outcome) Hashtbl.t = Hashtbl.create 4096

(* Counterexample cache: a bounded list of recently discovered models.
   A model satisfying a superset query also satisfies this query, so
   re-evaluating recent models is cheap and hits often. *)
let recent_models : Model.t list ref = ref []
let max_recent = 12

let remember_model m =
  if !caching then begin
    recent_models := m :: !recent_models;
    match List.nth_opt !recent_models max_recent with
    | Some _ ->
      recent_models :=
        List.filteri (fun i _ -> i < max_recent) !recent_models
    | None -> ()
  end

let clear_caches () =
  Hashtbl.reset query_cache;
  recent_models := []

let all_vars constraints =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
       List.iter
         (fun (v : Expr.var) ->
            if not (Hashtbl.mem tbl v.Expr.var_id) then
              Hashtbl.add tbl v.Expr.var_id v)
         (Expr.vars c))
    constraints;
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []
  |> List.sort (fun (a : Expr.var) b -> Int.compare a.Expr.var_id b.Expr.var_id)

let solve_with_sat ?conflict_limit constraints vars =
  let sat = Sat.create () in
  let ctx = Bitblast.create sat in
  List.iter (Bitblast.assert_true ctx) constraints;
  match Sat.solve ?conflict_limit sat with
  | Sat.Unsat -> Unsat
  | Sat.Sat ->
    let model = Bitblast.extract_model ctx vars in
    (* Safety net: a model must satisfy the query by evaluation. *)
    if not (Model.satisfies model constraints) then
      failwith "Solver: internal error, SAT model fails evaluation";
    Sat model
  | exception Sat.Resource_exhausted -> Unknown "conflict limit reached"

let check_uncached ?conflict_limit constraints =
  let vars = all_vars constraints in
  (* Counterexample cache. *)
  let cex = List.find_opt (fun m -> Model.satisfies m constraints) !recent_models in
  match cex with
  | Some m ->
    Stats.(current := { !current with cex_hits = !current.cex_hits + 1 });
    Sat m
  | None ->
    (* Interval prescreen. *)
    let env = Interval.make_env () in
    (match Interval.propagate env constraints with
     | Interval.Definitely_unsat ->
       Stats.(current := { !current with interval_unsat = !current.interval_unsat + 1 });
       Unsat
     | Interval.Unknown ->
       let candidate =
         List.find_map
           (fun f ->
              let m = Model.of_fun vars f in
              if Model.satisfies m constraints then Some m else None)
           (Interval.candidates env vars)
       in
       match candidate with
       | Some m ->
         Stats.(current := { !current with interval_sat = !current.interval_sat + 1 });
         remember_model m;
         Sat m
       | None ->
         Stats.(current := { !current with sat_calls = !current.sat_calls + 1 });
         let r = solve_with_sat ?conflict_limit constraints vars in
         (match r with Sat m -> remember_model m | Unsat | Unknown _ -> ());
         r)

let check ?conflict_limit constraints =
  let t0 = Unix.gettimeofday () in
  Stats.(current := { !current with queries = !current.queries + 1 });
  let finish r =
    let dt = Unix.gettimeofday () -. t0 in
    Stats.(current := { !current with time = !current.time +. dt });
    r
  in
  (* Constant short-circuit. *)
  let constraints = List.filter (fun c -> Expr.to_bool c <> Some true) constraints in
  if List.exists (fun c -> Expr.to_bool c = Some false) constraints then
    finish Unsat
  else if constraints = [] then finish (Sat Model.empty)
  else begin
    let key =
      List.sort_uniq Int.compare (List.map (fun (c : Expr.t) -> c.Expr.id) constraints)
    in
    match if !caching then Hashtbl.find_opt query_cache key else None with
    | Some r ->
      Stats.(current := { !current with cache_hits = !current.cache_hits + 1 });
      finish r
    | None ->
      let r = check_uncached ?conflict_limit constraints in
      (match r with
       | Unknown _ -> ()
       | Sat _ | Unsat -> if !caching then Hashtbl.replace query_cache key r);
      finish r
  end

let is_sat ?conflict_limit constraints =
  match check ?conflict_limit constraints with
  | Sat _ -> true
  | Unsat -> false
  | Unknown msg -> failwith ("Solver.is_sat: unknown: " ^ msg)

let get_model constraints =
  match check constraints with
  | Sat m -> Some m
  | Unsat -> None
  | Unknown msg -> failwith ("Solver.get_model: unknown: " ^ msg)
