type t = { lo : int64; hi : int64; w : int }

let ucmp = Int64.unsigned_compare
let umin a b = if ucmp a b <= 0 then a else b
let umax a b = if ucmp a b >= 0 then a else b

let mask w =
  if w >= 64 then -1L else Int64.sub (Int64.shift_left 1L w) 1L

let top w = { lo = 0L; hi = mask w; w }
let singleton v = { lo = Bv.to_int64 v; hi = Bv.to_int64 v; w = Bv.width v }
let is_singleton t = t.lo = t.hi
let mem v t = ucmp (Bv.to_int64 v) t.lo >= 0 && ucmp (Bv.to_int64 v) t.hi <= 0

let inter a b =
  let lo = umax a.lo b.lo and hi = umin a.hi b.hi in
  if ucmp lo hi <= 0 then Some { lo; hi; w = a.w } else None

let pp ppf t = Format.fprintf ppf "[0x%Lx..0x%Lx]:%d" t.lo t.hi t.w

type env = (int, t) Hashtbl.t

let make_env () : env = Hashtbl.create 32

let env_interval env (v : Expr.var) =
  match Hashtbl.find_opt env v.Expr.var_id with
  | Some i -> i
  | None -> top v.Expr.var_width

(* Addition without wrap is representable iff hi1 + hi2 does not exceed
   the width mask (checked in 64-bit arithmetic, guarding 64-bit
   overflow itself). *)
let add_no_wrap w a b =
  let s = Int64.add a b in
  (* 64-bit unsigned overflow check: s < a means wrapped. *)
  if ucmp s a < 0 then None
  else if ucmp s (mask w) > 0 then None
  else Some s

let rec bounds env (e : Expr.t) : t =
  match e.Expr.node with
  | Expr.Bv_const v -> singleton v
  | Expr.Bool_const b -> { lo = (if b then 1L else 0L); hi = (if b then 1L else 0L); w = 1 }
  | Expr.Var v -> env_interval env v
  | Expr.Ite (_, a, b) ->
    let ia = bounds env a and ib = bounds env b in
    { lo = umin ia.lo ib.lo; hi = umax ia.hi ib.hi; w = ia.w }
  | Expr.Bin (op, a, b) ->
    let ia = bounds env a and ib = bounds env b in
    let w = ia.w in
    (match op with
     | Expr.Add ->
       (match add_no_wrap w ia.hi ib.hi with
        | Some hi ->
          (match add_no_wrap w ia.lo ib.lo with
           | Some lo -> { lo; hi; w }
           | None -> top w)
        | None -> top w)
     | Expr.Sub ->
       (* No wrap iff lo(a) >= hi(b). *)
       if ucmp ia.lo ib.hi >= 0 then
         { lo = Int64.sub ia.lo ib.hi; hi = Int64.sub ia.hi ib.lo; w }
       else top w
     | Expr.Mul ->
       if ia.hi = 0L || ib.hi = 0L then { lo = 0L; hi = 0L; w }
       else if
         ucmp ia.hi 0xFFFF_FFFFL <= 0 && ucmp ib.hi 0xFFFF_FFFFL <= 0
         && ucmp (Int64.mul ia.hi ib.hi) (mask w) <= 0
       then { lo = Int64.mul ia.lo ib.lo; hi = Int64.mul ia.hi ib.hi; w }
       else top w
     | Expr.And -> { lo = 0L; hi = umin ia.hi ib.hi; w }
     | Expr.Or -> { lo = umax ia.lo ib.lo; hi = mask w; w }
     | Expr.Udiv ->
       if ib.lo = 0L then top w
       else { lo = Int64.unsigned_div ia.lo ib.hi; hi = Int64.unsigned_div ia.hi ib.lo; w }
     | Expr.Urem ->
       if ib.hi = 0L then bounds env a
       else { lo = 0L; hi = umin ia.hi (Int64.sub ib.hi 1L); w }
     | Expr.Shl ->
       let ibb = bounds env b in
       if is_singleton ibb && ucmp ibb.lo (Int64.of_int w) < 0 then
         let s = Int64.to_int ibb.lo in
         if ucmp ia.hi (Int64.shift_right_logical (mask w) s) <= 0 then
           { lo = Int64.shift_left ia.lo s; hi = Int64.shift_left ia.hi s; w }
         else top w
       else top w
     | Expr.Lshr ->
       let ibb = bounds env b in
       if is_singleton ibb && ucmp ibb.lo 63L <= 0 then
         let s = Int64.to_int ibb.lo in
         { lo = Int64.shift_right_logical ia.lo s;
           hi = Int64.shift_right_logical ia.hi s; w }
       else { lo = 0L; hi = ia.hi; w }
     | Expr.Xor | Expr.Sdiv | Expr.Srem | Expr.Ashr -> top w)
  | Expr.Bnot _ -> top (Expr.width e)
  | Expr.Extract (hi, lo, x) ->
    let ix = bounds env x in
    let w = hi - lo + 1 in
    if lo = 0 && ucmp ix.hi (mask (hi + 1)) <= 0 then { lo = ix.lo; hi = ix.hi; w }
    else top w
  | Expr.Zext (w, x) ->
    let ix = bounds env x in
    { lo = ix.lo; hi = ix.hi; w }
  | Expr.Sext (w, x) ->
    let ix = bounds env x in
    let xw = Expr.width x in
    if ucmp ix.hi (mask (xw - 1)) <= 0 then { lo = ix.lo; hi = ix.hi; w }
    else top w
  | Expr.Concat (a, b) ->
    let ia = bounds env a and ib = bounds env b in
    let wb = ib.w in
    let w = ia.w + wb in
    if is_singleton ia then
      { lo = Int64.logor (Int64.shift_left ia.lo wb) ib.lo;
        hi = Int64.logor (Int64.shift_left ia.lo wb) ib.hi; w }
    else { lo = Int64.shift_left ia.lo wb; hi = mask w; w }
  | Expr.Not _ | Expr.Andb _ | Expr.Orb _ | Expr.Cmp _ ->
    { lo = 0L; hi = 1L; w = 1 }

type verdict = Definitely_unsat | Unknown

exception Empty

let refine env (v : Expr.var) (i : t) =
  match inter (env_interval env v) i with
  | Some j -> Hashtbl.replace env v.Expr.var_id j
  | None -> raise Empty

(* Recognize [var CMP const] shapes (possibly through zext) and refine. *)
let rec as_var (e : Expr.t) : Expr.var option =
  match e.Expr.node with
  | Expr.Var v -> Some v
  | Expr.Zext (_, x) -> as_var x
  | Expr.Bool_const _ | Expr.Bv_const _ | Expr.Not _ | Expr.Andb _
  | Expr.Orb _ | Expr.Cmp _ | Expr.Ite _ | Expr.Bnot _ | Expr.Bin _
  | Expr.Extract _ | Expr.Concat _ | Expr.Sext _ ->
    None

let refine_constraint env (c : Expr.t) =
  let refine_cmp op (a : Expr.t) (b : Expr.t) ~positive =
    let var_const =
      match as_var a, Expr.to_bv b with
      | Some v, Some k -> Some (`Left, v, Bv.to_int64 k)
      | _ ->
        (match Expr.to_bv a, as_var b with
         | Some k, Some v -> Some (`Right, v, Bv.to_int64 k)
         | _ -> None)
    in
    match var_const with
    | None -> ()
    | Some (side, v, k) ->
      let w = v.Expr.var_width in
      let full = mask w in
      (* Constraints through zext only refine when k fits the var width. *)
      if ucmp k full > 0 then ()
      else
        let itv =
          match op, side, positive with
          | Expr.Eq, _, true -> Some { lo = k; hi = k; w }
          | Expr.Eq, _, false -> None (* holes are not representable *)
          | Expr.Ult, `Left, true ->
            if k = 0L then raise Empty
            else Some { lo = 0L; hi = Int64.sub k 1L; w }
          | Expr.Ult, `Left, false -> Some { lo = k; hi = full; w }
          | Expr.Ult, `Right, true ->
            if k = full then raise Empty
            else Some { lo = Int64.add k 1L; hi = full; w }
          | Expr.Ult, `Right, false -> Some { lo = 0L; hi = k; w }
          | Expr.Ule, `Left, true -> Some { lo = 0L; hi = k; w }
          | Expr.Ule, `Left, false ->
            if k = full then raise Empty
            else Some { lo = Int64.add k 1L; hi = full; w }
          | Expr.Ule, `Right, true -> Some { lo = k; hi = full; w }
          | Expr.Ule, `Right, false ->
            if k = 0L then raise Empty
            else Some { lo = 0L; hi = Int64.sub k 1L; w }
          | (Expr.Slt | Expr.Sle), _, _ -> None
        in
        match itv with None -> () | Some i -> refine env v i
  in
  let rec go c ~positive =
    match c.Expr.node with
    | Expr.Not x -> go x ~positive:(not positive)
    | Expr.Andb (a, b) when positive -> go a ~positive; go b ~positive
    | Expr.Orb (a, b) when not positive ->
      go a ~positive; go b ~positive (* ¬(a∨b) = ¬a ∧ ¬b *)
    | Expr.Cmp (op, a, b) -> refine_cmp op a b ~positive
    | Expr.Bool_const false when positive -> raise Empty
    | Expr.Bool_const true when not positive -> raise Empty
    | Expr.Bool_const _ | Expr.Andb _ | Expr.Orb _ | Expr.Bv_const _
    | Expr.Var _ | Expr.Ite _ | Expr.Bnot _ | Expr.Bin _ | Expr.Extract _
    | Expr.Concat _ | Expr.Zext _ | Expr.Sext _ ->
      ()
  in
  go c ~positive:true

(* A constraint is definitely false when its interval evaluation can only
   be false, e.g. [a < b] with hi(a) < lo(b) being violated on the whole
   ranges. *)
let definitely_false env (c : Expr.t) =
  let rec go c ~positive =
    match c.Expr.node with
    | Expr.Not x -> go x ~positive:(not positive)
    | Expr.Cmp (op, a, b) ->
      let ia = bounds env a and ib = bounds env b in
      (match op, positive with
       | Expr.Eq, true -> inter ia ib = None
       | Expr.Eq, false ->
         is_singleton ia && is_singleton ib && ia.lo = ib.lo
       | Expr.Ult, true -> ucmp ia.lo ib.hi >= 0 (* min a >= max b *)
       | Expr.Ult, false -> ucmp ia.hi ib.lo < 0
       | Expr.Ule, true -> ucmp ia.lo ib.hi > 0
       | Expr.Ule, false -> ucmp ia.hi ib.lo <= 0
       | (Expr.Slt | Expr.Sle), _ -> false)
    | Expr.Bool_const b -> if positive then not b else b
    | Expr.Andb (a, b) -> positive && (go a ~positive:true || go b ~positive:true)
    | Expr.Orb _ -> false
    | Expr.Var _ | Expr.Bv_const _ | Expr.Ite _ | Expr.Bnot _ | Expr.Bin _
    | Expr.Extract _ | Expr.Concat _ | Expr.Zext _ | Expr.Sext _ ->
      false
  in
  go c ~positive:true

let propagate env constraints =
  try
    (* Two refinement passes let simple chains converge. *)
    List.iter (refine_constraint env) constraints;
    List.iter (refine_constraint env) constraints;
    if List.exists (definitely_false env) constraints then Definitely_unsat
    else Unknown
  with Empty -> Definitely_unsat

let candidates env vars =
  let assignment pick =
    fun (v : Expr.var) ->
      let i = env_interval env v in
      Bv.make ~width:v.Expr.var_width (pick i)
  in
  let lows = assignment (fun i -> i.lo) in
  let highs = assignment (fun i -> i.hi) in
  let zeros (v : Expr.var) =
    let i = env_interval env v in
    if mem (Bv.zero v.Expr.var_width) i then Bv.zero v.Expr.var_width
    else Bv.make ~width:v.Expr.var_width i.lo
  in
  (* Mixed assignments decide most two-variable comparisons (x < y and
     y < x) without the SAT solver: alternate endpoints by position. *)
  let index_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (v : Expr.var) -> Hashtbl.replace tbl v.Expr.var_id i) vars;
    fun (v : Expr.var) ->
      match Hashtbl.find_opt tbl v.Expr.var_id with Some i -> i | None -> 0
  in
  let lohi (v : Expr.var) =
    let i = env_interval env v in
    Bv.make ~width:v.Expr.var_width
      (if index_of v mod 2 = 0 then i.lo else i.hi)
  in
  let hilo (v : Expr.var) =
    let i = env_interval env v in
    Bv.make ~width:v.Expr.var_width
      (if index_of v mod 2 = 0 then i.hi else i.lo)
  in
  (* Near-endpoint values catch strict comparisons between neighbours
     (x < y with both in the same range). *)
  let lo_plus (v : Expr.var) =
    let i = env_interval env v in
    let bump = Int64.add i.lo (Int64.of_int (index_of v)) in
    Bv.make ~width:v.Expr.var_width (if ucmp bump i.hi <= 0 then bump else i.hi)
  in
  let hi_minus (v : Expr.var) =
    let i = env_interval env v in
    let drop = Int64.sub i.hi (Int64.of_int (index_of v)) in
    Bv.make ~width:v.Expr.var_width (if ucmp drop i.lo >= 0 then drop else i.lo)
  in
  [ lows; highs; zeros; lohi; hilo; lo_plus; hi_minus ]
