(** Unsigned-interval abstract domain used as a fast prescreen before
    bit-blasting.

    The solver uses this module for two purposes:
    - proving a constraint set unsatisfiable without touching the SAT
      solver (e.g. [x < 51 && x > 100]);
    - producing candidate assignments (interval endpoints) that are then
      validated by concrete evaluation, yielding a model without SAT
      solving when they happen to satisfy the query. *)

type t = { lo : int64; hi : int64; w : int }
(** Unsigned range [lo..hi] (inclusive) of a [w]-bit value, with
    [0 <= lo <= hi <= 2^w - 1] in the unsigned order. *)

val top : int -> t
(** Full range of a given width. *)

val singleton : Bv.t -> t

val is_singleton : t -> bool

val mem : Bv.t -> t -> bool

val inter : t -> t -> t option
(** Intersection; [None] when empty. *)

val pp : Format.formatter -> t -> unit

type env
(** Mutable refinement environment mapping variables to intervals. *)

val make_env : unit -> env

val env_interval : env -> Expr.var -> t
(** Current interval of a variable ([top] when unconstrained). *)

val bounds : env -> Expr.t -> t
(** Forward interval evaluation of a bitvector term. *)

type verdict = Definitely_unsat | Unknown

val propagate : env -> Expr.t list -> verdict
(** Refine the environment with simple range constraints found in the
    conjunction, then check every constraint against the refined
    environment.  [Definitely_unsat] is sound: the conjunction has no
    model.  [Unknown] means the prescreen cannot decide. *)

val candidates : env -> Expr.var list -> (Expr.var -> Bv.t) list
(** Candidate assignments built from interval endpoints (all-low,
    all-high, all-zero), to be validated by evaluation. *)
