type signal = {
  sg_name : string;
  sg_width : int;
  sg_code : string;                        (* VCD identifier code *)
  mutable changes : (int64 * int64) list;  (* (time ps, value), newest first *)
}

type t = {
  tr_name : string;
  timescale : string;
  mutable signals : signal list;           (* newest first *)
  mutable next_code : int;
}

let create ?(timescale = "1ps") ~name () =
  { tr_name = name; timescale; signals = []; next_code = 0 }

(* Identifier codes use the printable range '!'..'~' in a base-94
   little-endian encoding, as real VCD writers do. *)
let code_of_int n =
  let buf = Buffer.create 2 in
  let rec go n =
    Buffer.add_char buf (Char.chr (33 + (n mod 94)));
    if n >= 94 then go ((n / 94) - 1)
  in
  go n;
  Buffer.contents buf

let signal t ?(width = 1) name =
  if width < 1 || width > 64 then invalid_arg "Trace.signal: width in 1..64";
  let s =
    { sg_name = name; sg_width = width; sg_code = code_of_int t.next_code;
      changes = [] }
  in
  t.next_code <- t.next_code + 1;
  t.signals <- s :: t.signals;
  s

let change t s time value =
  ignore t;
  let time = Sc_time.to_ps time in
  match s.changes with
  | (last_t, last_v) :: _ ->
    if Int64.compare time last_t < 0 then
      invalid_arg "Trace.change: time going backwards";
    if last_v <> value then s.changes <- (time, value) :: s.changes
  | [] -> s.changes <- (time, value) :: s.changes

let change_bool t s time b = change t s time (if b then 1L else 0L)

let binary_string width v =
  String.init width (fun i ->
      let bit = width - 1 - i in
      if Int64.logand (Int64.shift_right_logical v bit) 1L = 1L then '1'
      else '0')

let value_string s v =
  if s.sg_width = 1 then Printf.sprintf "%Ld%s" (Int64.logand v 1L) s.sg_code
  else Printf.sprintf "b%s %s" (binary_string s.sg_width v) s.sg_code

let to_vcd t =
  let buf = Buffer.create 1024 in
  let signals = List.rev t.signals in
  Buffer.add_string buf (Printf.sprintf "$comment %s $end\n" t.tr_name);
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" t.timescale);
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" t.tr_name);
  List.iter
    (fun s ->
       Buffer.add_string buf
         (Printf.sprintf "$var wire %d %s %s $end\n" s.sg_width s.sg_code
            s.sg_name))
    signals;
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  (* Merge all changes into one time-ordered stream. *)
  let events =
    List.concat_map
      (fun s -> List.rev_map (fun (time, v) -> (time, s, v)) s.changes)
      signals
    |> List.stable_sort (fun (a, _, _) (b, _, _) -> Int64.compare a b)
  in
  let current = ref Int64.minus_one in
  List.iter
    (fun (time, s, v) ->
       if Int64.compare time !current <> 0 then begin
         Buffer.add_string buf (Printf.sprintf "#%Ld\n" time);
         current := time
       end;
       Buffer.add_string buf (value_string s v);
       Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_vcd t))
