type wait =
  | Wait_event of int
  | Wait_time of float
  | Terminate

type proc = {
  name : string;
  body : unit -> wait;
  context : Bytes.t;          (* fake quickthreads stack *)
  mutable waiting_on : wait option;
}

type t = {
  context_bytes : int;
  mutable time : float;
  mutable procs : proc list;
  mutable next_event : int;
  (* Unsorted pending list: (fire time, event id). *)
  mutable pending : (float * int) list;
  mutable timed : (float * proc) list;
  mutable activations_n : int;
  mutable scratch : Bytes.t;
}

let create ?(context_bytes = 65536) () =
  {
    context_bytes;
    time = 0.0;
    procs = [];
    next_event = 0;
    pending = [];
    timed = [];
    activations_n = 0;
    scratch = Bytes.create context_bytes;
  }

let now t = t.time
let activations t = t.activations_n

(* Emulate a quickthreads context switch: save and restore the stack. *)
let context_switch t proc =
  Bytes.blit proc.context 0 t.scratch 0 t.context_bytes;
  Bytes.blit t.scratch 0 proc.context 0 t.context_bytes

let activate t proc =
  t.activations_n <- t.activations_n + 1;
  context_switch t proc;
  let w = proc.body () in
  context_switch t proc;
  match w with
  | Terminate -> proc.waiting_on <- None
  | Wait_event _ as w -> proc.waiting_on <- Some w
  | Wait_time d -> proc.waiting_on <- None; t.timed <- (t.time +. d, proc) :: t.timed

let spawn t name body =
  let proc =
    { name; body; context = Bytes.create t.context_bytes; waiting_on = None }
  in
  ignore proc.name;
  t.procs <- proc :: t.procs;
  activate t proc

let new_event t =
  let id = t.next_event in
  t.next_event <- id + 1;
  id

let notify_after t ev d = t.pending <- (t.time +. d, ev) :: t.pending

let step t =
  (* Linear scan for the earliest wakeup among notifications and timed
     process wakes. *)
  let earliest =
    List.fold_left
      (fun acc (at, _) -> match acc with None -> Some at | Some a -> Some (Float.min a at))
      None
      (List.map (fun (at, e) -> (at, `E e)) t.pending
       @ List.map (fun (at, p) -> (at, `P p)) t.timed
       |> List.map (fun (at, _) -> (at, ())))
  in
  match earliest with
  | None -> false
  | Some at ->
    t.time <- at;
    let fired, rest = List.partition (fun (a, _) -> a = at) t.pending in
    t.pending <- rest;
    let woken, still = List.partition (fun (a, _) -> a = at) t.timed in
    t.timed <- still;
    List.iter
      (fun (_, ev) ->
         List.iter
           (fun proc ->
              match proc.waiting_on with
              | Some (Wait_event e) when e = ev ->
                proc.waiting_on <- None;
                activate t proc
              | Some (Wait_event _ | Wait_time _ | Terminate) | None -> ())
           t.procs)
      fired;
    List.iter (fun (_, proc) -> activate t proc) woken;
    true
