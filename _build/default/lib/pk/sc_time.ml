type t = int64 (* picoseconds *)

let zero = 0L

let of_ps v =
  if v < 0L then invalid_arg "Sc_time.of_ps: negative time" else v

let scale k n =
  if n < 0 then invalid_arg "Sc_time: negative time"
  else Int64.mul k (Int64.of_int n)

let ps n = scale 1L n
let ns n = scale 1_000L n
let us n = scale 1_000_000L n
let ms n = scale 1_000_000_000L n
let sec n = scale 1_000_000_000_000L n
let to_ps t = t
let add = Int64.add

let sub a b = if Int64.compare a b <= 0 then 0L else Int64.sub a b

let mul_int t n = scale t n
let compare = Int64.compare
let equal = Int64.equal
let min a b = if Int64.compare a b <= 0 then a else b
let max a b = if Int64.compare a b >= 0 then a else b
let is_zero t = t = 0L
let ( < ) a b = Int64.compare a b < 0
let ( <= ) a b = Int64.compare a b <= 0
let ( > ) a b = Int64.compare a b > 0
let ( >= ) a b = Int64.compare a b >= 0

let pp ppf t =
  if t = 0L then Format.pp_print_string ppf "0s"
  else if Int64.rem t 1_000_000_000_000L = 0L then
    Format.fprintf ppf "%Lds" (Int64.div t 1_000_000_000_000L)
  else if Int64.rem t 1_000_000_000L = 0L then
    Format.fprintf ppf "%Ldms" (Int64.div t 1_000_000_000L)
  else if Int64.rem t 1_000_000L = 0L then
    Format.fprintf ppf "%Ldus" (Int64.div t 1_000_000L)
  else if Int64.rem t 1_000L = 0L then
    Format.fprintf ppf "%Ldns" (Int64.div t 1_000L)
  else Format.fprintf ppf "%Ldps" t

let to_string t = Format.asprintf "%a" pp t
