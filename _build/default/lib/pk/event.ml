type pending =
  | Not_notified
  | Delta
  | At of Sc_time.t

type t = {
  ev_name : string;
  ev_id : int;
  mutable waiters : (int * int) list;
  mutable pending : pending;
}

let next_id = ref 0

let make ev_name =
  let ev_id = !next_id in
  incr next_id;
  { ev_name; ev_id; waiters = []; pending = Not_notified }

let name t = t.ev_name

let pp ppf t =
  let pp_pending ppf = function
    | Not_notified -> Format.pp_print_string ppf "idle"
    | Delta -> Format.pp_print_string ppf "delta"
    | At time -> Sc_time.pp ppf time
  in
  Format.fprintf ppf "%s#%d[%a, %d waiting]" t.ev_name t.ev_id pp_pending
    t.pending (List.length t.waiters)
