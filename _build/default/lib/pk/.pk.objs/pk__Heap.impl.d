lib/pk/heap.ml: Array
