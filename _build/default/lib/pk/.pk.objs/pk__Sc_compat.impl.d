lib/pk/sc_compat.ml: Event Process Sc_time Scheduler
