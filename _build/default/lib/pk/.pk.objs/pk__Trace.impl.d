lib/pk/trace.ml: Buffer Char Fun Int64 List Printf Sc_time String
