lib/pk/sc_time.mli: Format
