lib/pk/heavy_kernel.mli:
