lib/pk/sc_compat.mli: Event Process Sc_time Scheduler
