lib/pk/sc_time.ml: Format Int64
