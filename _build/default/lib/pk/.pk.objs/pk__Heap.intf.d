lib/pk/heap.mli:
