lib/pk/event.ml: Format List Sc_time
