lib/pk/trace.mli: Sc_time
