lib/pk/event.mli: Format Sc_time
