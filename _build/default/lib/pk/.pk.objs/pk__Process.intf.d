lib/pk/process.mli: Event Format Sc_time
