lib/pk/process.ml: Event Format Sc_time
