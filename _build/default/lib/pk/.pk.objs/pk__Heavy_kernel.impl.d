lib/pk/heavy_kernel.ml: Bytes Float List
