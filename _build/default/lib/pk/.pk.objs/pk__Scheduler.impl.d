lib/pk/scheduler.ml: Event Hashtbl Heap Int List Option Process Sc_time
