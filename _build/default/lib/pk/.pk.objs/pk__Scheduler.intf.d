lib/pk/scheduler.mli: Event Process Sc_time
