(** Binary min-heap, the sorted wakelist backbone of the PK scheduler. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removal. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in arbitrary order (heap order, not sorted). *)
