(** VCD (Value Change Dump) waveform tracing.

    The PK analogue of SystemC's [sc_trace]: register signals, record
    value changes with their simulation time, and render an IEEE-1364
    VCD document that any waveform viewer (GTKWave etc.) can open.
    Useful to inspect a counterexample replay as a waveform. *)

type t
type signal

val create : ?timescale:string -> name:string -> unit -> t
(** [timescale] defaults to ["1ps"] (the PK time base). *)

val signal : t -> ?width:int -> string -> signal
(** Register a signal (default width 1).  Signals must be registered
    before the first [change] is recorded. *)

val change : t -> signal -> Sc_time.t -> int64 -> unit
(** Record a new value at the given time.  Identical consecutive values
    are collapsed.  Times must be non-decreasing per signal. *)

val change_bool : t -> signal -> Sc_time.t -> bool -> unit

val to_vcd : t -> string
(** Render the complete VCD document. *)

val save : t -> string -> unit
(** Write the document to a file. *)
