type sc_event = Event.t

let context : Scheduler.t option ref = ref None

let sc_set_context sched = context := Some sched

let sc_get_context () =
  match !context with
  | Some sched -> sched
  | None -> failwith "Sc_compat: no simulation context installed"

let sc_event name = Event.make name

let sc_spawn name body =
  let p = Process.make name body in
  Scheduler.spawn (sc_get_context ()) p;
  p

let notify ?delay ev =
  let sched = sc_get_context () in
  match delay with
  | None -> Scheduler.notify sched ev
  | Some d when Sc_time.is_zero d -> Scheduler.notify_delta sched ev
  | Some d -> Scheduler.notify_at sched ev d

let cancel ev = Scheduler.cancel (sc_get_context ()) ev
let sc_time_stamp () = Scheduler.now (sc_get_context ())
let sc_zero_time = Sc_time.zero
let pkernel_step () = Scheduler.step (sc_get_context ())

let sc_start duration =
  let sched = sc_get_context () in
  Scheduler.run_until sched (Sc_time.add (Scheduler.now sched) duration)
