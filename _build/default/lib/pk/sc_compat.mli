(** SystemC-flavoured veneer over the PK (the "SystemC compatible
    library" box of Fig. 5).

    Translated peripherals link against these names so that their code
    reads like the original SystemC model: a global simulation context
    is installed once, and [sc_event]/[notify]/[sc_spawn] then work
    without threading the scheduler through every call — exactly like
    the SystemC globals they replace. *)

type sc_event = Event.t

val sc_set_context : Scheduler.t -> unit
(** Install the simulation context (done by the testbench harness). *)

val sc_get_context : unit -> Scheduler.t
(** Raises [Failure] when no context is installed. *)

val sc_event : string -> sc_event
(** Create an event (named, as in [sc_core::sc_event]). *)

val sc_spawn : string -> (unit -> Process.wait) -> Process.t
(** Register a translated thread with the current context; the analogue
    of [SC_THREAD] behind [SC_HAS_PROCESS]. *)

val notify : ?delay:Sc_time.t -> sc_event -> unit
(** [notify e] is an immediate notification; [notify ~delay e] is a
    timed one ([delay = SC_ZERO_TIME] gives a delta notification). *)

val cancel : sc_event -> unit
val sc_time_stamp : unit -> Sc_time.t
val sc_zero_time : Sc_time.t

val pkernel_step : unit -> bool
(** Advance time to the next event — the paper's testbench primitive. *)

val sc_start : Sc_time.t -> unit
(** Run the simulation for the given duration. *)
