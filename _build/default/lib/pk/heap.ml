type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }
let size t = t.len
let is_empty t = t.len = 0

let grow t x =
  if t.len = Array.length t.data then begin
    let cap = if t.len = 0 then 8 else 2 * t.len in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.len && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let peek t = if t.len = 0 then None else Some t.data.(0)

let pop t =
  if t.len = 0 then None
  else begin
    let min = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some min
  end

let clear t = t.len <- 0
let to_list t = Array.to_list (Array.sub t.data 0 t.len)
