(** Simulation time.

    The paper's Peripheral Kernel replaces SystemC's floating-point
    [sc_time] with integer arithmetic "to both speed up the symbolic
    execution and expand the possibilities for symbolic propagation"
    (KLEE concretizes floats).  Time is held as a non-negative number of
    picoseconds in an [int64]. *)

type t

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_ps : int64 -> t
(** Raises [Invalid_argument] on negative input. *)

val to_ps : t -> int64
val add : t -> t -> t
val sub : t -> t -> t
(** Saturating at zero. *)

val mul_int : t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
