(** A deliberately heavyweight kernel emulating the cost profile of the
    full SystemC kernel under an interpreter, for the ablation
    benchmark of Section 5.2 (where KLEE crashed on quickthreads and
    the paper motivates the PK).

    Differences from {!Scheduler} that reproduce the documented
    bottlenecks:
    - time is a double-precision float in seconds (the paper notes KLEE
      concretizes floats, so symbolic propagation through time dies);
    - every process owns a quickthreads-style stack context that is
      copied on each activation (context-switch weight);
    - the pending-notification list is kept unsorted and scanned
      linearly, as a stand-in for the heavyweight generic kernel
      structures.

    It is functionally equivalent to the PK on the supported subset, so
    benches can run the same workload on both kernels. *)

type t

type wait =
  | Wait_event of int  (** events are integer ids; see {!new_event} *)
  | Wait_time of float
  | Terminate

val create : ?context_bytes:int -> unit -> t
(** [context_bytes] is the size of the per-process fake thread context
    (default 65536, the typical quickthreads stack size). *)

val now : t -> float
(** Simulation time in seconds. *)

val spawn : t -> string -> (unit -> wait) -> unit
val new_event : t -> int
val notify_after : t -> int -> float -> unit

val step : t -> bool
(** Advance to the next scheduled wakeup; [false] when starved. *)

val activations : t -> int
