(** 32-bit word values as manipulated by TLM peripheral models.

    A thin veneer over {!Smt.Expr} fixed at width 32 (the register width
    of the PLIC and of TLM-2.0 word accesses), so that device models
    read close to their C++ originals.  Control flow on symbolic words
    goes through {!truth}, which forks via the engine. *)

type t = Smt.Expr.t

val width : int
(** 32. *)

val of_int : int -> t
val zero : t
val one : t
val symbolic : string -> t
(** A fresh 32-bit symbolic input (engine context required). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val band : t -> t -> t
val bor : t -> t -> t
val bxor : t -> t -> t
val bnot : t -> t
val shl : t -> t -> t
val lshr : t -> t -> t

val udiv : site:string -> t -> t -> t
(** Unsigned division with a division-by-zero check reported to the
    engine at [site]. *)

val urem : site:string -> t -> t -> t

(* Predicates (boolean terms; use {!truth} to branch). *)

val eq : t -> t -> Smt.Expr.t
val ne : t -> t -> Smt.Expr.t

val lt : t -> t -> Smt.Expr.t
(** Unsigned comparison, as are [le], [gt] and [ge]. *)

val le : t -> t -> Smt.Expr.t
val gt : t -> t -> Smt.Expr.t
val ge : t -> t -> Smt.Expr.t
val is_zero : t -> Smt.Expr.t
val nonzero : t -> Smt.Expr.t

val truth : ?site:string -> Smt.Expr.t -> bool
(** Branch on a boolean term ({!Engine.branch}). *)

val select : Smt.Expr.t -> t -> t -> t
(** [select c a b] is the term-level if-then-else (no fork). *)

val bit : t -> int -> Smt.Expr.t
(** [bit v i] — whether bit [i] is set. *)

val to_concrete : ?site:string -> t -> int
(** Concretize to an [int] (forks over feasible values). *)

val to_bv_opt : t -> Smt.Bv.t option
val pp : Format.formatter -> t -> unit
