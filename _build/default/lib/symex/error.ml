type kind =
  | Assertion_failure
  | Abort
  | Out_of_bounds
  | Division_by_zero
  | Unhandled_exception

type t = {
  kind : kind;
  site : string;
  message : string;
  counterexample : (string * Smt.Bv.t) list;
  path_id : int;
  instructions : int;
  found_after : float;
}

let kind_to_string = function
  | Assertion_failure -> "assertion failure"
  | Abort -> "abort"
  | Out_of_bounds -> "out-of-bounds access"
  | Division_by_zero -> "division by zero"
  | Unhandled_exception -> "unhandled exception"

let pp_counterexample ppf t =
  let pp_binding ppf (name, v) =
    Format.fprintf ppf "%s = %a" name Smt.Bv.pp v
  in
  Format.fprintf ppf "@[<v 2>counterexample:@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_binding)
    t.counterexample

let pp ppf t =
  Format.fprintf ppf "@[<v>%s at %s: %s (path %d, %.2fs)@,%a@]"
    (kind_to_string t.kind) t.site t.message t.path_id t.found_after
    pp_counterexample t
