module Expr = Smt.Expr

type t = Expr.t

let width = 32
let of_int n = Expr.int ~width n
let zero = of_int 0
let one = of_int 1
let symbolic name = Engine.fresh name width
let add = Expr.add
let sub = Expr.sub
let mul = Expr.mul
let band = Expr.band
let bor = Expr.bor
let bxor = Expr.bxor
let bnot = Expr.bnot
let shl = Expr.shl
let lshr = Expr.lshr

let udiv ~site a b =
  Engine.check_kind Error.Division_by_zero ~site
    ~message:"division by zero" (Expr.ne b zero);
  Expr.udiv a b

let urem ~site a b =
  Engine.check_kind Error.Division_by_zero ~site
    ~message:"remainder by zero" (Expr.ne b zero);
  Expr.urem a b

let eq = Expr.eq
let ne = Expr.ne
let lt = Expr.ult
let le = Expr.ule
let gt = Expr.ugt
let ge = Expr.uge
let is_zero v = Expr.eq v zero
let nonzero v = Expr.ne v zero
let truth ?site cond = Engine.branch ?site cond
let select = Expr.ite
let bit v i = Expr.eq (Expr.extract ~hi:i ~lo:i v) (Expr.int ~width:1 1)

let to_concrete ?site v = Smt.Bv.to_int (Engine.concretize ?site v)

let to_bv_opt = Expr.to_bv
let pp = Expr.pp
