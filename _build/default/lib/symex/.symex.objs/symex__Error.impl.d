lib/symex/error.ml: Format Smt
