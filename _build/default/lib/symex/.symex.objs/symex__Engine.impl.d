lib/symex/engine.ml: Array Error Fun Hashtbl Int64 List Option Printexc Printf Random Search Smt Stdlib Unix
