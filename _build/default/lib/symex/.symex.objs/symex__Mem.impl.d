lib/symex/mem.ml: Array Engine Error Lazy Printf Smt
