lib/symex/mem.mli: Smt Value
