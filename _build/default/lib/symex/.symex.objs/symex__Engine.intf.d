lib/symex/engine.mli: Error Search Smt
