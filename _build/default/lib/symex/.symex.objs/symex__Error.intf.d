lib/symex/error.mli: Format Smt
