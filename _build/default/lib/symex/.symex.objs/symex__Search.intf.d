lib/symex/search.mli:
