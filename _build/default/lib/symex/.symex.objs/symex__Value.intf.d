lib/symex/value.mli: Format Smt
