lib/symex/value.ml: Engine Error Smt
