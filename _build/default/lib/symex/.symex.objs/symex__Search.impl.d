lib/symex/search.ml: Hashtbl List Printf Random String
