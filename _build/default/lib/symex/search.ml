type strategy =
  | Dfs
  | Bfs
  | Random_path of int
  | Cover_new

let strategy_to_string = function
  | Dfs -> "dfs"
  | Bfs -> "bfs"
  | Random_path seed -> Printf.sprintf "random:%d" seed
  | Cover_new -> "cover-new"

let strategy_of_string = function
  | "dfs" -> Some Dfs
  | "bfs" -> Some Bfs
  | "cover-new" -> Some Cover_new
  | s ->
    (match String.index_opt s ':' with
     | Some i when String.sub s 0 i = "random" ->
       (try Some (Random_path (int_of_string (String.sub s (i + 1) (String.length s - i - 1))))
        with Failure _ -> None)
     | _ -> if s = "random" then Some (Random_path 42) else None)

let all_strategies = [ Dfs; Bfs; Random_path 42; Cover_new ]

type 'a entry = { site : string; item : 'a }

type 'a t = {
  strategy : strategy;
  mutable entries : 'a entry list;      (* newest first *)
  visits : (string, int) Hashtbl.t;
  rng : Random.State.t;
}

let create strategy =
  let seed = match strategy with Random_path s -> s | Dfs | Bfs | Cover_new -> 0 in
  {
    strategy;
    entries = [];
    visits = Hashtbl.create 64;
    rng = Random.State.make [| seed |];
  }

let length t = List.length t.entries
let is_empty t = t.entries = []
let push t ~site item = t.entries <- { site; item } :: t.entries

let record_visit t site =
  let n = match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0 in
  Hashtbl.replace t.visits site (n + 1)

let visit_counts t =
  Hashtbl.fold (fun site n acc -> (site, n) :: acc) t.visits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let visits t site =
  match Hashtbl.find_opt t.visits site with Some n -> n | None -> 0

let take_nth t n =
  (* Remove and return the n-th entry (0 = newest). *)
  let rec go i acc = function
    | [] -> None
    | e :: rest ->
      if i = n then begin
        t.entries <- List.rev_append acc rest;
        Some e.item
      end
      else go (i + 1) (e :: acc) rest
  in
  go 0 [] t.entries

let pop t =
  match t.entries with
  | [] -> None
  | newest :: rest ->
    (match t.strategy with
     | Dfs ->
       t.entries <- rest;
       Some newest.item
     | Bfs ->
       let n = List.length t.entries in
       take_nth t (n - 1)
     | Random_path _ ->
       let n = List.length t.entries in
       take_nth t (Random.State.int t.rng n)
     | Cover_new ->
       let best = ref 0 and best_v = ref max_int in
       List.iteri
         (fun i e ->
            let v = visits t e.site in
            if v < !best_v then begin
              best := i;
              best_v := v
            end)
         t.entries;
       take_nth t !best)
