lib/plic/hart.ml: Pk
