lib/plic/fault.ml: Config List String
