lib/plic/spec.ml: Int Map
