lib/plic/spec.mli:
