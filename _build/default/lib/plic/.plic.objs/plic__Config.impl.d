lib/plic/config.ml: Pk
