lib/plic/plic.mli: Config Fault Hart Pk Smt Spec Symex Tlm
