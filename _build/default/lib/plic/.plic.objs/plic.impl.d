lib/plic/plic.ml: Array Config Fault Hart Pk Smt Spec Symex Tlm
