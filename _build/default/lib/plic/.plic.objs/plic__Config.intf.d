lib/plic/config.mli: Pk
