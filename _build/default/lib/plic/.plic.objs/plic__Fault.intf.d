lib/plic/fault.mli: Config
