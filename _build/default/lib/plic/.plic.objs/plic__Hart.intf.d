lib/plic/hart.mli: Pk
