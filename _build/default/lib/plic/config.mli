(** PLIC configuration (the template parameters of
    [PLIC<NumberCores, NumberInterrupts, MaxPriority>] in riscv-vp).

    Interrupt sources are numbered [1 .. num_sources]; source 0 is
    reserved by the RISC-V PLIC specification ("a priority value of 0 is
    reserved to mean never interrupt"; likewise interrupt ID 0 means "no
    interrupt" in the claim/response register). *)

type variant =
  | Original  (** the riscv-vp PLIC as evaluated in the paper, with
                  bugs F1..F6 present *)
  | Fixed     (** error handling through TLM responses, as the paper
                  recommends *)

type t = {
  num_harts : int;
  num_sources : int;      (** interrupt sources, ids 1..num_sources *)
  max_priority : int;     (** highest priority level (FE310: 31) *)
  clock_cycle : Pk.Sc_time.t;
      (** delay of the [e_run] notification after a new interrupt *)
}

val fe310 : t
(** The SiFive FE310 configuration used in the paper's evaluation:
    1 hart, 51 interrupt sources, 32 priority levels, 10 ns cycle. *)

val scaled : num_sources:int -> t
(** FE310 with a reduced number of interrupt sources, for tractable
    benchmark runs (path counts grow quickly with sources). *)

val variant_to_string : variant -> string

(* Device memory map (byte offsets within the PLIC address window),
   following the RISC-V PLIC specification / FE310 manual. *)

val priority_base : int
(** [0x0000_0004]; source [id]'s priority word is at
    [priority_base + 4*(id-1)]. *)

val pending_base : int
(** [0x0000_1000]. *)

val enable_base : int
(** [0x0000_2000]. *)

val threshold_base : int
(** [0x0020_0000]. *)

val claim_base : int
(** [0x0020_0004]. *)

val smode_claim_base : int
(** [0x0020_1004] — S-mode completion port (write-only in this VP
    revision). *)

val addr_window : int
(** Size of the whole decoded window (for testbench address ranges). *)
