(** The six injectable faults of Section 5.3 (IF1..IF6) — common TLM
    peripheral bugs planted one at a time to measure how fast each test
    detects them. *)

type t =
  | IF1
      (** off-by-one in the trigger bound check ([<=] instead of [<]),
          overflowing the pending-interrupt array *)
  | IF2
      (** drops the [e_run] notification for interrupt id 13 after the
          pending bit was correctly written *)
  | IF3
      (** skips the re-trigger of other pending interrupts after a
          claim is completed *)
  | IF4
      (** inflates the [e_run] notification delay for interrupt ids
          above 32 — a timing-model error *)
  | IF5
      (** the pending-clear routine returns early for one specific
          interrupt id (7), leaving its pending bit set after claim *)
  | IF6
      (** threshold comparison uses [>=] instead of [>] — a
          specification misinterpretation *)

val all : t list
val to_string : t -> string
val of_string : string -> t option
val description : t -> string
val enabled : t list -> t -> bool

(* The magic constants of the injected faults are defined for the FE310
   (ids 13 and 7, bound 32); on reduced-scale configurations they are
   scaled down proportionally so every fault stays reachable — see the
   scale caveat in DESIGN.md. *)

val if2_drop_id : Config.t -> int
(** The interrupt id whose notification IF2 drops (FE310: 13). *)

val if4_bound : Config.t -> int
(** Ids above this bound get the inflated IF4 delay (FE310: 32). *)

val if5_skip_id : Config.t -> int
(** The id whose pending-clear IF5 skips (FE310: 7). *)
