type t = {
  hart_name : string;
  mutable was_triggered : bool;
  mutable trigger_count : int;
  mutable last_trigger_time : Pk.Sc_time.t;
  mutable was_cleared : bool;
}

let create ?(name = "hart0") () =
  {
    hart_name = name;
    was_triggered = false;
    trigger_count = 0;
    last_trigger_time = Pk.Sc_time.zero;
    was_cleared = false;
  }

let trigger_external_interrupt t now =
  t.was_triggered <- true;
  t.trigger_count <- t.trigger_count + 1;
  t.last_trigger_time <- now

let reset_flags t =
  t.was_triggered <- false;
  t.was_cleared <- false
