(** An executable golden model of the PLIC, written directly from the
    RISC-V PLIC specification as a pure functional state machine —
    deliberately sharing {e no} code with the TLM model.

    The test suite drives random operation sequences through both this
    specification and the TLM peripheral and compares every observable
    (differential / model-based testing).  Divergence means one of the
    two misreads the specification. *)

type t
(** Immutable specification state. *)

val create : num_sources:int -> max_priority:int -> t

(* Configuration (mirrors the memory-mapped registers). *)

val set_priority : t -> id:int -> int -> t
(** Priorities clamp to [max_priority]; id 0 and out-of-range ids are
    ignored (reserved). *)

val set_enabled : t -> id:int -> bool -> t
val set_threshold : t -> int -> t

(* Wire / software interface. *)

val raise_interrupt : t -> int -> t
(** Latch a pending interrupt; invalid ids are ignored. *)

val scan : t -> t
(** The run-thread behaviour, gated on the [e_run] notification exactly
    as in the TLM model: if a scan is scheduled (by a raised interrupt
    or a completion with deliverable work) and no notification is
    outstanding and some pending enabled source has priority strictly
    above the threshold, raise the external interrupt line.
    Configuration changes alone never re-evaluate delivery. *)

val raised : t -> bool
(** Whether a notification is outstanding (the TLM model's [hart_eip]). *)

val claim : t -> t * int
(** Claim per specification: the pending {e enabled} interrupt with the
    highest priority (ties to the lowest id; priority 0 never
    interrupts); 0 when none.  Clears the claimed source\'s pending
    bit. *)

val complete : t -> int -> t
(** Completion releases the outstanding notification. *)

val pending : t -> int -> bool
val enabled : t -> int -> bool
val priority : t -> int -> int
val threshold : t -> int
