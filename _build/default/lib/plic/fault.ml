type t = IF1 | IF2 | IF3 | IF4 | IF5 | IF6

let all = [ IF1; IF2; IF3; IF4; IF5; IF6 ]

let to_string = function
  | IF1 -> "IF1"
  | IF2 -> "IF2"
  | IF3 -> "IF3"
  | IF4 -> "IF4"
  | IF5 -> "IF5"
  | IF6 -> "IF6"

let of_string s =
  List.find_opt (fun f -> to_string f = String.uppercase_ascii s) all

let description = function
  | IF1 -> "off-by-one in trigger bound check (pending array overflow)"
  | IF2 -> "drops the notification of interrupt id 13"
  | IF3 -> "skips the re-trigger of simultaneously pending interrupts"
  | IF4 -> "inflated notification delay for interrupt ids above 32"
  | IF5 -> "pending-clear routine returns early for interrupt id 7"
  | IF6 -> "threshold comparison >= instead of >"

let enabled faults f = List.mem f faults

let if2_drop_id (cfg : Config.t) = min 13 cfg.Config.num_sources
let if4_bound (cfg : Config.t) =
  min 32 (max 1 (2 * cfg.Config.num_sources / 3))
let if5_skip_id (cfg : Config.t) = min 7 cfg.Config.num_sources
