type variant = Original | Fixed

type t = {
  num_harts : int;
  num_sources : int;
  max_priority : int;
  clock_cycle : Pk.Sc_time.t;
}

let fe310 =
  {
    num_harts = 1;
    num_sources = 51;
    max_priority = 31;
    clock_cycle = Pk.Sc_time.ns 10;
  }

let scaled ~num_sources = { fe310 with num_sources }

let variant_to_string = function Original -> "original" | Fixed -> "fixed"

let priority_base = 0x0000_0004
let pending_base = 0x0000_1000
let enable_base = 0x0000_2000
let threshold_base = 0x0020_0000
let claim_base = 0x0020_0004
let smode_claim_base = 0x0020_1004
let addr_window = 0x0020_2000
