module Int_map = Map.Make (Int)

type t = {
  num_sources : int;
  max_priority : int;
  priorities : int Int_map.t;   (* default 0 *)
  enables : bool Int_map.t;     (* default false *)
  spec_threshold : int;
  pendings : bool Int_map.t;    (* default false *)
  line_raised : bool;           (* notification outstanding *)
  scan_scheduled : bool;        (* an e_run notification is pending *)
}

let create ~num_sources ~max_priority =
  {
    num_sources;
    max_priority;
    priorities = Int_map.empty;
    enables = Int_map.empty;
    spec_threshold = 0;
    pendings = Int_map.empty;
    line_raised = false;
    scan_scheduled = false;
  }

let valid t id = id >= 1 && id <= t.num_sources

let priority t id =
  match Int_map.find_opt id t.priorities with Some p -> p | None -> 0

let enabled t id =
  match Int_map.find_opt id t.enables with Some b -> b | None -> false

let pending t id =
  match Int_map.find_opt id t.pendings with Some b -> b | None -> false

let threshold t = t.spec_threshold
let raised t = t.line_raised

let set_priority t ~id p =
  if valid t id then
    { t with priorities = Int_map.add id (min p t.max_priority) t.priorities }
  else t

let set_enabled t ~id b =
  if valid t id then { t with enables = Int_map.add id b t.enables } else t

let set_threshold t th = { t with spec_threshold = min th t.max_priority }

let raise_interrupt t id =
  if valid t id then
    (* latches the pending bit and notifies the scan event (e_run) *)
    { t with pendings = Int_map.add id true t.pendings; scan_scheduled = true }
  else t

let deliverable t =
  let rec go id =
    if id > t.num_sources then false
    else if pending t id && enabled t id && priority t id > t.spec_threshold
    then true
    else go (id + 1)
  in
  go 1

(* The run thread executes only when its e_run event was notified — a
   configuration change alone (enable bits, threshold) does not
   re-evaluate delivery, exactly as in the TLM model. *)
let scan t =
  if not t.scan_scheduled then t
  else
    let t = { t with scan_scheduled = false } in
    if (not t.line_raised) && deliverable t then { t with line_raised = true }
    else t

(* "Ties between global interrupts of the same priority are broken by
   the interrupt ID; the lowest ID has the highest effective priority."
   A priority of 0 means never interrupt. *)
let best_claimable t =
  let rec go id best best_prio =
    if id > t.num_sources then best
    else if pending t id && enabled t id && priority t id > best_prio then
      go (id + 1) id (priority t id)
    else go (id + 1) best best_prio
  in
  go 1 0 0

let claim t =
  let id = best_claimable t in
  if id = 0 then (t, 0)
  else ({ t with pendings = Int_map.add id false t.pendings }, id)

let complete t _id =
  if t.line_raised then
    let t = { t with line_raised = false } in
    (* completion re-notifies the scan when more work is deliverable *)
    if deliverable t then { t with scan_scheduled = true } else t
  else t
