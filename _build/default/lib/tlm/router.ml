module Expr = Smt.Expr
module Value = Symex.Value

type transport_fn = Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t

type target = { tg_name : string; base : int; size : int; fn : transport_fn }

type t = {
  rt_name : string;
  latency : Pk.Sc_time.t;
  mutable rev_targets : target list;
}

let create ?(latency = Pk.Sc_time.ns 5) ~name () =
  { rt_name = name; latency; rev_targets = [] }

let overlaps a b = a.base < b.base + b.size && b.base < a.base + a.size

let add_target t ~name ~base ~size fn =
  let target = { tg_name = name; base; size; fn } in
  (match List.find_opt (overlaps target) t.rev_targets with
   | Some other ->
     invalid_arg
       (Printf.sprintf "Router.add_target: %s overlaps %s (router %s)" name
          other.tg_name t.rt_name)
   | None -> ());
  t.rev_targets <- target :: t.rev_targets

let targets t =
  List.rev_map (fun tg -> (tg.tg_name, tg.base, tg.size)) t.rev_targets

let hits tg addr =
  let addr64 = Expr.zext 64 addr in
  Expr.and_
    (Expr.ule (Expr.int ~width:64 tg.base) addr64)
    (Expr.ult addr64 (Expr.int ~width:64 (tg.base + tg.size)))

let transport t (p : Payload.t) delay =
  let delay = Pk.Sc_time.add delay t.latency in
  let rec route = function
    | [] ->
      p.Payload.response <- Payload.Address_error;
      delay
    | tg :: rest ->
      if Value.truth ~site:("router:" ^ tg.tg_name) (hits tg p.Payload.addr)
      then begin
        let local =
          {
            p with
            Payload.addr = Value.sub p.Payload.addr (Value.of_int tg.base);
          }
        in
        let delay = tg.fn local delay in
        p.Payload.data <- local.Payload.data;
        p.Payload.response <- local.Payload.response;
        delay
      end
      else route rest
  in
  route (List.rev t.rev_targets)
