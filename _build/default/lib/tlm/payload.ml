module Expr = Smt.Expr

type command = Read | Write

type response =
  | Incomplete
  | Ok_response
  | Address_error
  | Command_error
  | Burst_error
  | Generic_error

type t = {
  cmd : command;
  addr : Symex.Value.t;
  mutable data : Smt.Expr.t array;
  len : Symex.Value.t;
  mutable response : response;
}

let make_read ~addr ~len = { cmd = Read; addr; data = [||]; len; response = Incomplete }

let make_write ~addr ~len ~data =
  { cmd = Write; addr; data; len; response = Incomplete }

let make_write32 ~addr ~value =
  let byte i = Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) value in
  make_write ~addr ~len:(Symex.Value.of_int 4) ~data:(Array.init 4 byte)

let data32 t =
  if Array.length t.data < 4 then invalid_arg "Payload.data32: fewer than 4 bytes";
  let b i = Expr.zext 32 t.data.(i) in
  Expr.bor (b 0)
    (Expr.bor
       (Expr.shl (b 1) (Expr.int ~width:32 8))
       (Expr.bor
          (Expr.shl (b 2) (Expr.int ~width:32 16))
          (Expr.shl (b 3) (Expr.int ~width:32 24))))

let is_ok t = t.response = Ok_response

let command_to_string = function Read -> "read" | Write -> "write"

let response_to_string = function
  | Incomplete -> "incomplete"
  | Ok_response -> "ok"
  | Address_error -> "address error"
  | Command_error -> "command error"
  | Burst_error -> "burst error"
  | Generic_error -> "generic error"

let pp ppf t =
  Format.fprintf ppf "%s@%a len=%a [%s]" (command_to_string t.cmd)
    Symex.Value.pp t.addr Symex.Value.pp t.len
    (response_to_string t.response)
