(** The TLM global quantum (temporal decoupling).

    Transactions accumulate delay as they pass through models; the
    quantum keeper tracks how far a initiator has run ahead of the
    simulated time and forces a global synchronization when the
    difference exceeds the configured maximum — the speed/accuracy
    trade-off described in Section 3.1 of the paper. *)

type t

val create : ?max_quantum:Pk.Sc_time.t -> Pk.Scheduler.t -> t
(** Default maximum quantum: 1 us. *)

val local_time : t -> Pk.Sc_time.t
(** Current local time offset (how far ahead of the kernel we are). *)

val add : t -> Pk.Sc_time.t -> unit
(** Account delay returned by a transport call. *)

val need_sync : t -> bool

val sync : t -> unit
(** Run the kernel up to the decoupled time and reset the local
    offset. *)

val sync_if_needed : t -> unit

val syncs : t -> int
(** Number of global synchronizations performed. *)
