(** A simple TLM interconnect (bus) routing transactions by address.

    Models the memory-mapped communication network of a virtual
    prototype: initiators address peripherals through global addresses;
    the router forwards the transaction to the matching target with a
    rebased local address and adds its own forwarding latency, which
    accumulates on the transaction delay as described in Section 3.1. *)

type transport_fn = Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t

type t

val create : ?latency:Pk.Sc_time.t -> name:string -> unit -> t
(** Default forwarding latency: 5 ns. *)

val add_target :
  t -> name:string -> base:int -> size:int -> transport_fn -> unit
(** Map [base, base+size) to a target.  Overlaps are rejected. *)

val transport : t -> transport_fn
(** Route a transaction: the matching target receives a payload whose
    address is rebased to its local map.  Transactions that hit no
    target get an [Address_error] response. *)

val targets : t -> (string * int * int) list
(** [(name, base, size)] in registration order. *)
