module Sc_time = Pk.Sc_time

type t = {
  sched : Pk.Scheduler.t;
  max_quantum : Sc_time.t;
  mutable local : Sc_time.t;
  mutable syncs_n : int;
}

let create ?(max_quantum = Sc_time.us 1) sched =
  { sched; max_quantum; local = Sc_time.zero; syncs_n = 0 }

let local_time t = t.local
let add t d = t.local <- Sc_time.add t.local d
let need_sync t = Sc_time.(t.local >= t.max_quantum)

let sync t =
  if not (Sc_time.is_zero t.local) then begin
    t.syncs_n <- t.syncs_n + 1;
    let target = Sc_time.add (Pk.Scheduler.now t.sched) t.local in
    Pk.Scheduler.run_until t.sched target;
    t.local <- Sc_time.zero
  end

let sync_if_needed t = if need_sync t then sync t
let syncs t = t.syncs_n
