lib/tlm/quantum.ml: Pk
