lib/tlm/register.mli: Payload Pk Symex
