lib/tlm/quantum.mli: Pk
