lib/tlm/payload.mli: Format Smt Symex
