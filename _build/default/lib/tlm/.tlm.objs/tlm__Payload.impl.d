lib/tlm/payload.ml: Array Format Smt Symex
