lib/tlm/router.mli: Payload Pk
