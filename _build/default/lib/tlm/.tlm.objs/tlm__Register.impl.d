lib/tlm/register.ml: List Option Payload Pk Printf Smt Symex
