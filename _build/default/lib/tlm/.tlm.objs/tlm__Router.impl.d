lib/tlm/router.ml: List Payload Pk Printf Smt Symex
