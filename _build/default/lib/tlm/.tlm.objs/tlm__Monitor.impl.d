lib/tlm/monitor.ml: Array Payload Pk Router Smt Symex
