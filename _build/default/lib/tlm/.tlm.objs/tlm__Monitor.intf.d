lib/tlm/monitor.mli: Router
