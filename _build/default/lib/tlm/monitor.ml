module Expr = Smt.Expr
module Engine = Symex.Engine

type t = {
  mon_name : string;
  fn : Router.transport_fn;
  mutable n_transactions : int;
  mutable n_reads : int;
  mutable n_writes : int;
}

let create ~name fn =
  { mon_name = name; fn; n_transactions = 0; n_reads = 0; n_writes = 0 }

let transactions t = t.n_transactions
let reads t = t.n_reads
let writes t = t.n_writes

let transport t (p : Payload.t) delay =
  t.n_transactions <- t.n_transactions + 1;
  (match p.Payload.cmd with
   | Payload.Read -> t.n_reads <- t.n_reads + 1
   | Payload.Write -> t.n_writes <- t.n_writes + 1);
  let delay' = t.fn p delay in
  Engine.check ~site:"tlm:response-set"
    ~message:(t.mon_name ^ ": target left the response status incomplete")
    (Expr.bool (p.Payload.response <> Payload.Incomplete));
  Engine.check ~site:"tlm:delay-monotonic"
    ~message:(t.mon_name ^ ": annotated delay decreased")
    (Expr.bool Pk.Sc_time.(delay <= delay'));
  (match p.Payload.cmd, p.Payload.response with
   | Payload.Read, Payload.Ok_response ->
     (* A completed read concretized its length; the data buffer must
        hold exactly that many bytes. *)
     Engine.check ~site:"tlm:read-length"
       ~message:(t.mon_name ^ ": read returned a wrong number of bytes")
       (Expr.eq (Expr.zext 64 p.Payload.len)
          (Expr.int ~width:64 (Array.length p.Payload.data)))
   | (Payload.Read | Payload.Write),
     ( Payload.Ok_response | Payload.Incomplete | Payload.Address_error
     | Payload.Command_error | Payload.Burst_error | Payload.Generic_error ) ->
     ());
  delay'
