(** Memory-mapped register files with TLM transport dispatch.

    This is the OCaml analogue of riscv-vp's [vp::RegisterRange]
    machinery that TLM peripherals use to describe their device memory
    map.  The blocking-transport entry point performs, in order:
    alignment check, range lookup, access-type check and the data copy,
    with optional pre-read / post-write callbacks per range.

    The {!policy} selects between the {e original} behaviour — the one
    the paper found the bugs F2..F5 in — and the {e fixed} behaviour
    that reports TLM error responses instead:

    - F2: the original asserts 4-byte address alignment on the read
      path (an abort under symbolic addresses); fixed answers
      [Address_error].
    - F3: the original asserts that some register mapping handles the
      address; fixed answers [Address_error].
    - F4: the original asserts the target register is registered for
      the access type; fixed answers [Command_error].
    - F5: the original matches a range by address only, so an aligned
      transaction length may cross the register boundary and the data
      copy runs out of bounds (detected by the engine's checked
      memory); fixed matches on [addr, addr+len) and answers
      [Burst_error] on crossings. *)

type policy = Original | Fixed

type access = Read_only | Write_only | Read_write

type range = {
  rg_name : string;
  base : int;              (** first byte offset inside the device map *)
  rg_size : int;           (** bytes; equals the backing memory size *)
  access : access;
  backing : Symex.Mem.t;
  pre_read : (unit -> unit) option;
      (** runs before the data copy of a read (e.g. interrupt claim) *)
  post_write : (unit -> unit) option;
      (** runs after the data copy of a write (e.g. interrupt
          completion); inspects the backing memory for the new value *)
}

type t

val create : ?policy:policy -> name:string -> unit -> t
(** Default policy: [Original]. *)

val policy : t -> policy
val name : t -> string

val add_range :
  t ->
  name:string ->
  base:int ->
  access:access ->
  ?pre_read:(unit -> unit) ->
  ?post_write:(unit -> unit) ->
  Symex.Mem.t ->
  range
(** Register a range backed by the given memory (its size defines the
    range size).  Ranges must not overlap; checked at registration. *)

val find_range : t -> string -> range
(** Lookup by name; raises [Not_found]. *)

val ranges : t -> range list
(** In registration order. *)

val transport : t -> Payload.t -> Pk.Sc_time.t -> Pk.Sc_time.t
(** Blocking transport ([b_transport]): dispatch the payload, set its
    response status, and return the updated delay (one access latency
    is added). *)

val access_latency : Pk.Sc_time.t
(** Latency added per register access (10 ns). *)
