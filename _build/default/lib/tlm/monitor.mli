(** TLM protocol monitor.

    Wraps any blocking-transport endpoint and checks the TLM-2.0 base
    protocol obligations on every transaction, reporting violations
    through the engine like any other property:

    - the target must set a definite response status
      (site ["tlm:response-set"]);
    - the returned annotated delay must never decrease
      (site ["tlm:delay-monotonic"]);
    - a successful read must deliver exactly the requested number of
      data bytes (site ["tlm:read-length"]).

    Interpose it between an initiator and a target (or around a whole
    router) to get protocol checking for free in every testbench. *)

type t

val create : name:string -> Router.transport_fn -> t
(** Wrap a transport endpoint. *)

val transport : t -> Router.transport_fn
(** The checked transport. *)

val transactions : t -> int
(** Number of transactions observed. *)

val reads : t -> int
val writes : t -> int
