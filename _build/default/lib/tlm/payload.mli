(** TLM-2.0 generic payload (the subset peripherals use).

    A transaction carries a command, an address, a data buffer of 8-bit
    symbolic terms, a length and a response status.  Address and length
    may be symbolic — that is exactly what the paper's T4/T5 interface
    tests feed through the transport. *)

type command = Read | Write

type response =
  | Incomplete       (** initial state: target never touched it *)
  | Ok_response
  | Address_error    (** no register mapping / misaligned *)
  | Command_error    (** access type not allowed *)
  | Burst_error      (** length crosses the register boundary *)
  | Generic_error

type t = {
  cmd : command;
  addr : Symex.Value.t;
  mutable data : Smt.Expr.t array;   (** bytes; filled by the target on reads *)
  len : Symex.Value.t;
  mutable response : response;
}

val make_read : addr:Symex.Value.t -> len:Symex.Value.t -> t
(** Read transaction with an empty data buffer (the target allocates). *)

val make_write :
  addr:Symex.Value.t -> len:Symex.Value.t -> data:Smt.Expr.t array -> t

val make_write32 : addr:Symex.Value.t -> value:Symex.Value.t -> t
(** 4-byte little-endian write of a 32-bit word. *)

val data32 : t -> Symex.Value.t
(** First four data bytes as a little-endian word (reads of length 4).
    Raises [Invalid_argument] when fewer than 4 bytes are present. *)

val is_ok : t -> bool
val command_to_string : command -> string
val response_to_string : response -> string
val pp : Format.formatter -> t -> unit
