(* Symbolic execution vs random testing on the same testbench.

   The fault is IF6 (threshold compared with >= instead of >), which
   only manifests when the programmed priority equals the threshold —
   a 1-in-32 coincidence random testing has to stumble upon, while the
   symbolic engine derives it from the path constraints.

   The testbench is written "fuzzer-style": raw inputs are reduced into
   their valid ranges instead of assumed, so both engines explore the
   same space without rejection sampling.

   Run with:  dune exec examples/symbolic_vs_random.exe *)

module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Config = Plic.Config

let num_sources = 8

let masking_testbench =
  Symsysc.Tests.masking_harness
    (Symsysc.Tests.with_faults [ Plic.Fault.IF6 ]
       (Symsysc.Tests.with_variant Config.Fixed
          (Symsysc.Tests.scaled_params ~num_sources ~t5_max_len:8)))

let () =
  Format.printf "== symbolic execution vs random testing (fault: IF6) ==@.@.";

  let session = Engine.Session.make ~stop_after_errors:1 () in
  let symbolic = Engine.Session.run session masking_testbench in
  (match symbolic.Engine.errors with
   | e :: _ ->
     Format.printf
       "symbolic: found %s after %d paths in %.3fs@."
       e.Symex.Error.site symbolic.Engine.paths symbolic.Engine.wall_time
   | [] -> Format.printf "symbolic: nothing found?!@.");

  List.iter
    (fun seed ->
       let random = Engine.random_test ~seed ~max_trials:100_000 masking_testbench in
       match random.Engine.failure with
       | Some (e, trial) ->
         Format.printf "random (seed %d): found %s after %d trials in %.3fs@."
           seed e.Symex.Error.site trial random.Engine.random_wall_time
       | None ->
         Format.printf "random (seed %d): nothing in %d trials (%.3fs)@." seed
           random.Engine.trials random.Engine.random_wall_time)
    [ 1; 2; 3 ];

  Format.printf
    "@.the symbolic engine needs no luck: the (prio = threshold) corner@.\
     is one path constraint away, while random testing waits for the@.\
     1-in-32 coincidence — the paper's bug-hunting argument in miniature.@."
