(* A three-component virtual prototype: UART and PLIC behind a TLM
   router, with the UART's watermark interrupt wired to PLIC source 4
   and an interrupt-driven software echo loop on top — the "whole
   SystemC projects with a high number of individual components" of the
   paper's future work, verified symbolically.

   Property: any two symbolic bytes arriving on the UART's RX wire are
   echoed back on the TX wire unchanged and in order, with every step
   driven by the interrupt machinery (UART rxwm -> PLIC -> claim ->
   driver -> UART TX).

   Run with:  dune exec examples/uart_echo.exe *)

module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload
module Config = Plic.Config
module Sc_time = Pk.Sc_time

let plic_base = 0x0C00_0000
let uart_base = 0x1001_3000
let uart_irq_source = 4

let testbench () =
  let sched = Pk.Scheduler.create () in
  let cfg = Config.scaled ~num_sources:8 in
  let plic = Plic.create ~variant:Config.Fixed cfg sched in
  let hart = Plic.Hart.create () in
  Plic.connect_hart plic 0 hart;
  let uart =
    Uart.create
      ~irq:(fun () ->
          Plic.trigger_interrupt plic (Value.of_int uart_irq_source))
      sched
  in
  let bus = Tlm.Router.create ~name:"bus" () in
  Tlm.Router.add_target bus ~name:"plic" ~base:plic_base
    ~size:Config.addr_window (Plic.transport plic);
  Tlm.Router.add_target bus ~name:"uart" ~base:uart_base
    ~size:Uart.addr_window (Uart.transport uart);
  Pk.Scheduler.run_ready sched;

  let bus_write32 addr v =
    let p = Payload.make_write32 ~addr:(Value.of_int addr) ~value:v in
    ignore (Tlm.Router.transport bus p Sc_time.zero)
  in
  let bus_read32 addr =
    let p =
      Payload.make_read ~addr:(Value.of_int addr) ~len:(Value.of_int 4)
    in
    ignore (Tlm.Router.transport bus p Sc_time.zero);
    Payload.data32 p
  in

  (* Driver initialization: UART TX on, RX watermark 0 (interrupt on
     any byte), rx interrupt enabled; PLIC source 4 wide open. *)
  bus_write32 (uart_base + Uart.txctrl_base) Value.one;
  bus_write32 (uart_base + Uart.rxctrl_base) Value.one;
  bus_write32 (uart_base + Uart.ie_base) (Value.of_int 2);
  bus_write32 (plic_base + Config.enable_base) (Value.of_int (-1));
  bus_write32
    (plic_base + Config.priority_base + (4 * (uart_irq_source - 1)))
    Value.one;
  bus_write32 (plic_base + Config.threshold_base) Value.zero;

  (* Two symbolic bytes arrive on the wire. *)
  let b1 = Engine.fresh "byte1" 32 and b2 = Engine.fresh "byte2" 32 in
  Engine.assume (Value.le b1 (Value.of_int 0xFF));
  Engine.assume (Value.le b2 (Value.of_int 0xFF));
  Uart.receive_byte uart b1;
  Uart.receive_byte uart b2;
  ignore (Pk.Scheduler.step sched);

  (* The interrupt-driven echo service routine. *)
  let service () =
    Engine.check ~site:"echo:notified" ~message:"no interrupt for pending RX"
      (Expr.bool hart.Plic.Hart.was_triggered);
    let claimed = bus_read32 (plic_base + Config.claim_base) in
    Engine.check ~site:"echo:cause" ~message:"unexpected interrupt source"
      (Value.eq claimed (Value.of_int uart_irq_source));
    (* drain the RX FIFO, echoing every byte *)
    let continue = ref true in
    while !continue do
      let rx = bus_read32 (uart_base + Uart.rxdata_base) in
      if Engine.branch ~site:"echo:empty" (Value.bit rx 31) then
        continue := false
      else bus_write32 (uart_base + Uart.txdata_base) rx
    done;
    Plic.Hart.reset_flags hart;
    bus_write32 (plic_base + Config.claim_base) claimed
  in
  service ();
  (* Let the transmitter shift everything out. *)
  Pk.Scheduler.run_until sched (Sc_time.us 10);
  match Uart.transmitted uart with
  | [ t1; t2 ] ->
    Engine.check ~site:"echo:first" ~message:"first byte corrupted"
      (Expr.eq (Expr.zext 32 t1) b1);
    Engine.check ~site:"echo:second" ~message:"second byte corrupted"
      (Expr.eq (Expr.zext 32 t2) b2)
  | sent ->
    Engine.check ~site:"echo:count"
      ~message:(Printf.sprintf "echoed %d bytes instead of 2" (List.length sent))
      Expr.fls

let () =
  Format.printf "== interrupt-driven UART echo through the PLIC ==@.@.";
  let report = Engine.Session.run (Engine.Session.make ()) testbench in
  Format.printf "paths: %d  instructions: %d  time: %.2fs  errors: %d@."
    report.Engine.paths report.Engine.instructions report.Engine.wall_time
    (List.length report.Engine.errors);
  List.iter
    (fun (e : Symex.Error.t) -> Format.printf "@.%a@." Symex.Error.pp e)
    report.Engine.errors;
  if report.Engine.errors = [] then
    Format.printf
      "@.verified: every pair of symbolic bytes is echoed unchanged,@.\
       end to end through UART -> PLIC -> driver -> UART.@."
