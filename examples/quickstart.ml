(* Quickstart: verify a small home-grown TLM peripheral with symbolic
   execution, end to end.

   The device is a watchdog timer with three registers:

     0x0  LOAD   (RW)  reload value
     0x4  CTRL   (RW)  bit 0 = enable
     0x8  STATUS (RO)  bit 0 = barked

   The model contains a planted bug: when the watchdog is enabled it
   computes the bark period as [clock / (load & 0xFF)] — a division by
   zero whenever the low byte of LOAD is zero.  The symbolic testbench
   below finds it and prints a concrete counterexample, which we then
   replay.

   Run with:  dune exec examples/quickstart.exe *)

module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Register = Tlm.Register
module Payload = Tlm.Payload

(* ------------------------------------------------------------------ *)
(* The device under verification                                       *)

type watchdog = {
  regs : Register.t;
  load : Mem.t;
  ctrl : Mem.t;
  status : Mem.t;
  sched : Pk.Scheduler.t;
  e_tick : Pk.Event.t;
}

let create_watchdog sched =
  let regs = Register.create ~policy:Register.Fixed ~name:"watchdog" () in
  let load = Mem.create ~name:"load" ~size:4 in
  let ctrl = Mem.create ~name:"ctrl" ~size:4 in
  let status = Mem.create ~name:"status" ~size:4 in
  let e_tick = Pk.Event.make "wdg:tick" in
  let wdg = { regs; load; ctrl; status; sched; e_tick } in
  let on_ctrl_write () =
    let enabled = Value.bit (Mem.read32 ctrl 0) 0 in
    if Value.truth ~site:"wdg:enabled" enabled then begin
      (* The planted bug: the divisor may be zero. *)
      let divisor = Value.band (Mem.read32 load 0) (Value.of_int 0xFF) in
      let period =
        Value.udiv ~site:"wdg:period" (Value.of_int 1000) divisor
      in
      let delay = Smt.Bv.to_int (Engine.concretize period) in
      Pk.Scheduler.notify_at sched e_tick (Pk.Sc_time.ns delay)
    end
  in
  ignore (Register.add_range regs ~name:"load" ~base:0x0
            ~access:Register.Read_write load);
  ignore (Register.add_range regs ~name:"ctrl" ~base:0x4
            ~access:Register.Read_write ~post_write:on_ctrl_write ctrl);
  ignore (Register.add_range regs ~name:"status" ~base:0x8
            ~access:Register.Read_only status);
  (* The bark thread, in translated (thread-to-function) form. *)
  Pk.Scheduler.spawn sched
    (Pk.Process.make "wdg:bark" (fun () ->
         if Pk.Scheduler.now sched > Pk.Sc_time.zero then
           Mem.write32 status 0 Value.one;
         Pk.Process.Wait_event e_tick));
  wdg

(* ------------------------------------------------------------------ *)
(* The symbolic testbench                                              *)

let testbench () =
  let sched = Pk.Scheduler.create () in
  let wdg = create_watchdog sched in
  Pk.Scheduler.run_ready sched;
  let write32 offset value =
    let p = Payload.make_write32 ~addr:(Value.of_int offset) ~value in
    ignore (Register.transport wdg.regs p Pk.Sc_time.zero)
  in
  (* Symbolic programming sequence: any reload value, then enable. *)
  let reload = Value.symbolic "reload" in
  Engine.assume (Value.le reload (Value.of_int 0xFFFF));
  write32 0x0 reload;
  write32 0x4 Value.one;
  (* After the period elapses the watchdog must bark. *)
  if Pk.Scheduler.step sched then begin
    let status = Mem.read32 wdg.status 0 in
    Engine.check ~site:"wdg:barked" ~message:"watchdog never barked"
      (Value.bit status 0)
  end

let () =
  Format.printf "== quickstart: symbolic verification of a watchdog ==@.@.";
  let report = Engine.Session.run (Engine.Session.make ()) testbench in
  Format.printf
    "explored %d paths (%d completed), %d instructions, %.2fs (%.0f%% solver)@."
    report.Engine.paths report.Engine.paths_completed
    report.Engine.instructions report.Engine.wall_time
    (100.0 *. report.Engine.solver_time /. Float.max 1e-9 report.Engine.wall_time);
  match report.Engine.errors with
  | [] -> Format.printf "no bugs found?! the planted bug is gone@."
  | errors ->
    List.iter
      (fun (e : Symex.Error.t) -> Format.printf "@.%a@." Symex.Error.pp e)
      errors;
    (* Replay the first counterexample concretely. *)
    let first = List.hd errors in
    Format.printf "@.replaying the counterexample concretely...@.";
    (match Engine.replay first.Symex.Error.counterexample testbench with
     | Some (Ok err) ->
       Format.printf "reproduced: %s at %s@."
         (Symex.Error.kind_to_string err.Symex.Error.kind)
         err.Symex.Error.site
     | Some (Error msg) -> Format.printf "replay diverged: %s@." msg
     | None -> Format.printf "replay completed without failure?!@.")
