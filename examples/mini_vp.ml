(* A miniature virtual prototype: a sensor peripheral and the PLIC
   behind a TLM router, driven by software-style initiator code with
   temporal decoupling (the global quantum of Section 3.1).

   The sensor samples a symbolic input value every 100 ns and raises
   global interrupt 3 when the value exceeds its programmed limit; the
   "software" claims the interrupt and checks the advertised cause.
   Symbolic execution explores every relation between sample and limit
   in one run.

   Run with:  dune exec examples/mini_vp.exe *)

module Expr = Smt.Expr
module Value = Symex.Value
module Engine = Symex.Engine
module Mem = Symex.Mem
module Register = Tlm.Register
module Payload = Tlm.Payload
module Config = Plic.Config
module Sc_time = Pk.Sc_time

let plic_base = 0x0C00_0000
let sensor_base = 0x5000_0000

(* ------------------------------------------------------------------ *)
(* The sensor peripheral                                               *)

type sensor = {
  regs : Register.t;
  limit : Mem.t;
  value : Mem.t;
}

let create_sensor sched ~sample ~(plic : Plic.t) =
  let regs = Register.create ~policy:Register.Fixed ~name:"sensor" () in
  let limit = Mem.create ~name:"sensor-limit" ~size:4 in
  let value = Mem.create ~name:"sensor-value" ~size:4 in
  ignore (Register.add_range regs ~name:"limit" ~base:0x0
            ~access:Register.Read_write limit);
  ignore (Register.add_range regs ~name:"value" ~base:0x4
            ~access:Register.Read_only value);
  (* Sampling thread (translated form): every 100 ns latch the sample
     and raise interrupt 3 when above the limit. *)
  Pk.Scheduler.spawn sched
    (Pk.Process.make "sensor:sample" (fun () ->
         if Pk.Scheduler.now sched > Sc_time.zero then begin
           Mem.write32 value 0 sample;
           if
             Value.truth ~site:"sensor:above-limit"
               (Value.gt sample (Mem.read32 limit 0))
           then Plic.trigger_interrupt plic (Value.of_int 3)
         end;
         Pk.Process.Wait_time (Sc_time.ns 100)));
  { regs; limit; value }

(* ------------------------------------------------------------------ *)
(* The virtual prototype                                               *)

let testbench () =
  let sched = Pk.Scheduler.create () in
  let cfg = Config.scaled ~num_sources:8 in
  let plic = Plic.create ~variant:Config.Fixed cfg sched in
  let hart = Plic.Hart.create () in
  Plic.connect_hart plic 0 hart;
  let sample = Value.symbolic "sample" in
  Engine.assume (Value.le sample (Value.of_int 1000));
  let sensor = create_sensor sched ~sample ~plic in
  let bus = Tlm.Router.create ~name:"bus" () in
  Tlm.Router.add_target bus ~name:"plic" ~base:plic_base
    ~size:Config.addr_window (Plic.transport plic);
  Tlm.Router.add_target bus ~name:"sensor" ~base:sensor_base ~size:0x8
    (Register.transport sensor.regs);
  Pk.Scheduler.run_ready sched;

  (* Software-style access through the bus, with temporal decoupling. *)
  let quantum = Tlm.Quantum.create ~max_quantum:(Sc_time.ns 500) sched in
  let bus_write32 addr v =
    let p = Payload.make_write32 ~addr:(Value.of_int addr) ~value:v in
    let d = Tlm.Router.transport bus p Sc_time.zero in
    Tlm.Quantum.add quantum d;
    Tlm.Quantum.sync_if_needed quantum
  in
  let bus_read32 addr =
    let p =
      Payload.make_read ~addr:(Value.of_int addr) ~len:(Value.of_int 4)
    in
    let d = Tlm.Router.transport bus p Sc_time.zero in
    Tlm.Quantum.add quantum d;
    Tlm.Quantum.sync_if_needed quantum;
    Payload.data32 p
  in

  (* Program the system: sensor limit 500, PLIC wide open. *)
  bus_write32 (sensor_base + 0x0) (Value.of_int 500);
  bus_write32 (plic_base + Config.enable_base) (Value.of_int (-1));
  bus_write32 (plic_base + Config.priority_base + (4 * 2)) Value.one;
  bus_write32 (plic_base + Config.threshold_base) Value.zero;

  (* Let two sample periods elapse. *)
  Pk.Scheduler.run_until sched (Sc_time.ns 250);

  (* The interrupt fires exactly when the sample exceeds the limit. *)
  if hart.Plic.Hart.was_triggered then begin
    Engine.check ~site:"vp:cause" ~message:"interrupt without cause"
      (Value.gt sample (Value.of_int 500));
    let claimed = bus_read32 (plic_base + Config.claim_base) in
    Engine.check ~site:"vp:claim" ~message:"wrong interrupt claimed"
      (Value.eq claimed (Value.of_int 3));
    bus_write32 (plic_base + Config.claim_base) claimed
  end
  else
    Engine.check ~site:"vp:no-spurious-silence"
      ~message:"sample above limit but no interrupt"
      (Value.le sample (Value.of_int 500))

let () =
  Format.printf "== mini virtual prototype: sensor + PLIC behind a bus ==@.@.";
  let report = Engine.Session.run (Engine.Session.make ()) testbench in
  Format.printf "paths: %d  instructions: %d  time: %.2fs  errors: %d@."
    report.Engine.paths report.Engine.instructions report.Engine.wall_time
    (List.length report.Engine.errors);
  List.iter
    (fun (e : Symex.Error.t) -> Format.printf "@.%a@." Symex.Error.pp e)
    report.Engine.errors;
  if report.Engine.errors = [] then
    Format.printf
      "@.all behaviours verified: the interrupt fires iff sample > limit@."
