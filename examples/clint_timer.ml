(* Verifying a second peripheral — the CLINT core-local interruptor —
   exactly as the paper's future work proposes ("evaluate our approach
   for verification of other SystemC IP components").

   The symbolic property: for every comparator value, the timer
   interrupt is asserted exactly at the instant [mtime] reaches
   [mtimecmp], never earlier; writing a larger comparator retracts the
   level.  The run also dumps a VCD waveform of one concrete replay.

   Run with:  dune exec examples/clint_timer.exe *)

module Expr = Smt.Expr
module Bv = Smt.Bv
module Value = Symex.Value
module Engine = Symex.Engine
module Payload = Tlm.Payload
module Sc_time = Pk.Sc_time

let tick = Clint.Config.fe310.Clint.Config.tick
let horizon = 16

let write_mtimecmp clint cmp =
  let data =
    Array.init 8 (fun i -> Expr.extract ~hi:((8 * i) + 7) ~lo:(8 * i) cmp)
  in
  let p =
    Payload.make_write ~addr:(Value.of_int Clint.mtimecmp_base)
      ~len:(Value.of_int 8) ~data
  in
  ignore (Clint.transport clint p Sc_time.zero)

let testbench ?trace () =
  let sched = Pk.Scheduler.create () in
  let clint = Clint.create Clint.Config.fe310 sched in
  let port = Clint.Port.create () in
  Clint.connect clint port;
  Pk.Scheduler.run_ready sched;
  let cmp = Engine.fresh "mtimecmp" 64 in
  Engine.assume
    (Expr.and_
       (Expr.uge cmp (Expr.int ~width:64 1))
       (Expr.ule cmp (Expr.int ~width:64 (horizon - 2))));
  write_mtimecmp clint cmp;
  Engine.check ~site:"clint:not-early" ~message:"timer asserted early"
    (Expr.bool (not port.Clint.Port.timer_pending));
  (* Walk the simulation tick by tick, tracing the timer line. *)
  let timer_sig =
    Option.map (fun tr -> (tr, Pk.Trace.signal tr "timer_irq")) trace
  in
  for step = 0 to horizon do
    Pk.Scheduler.run_until sched (Sc_time.mul_int tick step);
    Option.iter
      (fun (tr, s) ->
         Pk.Trace.change_bool tr s (Sc_time.mul_int tick step)
           port.Clint.Port.timer_pending)
      timer_sig
  done;
  Engine.check ~site:"clint:fired" ~message:"timer never asserted"
    (Expr.bool port.Clint.Port.timer_pending);
  let fired_tick =
    Int64.div
      (Sc_time.to_ps port.Clint.Port.last_timer_time)
      (Sc_time.to_ps tick)
  in
  Engine.check ~site:"clint:exact" ~message:"timer asserted at a wrong tick"
    (Expr.eq (Expr.const (Bv.make ~width:64 fired_tick)) cmp);
  (* Retraction: a far comparator takes the level away. *)
  write_mtimecmp clint (Expr.int ~width:64 1_000_000);
  Engine.check ~site:"clint:retract" ~message:"level not retracted"
    (Expr.bool (not port.Clint.Port.timer_pending))

let () =
  Format.printf "== CLINT timer: symbolic verification ==@.@.";
  let report = Engine.Session.run (Engine.Session.make ()) (fun () -> testbench ()) in
  Format.printf "paths: %d  (one per comparator value)@." report.Engine.paths;
  Format.printf "errors: %d@." (List.length report.Engine.errors);
  List.iter
    (fun (e : Symex.Error.t) -> Format.printf "%a@." Symex.Error.pp e)
    report.Engine.errors;
  if report.Engine.errors = [] then
    Format.printf
      "verified: the timer asserts exactly at mtimecmp for every value@.";
  (* Replay one comparator value concretely, dumping a waveform. *)
  let tr = Pk.Trace.create ~name:"clint" () in
  let replay_inputs = [ ("mtimecmp", Bv.make ~width:64 5L) ] in
  (match Engine.replay replay_inputs (fun () -> testbench ~trace:tr ()) with
   | None -> Format.printf "@.concrete replay (mtimecmp = 5): clean@."
   | Some (Ok e) -> Format.printf "@.replay failed: %s@." e.Symex.Error.site
   | Some (Error m) -> Format.printf "@.replay diverged: %s@." m);
  let path = Filename.concat (Filename.get_temp_dir_name ()) "clint_timer.vcd" in
  Pk.Trace.save tr path;
  Format.printf "waveform written to %s@." path
