(* Command-line front end: run the paper's symbolic tests and regenerate
   its tables at any scale.

     symsysc run T1 --variant original
     symsysc run T5 --variant fixed --fault IF3 --interrupts 16
     symsysc table1 --interrupts 51 --t5-len 1000
     symsysc table2 --interrupts 16
     symsysc list *)

open Cmdliner

module Engine = Symex.Engine
module Error = Symex.Error
module Config = Plic.Config
module Fault = Plic.Fault

(* ---- shared options ---- *)

let interrupts =
  let doc = "Number of interrupt sources (FE310: 51)." in
  Arg.(value & opt int 8 & info [ "interrupts"; "n" ] ~docv:"N" ~doc)

let t5_len =
  let doc = "Upper bound of T5's symbolic write length (paper: 1000)." in
  Arg.(value & opt int 16 & info [ "t5-len" ] ~docv:"BYTES" ~doc)

let max_paths =
  let doc = "Stop exploration after this many paths." in
  Arg.(value & opt (some int) None & info [ "max-paths" ] ~docv:"N" ~doc)

let max_seconds =
  let doc =
    "Wall-clock deadline for exploration in seconds; on expiry the run \
     stops gracefully (partial report, final checkpoint)."
  in
  Arg.(value & opt (some float) None
       & info [ "deadline-s"; "max-seconds" ] ~docv:"S" ~doc)

let max_solver_conflicts =
  let doc =
    "Per-query SAT conflict budget; a query exceeding it kills only the \
     current path (reported as non-exhaustive)."
  in
  Arg.(value & opt (some int) None
       & info [ "max-solver-conflicts" ] ~docv:"N" ~doc)

let solver_timeout_ms =
  let doc =
    "Per-query solver deadline in milliseconds — a true per-query \
     ceiling shared by bit-blasting, the CDCL loop and every \
     --solver-retries attempt; an over-deadline query kills only the \
     current path."
  in
  Arg.(value & opt (some int) None
       & info [ "solver-timeout-ms" ] ~docv:"MS" ~doc)

let max_memory_mb =
  let doc =
    "Stop exploration gracefully when the OCaml heap exceeds this many \
     megabytes."
  in
  Arg.(value & opt (some int) None & info [ "max-memory-mb" ] ~docv:"MB" ~doc)

let seed =
  let doc =
    "Seed for the random search strategy (selects --strategy \
     random:$(docv) unless --strategy is given explicitly; recorded in \
     the report so campaigns are reproducible)."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)

let workers =
  let doc =
    "Explore with $(docv) parallel worker processes: a master owns the \
     path frontier and shares work units with forked workers, each \
     running a private solver.  Verdicts, bug sites and the exhausted \
     flag match a single-worker run of the same session; path totals \
     match when the run is exhaustive.  Composes with \
     --checkpoint-out/--resume-from and --seed."
  in
  Arg.(value & opt int 1 & info [ "workers"; "j" ] ~docv:"N" ~doc)

let solver_cache_cap =
  let doc =
    "Capacity of the solver's LRU query cache in entries (0 = unbounded; \
     default 65536).  Evictions are counted in the solver stats."
  in
  Arg.(value & opt (some int) None
       & info [ "solver-cache-cap" ] ~docv:"N" ~doc)

let no_independence =
  let doc =
    "Disable constraint-independence slicing in the solver (solve every \
     query as one monolithic constraint set)."
  in
  Arg.(value & flag & info [ "no-independence" ] ~doc)

let no_incremental =
  let doc =
    "Disable incremental scope solving (rebuild the SAT instance from \
     scratch for every query instead of reusing retained instances \
     across the decision tree).  Verdicts and bug sites are identical \
     either way; only solving cost differs."
  in
  Arg.(value & flag & info [ "no-incremental" ] ~doc)

let heartbeat_ms =
  let doc =
    "Worker heartbeat period in milliseconds (with --workers > 1): \
     workers emit periodic liveness frames and the master's watchdog \
     kills and replaces a worker silent for max(8 heartbeats, 1s), \
     re-queueing its unit.  Without it a wedged (e.g. SIGSTOPped) \
     worker blocks the run forever."
  in
  Arg.(value & opt (some int) None & info [ "heartbeat-ms" ] ~docv:"MS" ~doc)

(* HOST:PORT parsing shared by --listen and --connect.  The split is on
   the last ':' so a future bracketed-IPv6 host keeps its colons. *)
let hostport_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg (Printf.sprintf "%S is not HOST:PORT" s))
    | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
       | Some p when p >= 0 && p < 65536 && host <> "" -> Ok (host, p)
       | _ -> Error (`Msg (Printf.sprintf "%S is not HOST:PORT" s)))
  in
  let print ppf (h, p) = Format.fprintf ppf "%s:%d" h p in
  Arg.conv (parse, print)

let listen =
  let doc =
    "Accept remote TCP worker pools on $(docv) (port 0 picks a free \
     port; the bound address is printed to stderr).  Remote workers \
     dial in with --connect and are dispatched to exactly like local \
     --workers processes; with --listen, --workers 0 is allowed (remote \
     peers do all the work).  The final report is equivalent to a \
     local run of the same session regardless of worker placement."
  in
  Arg.(value & opt (some hostport_conv) None
       & info [ "listen" ] ~docv:"HOST:PORT" ~doc)

let lease_ms =
  let doc =
    "Work-unit lease deadline in milliseconds: a unit granted to a \
     peer that stays silent this long is re-queued for another peer \
     (the holder is not killed; if its result arrives late it is \
     dropped first-result-wins).  Bounds the stall any lost or wedged \
     peer can cause.  Heartbeats renew leases, so set --lease-ms well \
     above --heartbeat-ms."
  in
  Arg.(value & opt (some int) None & info [ "lease-ms" ] ~docv:"MS" ~doc)

let connect =
  let doc =
    "Run as a remote worker pool for a master started with --listen on \
     $(docv): serve its work units with --workers processes until it \
     stops us, reconnecting with seeded exponential backoff when the \
     connection drops.  SIGTERM drains gracefully (current unit \
     finishes and is flushed).  Scale, variant, fault and strategy \
     flags must match the master's — mismatches are rejected in the \
     registration handshake."
  in
  Arg.(value & opt (some hostport_conv) None
       & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let backoff_seed =
  let doc =
    "Seed of the reconnect backoff jitter (with --connect); the delay \
     schedule is a pure function of (seed, slot, attempt), so outage \
     recovery is reproducible."
  in
  Arg.(value & opt int 0 & info [ "backoff-seed" ] ~docv:"N" ~doc)

let solver_retries =
  let doc =
    "Retry an Unknown solver query up to $(docv) times with a restarted, \
     perturbed SAT search (fresh branching order and phases) before \
     giving the path up as unknown.  Heals transient resource-limit \
     blowups; retries are counted in the solver stats."
  in
  Arg.(value & opt int 2 & info [ "solver-retries" ] ~docv:"N" ~doc)

let no_validate =
  let doc =
    "Skip counterexample validation (by default every reported error's \
     model is concretely re-executed solver-free and errors whose \
     replay disagrees are marked UNVALIDATED)."
  in
  Arg.(value & flag & info [ "no-validate" ] ~doc)

let no_snapshots =
  let doc =
    "Disable snapshot forking (re-execute every forked path from the \
     root by replaying its recorded decision prefix instead of \
     fast-forwarding through the parent's syscall log).  Verdicts, bug \
     sites and instruction counts are identical either way; only \
     re-execution cost differs."
  in
  Arg.(value & flag & info [ "no-snapshots" ] ~doc)

let chaos_spec =
  let parse s =
    match Chaos.parse_spec s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf spec = Format.pp_print_string ppf (Chaos.spec_to_string spec) in
  let chaos_conv = Arg.conv (parse, print) in
  let doc =
    "Arm the verifier's own fault injector with \
     \"point:rate,point:rate,...\" (rates in [0,1], default 1): e.g. \
     \"solver-unknown:0.05,worker-crash:0.02\".  Points: solver-unknown, \
     solver-stall, worker-hang, worker-crash, frame-truncate, \
     frame-corrupt, checkpoint-corrupt, conn-drop, conn-stall, \
     frame-shear, dup-result, journal-truncate, job-crash, \
     service-kill.  Injections are deterministic for a fixed \
     --chaos-seed and are accounted in the report."
  in
  Arg.(value & opt (some chaos_conv) None
       & info [ "chaos-spec" ] ~docv:"SPEC" ~doc)

let chaos_seed =
  let doc = "Seed for the --chaos-spec injection streams." in
  Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"N" ~doc)

let strategy =
  let parse s =
    match Symex.Search.strategy_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf st =
    Format.pp_print_string ppf (Symex.Search.strategy_to_string st)
  in
  let strategy_conv = Arg.conv (parse, print) in
  let doc = "Search strategy: dfs (default), bfs, random[:seed], cover-new." in
  Arg.(value & opt (some strategy_conv) None
       & info [ "strategy" ] ~docv:"S" ~doc)

(* Every command builds exactly one Engine.Session (inside
   Verify.scenario) from these flags; run/table layers share it rather
   than reassembling config bundles. *)
let scenario_term =
  let make interrupts t5_len max_paths max_seconds max_solver_conflicts
      solver_timeout_ms max_memory_mb seed solver_cache_cap no_independence
      no_incremental strategy workers heartbeat_ms listen lease_ms
      solver_retries no_validate no_snapshots chaos_spec chaos_seed =
    Smt.Solver.set_independence (not no_independence);
    Smt.Solver.set_incremental (not no_incremental);
    Option.iter (fun cap -> Smt.Solver.set_cache_capacity ~query:cap ())
      solver_cache_cap;
    Smt.Solver.set_retries solver_retries;
    (match chaos_spec with
     | Some spec -> Chaos.configure ~seed:chaos_seed spec
     | None -> Chaos.disable ());
    (* Budget stops are delivered through the interrupt flag's siblings;
       make SIGINT/SIGTERM graceful for every command. *)
    Symex.Budget.install_signal_handlers ();
    Symex.Budget.clear_interrupt ();
    let listen =
      Option.map
        (fun (host, port) ->
           let l = Symex.Transport.listen ~host ~port () in
           let bound_host, bound_port = Symex.Transport.listener_addr l in
           Format.eprintf "[pool] listening on %s:%d@." bound_host bound_port;
           l)
        listen
    in
    Symsysc.Verify.scenario ~num_sources:interrupts ~t5_max_len:t5_len
      ?max_paths ?max_seconds ?max_solver_conflicts ?solver_timeout_ms
      ?max_memory_mb ?seed ?strategy ~workers ?heartbeat_ms ?listen ?lease_ms
      ~validate:(not no_validate) ~snapshots:(not no_snapshots) ()
  in
  Term.(
    const make $ interrupts $ t5_len $ max_paths $ max_seconds
    $ max_solver_conflicts $ solver_timeout_ms $ max_memory_mb $ seed
    $ solver_cache_cap $ no_independence $ no_incremental $ strategy
    $ workers $ heartbeat_ms $ listen $ lease_ms $ solver_retries
    $ no_validate $ no_snapshots $ chaos_spec $ chaos_seed)

(* ---- observability options ---- *)

let trace_out =
  let doc =
    "Write a Chrome trace-event JSON file of the run (open it in \
     Perfetto or about://tracing)."
  in
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE" ~doc)

let events_out =
  let doc = "Write the raw telemetry event stream as JSONL." in
  Arg.(value & opt (some string) None
       & info [ "events-out" ] ~docv:"FILE" ~doc)

let metrics_out =
  let doc =
    "Write a Prometheus-style text dump of the metrics registry after \
     the run."
  in
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let stats_interval =
  let doc =
    "Print a live stats line (paths/s, instr/s, frontier, solver and \
     cache rates) to stderr every $(docv) finished paths."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "invalid interval %S, expected a positive path count" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pos_int) None
       & info [ "stats-interval" ] ~docv:"N" ~doc)

let top_flag =
  let doc =
    "Live TTY dashboard on stderr (redraws in place): paths/s, frontier \
     depth, solver and cache rates, and with --workers > 1 a per-worker \
     busy/idle line with heartbeat ages.  Overrides --stats-interval."
  in
  Arg.(value & flag & info [ "top" ] ~doc)

type obs_opts = {
  trace_out : string option;
  events_out : string option;
  metrics_out : string option;
  stats_interval : int option;
  top : bool;
}

let obs_term =
  let make trace_out events_out metrics_out stats_interval top =
    { trace_out; events_out; metrics_out; stats_interval; top }
  in
  Term.(
    const make $ trace_out $ events_out $ metrics_out $ stats_interval
    $ top_flag)

(* Run [f] with the requested telemetry consumers installed; write the
   output files afterwards.  [record] lets the caller publish final
   metrics (e.g. the run report) before the registry is dumped. *)
let with_obs (o : obs_opts) ?(record = fun _ -> ()) f =
  let recorder =
    if o.trace_out <> None || o.events_out <> None then
      Some (Obs.Export.recorder ())
    else None
  in
  let bridge =
    if o.metrics_out <> None then Some (Obs.Export.metrics_bridge ())
    else None
  in
  if o.top then Obs.Progress.configure_top ()
  else
    (match o.stats_interval with
     | Some n -> Obs.Progress.configure ~interval:n ()
     | None -> ());
  let finish () =
    Obs.Progress.disable ();
    Option.iter Obs.Export.stop recorder;
    Option.iter Obs.Sink.unsubscribe bridge
  in
  let result = Fun.protect ~finally:finish f in
  (match recorder with
   | Some r ->
     (* Tagged save: a -j N run merges worker event streams into this
        recorder, and the tagged serializers give each source its own
        named Perfetto track ("master", "worker 0", ...). *)
     let tagged = Obs.Export.tagged_events r in
     (match Obs.Export.dropped r, Obs.Export.remote_dropped r with
      | 0, 0 -> ()
      | local, 0 ->
        Format.eprintf "[obs] warning: %d events dropped (buffer limit)@."
          local
      | local, remote ->
        Format.eprintf
          "[obs] warning: %d events dropped (%d at the recorder, %d in \
           worker forwarding buffers)@."
          (local + remote) local remote);
     let save what path write =
       try
         write path;
         Format.eprintf "[obs] %s (%d events) -> %s@." what
           (List.length tagged) path
       with Sys_error msg ->
         Format.eprintf "symsysc: cannot write %s: %s@." what msg
     in
     Option.iter
       (fun path ->
          save "chrome trace" path (Obs.Export.save_chrome_tagged tagged))
       o.trace_out;
     Option.iter
       (fun path ->
          save "event log" path (Obs.Export.save_jsonl_tagged tagged))
       o.events_out
   | None -> ());
  record result;
  Option.iter
    (fun path ->
       try
         Obs.Metrics.save path;
         Format.eprintf "[obs] metrics -> %s@." path
       with Sys_error msg ->
         Format.eprintf "symsysc: cannot write metrics: %s@." msg)
    o.metrics_out;
  result

(* ---- run ---- *)

let variant =
  let variant_conv =
    Arg.enum [ ("original", Config.Original); ("fixed", Config.Fixed) ]
  in
  let doc = "PLIC variant: the paper's buggy $(b,original) or $(b,fixed)." in
  Arg.(value & opt variant_conv Config.Original
       & info [ "variant" ] ~docv:"V" ~doc)

let faults =
  let parse s =
    match Fault.of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown fault %S" s))
  in
  let print ppf f = Format.pp_print_string ppf (Fault.to_string f) in
  let fault_conv = Arg.conv (parse, print) in
  let doc = "Inject a fault (IF1..IF6); repeatable." in
  Arg.(value & opt_all fault_conv [] & info [ "fault" ] ~docv:"IFx" ~doc)

let test_name =
  let doc = "Test to run: T1..T5." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"TEST" ~doc)

let coverage_flag =
  let doc = "Print branch-site coverage after the run." in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let solver_stats_flag =
  let doc = "Print the per-stage solver breakdown after the run." in
  Arg.(value & flag & info [ "solver-stats" ] ~doc)

let profile_flag =
  let doc =
    "Print the top-$(docv) solver-time attribution buckets — (query \
     origin, pipeline stage) keys ranked by self time — after the run \
     (default K: 10)."
  in
  Arg.(value & opt ~vopt:(Some 10) (some int) None
       & info [ "profile" ] ~docv:"K" ~doc)

(* ---- resilience options ---- *)

let checkpoint_out =
  let doc =
    "Write a resumable exploration checkpoint to $(docv): periodically, \
     on budget exhaustion and on SIGINT/SIGTERM (atomically, so the \
     file is never torn)."
  in
  Arg.(value & opt (some string) None
       & info [ "checkpoint-out" ] ~docv:"FILE" ~doc)

let checkpoint_every_s =
  let doc = "Seconds between periodic checkpoints (with --checkpoint-out)." in
  Arg.(value & opt float 30.0 & info [ "checkpoint-every-s" ] ~docv:"S" ~doc)

let resume_from =
  let doc =
    "Resume exploration from a checkpoint written by --checkpoint-out. \
     The test and --strategy must match the checkpointed run; the \
     resumed run reaches the same verdict, path totals and bug sites \
     as an uninterrupted one."
  in
  Arg.(value & opt (some string) None
       & info [ "resume-from" ] ~docv:"FILE" ~doc)

let report_out =
  let doc =
    "Write the final report as JSON to $(docv) (error sites sorted, so \
     reports of equivalent runs diff cleanly)."
  in
  Arg.(value & opt (some string) None
       & info [ "report-out" ] ~docv:"FILE" ~doc)

let run_cmd =
  let run scenario variant faults coverage solver_stats profile obs
      checkpoint_out checkpoint_every_s resume_from report_out connect
      backoff_seed name =
    match Symsysc.Tests.by_name name with
    | None -> `Error (false, "unknown test " ^ name)
    | Some _ ->
      let label = String.uppercase_ascii name in
      let params =
        Symsysc.Tests.with_faults faults
          (Symsysc.Tests.with_variant variant scenario.Symsysc.Verify.params)
      in
      (* The handshake cookie must cover the variant/fault rewrites made
         here, not just the scenario-level scale, so recompute it from
         the final parameter set on both sides of the socket. *)
      let scenario =
        { Symsysc.Verify.params;
          session =
            { scenario.Symsysc.Verify.session with
              Engine.Session.cookie =
                Some (Symsysc.Verify.params_signature params) } }
      in
      match connect with
      | Some (host, port) ->
        let workers =
          max 1 scenario.Symsysc.Verify.session.Engine.Session.workers
        in
        let code =
          Symsysc.Verify.serve ~host ~port ~workers ~backoff_seed scenario
            label
        in
        if code = 0 then `Ok () else `Error (false, "worker pool failed")
      | None ->
      let resume =
        Option.map
          (fun path ->
             match Symex.Checkpoint.load path with
             | Ok ck -> ck
             | Error msg ->
               Format.eprintf "symsysc: cannot resume from %s: %s@." path msg;
               exit 2)
          resume_from
      in
      let checkpoint =
        Option.map
          (fun path ->
             { Symex.Checkpoint.write = Symex.Checkpoint.save path;
               every_s = checkpoint_every_s })
          checkpoint_out
      in
      (* Inject the per-run flags into the one session every layer
         shares; Verify.run_test does the rest. *)
      let scenario =
        { Symsysc.Verify.params;
          session =
            { scenario.Symsysc.Verify.session with
              Engine.Session.resume; checkpoint } }
      in
      let report =
        with_obs obs ~record:Symsysc.Report.record_metrics (fun () ->
            Symsysc.Verify.run_test scenario label)
      in
      (match report.Symsysc.Report.engine.Engine.stop_reason with
       | Some reason ->
         Format.eprintf "symsysc: exploration stopped early (%s)%s@."
           (Symex.Budget.reason_to_string reason)
           (match checkpoint_out with
            | Some path -> Printf.sprintf "; resume with --resume-from %s" path
            | None -> "")
       | None -> ());
      Option.iter
        (fun path ->
           try
             Symsysc.Report.save_json path report;
             Format.eprintf "[report] -> %s@." path
           with Sys_error msg ->
             Format.eprintf "symsysc: cannot write report: %s@." msg)
        report_out;
      Format.printf "%a@." Symsysc.Report.pp report;
      if report.Symsysc.Report.engine.Engine.coverage <> Obs.Coverage.zero
      then Format.printf "%a" Symsysc.Report.pp_coverage report;
      if solver_stats then
        Format.printf "@.%a@." Symsysc.Report.pp_solver_breakdown report;
      Option.iter
        (fun k ->
           Format.printf "@.%a" (Symsysc.Report.pp_profile ~k) report)
        profile;
      List.iter
        (fun e ->
           Format.printf "@.%a@." Error.pp e;
           match Symsysc.Explain.lookup e with
           | Some ex -> Format.printf "@[<hov 2>explanation: %a@]@." Symsysc.Explain.pp ex
           | None -> ())
        report.Symsysc.Report.engine.Engine.errors;
      if coverage then begin
        Format.printf "@.branch coverage:@.";
        List.iter
          (fun (site, n) -> Format.printf "  %-32s %d@." site n)
          report.Symsysc.Report.engine.Engine.branch_coverage
      end;
      `Ok ()
  in
  let doc = "Run one symbolic test against the PLIC." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret (const run $ scenario_term $ variant $ faults $ coverage_flag
           $ solver_stats_flag $ profile_flag $ obs_term $ checkpoint_out
           $ checkpoint_every_s $ resume_from $ report_out $ connect
           $ backoff_seed $ test_name))

(* ---- table1 ---- *)

let table1_cmd =
  let run scenario obs =
    let reports =
      with_obs obs
        ~record:(List.iter Symsysc.Report.record_metrics)
        (fun () -> Symsysc.Verify.table1 scenario)
    in
    Symsysc.Tables.print_table1 Format.std_formatter reports;
    Format.printf "@.where the solver time goes:@.";
    Symsysc.Tables.print_solver_breakdown Format.std_formatter reports;
    Format.printf "@.what the paths covered:@.";
    Symsysc.Tables.print_coverage Format.std_formatter reports;
    List.iter
      (fun (r : Symsysc.Report.t) ->
         List.iter
           (fun (e : Error.t) ->
              Format.printf "%s: %s (%s)@." r.Symsysc.Report.test_name
                e.Error.site (Error.kind_to_string e.Error.kind))
           r.Symsysc.Report.engine.Engine.errors)
      reports
  in
  let doc = "Regenerate Table 1 (test results on the original PLIC)." in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ scenario_term $ obs_term)

(* ---- table2 ---- *)

let tests_opt =
  let doc = "Comma-separated tests to include (default: all)." in
  Arg.(value & opt (list string) [ "T1"; "T2"; "T3"; "T4"; "T5" ]
       & info [ "tests" ] ~docv:"TESTS" ~doc)

let table2_cmd =
  let run scenario tests =
    let tests = List.map String.uppercase_ascii tests in
    let detections = Symsysc.Verify.table2 ~tests scenario in
    Symsysc.Tables.print_table2 Format.std_formatter ~tests detections
  in
  let doc = "Regenerate Table 2 (time-to-detection matrix)." in
  Cmd.v (Cmd.info "table2" ~doc) Term.(const run $ scenario_term $ tests_opt)

(* ---- report-diff ---- *)

let report_diff_cmd =
  let file n =
    let doc = "Report JSON written by --report-out." in
    Arg.(required & pos n (some file) None & info [] ~docv:"REPORT" ~doc)
  in
  let run a_path b_path =
    let load path =
      match Obs.Json.load path with
      | Ok j -> j
      | Error msg ->
        Format.eprintf "symsysc: cannot read %s: %s@." path msg;
        exit 2
    in
    let diffs = Symsysc.Diff.compare_reports (load a_path) (load b_path) in
    match diffs with
    | [] ->
      Format.printf "reports agree (%s vs %s)@." a_path b_path;
      `Ok ()
    | _ ->
      Format.printf "%a@." Symsysc.Diff.pp diffs;
      Format.eprintf "symsysc: %d difference%s between %s and %s@."
        (List.length diffs)
        (if List.length diffs = 1 then "" else "s")
        a_path b_path;
      exit 1
  in
  let doc =
    "Compare two --report-out JSONs on their deterministic fields \
     (verdict, termination, path/instruction counters, (site, kind) \
     error set, coverage maps and percentages); exit 1 on any \
     difference.  Wall/solver times, cache statistics, worker counts, \
     resilience counters and the solver-time profile are ignored — \
     they legitimately vary across runs and worker counts."
  in
  Cmd.v
    (Cmd.info "report-diff" ~doc)
    Term.(ret (const run $ file 0 $ file 1))

(* ---- campaign service ---- *)

let journal_dir =
  let doc =
    "Journal directory: the daemon's only durable state (WAL segments \
     plus per-job checkpoint/report artifacts).  Restarting on the \
     same directory resumes the campaign."
  in
  Arg.(required & opt (some string) None
       & info [ "journal" ] ~docv:"DIR" ~doc)

let daemon_addr =
  let doc = "Address of a running $(b,symsysc serve) daemon." in
  Arg.(value & opt hostport_conv ("127.0.0.1", 7321)
       & info [ "connect" ] ~docv:"HOST:PORT" ~doc)

let serve_cmd =
  let serve_listen =
    let doc =
      "Listen for client frames on $(docv) (port 0 picks a free port; \
       the bound address is printed to stderr)."
    in
    Arg.(value & opt hostport_conv ("127.0.0.1", 7321)
         & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let max_jobs =
    let doc = "Admission cap: concurrent job processes." in
    Arg.(value & opt int 2 & info [ "max-jobs" ] ~docv:"N" ~doc)
  in
  let job_retries =
    let doc =
      "Failed attempts before a job is quarantined by the circuit \
       breaker (retries are gated by seeded exponential backoff)."
    in
    Arg.(value & opt int 2 & info [ "job-retries" ] ~docv:"N" ~doc)
  in
  let job_timeout =
    let doc = "Per-job wall-clock timeout in seconds (SIGKILL + retry)." in
    Arg.(value & opt (some float) None
         & info [ "job-timeout-s" ] ~docv:"S" ~doc)
  in
  let watermark =
    let doc =
      "Memory watermark in MB: above it admission pauses and the \
       newest running job is shed back to the queue with its budget \
       halved (never below one running job)."
    in
    Arg.(value & opt (some float) None
         & info [ "mem-watermark-mb" ] ~docv:"MB" ~doc)
  in
  let segment_bytes =
    let doc = "Journal segment rotation threshold in bytes." in
    Arg.(value & opt int (1 lsl 20) & info [ "segment-bytes" ] ~docv:"N" ~doc)
  in
  let exit_when_idle =
    let doc =
      "Exit 0 once at least one job was submitted and every job is \
       terminal (for batch campaigns and CI)."
    in
    Arg.(value & flag & info [ "exit-when-idle" ] ~doc)
  in
  let ck_every =
    let doc = "Seconds between periodic job checkpoints." in
    Arg.(value & opt float 0.5 & info [ "checkpoint-every-s" ] ~docv:"S" ~doc)
  in
  let run (host, port) journal_dir max_jobs job_retries job_timeout_s
      mem_watermark_mb segment_bytes exit_when_idle checkpoint_every_s
      backoff_seed chaos_spec chaos_seed =
    (match chaos_spec with
     | Some spec -> Chaos.configure ~seed:chaos_seed spec
     | None -> Chaos.disable ());
    let listener = Symex.Transport.listen ~host ~port () in
    let bound_host, bound_port = Symex.Transport.listener_addr listener in
    Format.eprintf "[serve] listening on %s:%d, journal %s@." bound_host
      bound_port journal_dir;
    let opts =
      {
        (Service.Daemon.default_opts ~journal_dir) with
        Service.Daemon.max_jobs;
        job_retries;
        job_timeout_s;
        mem_watermark_mb;
        segment_bytes;
        backoff_seed;
        checkpoint_every_s;
        exit_when_idle;
      }
    in
    exit (Service.Daemon.run ~listener opts)
  in
  let doc =
    "Run the crash-safe campaign daemon: accept submitted jobs, run \
     each as a supervised process with retry/backoff/quarantine, \
     journal every transition (fsync before ack), shed load under \
     memory pressure, and drain to checkpoints on SIGTERM.  \
     Restarting on the same --journal resumes the campaign; a clean \
     kill-at-any-point recovery is part of the contract."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ serve_listen $ journal_dir $ max_jobs $ job_retries
      $ job_timeout $ watermark $ segment_bytes $ exit_when_idle $ ck_every
      $ backoff_seed $ chaos_spec $ chaos_seed)

let client_fail msg =
  Format.eprintf "symsysc: %s@." msg;
  exit 2

let submit_cmd =
  let peripheral =
    let doc = "Peripheral: plic, clint or uart." in
    Arg.(value & opt string "plic" & info [ "peripheral" ] ~docv:"P" ~doc)
  in
  let test =
    let doc = "Test name: T1..T5 (plic), timer (clint), loopback (uart)." in
    Arg.(value & opt string "T1" & info [ "test" ] ~docv:"T" ~doc)
  in
  let mode =
    let mode_conv =
      Arg.conv
        ( (fun s ->
             match Service.Jobspec.mode_of_string s with
             | Some m -> Ok m
             | None -> Error (`Msg (Printf.sprintf "unknown mode %S" s))),
          fun ppf m ->
            Format.pp_print_string ppf (Service.Jobspec.mode_to_string m) )
    in
    let doc = "Exploration mode: symbolic (default) or random." in
    Arg.(value & opt mode_conv Service.Jobspec.Symbolic
         & info [ "mode" ] ~docv:"M" ~doc)
  in
  let strategy =
    let doc = "Search strategy (symbolic mode): dfs, bfs, random[:seed], cover-new." in
    Arg.(value & opt (some string) None & info [ "strategy" ] ~docv:"S" ~doc)
  in
  let seed =
    let doc = "Seed (random campaigns and random[:seed] strategies)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)
  in
  let trials =
    let doc = "Trials for --mode random." in
    Arg.(value & opt int 256 & info [ "trials" ] ~docv:"N" ~doc)
  in
  let max_paths =
    let doc = "Path budget for the job." in
    Arg.(value & opt (some int) None & info [ "max-paths" ] ~docv:"N" ~doc)
  in
  let max_seconds =
    let doc = "Time budget for the job (seconds)." in
    Arg.(value & opt (some float) None & info [ "max-seconds" ] ~docv:"S" ~doc)
  in
  let max_memory_mb =
    let doc = "Heap budget for the job (MB)." in
    Arg.(value & opt (some int) None & info [ "max-memory-mb" ] ~docv:"MB" ~doc)
  in
  let workers =
    let doc = "Worker processes inside the job." in
    Arg.(value & opt int 1 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let num_sources =
    let doc = "PLIC interrupt sources (scenario scale)." in
    Arg.(value & opt int 4 & info [ "num-sources" ] ~docv:"N" ~doc)
  in
  let t5_len =
    let doc = "T5 symbolic-sequence length." in
    Arg.(value & opt int 8 & info [ "t5-len" ] ~docv:"N" ~doc)
  in
  let run (host, port) peripheral test mode strategy seed trials max_paths
      max_seconds max_memory_mb workers num_sources t5_len =
    let spec =
      {
        Service.Jobspec.peripheral;
        test;
        mode;
        strategy;
        seed;
        trials;
        max_paths;
        max_seconds;
        max_memory_mb;
        workers;
        num_sources;
        t5_len;
      }
    in
    match Service.Jobspec.validate spec with
    | Error msg -> client_fail msg
    | Ok () ->
      (match Service.Client.submit ~host ~port spec with
       | Ok id -> Format.printf "submitted job %d (%s)@." id
                    (Service.Jobspec.describe spec)
       | Error msg -> client_fail msg)
  in
  let doc = "Submit a job to a running campaign daemon (durable on ack)." in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const run $ daemon_addr $ peripheral $ test $ mode $ strategy $ seed
      $ trials $ max_paths $ max_seconds $ max_memory_mb $ workers
      $ num_sources $ t5_len)

let status_cmd =
  let json_flag =
    let doc = "Print the raw status document as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run (host, port) json =
    match Service.Client.status ~host ~port with
    | Error msg -> client_fail msg
    | Ok doc ->
      if json then print_endline (Obs.Json.to_string doc)
      else begin
        let str k j = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
        let uptime =
          Option.bind (Obs.Json.member "uptime" doc) Obs.Json.to_float_opt
          |> Option.value ~default:0.0
        in
        Format.printf "daemon up %.1fs@." uptime;
        (match Obs.Json.member "counts" doc with
         | Some (Obs.Json.Obj kvs) ->
           Format.printf "counts:";
           List.iter
             (fun (k, v) ->
                match Obs.Json.to_int_opt v with
                | Some n -> Format.printf " %s=%d" k n
                | None -> ())
             kvs;
           Format.printf "@."
         | _ -> ());
        match Option.bind (Obs.Json.member "jobs" doc) Obs.Json.to_list_opt with
        | None -> ()
        | Some jobs ->
          List.iter
            (fun j ->
               let int k =
                 Option.bind (Obs.Json.member k j) Obs.Json.to_int_opt
                 |> Option.value ~default:0
               in
               Format.printf "  #%-3d %-28s %-12s attempts=%d%s%s@."
                 (int "id")
                 (Option.value ~default:"?" (str "job" j))
                 (Option.value ~default:"?" (str "state" j))
                 (int "attempts")
                 (match str "verdict" j with
                  | Some v -> " verdict=" ^ v
                  | None -> "")
                 (match str "fail_reason" j with
                  | Some r -> " reason=" ^ r
                  | None -> ""))
            jobs
      end
  in
  let doc = "Show a campaign daemon's queue, counters and journal state." in
  Cmd.v (Cmd.info "status" ~doc) Term.(const run $ daemon_addr $ json_flag)

let cancel_cmd =
  let id =
    let doc = "Job id to cancel." in
    Arg.(required & pos 0 (some int) None & info [] ~docv:"ID" ~doc)
  in
  let run (host, port) id =
    match Service.Client.cancel ~host ~port id with
    | Ok () -> Format.printf "cancelled job %d@." id
    | Error msg -> client_fail msg
  in
  let doc = "Cancel a queued or running job." in
  Cmd.v (Cmd.info "cancel" ~doc) Term.(const run $ daemon_addr $ id)

let drain_cmd =
  let run (host, port) =
    match Service.Client.drain ~host ~port with
    | Ok () -> Format.printf "draining@."
    | Error msg -> client_fail msg
  in
  let doc =
    "Ask the daemon to drain: running jobs checkpoint and re-queue, \
     the journal is flushed, and the daemon exits 0."
  in
  Cmd.v (Cmd.info "drain" ~doc) Term.(const run $ daemon_addr)

let jobs_cmd =
  let run journal_dir =
    let wal, records, dropped = Service.Wal.open_dir journal_dir in
    let sup =
      Service.Supervisor.create ~wal ~job_retries:0 ~backoff_seed:0 records
    in
    Service.Wal.close wal;
    let doc =
      Obs.Json.Obj
        [
          ("dropped_bytes", Obs.Json.Int dropped);
          ( "counts",
            Obs.Json.Obj
              (List.map
                 (fun (k, v) -> (k, Obs.Json.Int v))
                 (Service.Supervisor.counts sup)) );
          ( "jobs",
            Obs.Json.List
              (List.map
                 (fun (j : Service.Supervisor.job) ->
                    let opt = function
                      | Some s -> Obs.Json.Str s
                      | None -> Obs.Json.Null
                    in
                    Obs.Json.Obj
                      [
                        ("id", Obs.Json.Int j.Service.Supervisor.id);
                        ( "job",
                          Obs.Json.Str
                            (Service.Jobspec.describe j.Service.Supervisor.spec)
                        );
                        ( "state",
                          Obs.Json.Str
                            (Service.Supervisor.state_to_string
                               j.Service.Supervisor.state) );
                        ("attempts", Obs.Json.Int j.Service.Supervisor.attempts);
                        ("sheds", Obs.Json.Int j.Service.Supervisor.sheds);
                        ("verdict", opt j.Service.Supervisor.verdict);
                        ("report", opt j.Service.Supervisor.report);
                        ("checkpoint", opt j.Service.Supervisor.checkpoint);
                      ])
                 (Service.Supervisor.jobs sup)) );
        ]
    in
    print_endline (Obs.Json.to_string doc)
  in
  let doc =
    "Replay a campaign journal offline (no daemon needed) and print \
     the recovered job table as JSON — what a restarted daemon would \
     see.  For CI assertions and post-mortems."
  in
  Cmd.v (Cmd.info "jobs" ~doc) Term.(const run $ journal_dir)

(* ---- list ---- *)

let list_cmd =
  let run () =
    Format.printf "tests:@.";
    List.iter (fun (n, _) -> Format.printf "  %s@." n) Symsysc.Tests.all;
    Format.printf "@.original bugs (variant = original):@.";
    List.iter
      (fun b -> Format.printf "  %s@." (Symsysc.Verify.bug_to_string b))
      [ Symsysc.Verify.F1; Symsysc.Verify.F2; Symsysc.Verify.F3;
        Symsysc.Verify.F4; Symsysc.Verify.F5; Symsysc.Verify.F6 ];
    Format.printf "@.injectable faults (--fault):@.";
    List.iter
      (fun f ->
         Format.printf "  %s: %s@." (Fault.to_string f) (Fault.description f))
      Fault.all
  in
  let doc = "List the available tests, bugs and faults." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let () =
  let doc =
    "Symbolic verification of SystemC TLM peripherals (SymSysC, DAC'22)"
  in
  let info = Cmd.info "symsysc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; table1_cmd; table2_cmd; report_diff_cmd; serve_cmd;
            submit_cmd; status_cmd; cancel_cmd; drain_cmd; jobs_cmd;
            list_cmd ]))
